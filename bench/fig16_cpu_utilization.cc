// Reproduces Figure 16: 1-second CPU-utilization samples of the cluster
// with periodic IVM alone vs IVM+SVC. SVC soaks up the idle windows that
// synchronous shuffles leave behind.

#include "common/table_printer.h"
#include "minibatch/cluster_sim.h"

#include <cstdio>
#include <string>

int main() {
  using namespace svc;
  ClusterModel model;
  const double duration = 240;
  const double batch_gb = 40;
  auto ivm = model.UtilizationTrace(duration, false, batch_gb);
  auto both = model.UtilizationTrace(duration, true, batch_gb);

  std::printf("-- Figure 16: CPU utilization trace (sampled every 10s) --\n");
  TablePrinter t({"t_s", "ivm_only", "ivm_plus_svc"});
  double mean_ivm = 0, mean_both = 0;
  for (size_t i = 0; i < ivm.size(); ++i) {
    mean_ivm += ivm[i];
    mean_both += both[i];
    if (i % 10 == 0) {
      t.AddRow({std::to_string(i), TablePrinter::Num(ivm[i], 0) + "%",
                TablePrinter::Num(both[i], 0) + "%"});
    }
  }
  t.Print();
  mean_ivm /= ivm.size();
  mean_both /= both.size();
  std::printf(
      "mean utilization: IVM %.1f%%, IVM+SVC %.1f%% — SVC reclaims %.1f "
      "utilization points from shuffle-idle windows\n",
      mean_ivm, mean_both, mean_both - mean_ivm);
  return 0;
}
