// Reproduces Figure 6:
//  (a) Total time (maintenance + query): IVM vs SVC+CORR-10% vs SVC+AQP-10%.
//      CORR pays a query-time surcharge (it scans the full stale view plus
//      both samples); AQP queries only the sample.
//  (b) Relative error vs update size: SVC+CORR beats SVC+AQP until a
//      break-even point, after which direct estimates win (§5.2.2).

#include "bench/bench_util.h"

namespace svc {
namespace bench {
namespace {

AggregateQuery BenchQuery() {
  return AggregateQuery::Sum(
      Expr::Mul(Expr::Col("l_extendedprice"),
                Expr::Sub(Expr::LitInt(1), Expr::Col("l_discount"))));
}

void PartA() {
  std::printf(
      "-- Figure 6(a): total time = maintenance + sum-query execution "
      "(10%% updates) --\n");
  JoinViewFixture fx = MakeJoinViewFixture(0.015, 2.0, 0.10);
  const AggregateQuery q = BenchQuery();

  // IVM: full maintenance, then an exact query on the fresh view.
  auto [ivm_m, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
  const double ivm_q = TimeSeconds([&] {
    (void)CheckedValue(ExactAggregate(fresh, q), "ivm query");
  });

  // SVC: clean a 10% sample once; then either estimator.
  auto [svc_m, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db, 0.10);
  const Table* stale = CheckedValue(fx.db.GetTable("join_view"), "stale");
  const double corr_q = TimeSeconds([&] {
    (void)CheckedValue(SvcCorrEstimate(*stale, samples, q), "corr");
  });
  const double aqp_q = TimeSeconds([&] {
    (void)CheckedValue(SvcAqpEstimate(samples, q), "aqp");
  });

  TablePrinter table({"method", "maintenance_s", "query_s", "total_s"});
  table.AddRow({"IVM", TablePrinter::Num(ivm_m, 3),
                TablePrinter::Num(ivm_q, 3),
                TablePrinter::Num(ivm_m + ivm_q, 3)});
  table.AddRow({"SVC+CORR-10%", TablePrinter::Num(svc_m, 3),
                TablePrinter::Num(corr_q, 3),
                TablePrinter::Num(svc_m + corr_q, 3)});
  table.AddRow({"SVC+AQP-10%", TablePrinter::Num(svc_m, 3),
                TablePrinter::Num(aqp_q, 3),
                TablePrinter::Num(svc_m + aqp_q, 3)});
  table.Print();
}

void PartB() {
  std::printf(
      "\n-- Figure 6(b): SVC+CORR vs SVC+AQP relative error as updates "
      "grow (10%% sample) --\n");
  TablePrinter table({"update_size", "corr_err", "aqp_err", "winner"});
  int crossover_at = -1;
  int idx = 0;
  const std::vector<double> sizes = {0.03, 0.08, 0.13, 0.18, 0.23, 0.28,
                                     0.33, 0.38, 0.43, 0.48, 0.55};
  for (double frac : sizes) {
    // z = 1 keeps the value distribution mild so the AQP variance floor is
    // visible (as in the paper's basic-TPCD configuration).
    JoinViewFixture fx = MakeJoinViewFixture(0.008, 1.0, frac, 100 + idx);
    auto [mt, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
    (void)mt;
    const Table* stale = CheckedValue(fx.db.GetTable("join_view"), "stale");

    // Average the error over several queries and hash draws for stability.
    double corr_err = 0, aqp_err = 0;
    int n = 0;
    for (uint64_t qseed = 0; qseed < 3; ++qseed) {
      CleanOptions opts{0.10,
                        qseed % 2 ? HashFamily::kFnv1a : HashFamily::kSha1};
      CorrespondingSamples samples = CheckedValue(
          CleanViewSample(fx.view, fx.deltas, fx.db, opts), "clean");
      for (const auto& vq : TpcdJoinViewQueries()) {
        if (vq.name != "Q5" && vq.name != "Q9" && vq.name != "Q10") continue;
        MethodErrors e = EvaluateQuery(*stale, fresh, samples, vq);
        corr_err += e.corr.median;
        aqp_err += e.aqp.median;
        ++n;
      }
    }
    corr_err /= n;
    aqp_err /= n;
    if (crossover_at < 0 && aqp_err < corr_err) {
      crossover_at = static_cast<int>(100 * frac);
    }
    table.AddRow({TablePrinter::Pct(frac), TablePrinter::Pct(corr_err),
                  TablePrinter::Pct(aqp_err),
                  corr_err <= aqp_err ? "CORR" : "AQP"});
    ++idx;
  }
  table.Print();
  if (crossover_at > 0) {
    std::printf("break-even: AQP first beats CORR at ~%d%% updates\n",
                crossover_at);
  } else {
    std::printf("no crossover within the swept range\n");
  }
}

}  // namespace
}  // namespace bench
}  // namespace svc

int main() {
  svc::bench::PartA();
  svc::bench::PartB();
  return 0;
}
