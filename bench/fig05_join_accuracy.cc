// Reproduces Figure 5: median relative error of the 12 TPCD parameterized
// queries on the join view, answered from (i) the stale view, (ii)
// SVC+AQP-10%, (iii) SVC+CORR-10%, with a 10% update size.

#include "bench/bench_util.h"

int main() {
  using namespace svc;
  using namespace svc::bench;
  std::printf(
      "-- Figure 5: Join View query accuracy (median relative error, "
      "10%% sample, 10%% updates) --\n");
  JoinViewFixture fx = MakeJoinViewFixture(0.01, 2.0, 0.10);
  auto [ivm_secs, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
  (void)ivm_secs;
  auto [svc_secs, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db, 0.10);
  (void)svc_secs;
  const Table* stale =
      CheckedValue(fx.db.GetTable("join_view"), "stale view");

  TablePrinter table({"query", "stale", "svc_aqp_10", "svc_corr_10"});
  double sum_stale = 0, sum_aqp = 0, sum_corr = 0;
  int n = 0;
  for (const auto& vq : TpcdJoinViewQueries()) {
    MethodErrors e = EvaluateQuery(*stale, fresh, samples, vq);
    table.AddRow({vq.name, TablePrinter::Pct(e.stale.median),
                  TablePrinter::Pct(e.aqp.median),
                  TablePrinter::Pct(e.corr.median)});
    sum_stale += e.stale.median;
    sum_aqp += e.aqp.median;
    sum_corr += e.corr.median;
    ++n;
  }
  table.Print();
  std::printf(
      "average median error: stale=%.2f%%  aqp=%.2f%%  corr=%.2f%%  "
      "(corr is %.1fx more accurate than stale, %.1fx than aqp)\n",
      100 * sum_stale / n, 100 * sum_aqp / n, 100 * sum_corr / n,
      sum_stale / std::max(sum_corr, 1e-9),
      sum_aqp / std::max(sum_corr, 1e-9));
  return 0;
}
