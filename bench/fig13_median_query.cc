// Reproduces Figure 13: the cube roll-ups with the aggregate switched to
// MEDIAN (bootstrap-bounded; §5.2.5). The median is less sensitive to
// variance, so both SVC estimators get more accurate than for sums.

#include "bench/bench_util.h"

int main() {
  using namespace svc;
  using namespace svc::bench;

  TpcdConfig cfg;
  cfg.scale_factor = 0.012;
  cfg.zipf_z = 1.0;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("cube", TpcdCubeViewDef(), &db), "cube");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");

  auto [mt, fresh] = TimeFullMaintenance(view, deltas, db);
  (void)mt;
  auto [st, samples] = TimeSvcCleaning(view, deltas, db, 0.10);
  (void)st;
  const Table* stale = CheckedValue(db.GetTable("cube"), "stale");

  std::printf(
      "-- Figure 13: cube roll-ups with MEDIAN(revenue) (10%% sample, 10%% "
      "updates) --\n");
  TablePrinter table({"rollup", "stale", "svc_aqp_10", "svc_corr_10"});
  for (const auto& vq : TpcdCubeRollups(AggFunc::kMedian)) {
    if (vq.group_by.size() > 2) continue;  // keep runtime in check
    MethodErrors e = EvaluateQuery(*stale, fresh, samples, vq);
    table.AddRow({vq.name, TablePrinter::Pct(e.stale.median),
                  TablePrinter::Pct(e.aqp.median),
                  TablePrinter::Pct(e.corr.median)});
  }
  table.Print();
  return 0;
}
