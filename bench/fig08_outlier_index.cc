// Reproduces Figure 8:
//  (a) V3 (revenue per customer) under skew z ∈ {1,2,3,4}: 75%-quartile
//      query error for SVC+AQP / SVC+CORR, with and without a k=100 outlier
//      index on l_extendedprice, plus the stale baseline.
//  (b) Outlier-index maintenance overhead for index sizes {0,10,100,1000}
//      against the full-IVM time.

#include "bench/bench_util.h"
#include "core/outlier.h"
#include "sql/planner.h"

namespace svc {
namespace bench {
namespace {

struct V3Setup {
  Database db;
  MaterializedView view;
  DeltaSet deltas;
  Table fresh;
};

V3Setup MakeV3(double zipf_z) {
  TpcdConfig cfg;
  cfg.scale_factor = 0.008;
  cfg.zipf_z = zipf_z;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  const ComplexView cv = TpcdComplexViews()[0];  // V3
  PlanPtr def = CheckedValue(SqlToPlan(cv.sql, db), "V3 sql");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("V3", def, &db, cv.sampling_key), "V3");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");
  MaintenancePlan plan = CheckedValue(BuildMaintenancePlan(view, deltas, db),
                                      "plan");
  Table fresh = CheckedValue(ExecutePlan(*plan.plan, db), "fresh");
  CheckOk(fresh.SetPrimaryKey(view.stored_pk()), "pk");
  return {std::move(db), std::move(view), std::move(deltas),
          std::move(fresh)};
}

void PartA() {
  std::printf(
      "-- Figure 8(a): V3 75%%-quartile error vs skew z (outlier index "
      "k=100 on l_extendedprice) --\n");
  TablePrinter table({"zipf_z", "stale", "aqp", "aqp+out", "corr",
                      "corr+out"});
  for (double z : {1.0, 2.0, 3.0, 4.0}) {
    V3Setup s = MakeV3(z);
    const Table* stale = CheckedValue(s.db.GetTable("V3"), "stale");
    CorrespondingSamples samples = CheckedValue(
        CleanViewSample(s.view, s.deltas, s.db,
                        CleanOptions{0.10, HashFamily::kFnv1a}),
        "clean");
    OutlierIndexSpec spec{"lineitem", "l_extendedprice", 100, std::nullopt};
    OutlierIndex index = CheckedValue(
        OutlierIndex::Build(s.db, s.deltas, spec), "index");
    OutlierIndex::ViewOutliers outliers = CheckedValue(
        index.PushUpToView(s.view, s.deltas, &s.db), "pushup");

    // Random revenue-sum queries; report the 75% quartile of per-query
    // scalar relative error.
    Rng rng(1234 + static_cast<uint64_t>(z));
    auto queries = GenerateRandomViewQueries(*stale, {"o_custkey"},
                                             {"revenue"}, 60, &rng);
    std::vector<double> es, ea, eao, ec, eco;
    for (const auto& vq : queries) {
      const double truth =
          CheckedValue(ExactAggregate(s.fresh, vq.query), "truth");
      if (std::fabs(truth) < 1e-9) continue;
      auto rel = [&](double v) { return std::fabs(v - truth) /
                                        std::fabs(truth); };
      es.push_back(rel(CheckedValue(ExactAggregate(*stale, vq.query),
                                    "stale")));
      ea.push_back(rel(
          CheckedValue(SvcAqpEstimate(samples, vq.query), "aqp").value));
      eao.push_back(rel(CheckedValue(SvcAqpEstimateWithOutliers(
                                         samples, outliers, vq.query),
                                     "aqp+out")
                            .value));
      ec.push_back(rel(
          CheckedValue(SvcCorrEstimate(*stale, samples, vq.query), "corr")
              .value));
      eco.push_back(rel(CheckedValue(SvcCorrEstimateWithOutliers(
                                         *stale, samples, outliers,
                                         vq.query),
                                     "corr+out")
                            .value));
    }
    auto q75 = [](std::vector<double> v) {
      if (v.empty()) return 0.0;
      std::sort(v.begin(), v.end());
      return v[v.size() * 3 / 4];
    };
    table.AddRow({TablePrinter::Num(z, 0), TablePrinter::Pct(q75(es)),
                  TablePrinter::Pct(q75(ea)), TablePrinter::Pct(q75(eao)),
                  TablePrinter::Pct(q75(ec)), TablePrinter::Pct(q75(eco))});
  }
  table.Print();
}

void PartB() {
  std::printf(
      "\n-- Figure 8(b): outlier-index overhead on V3 maintenance "
      "(z = 2) --\n");
  V3Setup s = MakeV3(2.0);
  auto [ivm_s, fresh] = TimeFullMaintenance(s.view, s.deltas, s.db);
  (void)fresh;
  TablePrinter table({"index_size", "svc10_plus_index_s", "ivm_s"});
  for (size_t k : {size_t{0}, size_t{10}, size_t{100}, size_t{1000}}) {
    Stopwatch sw;
    CorrespondingSamples samples = CheckedValue(
        CleanViewSample(s.view, s.deltas, s.db,
                        CleanOptions{0.10, HashFamily::kFnv1a}),
        "clean");
    (void)samples;
    if (k > 0) {
      OutlierIndexSpec spec{"lineitem", "l_extendedprice", k, std::nullopt};
      OutlierIndex index = CheckedValue(
          OutlierIndex::Build(s.db, s.deltas, spec), "index");
      OutlierIndex::ViewOutliers outliers = CheckedValue(
          index.PushUpToView(s.view, s.deltas, &s.db), "pushup");
      (void)outliers;
    }
    table.AddRow({std::to_string(k), TablePrinter::Num(sw.ElapsedSeconds(), 3),
                  TablePrinter::Num(ivm_s, 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace svc

int main() {
  svc::bench::PartA();
  svc::bench::PartB();
  return 0;
}
