// Reproduces Figure 14 with the mini-batch cluster model (§7.6.2):
//  (a) throughput vs batch size for the V2- and V5-style views;
//  (b) the same with two concurrent maintenance threads (IVM + SVC):
//      small batches lose ~2x throughput, large batches much less.

#include "common/table_printer.h"
#include "minibatch/cluster_sim.h"

#include <cstdio>

int main() {
  using namespace svc;
  // V2 (bytes-transferred view) is cheaper per record than V5 (nested
  // region grouping).
  ClusterModel v2;
  v2.per_record_cost_s = 6.0e-7;
  ClusterModel v5;
  v5.per_record_cost_s = 9.5e-7;

  std::printf("-- Figure 14(a): throughput vs batch size (1 thread) --\n");
  TablePrinter a({"batch_gb", "V2_records_per_s", "V5_records_per_s"});
  for (double gb : {5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0, 200.0}) {
    a.AddRow({TablePrinter::Num(gb, 0),
              TablePrinter::Num(v2.Throughput(gb, 1), 0),
              TablePrinter::Num(v5.Throughput(gb, 1), 0)});
  }
  a.Print();

  std::printf(
      "\n-- Figure 14(b): throughput vs batch size (2 maintenance "
      "threads) --\n");
  TablePrinter b({"batch_gb", "V2_records_per_s", "V5_records_per_s",
                  "V2_drop", "V5_drop"});
  for (double gb : {5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0, 200.0}) {
    const double v2r = v2.Throughput(gb, 2);
    const double v5r = v5.Throughput(gb, 2);
    b.AddRow({TablePrinter::Num(gb, 0), TablePrinter::Num(v2r, 0),
              TablePrinter::Num(v5r, 0),
              TablePrinter::Num(v2.Throughput(gb, 1) / v2r, 2) + "x",
              TablePrinter::Num(v5.Throughput(gb, 1) / v5r, 2) + "x"});
  }
  b.Print();
  return 0;
}
