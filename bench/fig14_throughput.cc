// Reproduces Figure 14 with the mini-batch cluster model (§7.6.2):
//  (a) throughput vs batch size for the V2- and V5-style views;
//  (b) the same with two concurrent maintenance threads (IVM + SVC):
//      small batches lose ~2x throughput, large batches much less.
//  (c) the same model driven by a *measured* per-record cost: one IVM
//      maintenance pass of the TPCD join view through the real executor,
//      so executor speedups translate directly into modeled cluster
//      throughput. (bench/micro_ops is the canonical executor gate and
//      writes BENCH_executor.json.)

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "minibatch/cluster_sim.h"

#include <cstdio>

namespace {

/// Measures the single-node executor's maintenance cost per base record:
/// full IVM of the TPCD join view over every base row.
double MeasuredPerRecordCost() {
  using namespace svc;
  using namespace svc::bench;
  JoinViewFixture fx = MakeJoinViewFixture(0.015, 2.0, 0.10);
  size_t records = 0;
  for (const auto& name : fx.db.TableNames()) {
    records += (*fx.db.GetTable(name))->NumRows();
  }
  // Warm-up pass, then best of three.
  double best = 1e300;
  for (int rep = 0; rep < 4; ++rep) {
    auto [secs, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
    (void)fresh;
    if (rep > 0) best = std::min(best, secs);
  }
  std::printf("measured: %zu base records, %.3f s per IVM pass -> %.3g "
              "s/record\n\n",
              records, best, best / static_cast<double>(records));
  return best / static_cast<double>(records);
}

}  // namespace

int main() {
  using namespace svc;
  // V2 (bytes-transferred view) is cheaper per record than V5 (nested
  // region grouping).
  ClusterModel v2;
  v2.per_record_cost_s = 6.0e-7;
  ClusterModel v5;
  v5.per_record_cost_s = 9.5e-7;

  std::printf("-- Figure 14(a): throughput vs batch size (1 thread) --\n");
  TablePrinter a({"batch_gb", "V2_records_per_s", "V5_records_per_s"});
  for (double gb : {5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0, 200.0}) {
    a.AddRow({TablePrinter::Num(gb, 0),
              TablePrinter::Num(v2.Throughput(gb, 1), 0),
              TablePrinter::Num(v5.Throughput(gb, 1), 0)});
  }
  a.Print();

  std::printf(
      "\n-- Figure 14(b): throughput vs batch size (2 maintenance "
      "threads) --\n");
  TablePrinter b({"batch_gb", "V2_records_per_s", "V5_records_per_s",
                  "V2_drop", "V5_drop"});
  for (double gb : {5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0, 200.0}) {
    const double v2r = v2.Throughput(gb, 2);
    const double v5r = v5.Throughput(gb, 2);
    b.AddRow({TablePrinter::Num(gb, 0), TablePrinter::Num(v2r, 0),
              TablePrinter::Num(v5r, 0),
              TablePrinter::Num(v2.Throughput(gb, 1) / v2r, 2) + "x",
              TablePrinter::Num(v5.Throughput(gb, 1) / v5r, 2) + "x"});
  }
  b.Print();

  std::printf(
      "\n-- Figure 14(c): throughput with the executor's measured "
      "per-record cost --\n");
  ClusterModel measured;
  measured.per_record_cost_s = MeasuredPerRecordCost();
  TablePrinter c({"batch_gb", "records_per_s_1thr", "records_per_s_2thr"});
  for (double gb : {5.0, 20.0, 80.0, 200.0}) {
    c.AddRow({TablePrinter::Num(gb, 0),
              TablePrinter::Num(measured.Throughput(gb, 1), 0),
              TablePrinter::Num(measured.Throughput(gb, 2), 0)});
  }
  c.Print();
  return 0;
}
