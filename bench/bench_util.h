#ifndef SVC_BENCH_BENCH_UTIL_H_
#define SVC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/estimator.h"
#include "relational/executor.h"
#include "sample/cleaner.h"
#include "tpcd/tpcd_gen.h"
#include "tpcd/tpcd_views.h"
#include "view/maintenance.h"

namespace svc {
namespace bench {

/// Aborts with a message when a Status is not OK (benchmarks have no
/// recovery path).
inline void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 s.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T CheckedValue(Result<T> r, const char* what) {
  CheckOk(r.status(), what);
  return std::move(r).value();
}

/// Wall-clock seconds for `fn`.
inline double TimeSeconds(const std::function<void()>& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

/// Executes the full maintenance strategy M (IVM or recompute) and returns
/// (seconds, fresh table).
inline std::pair<double, Table> TimeFullMaintenance(
    const MaterializedView& view, const DeltaSet& deltas,
    const Database& db) {
  MaintenancePlan plan = CheckedValue(BuildMaintenancePlan(view, deltas, db),
                                      "BuildMaintenancePlan");
  Stopwatch sw;
  Table fresh = CheckedValue(ExecutePlan(*plan.plan, db), "maintenance");
  const double secs = sw.ElapsedSeconds();
  CheckOk(fresh.SetPrimaryKey(view.stored_pk()), "fresh pk");
  return {secs, std::move(fresh)};
}

/// Executes SVC sample cleaning and returns (seconds, samples).
inline std::pair<double, CorrespondingSamples> TimeSvcCleaning(
    const MaterializedView& view, const DeltaSet& deltas, const Database& db,
    double ratio, PushdownReport* report = nullptr) {
  CleanOptions opts{ratio, HashFamily::kFnv1a};
  Stopwatch sw;
  CorrespondingSamples samples = CheckedValue(
      CleanViewSample(view, deltas, db, opts, report), "CleanViewSample");
  return {sw.ElapsedSeconds(), std::move(samples)};
}

/// Relative-error summary of an estimated grouped result against the
/// per-group truth. Groups missing from the estimate count as 100% error
/// (the paper's stale baseline misses new groups the same way).
struct ErrorStats {
  double median = 0, q75 = 0, max = 0, mean = 0;
  size_t groups = 0;
};

inline ErrorStats CompareGrouped(const GroupedResult& truth,
                                 const GroupedResult& estimate) {
  std::vector<double> errors;
  std::vector<size_t> key_idx;
  for (size_t c = 0; c < truth.group_columns.size(); ++c) key_idx.push_back(c);
  for (size_t g = 0; g < truth.group_keys.size(); ++g) {
    const double want = truth.estimates[g].value;
    if (std::fabs(want) < 1e-12) continue;  // undefined relative error
    const std::string key = EncodeRowKey(truth.group_keys[g], key_idx);
    const Estimate* e = estimate.Find(key);
    const double got = e ? e->value : 0.0;
    errors.push_back(std::fabs(got - want) / std::fabs(want));
  }
  ErrorStats stats;
  stats.groups = errors.size();
  if (errors.empty()) return stats;
  std::sort(errors.begin(), errors.end());
  stats.median = errors[errors.size() / 2];
  stats.q75 = errors[errors.size() * 3 / 4];
  stats.max = errors.back();
  for (double e : errors) stats.mean += e;
  stats.mean /= errors.size();
  return stats;
}

/// The three methods' grouped answers for one view query: exact stale,
/// SVC+AQP, SVC+CORR — each compared against the fresh truth.
struct MethodErrors {
  ErrorStats stale, aqp, corr;
};

inline MethodErrors EvaluateQuery(const Table& stale_view, const Table& fresh,
                                  const CorrespondingSamples& samples,
                                  const ViewQuery& vq) {
  MethodErrors out;
  GroupedResult truth = CheckedValue(
      ExactAggregateGrouped(fresh, vq.group_by, vq.query), "truth");
  GroupedResult stale = CheckedValue(
      ExactAggregateGrouped(stale_view, vq.group_by, vq.query), "stale");
  GroupedResult aqp = CheckedValue(
      SvcAqpEstimateGrouped(samples, vq.group_by, vq.query), "aqp");
  GroupedResult corr = CheckedValue(
      SvcCorrEstimateGrouped(stale_view, samples, vq.group_by, vq.query),
      "corr");
  out.stale = CompareGrouped(truth, stale);
  out.aqp = CompareGrouped(truth, aqp);
  out.corr = CompareGrouped(truth, corr);
  return out;
}

/// Shared fixture: TPCD database + join view + pending update stream.
struct JoinViewFixture {
  Database db;
  MaterializedView view;
  DeltaSet deltas;
};

inline JoinViewFixture MakeJoinViewFixture(double scale_factor, double zipf_z,
                                           double update_fraction,
                                           uint64_t update_seed = 7) {
  TpcdConfig cfg;
  cfg.scale_factor = scale_factor;
  cfg.zipf_z = zipf_z;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd gen");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("join_view", TpcdJoinViewDef(), &db,
                               TpcdJoinViewSamplingKey()),
      "join view");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = update_fraction;
  ucfg.seed = update_seed;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register deltas");
  return {std::move(db), std::move(view), std::move(deltas)};
}

}  // namespace bench
}  // namespace svc

#endif  // SVC_BENCH_BENCH_UTIL_H_
