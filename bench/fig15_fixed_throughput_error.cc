// Reproduces Figure 15: at a fixed cluster throughput, the maximum query
// error during a maintenance period for IVM alone vs IVM+SVC as a function
// of the SVC sampling ratio. Larger samples estimate better but refresh
// slower, yielding an interior-optimal ratio — the paper found ~3% for V2
// and ~6% for V5.

#include "common/table_printer.h"
#include "minibatch/cluster_sim.h"

#include <cstdio>

namespace {

void Sweep(const char* name, svc::ClusterModel model, double target_rate) {
  using svc::TablePrinter;
  // IVM alone can use the smallest batch that sustains the target; running
  // SVC concurrently forces larger IVM batches (thread contention).
  const double ivm_only_batch = model.MinBatchForThroughput(target_rate, 1);
  const double ivm_svc_batch = model.MinBatchForThroughput(target_rate, 2);
  std::printf(
      "\n-- Figure 15 (%s): fixed throughput %.0f records/s -> IVM batch "
      "%.0fGB alone, %.0fGB with SVC --\n",
      name, target_rate, ivm_only_batch, ivm_svc_batch);
  const double ivm_err = model.MaxErrorIvmOnly(ivm_only_batch);
  TablePrinter t({"sampling_ratio", "ivm_svc_max_err", "ivm_only_max_err"});
  double best = 1e18, best_m = 0;
  for (double m : {0.01, 0.02, 0.03, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20}) {
    const double err = model.MaxErrorWithSvc(ivm_svc_batch,
                                             ivm_svc_batch / 4, m);
    if (err < best) {
      best = err;
      best_m = m;
    }
    t.AddRow({TablePrinter::Num(m, 2), TablePrinter::Pct(err, 2),
              TablePrinter::Pct(ivm_err, 2)});
  }
  t.Print();
  std::printf(
      "optimal ratio %.2f: IVM+SVC %.2f%% vs IVM alone %.2f%% (%.1fx more "
      "accurate)\n",
      best_m, 100 * best, 100 * ivm_err, ivm_err / best);
}

}  // namespace

int main() {
  svc::ClusterModel v2;
  v2.per_record_cost_s = 6.0e-7;
  svc::ClusterModel v5;
  v5.per_record_cost_s = 9.5e-7;
  Sweep("V2", v2, 700000);
  Sweep("V5", v5, 500000);
  return 0;
}
