// Serving-layer companion to Figure 14: drives the fig14-style
// ingest/query/refresh workload through *SQL sessions* (svc_shell's
// SqlSession) and through direct C++ engine calls, sequentially and with
// N concurrent sessions, so the same SQL scripts that document scenarios
// double as throughput workloads.
//
// Each session owns an independent SvcEngine (shared-nothing, as in the
// paper's partitioned serving model), so concurrent sessions measure how
// the process scales when every session has its own data shard. The SQL vs
// direct comparison isolates the serving-layer overhead: parse + route +
// result rendering on top of the identical clean-sample/estimate path.
//
// --shared adds the snapshot-isolated SharedEngine mode: N reader sessions
// issue SVC SELECTs against ONE engine while a writer session concurrently
// ingests delta batches and runs REFRESH commits. Readers run on immutable
// snapshots and never take the writer lock, so reader throughput with the
// concurrent refresher is compared against the same readers with the
// writer idle — the gap is the copy-on-write commit cost the readers
// *indirectly* pay (cache pressure), not blocking.
//
// Flags: --rows N (base log rows, default 20000)
//        --sessions N (concurrent sessions, default 4)
//        --iters N (ingest+query rounds per session, default 15)
//        --batch N (delta rows per round, default 100)
//        --shared (also run the shared-engine reader/refresher mode)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/shared_engine.h"
#include "sql/planner.h"
#include "sql/session.h"

namespace {

using namespace svc;

constexpr char kViewSql[] =
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

Database BuildBaseDb(size_t log_rows, uint64_t seed) {
  Database db;
  Table log(Schema({{"", "sessionId", ValueType::kInt},
                    {"", "videoId", ValueType::kInt}}));
  bench::CheckOk(log.SetPrimaryKey({"sessionId"}), "log pk");
  Table video(Schema({{"", "videoId", ValueType::kInt},
                      {"", "ownerId", ValueType::kInt},
                      {"", "duration", ValueType::kDouble}}));
  bench::CheckOk(video.SetPrimaryKey({"videoId"}), "video pk");
  Rng rng(seed);
  Zipfian popularity(200, 1.1);
  for (int64_t v = 1; v <= 200; ++v) {
    bench::CheckOk(video.Insert({Value::Int(v), Value::Int(100 + v % 11),
                                 Value::Double(rng.Uniform(0.2, 3.0))}),
                   "video insert");
  }
  for (size_t s = 0; s < log_rows; ++s) {
    bench::CheckOk(
        log.Insert({Value::Int(static_cast<int64_t>(s)),
                    Value::Int(static_cast<int64_t>(popularity.Next(&rng)))}),
        "log insert");
  }
  bench::CheckOk(db.CreateTable("Log", std::move(log)), "create Log");
  bench::CheckOk(db.CreateTable("Video", std::move(video)), "create Video");
  return db;
}

struct WorkloadParams {
  size_t rows = 20000;
  int sessions = 4;
  int iters = 15;
  int batch = 100;
};

/// One session's workload via the SQL layer. Returns statements executed.
size_t RunSqlSession(const WorkloadParams& p, uint64_t seed) {
  SqlSession session(BuildBaseDb(p.rows, seed));
  bench::CheckOk(
      session.Execute(std::string("CREATE MATERIALIZED VIEW visitView AS ") +
                      kViewSql)
          .status(),
      "create view (sql)");
  size_t statements = 1;
  Rng rng(seed ^ 0x5e551055);
  Zipfian popularity(200, 1.1);
  int64_t next_id = static_cast<int64_t>(p.rows);
  for (int it = 0; it < p.iters; ++it) {
    std::string insert = "INSERT INTO Log VALUES ";
    for (int b = 0; b < p.batch; ++b) {
      if (b > 0) insert += ", ";
      insert += "(" + std::to_string(next_id++) + ", " +
                std::to_string(popularity.Next(&rng)) + ")";
    }
    bench::CheckOk(session.Execute(insert).status(), "insert (sql)");
    auto q = session.Execute(
        "SELECT COUNT(1) FROM visitView WHERE visitCount > 100 "
        "WITH SVC(ratio=0.1, mode=corr)");
    bench::CheckOk(q.status(), "svc select (sql)");
    statements += 2;
    if ((it + 1) % 5 == 0) {
      bench::CheckOk(session.Execute("REFRESH VIEW visitView").status(),
                     "refresh (sql)");
      ++statements;
    }
  }
  return statements;
}

/// The identical workload via direct engine calls (no SQL text).
size_t RunDirectSession(const WorkloadParams& p, uint64_t seed) {
  SvcEngine engine(BuildBaseDb(p.rows, seed));
  PlanPtr def =
      bench::CheckedValue(SqlToPlan(kViewSql, *engine.db()), "plan view");
  bench::CheckOk(engine.CreateView("visitView", std::move(def)),
                 "create view (direct)");
  size_t ops = 1;
  Rng rng(seed ^ 0x5e551055);
  Zipfian popularity(200, 1.1);
  int64_t next_id = static_cast<int64_t>(p.rows);
  AggregateQuery q = AggregateQuery::Count(
      Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(100)));
  SvcQueryOptions opts;
  opts.ratio = 0.1;
  opts.mode = EstimatorMode::kCorr;
  for (int it = 0; it < p.iters; ++it) {
    for (int b = 0; b < p.batch; ++b) {
      bench::CheckOk(
          engine.InsertRecord(
              "Log", {Value::Int(next_id++),
                      Value::Int(static_cast<int64_t>(popularity.Next(&rng)))}),
          "insert (direct)");
    }
    bench::CheckedValue(engine.Query("visitView", q, opts),
                        "query (direct)");
    ops += 2;
    if ((it + 1) % 5 == 0) {
      bench::CheckOk(engine.MaintainAll(), "refresh (direct)");
      ++ops;
    }
  }
  return ops;
}

/// Shared-engine mode: `readers` SQL sessions over one SharedEngine, each
/// issuing `queries` SVC SELECTs; optionally a writer session concurrently
/// ingesting `batch`-row INSERTs and REFRESHing every 5th batch until the
/// readers finish. Returns reader wall seconds; outputs the commit counts.
struct SharedRunStats {
  double reader_wall = 0;
  size_t reader_queries = 0;
  size_t ingest_commits = 0;
  size_t refresh_commits = 0;
};

SharedRunStats RunSharedWorkload(const WorkloadParams& p, int readers,
                                 bool with_writer, bool cache_enabled) {
  auto shared = std::make_shared<SharedEngine>(BuildBaseDb(p.rows, 1));
  if (!cache_enabled) {
    // Disable the cleaned-sample cache on the head; every fork a commit
    // publishes inherits the flag, so all snapshots serve cold.
    bench::CheckOk(shared->Commit([](SvcEngine* e) {
      e->set_sample_cache_enabled(false);
      return Status::OK();
    }), "disable cache");
  }
  {
    SqlSession admin(shared);
    bench::CheckOk(
        admin
            .Execute(std::string("CREATE MATERIALIZED VIEW visitView AS ") +
                     kViewSql)
            .status(),
        "create view (shared)");
    // Make the view stale up-front in BOTH modes: a fresh view takes the
    // trivial no-op cleaning path, which would make the idle baseline
    // measure cheaper queries, not less contention.
    Rng rng(0xba5e11);
    Zipfian popularity(200, 1.1);
    std::string insert = "INSERT INTO Log VALUES ";
    for (int b = 0; b < p.batch; ++b) {
      if (b > 0) insert += ", ";
      insert += "(" + std::to_string(static_cast<int64_t>(p.rows) + b) +
                ", " + std::to_string(popularity.Next(&rng)) + ")";
    }
    bench::CheckOk(admin.Execute(insert).status(), "stale seed (shared)");
  }
  const size_t queries_per_reader = static_cast<size_t>(p.iters) * 4;
  std::atomic<bool> done{false};
  std::atomic<size_t> executed{0};

  std::thread writer;
  SharedRunStats stats;
  if (with_writer) {
    writer = std::thread([&] {
      SqlSession session(shared);
      Rng rng(0x5e551055);
      Zipfian popularity(200, 1.1);
      // Ids continue after the stale-seed batch ingested above.
      int64_t next_id = static_cast<int64_t>(p.rows) + p.batch;
      size_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::string insert = "INSERT INTO Log VALUES ";
        for (int b = 0; b < p.batch; ++b) {
          if (b > 0) insert += ", ";
          insert += "(" + std::to_string(next_id++) + ", " +
                    std::to_string(popularity.Next(&rng)) + ")";
        }
        bench::CheckOk(session.Execute(insert).status(), "insert (shared)");
        ++stats.ingest_commits;
        if (++round % 5 == 0) {
          bench::CheckOk(session.Execute("REFRESH VIEW visitView").status(),
                         "refresh (shared)");
          ++stats.refresh_commits;
        }
      }
    });
  }

  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&] {
      SqlSession session(shared);
      for (size_t i = 0; i < queries_per_reader; ++i) {
        auto q = session.Execute(
            "SELECT COUNT(1) FROM visitView WHERE visitCount > 100 "
            "WITH SVC(ratio=0.1, mode=corr)");
        bench::CheckOk(q.status(), "svc select (shared reader)");
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  stats.reader_wall = sw.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  stats.reader_queries = executed.load();
  return stats;
}

/// Runs `n` concurrent copies of `fn` and returns wall seconds.
template <typename Fn>
double TimeConcurrent(int n, Fn fn) {
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([i, &fn] { fn(static_cast<uint64_t>(i) + 1); });
  }
  for (auto& t : threads) t.join();
  return sw.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadParams p;
  bool run_shared = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* what) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return std::atol(argv[++i]);
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      p.rows = static_cast<size_t>(next("--rows"));
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      p.sessions = static_cast<int>(next("--sessions"));
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      p.iters = static_cast<int>(next("--iters"));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      p.batch = static_cast<int>(next("--batch"));
    } else if (std::strcmp(argv[i], "--shared") == 0) {
      run_shared = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "-- SQL serving layer vs direct engine API "
      "(rows=%zu iters=%d batch=%d) --\n",
      p.rows, p.iters, p.batch);

  // Warm-up (allocator, page cache), then measure.
  (void)RunDirectSession({p.rows / 4, 1, 2, p.batch}, 99);

  size_t sql_ops = 0, direct_ops = 0;
  const double direct_1 =
      bench::TimeSeconds([&] { direct_ops = RunDirectSession(p, 1); });
  const double sql_1 =
      bench::TimeSeconds([&] { sql_ops = RunSqlSession(p, 1); });

  TablePrinter t({"path", "sessions", "ops", "wall_s", "ops_per_s",
                  "overhead"});
  t.AddRow({"direct", "1", std::to_string(direct_ops),
            TablePrinter::Num(direct_1, 3),
            TablePrinter::Num(static_cast<double>(direct_ops) / direct_1, 1),
            "--"});
  t.AddRow({"sql", "1", std::to_string(sql_ops),
            TablePrinter::Num(sql_1, 3),
            TablePrinter::Num(static_cast<double>(sql_ops) / sql_1, 1),
            TablePrinter::Pct(sql_1 / direct_1 - 1.0, 1)});

  if (p.sessions > 1) {
    const double direct_n = TimeConcurrent(
        p.sessions, [&](uint64_t seed) { RunDirectSession(p, seed); });
    const double sql_n = TimeConcurrent(
        p.sessions, [&](uint64_t seed) { RunSqlSession(p, seed); });
    const double dn_ops = static_cast<double>(direct_ops * p.sessions);
    const double sn_ops = static_cast<double>(sql_ops * p.sessions);
    t.AddRow({"direct", std::to_string(p.sessions),
              std::to_string(static_cast<size_t>(dn_ops)),
              TablePrinter::Num(direct_n, 3),
              TablePrinter::Num(dn_ops / direct_n, 1), "--"});
    t.AddRow({"sql", std::to_string(p.sessions),
              std::to_string(static_cast<size_t>(sn_ops)),
              TablePrinter::Num(sql_n, 3),
              TablePrinter::Num(sn_ops / sql_n, 1),
              TablePrinter::Pct(sql_n / direct_n - 1.0, 1)});
  }
  t.Print();
  std::printf(
      "\noverhead = SQL wall time over direct engine calls for the identical "
      "workload\n(parse + route + render; expected near zero — the "
      "clean-sample/estimate path dominates).\nConcurrent sessions are "
      "shared-nothing; scaling is bounded by physical cores\n(see "
      "docs/PERF.md \"Measured scaling\").\n");

  if (run_shared) {
    std::printf(
        "\n-- Shared engine: %d reader session(s), snapshot-isolated --\n",
        p.sessions);
    TablePrinter st({"writer", "cache", "readers", "queries", "wall_s",
                     "queries_per_s", "ingests", "refreshes"});
    for (const bool cache_enabled : {true, false}) {
      const SharedRunStats idle =
          RunSharedWorkload(p, p.sessions, false, cache_enabled);
      const SharedRunStats busy =
          RunSharedWorkload(p, p.sessions, true, cache_enabled);
      const char* cache = cache_enabled ? "on" : "off";
      st.AddRow({"idle", cache, std::to_string(p.sessions),
                 std::to_string(idle.reader_queries),
                 TablePrinter::Num(idle.reader_wall, 3),
                 TablePrinter::Num(
                     static_cast<double>(idle.reader_queries) /
                         idle.reader_wall, 1),
                 "0", "0"});
      st.AddRow({"refreshing", cache, std::to_string(p.sessions),
                 std::to_string(busy.reader_queries),
                 TablePrinter::Num(busy.reader_wall, 3),
                 TablePrinter::Num(
                     static_cast<double>(busy.reader_queries) /
                         busy.reader_wall, 1),
                 std::to_string(busy.ingest_commits),
                 std::to_string(busy.refresh_commits)});
    }
    st.Print();
    std::printf(
        "\nReaders run on immutable snapshots and never take the writer "
        "lock: the\nidle-vs-refreshing gap is copy-on-write commit work "
        "competing for cores/cache,\nnot blocking (torn-read freedom is "
        "asserted by tests/test_concurrent_engine.cc).\ncache=on shares one "
        "cleaning run per (snapshot, ratio) across all readers;\ncache=off "
        "re-cleans per query (the pre-cache behavior).\n");
  }
  return 0;
}
