// Serving-layer companion to Figure 14: drives the fig14-style
// ingest/query/refresh workload through *SQL sessions* (svc_shell's
// SqlSession) and through direct C++ engine calls, sequentially and with
// N concurrent sessions, so the same SQL scripts that document scenarios
// double as throughput workloads.
//
// Each session owns an independent SvcEngine (shared-nothing, as in the
// paper's partitioned serving model), so concurrent sessions measure how
// the process scales when every session has its own data shard. The SQL vs
// direct comparison isolates the serving-layer overhead: parse + route +
// result rendering on top of the identical clean-sample/estimate path.
//
// --shared adds the snapshot-isolated SharedEngine mode: N reader sessions
// issue SVC SELECTs against ONE engine while a writer session concurrently
// ingests delta batches and runs REFRESH commits. Readers run on immutable
// snapshots and never take the writer lock, so reader throughput with the
// concurrent refresher is compared against the same readers with the
// writer idle — the gap is the copy-on-write commit cost the readers
// *indirectly* pay (cache pressure), not blocking.
//
// --net serves the same engine through an in-process svc_served
// (SvcServer) on a loopback socket and drives it with N closed-loop
// SvcClient threads: the full network path — framing, CRC, serde encode /
// decode, session pool — measured as throughput and tail latency, with
// text Query vs prepared Execute as separate rows (the prepared delta is
// the parse + plan cost the AST cache removes; the server's
// statements_parsed counter proves Executes never touch the parser).
//
// Flags: --rows N (base log rows, default 20000)
//        --sessions N (concurrent sessions, default 4)
//        --iters N (ingest+query rounds per session, default 15)
//        --batch N (delta rows per round, default 100)
//        --shared (also run the shared-engine reader/refresher mode)
//        --net (also run the network closed-loop mode)
//        --net-queries N (requests per client in --net, default 400)
//        --net-chaos (with --net: also run the fault-injected leg — a
//                     degrade-enabled server, retrying clients, and a
//                     dropped response re-armed throughout the run; the
//                     retry/reconnect/replay/degrade counters prove the
//                     robustness machinery ran, and every request still
//                     has to succeed)
//        --merge-json PATH (append "fig14_net" — and with --net-chaos,
//                           "fig14_chaos" — objects into an existing
//                           BENCH json artifact)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/shared_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault.h"
#include "sql/planner.h"
#include "sql/session.h"

namespace {

using namespace svc;

constexpr char kViewSql[] =
    "SELECT Log.videoId, COUNT(1) AS visitCount "
    "FROM Log, Video WHERE Log.videoId = Video.videoId "
    "GROUP BY Log.videoId";

Database BuildBaseDb(size_t log_rows, uint64_t seed) {
  Database db;
  Table log(Schema({{"", "sessionId", ValueType::kInt},
                    {"", "videoId", ValueType::kInt}}));
  bench::CheckOk(log.SetPrimaryKey({"sessionId"}), "log pk");
  Table video(Schema({{"", "videoId", ValueType::kInt},
                      {"", "ownerId", ValueType::kInt},
                      {"", "duration", ValueType::kDouble}}));
  bench::CheckOk(video.SetPrimaryKey({"videoId"}), "video pk");
  Rng rng(seed);
  Zipfian popularity(200, 1.1);
  for (int64_t v = 1; v <= 200; ++v) {
    bench::CheckOk(video.Insert({Value::Int(v), Value::Int(100 + v % 11),
                                 Value::Double(rng.Uniform(0.2, 3.0))}),
                   "video insert");
  }
  for (size_t s = 0; s < log_rows; ++s) {
    bench::CheckOk(
        log.Insert({Value::Int(static_cast<int64_t>(s)),
                    Value::Int(static_cast<int64_t>(popularity.Next(&rng)))}),
        "log insert");
  }
  bench::CheckOk(db.CreateTable("Log", std::move(log)), "create Log");
  bench::CheckOk(db.CreateTable("Video", std::move(video)), "create Video");
  return db;
}

struct WorkloadParams {
  size_t rows = 20000;
  int sessions = 4;
  int iters = 15;
  int batch = 100;
};

/// One session's workload via the SQL layer. Returns statements executed.
size_t RunSqlSession(const WorkloadParams& p, uint64_t seed) {
  SqlSession session(BuildBaseDb(p.rows, seed));
  bench::CheckOk(
      session.Execute(std::string("CREATE MATERIALIZED VIEW visitView AS ") +
                      kViewSql)
          .status(),
      "create view (sql)");
  size_t statements = 1;
  Rng rng(seed ^ 0x5e551055);
  Zipfian popularity(200, 1.1);
  int64_t next_id = static_cast<int64_t>(p.rows);
  for (int it = 0; it < p.iters; ++it) {
    std::string insert = "INSERT INTO Log VALUES ";
    for (int b = 0; b < p.batch; ++b) {
      if (b > 0) insert += ", ";
      insert += "(" + std::to_string(next_id++) + ", " +
                std::to_string(popularity.Next(&rng)) + ")";
    }
    bench::CheckOk(session.Execute(insert).status(), "insert (sql)");
    auto q = session.Execute(
        "SELECT COUNT(1) FROM visitView WHERE visitCount > 100 "
        "WITH SVC(ratio=0.1, mode=corr)");
    bench::CheckOk(q.status(), "svc select (sql)");
    statements += 2;
    if ((it + 1) % 5 == 0) {
      bench::CheckOk(session.Execute("REFRESH VIEW visitView").status(),
                     "refresh (sql)");
      ++statements;
    }
  }
  return statements;
}

/// The identical workload via direct engine calls (no SQL text).
size_t RunDirectSession(const WorkloadParams& p, uint64_t seed) {
  SvcEngine engine(BuildBaseDb(p.rows, seed));
  PlanPtr def =
      bench::CheckedValue(SqlToPlan(kViewSql, *engine.db()), "plan view");
  bench::CheckOk(engine.CreateView("visitView", std::move(def)),
                 "create view (direct)");
  size_t ops = 1;
  Rng rng(seed ^ 0x5e551055);
  Zipfian popularity(200, 1.1);
  int64_t next_id = static_cast<int64_t>(p.rows);
  AggregateQuery q = AggregateQuery::Count(
      Expr::Gt(Expr::Col("visitCount"), Expr::LitInt(100)));
  SvcQueryOptions opts;
  opts.ratio = 0.1;
  opts.mode = EstimatorMode::kCorr;
  for (int it = 0; it < p.iters; ++it) {
    for (int b = 0; b < p.batch; ++b) {
      bench::CheckOk(
          engine.InsertRecord(
              "Log", {Value::Int(next_id++),
                      Value::Int(static_cast<int64_t>(popularity.Next(&rng)))}),
          "insert (direct)");
    }
    bench::CheckedValue(engine.Query("visitView", q, opts),
                        "query (direct)");
    ops += 2;
    if ((it + 1) % 5 == 0) {
      bench::CheckOk(engine.MaintainAll(), "refresh (direct)");
      ++ops;
    }
  }
  return ops;
}

/// Shared-engine mode: `readers` SQL sessions over one SharedEngine, each
/// issuing `queries` SVC SELECTs; optionally a writer session concurrently
/// ingesting `batch`-row INSERTs and REFRESHing every 5th batch until the
/// readers finish. Returns reader wall seconds; outputs the commit counts.
struct SharedRunStats {
  double reader_wall = 0;
  size_t reader_queries = 0;
  size_t ingest_commits = 0;
  size_t refresh_commits = 0;
};

SharedRunStats RunSharedWorkload(const WorkloadParams& p, int readers,
                                 bool with_writer, bool cache_enabled) {
  auto shared = std::make_shared<SharedEngine>(BuildBaseDb(p.rows, 1));
  if (!cache_enabled) {
    // Disable the cleaned-sample cache on the head; every fork a commit
    // publishes inherits the flag, so all snapshots serve cold.
    bench::CheckOk(shared->Commit([](SvcEngine* e) {
      e->set_sample_cache_enabled(false);
      return Status::OK();
    }), "disable cache");
  }
  {
    SqlSession admin(shared);
    bench::CheckOk(
        admin
            .Execute(std::string("CREATE MATERIALIZED VIEW visitView AS ") +
                     kViewSql)
            .status(),
        "create view (shared)");
    // Make the view stale up-front in BOTH modes: a fresh view takes the
    // trivial no-op cleaning path, which would make the idle baseline
    // measure cheaper queries, not less contention.
    Rng rng(0xba5e11);
    Zipfian popularity(200, 1.1);
    std::string insert = "INSERT INTO Log VALUES ";
    for (int b = 0; b < p.batch; ++b) {
      if (b > 0) insert += ", ";
      insert += "(" + std::to_string(static_cast<int64_t>(p.rows) + b) +
                ", " + std::to_string(popularity.Next(&rng)) + ")";
    }
    bench::CheckOk(admin.Execute(insert).status(), "stale seed (shared)");
  }
  const size_t queries_per_reader = static_cast<size_t>(p.iters) * 4;
  std::atomic<bool> done{false};
  std::atomic<size_t> executed{0};

  std::thread writer;
  SharedRunStats stats;
  if (with_writer) {
    writer = std::thread([&] {
      SqlSession session(shared);
      Rng rng(0x5e551055);
      Zipfian popularity(200, 1.1);
      // Ids continue after the stale-seed batch ingested above.
      int64_t next_id = static_cast<int64_t>(p.rows) + p.batch;
      size_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        std::string insert = "INSERT INTO Log VALUES ";
        for (int b = 0; b < p.batch; ++b) {
          if (b > 0) insert += ", ";
          insert += "(" + std::to_string(next_id++) + ", " +
                    std::to_string(popularity.Next(&rng)) + ")";
        }
        bench::CheckOk(session.Execute(insert).status(), "insert (shared)");
        ++stats.ingest_commits;
        if (++round % 5 == 0) {
          bench::CheckOk(session.Execute("REFRESH VIEW visitView").status(),
                         "refresh (shared)");
          ++stats.refresh_commits;
        }
      }
    });
  }

  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&] {
      SqlSession session(shared);
      for (size_t i = 0; i < queries_per_reader; ++i) {
        auto q = session.Execute(
            "SELECT COUNT(1) FROM visitView WHERE visitCount > 100 "
            "WITH SVC(ratio=0.1, mode=corr)");
        bench::CheckOk(q.status(), "svc select (shared reader)");
        executed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  stats.reader_wall = sw.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();
  stats.reader_queries = executed.load();
  return stats;
}

// ---- --net: closed-loop clients over a loopback SvcServer -------------------

struct NetRunStats {
  double wall = 0;            ///< wall seconds for all clients
  size_t requests = 0;        ///< total requests answered
  uint64_t parses = 0;        ///< server statements_parsed delta
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
};

double PercentileMs(std::vector<double>* lat_s, double q) {
  if (lat_s->empty()) return 0;
  const size_t idx = std::min(
      lat_s->size() - 1,
      static_cast<size_t>(q * static_cast<double>(lat_s->size())));
  std::nth_element(lat_s->begin(),
                   lat_s->begin() + static_cast<ptrdiff_t>(idx),
                   lat_s->end());
  return (*lat_s)[idx] * 1e3;
}

/// `clients` closed-loop connections each issuing `queries` point lookups
/// against the served view — as text Query frames (parse + plan per
/// request) or as one Prepare + `queries` Execute frames (AST cached
/// server-side, `?` re-bound per request).
NetRunStats RunNetWorkload(SvcServer* server, int clients, int queries,
                           bool prepared) {
  const uint64_t parses_before = server->stats().statements_parsed;
  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server->port();
      copts.client_name = "fig14_net";
      auto client = bench::CheckedValue(SvcClient::Connect(copts),
                                        "connect (net)");
      std::vector<double>& lat = latencies[c];
      lat.reserve(queries);
      SvcClient::Prepared stmt;
      if (prepared) {
        stmt = bench::CheckedValue(
            client->Prepare("SELECT videoId, visitCount FROM visitView "
                            "WHERE visitCount > ?"),
            "prepare (net)");
      }
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int q = 0; q < queries; ++q) {
        const int64_t threshold = static_cast<int64_t>(rng.Next() % 200);
        Stopwatch sw;
        if (prepared) {
          bench::CheckOk(
              client->ExecutePrepared(stmt, {Value::Int(threshold)}).status(),
              "execute (net)");
        } else {
          bench::CheckOk(
              client
                  ->Execute("SELECT videoId, visitCount FROM visitView "
                            "WHERE visitCount > " +
                            std::to_string(threshold))
                  .status(),
              "query (net)");
        }
        lat.push_back(sw.ElapsedSeconds());
      }
    });
  }
  for (auto& t : threads) t.join();
  NetRunStats stats;
  stats.wall = wall.ElapsedSeconds();
  std::vector<double> all;
  for (auto& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  stats.requests = all.size();
  stats.parses = server->stats().statements_parsed - parses_before;
  stats.p50_ms = PercentileMs(&all, 0.50);
  stats.p95_ms = PercentileMs(&all, 0.95);
  stats.p99_ms = PercentileMs(&all, 0.99);
  return stats;
}

// ---- --net-chaos: the same loop under injected faults + degradation --------

struct ChaosRunStats {
  double wall = 0;
  size_t requests = 0;      ///< responses the clients accepted (all of them)
  uint64_t retries = 0;     ///< client re-sends after retryable failures
  uint64_t reconnects = 0;  ///< transport re-establishments after Connect
  uint64_t faults = 0;      ///< server net_faults_injected delta
  uint64_t replays = 0;     ///< server idem_replays delta (dedup hits)
  uint64_t degraded = 0;    ///< server degraded_admissions delta
  uint64_t shed = 0;        ///< server overload_rejections delta
};

/// The closed loop again, but hostile: the server runs in --degrade mode
/// with max_inflight=1 (so concurrent SVC queries are admitted degraded and
/// everything else is shed-and-retried), the clients retry with idempotency
/// tokens, and a chaos thread keeps one conn.drop_response armed for the
/// whole run. Every request must still come back successfully — the
/// counters quantify how much robustness machinery that took.
ChaosRunStats RunChaosNetWorkload(SvcServer* server, int clients,
                                  int queries) {
  const ServerStats before = server->stats();
  std::atomic<bool> done{false};
  std::atomic<uint64_t> client_retries{0}, client_reconnects{0};

  // Re-arm a dropped response every ~15 answered frames. ShouldTrigger
  // fires exactly once per Arm, so the thread watches the server's fault
  // counter and re-arms after each fire.
  std::thread chaos([&] {
    uint64_t fired = before.net_faults_injected;
    FaultInjector::Net().Arm("conn.drop_response", 15);
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = server->stats().net_faults_injected;
      if (now > fired) {
        fired = now;
        FaultInjector::Net().Arm("conn.drop_response", 15);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FaultInjector::Net().Disarm();
  });

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  std::atomic<size_t> answered{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientOptions copts;
      copts.port = server->port();
      copts.client_name = "fig14_chaos";
      copts.max_retries = 16;
      copts.recv_timeout_ms = 2000;
      copts.backoff_initial_ms = 2;
      copts.backoff_max_ms = 20;
      copts.backoff_seed = static_cast<uint64_t>(c) + 1;
      auto client = bench::CheckedValue(SvcClient::Connect(copts),
                                        "connect (chaos)");
      Rng rng(static_cast<uint64_t>(c) + 1);
      for (int q = 0; q < queries; ++q) {
        // Mostly SVC estimates (degradable past max_inflight); every 8th a
        // plain lookup, which degrade mode sheds under pressure and the
        // client must retry through.
        if (q % 8 == 7) {
          const int64_t threshold = static_cast<int64_t>(rng.Next() % 200);
          bench::CheckOk(
              client
                  ->Execute("SELECT videoId, visitCount FROM visitView "
                            "WHERE visitCount > " +
                            std::to_string(threshold))
                  .status(),
              "lookup (chaos)");
        } else {
          bench::CheckOk(client
                             ->Execute("SELECT SUM(visitCount) FROM visitView "
                                       "WITH SVC(ratio=0.5, mode=corr)")
                             .status(),
                         "estimate (chaos)");
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
      client_retries.fetch_add(client->retries(), std::memory_order_relaxed);
      client_reconnects.fetch_add(client->reconnects(),
                                  std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  ChaosRunStats stats;
  stats.wall = wall.ElapsedSeconds();
  done.store(true, std::memory_order_release);
  chaos.join();
  const ServerStats after = server->stats();
  stats.requests = answered.load();
  stats.retries = client_retries.load();
  stats.reconnects = client_reconnects.load();
  stats.faults = after.net_faults_injected - before.net_faults_injected;
  stats.replays = after.idem_replays - before.idem_replays;
  stats.degraded = after.degraded_admissions - before.degraded_admissions;
  stats.shed = after.overload_rejections - before.overload_rejections;
  return stats;
}

/// Appends `"fig14_chaos": {...}` next to fig14_net in the BENCH artifact:
/// the robustness counters ride the same file as the throughput numbers.
void MergeChaosJson(const std::string& path, int clients, int queries,
                    const ChaosRunStats& s) {
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot read %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) content.append(buf, n);
  std::fclose(in);
  const size_t close = content.find_last_of('}');
  if (close == std::string::npos) {
    std::fprintf(stderr, "[bench] --merge-json: %s is not a JSON object\n",
                 path.c_str());
    std::exit(2);
  }
  content.resize(close);
  const size_t old = content.find(",\n  \"fig14_chaos\":");
  if (old != std::string::npos) content.resize(old);
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot write %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::fprintf(
      out,
      "%s,\n  \"fig14_chaos\": {\n"
      "    \"clients\": %d, \"queries_per_client\": %d,\n"
      "    \"requests_ok\": %zu, \"throughput_rps\": %.1f,\n"
      "    \"client_retries\": %llu, \"client_reconnects\": %llu,\n"
      "    \"net_faults_injected\": %llu, \"idem_replays\": %llu,\n"
      "    \"degraded_admissions\": %llu, \"overload_rejections\": %llu\n"
      "  }\n}\n",
      content.c_str(), clients, queries, s.requests,
      static_cast<double>(s.requests) / s.wall,
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.reconnects),
      static_cast<unsigned long long>(s.faults),
      static_cast<unsigned long long>(s.replays),
      static_cast<unsigned long long>(s.degraded),
      static_cast<unsigned long long>(s.shed));
  std::fclose(out);
  std::printf("merged fig14_chaos into %s\n", path.c_str());
}

/// Appends `"fig14_net": {...}` into an existing `{...}` JSON artifact
/// (BENCH_executor.json) so the network numbers ride the same file the
/// executor gate writes.
void MergeNetJson(const std::string& path, int clients, int queries,
                  const NetRunStats& text, const NetRunStats& prepared) {
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot read %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) content.append(buf, n);
  std::fclose(in);
  // Drop everything after the final closing brace, then reopen the object.
  const size_t close = content.find_last_of('}');
  if (close == std::string::npos) {
    std::fprintf(stderr, "[bench] --merge-json: %s is not a JSON object\n",
                 path.c_str());
    std::exit(2);
  }
  content.resize(close);
  // Re-merging after a previous run replaces the old fig14_net object.
  const size_t old = content.find(",\n  \"fig14_net\":");
  if (old != std::string::npos) content.resize(old);
  auto mode_json = [](const NetRunStats& s) {
    char out[256];
    std::snprintf(out, sizeof(out),
                  "{\"throughput_rps\": %.1f, \"p50_ms\": %.3f, "
                  "\"p95_ms\": %.3f, \"p99_ms\": %.3f, \"parses\": %llu}",
                  static_cast<double>(s.requests) / s.wall, s.p50_ms,
                  s.p95_ms, s.p99_ms,
                  static_cast<unsigned long long>(s.parses));
    return std::string(out);
  };
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot write %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::fprintf(out,
               "%s,\n  \"fig14_net\": {\n"
               "    \"clients\": %d, \"queries_per_client\": %d,\n"
               "    \"text\": %s,\n"
               "    \"prepared\": %s\n  }\n}\n",
               content.c_str(), clients, queries, mode_json(text).c_str(),
               mode_json(prepared).c_str());
  std::fclose(out);
  std::printf("merged fig14_net into %s\n", path.c_str());
}

/// Runs `n` concurrent copies of `fn` and returns wall seconds.
template <typename Fn>
double TimeConcurrent(int n, Fn fn) {
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads.emplace_back([i, &fn] { fn(static_cast<uint64_t>(i) + 1); });
  }
  for (auto& t : threads) t.join();
  return sw.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadParams p;
  bool run_shared = false;
  bool run_net = false;
  bool run_chaos = false;
  int net_queries = 400;
  std::string merge_json;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* what) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return std::atol(argv[++i]);
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      p.rows = static_cast<size_t>(next("--rows"));
    } else if (std::strcmp(argv[i], "--sessions") == 0) {
      p.sessions = static_cast<int>(next("--sessions"));
    } else if (std::strcmp(argv[i], "--iters") == 0) {
      p.iters = static_cast<int>(next("--iters"));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      p.batch = static_cast<int>(next("--batch"));
    } else if (std::strcmp(argv[i], "--shared") == 0) {
      run_shared = true;
    } else if (std::strcmp(argv[i], "--net") == 0) {
      run_net = true;
    } else if (std::strcmp(argv[i], "--net-queries") == 0) {
      net_queries = static_cast<int>(next("--net-queries"));
    } else if (std::strcmp(argv[i], "--net-chaos") == 0) {
      run_chaos = true;
    } else if (std::strcmp(argv[i], "--merge-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --merge-json\n");
        return 2;
      }
      merge_json = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "-- SQL serving layer vs direct engine API "
      "(rows=%zu iters=%d batch=%d) --\n",
      p.rows, p.iters, p.batch);

  // Warm-up (allocator, page cache), then measure.
  (void)RunDirectSession({p.rows / 4, 1, 2, p.batch}, 99);

  size_t sql_ops = 0, direct_ops = 0;
  const double direct_1 =
      bench::TimeSeconds([&] { direct_ops = RunDirectSession(p, 1); });
  const double sql_1 =
      bench::TimeSeconds([&] { sql_ops = RunSqlSession(p, 1); });

  TablePrinter t({"path", "sessions", "ops", "wall_s", "ops_per_s",
                  "overhead"});
  t.AddRow({"direct", "1", std::to_string(direct_ops),
            TablePrinter::Num(direct_1, 3),
            TablePrinter::Num(static_cast<double>(direct_ops) / direct_1, 1),
            "--"});
  t.AddRow({"sql", "1", std::to_string(sql_ops),
            TablePrinter::Num(sql_1, 3),
            TablePrinter::Num(static_cast<double>(sql_ops) / sql_1, 1),
            TablePrinter::Pct(sql_1 / direct_1 - 1.0, 1)});

  if (p.sessions > 1) {
    const double direct_n = TimeConcurrent(
        p.sessions, [&](uint64_t seed) { RunDirectSession(p, seed); });
    const double sql_n = TimeConcurrent(
        p.sessions, [&](uint64_t seed) { RunSqlSession(p, seed); });
    const double dn_ops = static_cast<double>(direct_ops * p.sessions);
    const double sn_ops = static_cast<double>(sql_ops * p.sessions);
    t.AddRow({"direct", std::to_string(p.sessions),
              std::to_string(static_cast<size_t>(dn_ops)),
              TablePrinter::Num(direct_n, 3),
              TablePrinter::Num(dn_ops / direct_n, 1), "--"});
    t.AddRow({"sql", std::to_string(p.sessions),
              std::to_string(static_cast<size_t>(sn_ops)),
              TablePrinter::Num(sql_n, 3),
              TablePrinter::Num(sn_ops / sql_n, 1),
              TablePrinter::Pct(sql_n / direct_n - 1.0, 1)});
  }
  t.Print();
  std::printf(
      "\noverhead = SQL wall time over direct engine calls for the identical "
      "workload\n(parse + route + render; expected near zero — the "
      "clean-sample/estimate path dominates).\nConcurrent sessions are "
      "shared-nothing; scaling is bounded by physical cores\n(see "
      "docs/PERF.md \"Measured scaling\").\n");

  if (run_shared) {
    std::printf(
        "\n-- Shared engine: %d reader session(s), snapshot-isolated --\n",
        p.sessions);
    TablePrinter st({"writer", "cache", "readers", "queries", "wall_s",
                     "queries_per_s", "ingests", "refreshes"});
    for (const bool cache_enabled : {true, false}) {
      const SharedRunStats idle =
          RunSharedWorkload(p, p.sessions, false, cache_enabled);
      const SharedRunStats busy =
          RunSharedWorkload(p, p.sessions, true, cache_enabled);
      const char* cache = cache_enabled ? "on" : "off";
      st.AddRow({"idle", cache, std::to_string(p.sessions),
                 std::to_string(idle.reader_queries),
                 TablePrinter::Num(idle.reader_wall, 3),
                 TablePrinter::Num(
                     static_cast<double>(idle.reader_queries) /
                         idle.reader_wall, 1),
                 "0", "0"});
      st.AddRow({"refreshing", cache, std::to_string(p.sessions),
                 std::to_string(busy.reader_queries),
                 TablePrinter::Num(busy.reader_wall, 3),
                 TablePrinter::Num(
                     static_cast<double>(busy.reader_queries) /
                         busy.reader_wall, 1),
                 std::to_string(busy.ingest_commits),
                 std::to_string(busy.refresh_commits)});
    }
    st.Print();
    std::printf(
        "\nReaders run on immutable snapshots and never take the writer "
        "lock: the\nidle-vs-refreshing gap is copy-on-write commit work "
        "competing for cores/cache,\nnot blocking (torn-read freedom is "
        "asserted by tests/test_concurrent_engine.cc).\ncache=on shares one "
        "cleaning run per (snapshot, ratio) across all readers;\ncache=off "
        "re-cleans per query (the pre-cache behavior).\n");
  }

  if (run_net) {
    std::printf(
        "\n-- Network serving (svc_served in-process, loopback): %d "
        "closed-loop client(s) x %d request(s) --\n",
        p.sessions, net_queries);
    auto shared = std::make_shared<SharedEngine>(BuildBaseDb(p.rows, 1));
    {
      SqlSession admin(EngineHandle::Shared(shared));
      bench::CheckOk(
          admin
              .Execute(std::string("CREATE MATERIALIZED VIEW visitView AS ") +
                       kViewSql)
              .status(),
          "create view (net)");
    }
    ServerOptions sopts;
    sopts.workers = p.sessions;
    sopts.max_inflight = static_cast<uint32_t>(p.sessions) * 4;
    SvcServer server(sopts, shared);
    bench::CheckOk(server.Start(), "server start (net)");

    // Warm-up, then measure text Query frames vs prepared Execute frames.
    (void)RunNetWorkload(&server, 1, std::max(net_queries / 10, 10), false);
    const NetRunStats text =
        RunNetWorkload(&server, p.sessions, net_queries, false);
    const NetRunStats prep =
        RunNetWorkload(&server, p.sessions, net_queries, true);
    server.Stop();

    TablePrinter nt({"mode", "clients", "requests", "wall_s", "req_per_s",
                     "p50_ms", "p95_ms", "p99_ms", "parses"});
    auto add = [&](const char* mode, const NetRunStats& s) {
      nt.AddRow({mode, std::to_string(p.sessions),
                 std::to_string(s.requests), TablePrinter::Num(s.wall, 3),
                 TablePrinter::Num(static_cast<double>(s.requests) / s.wall,
                                   1),
                 TablePrinter::Num(s.p50_ms, 3), TablePrinter::Num(s.p95_ms, 3),
                 TablePrinter::Num(s.p99_ms, 3), std::to_string(s.parses)});
    };
    add("text", text);
    add("prepared", prep);
    nt.Print();
    std::printf(
        "\nClosed loop: every client waits for its response before sending "
        "the next\nrequest, so req_per_s counts whole wire round-trips "
        "(frame + CRC + serde both\nways). prepared parses once per client "
        "connection (%d parse(s) here) and\nre-binds ? per Execute — the "
        "text-vs-prepared gap is the per-request parse +\nplan cost. "
        "Single-core container caveat: clients, IO thread, and workers\n"
        "share one core (docs/PERF.md \"Measured scaling\").\n",
        p.sessions);
    if (!merge_json.empty()) {
      MergeNetJson(merge_json, p.sessions, net_queries, text, prep);
    }

    if (run_chaos) {
      std::printf(
          "\n-- Chaos serving (degrade mode, dropped responses re-armed, "
          "retrying clients) --\n");
      ServerOptions chaos_opts;
      chaos_opts.workers = p.sessions;
      chaos_opts.max_inflight = 1;  // force degraded admission under load
      chaos_opts.degrade = true;
      chaos_opts.degrade_max_inflight = static_cast<uint32_t>(p.sessions) * 4;
      chaos_opts.degrade_ratio_scale = 0.5;
      SvcServer chaos_server(chaos_opts, shared);
      bench::CheckOk(chaos_server.Start(), "server start (chaos)");
      const ChaosRunStats cs =
          RunChaosNetWorkload(&chaos_server, p.sessions, net_queries);
      chaos_server.Stop();

      TablePrinter ct({"requests_ok", "wall_s", "req_per_s", "retries",
                       "reconnects", "faults", "replays", "degraded",
                       "shed"});
      ct.AddRow({std::to_string(cs.requests), TablePrinter::Num(cs.wall, 3),
                 TablePrinter::Num(
                     static_cast<double>(cs.requests) / cs.wall, 1),
                 std::to_string(cs.retries), std::to_string(cs.reconnects),
                 std::to_string(cs.faults), std::to_string(cs.replays),
                 std::to_string(cs.degraded), std::to_string(cs.shed)});
      ct.Print();
      std::printf(
          "\nEvery request succeeded despite the injected faults: dropped "
          "responses force\nreconnect + idempotent re-send (replays = dedup "
          "hits that prevented double\nexecution), and past max_inflight=1 "
          "the degrade admission path answers SVC\nestimates at half the "
          "sampling ratio (degraded) while shedding exact queries\nfor the "
          "client to retry (shed).\n");
      if (!merge_json.empty()) {
        MergeChaosJson(merge_json, p.sessions, net_queries, cs);
      }
    }
  } else if (!merge_json.empty()) {
    std::fprintf(stderr, "--merge-json requires --net\n");
    return 2;
  } else if (run_chaos) {
    std::fprintf(stderr, "--net-chaos requires --net\n");
    return 2;
  }
  return 0;
}
