// Maintenance-policy Pareto: cost-based scheduling vs fixed-interval
// REFRESH on a bursty ingest workload.
//
// The workload alternates heavy-ingest rounds and idle rounds (bursts land
// in rounds where round % 8 < 3), with two SVC serving queries per round.
// A fixed-interval baseline refreshes every K rounds no matter what; the
// policy arm instead drives SharedEngine::MaintenanceTick with a simulated
// clock (100 ms per round), so the cost model — staleness share + probe CI
// vs the error budget + time-since-refresh vs the SLA — decides when the
// refresh commit runs. Idle stretches score zero (nothing pending), so the
// policy skips exactly the refreshes the fixed schedule wastes, and bursts
// pull refreshes earlier than the fixed schedule would grant them.
//
// Per arm we report refresh commits, mean relative error of the serving
// queries against a fresh oracle replica, and statements/sec. Refresh
// counts and errors are bit-deterministic (hash-based sampling, simulated
// clock); only the wall-clock column varies run to run, so the --check
// gate judges the deterministic quantities:
//
//   exists policy point p and fixed point f with
//     p.refreshes < f.refreshes  AND  p.mean_error <= 1.05 * f.mean_error
//
// i.e. the policy reaches a fixed baseline's accuracy with strictly fewer
// maintenance commits.
//
// Flags: --rounds N   serving rounds per arm (default 48)
//        --base N     committed base rows (default 2000)
//        --batch N    delta rows per burst round (default 200)
//        --check      enforce the Pareto gate (exit 1 on failure)
//        --merge-json PATH  append a "policy_pareto" object into an
//                           existing BENCH json artifact

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "core/shared_engine.h"
#include "sql/session.h"

namespace {

using namespace svc;

constexpr uint64_t kRoundMs = 100;  ///< simulated wall time per round
constexpr int kGroups = 50;

struct Params {
  int rounds = 48;
  size_t base = 2000;
  int batch = 200;
};

bool IsBurstRound(int round) { return round % 8 < 3; }

/// Deterministic delta batch for `round` (identical across every arm and
/// the oracle, so all replicas see the same stream).
std::string BurstInsert(const Params& p, int round) {
  int64_t next = static_cast<int64_t>(p.base);
  for (int r = 0; r < round; ++r) {
    if (IsBurstRound(r)) next += p.batch;
  }
  std::string sql = "INSERT INTO F VALUES ";
  for (int b = 0; b < p.batch; ++b) {
    const int64_t id = next + b;
    if (b > 0) sql += ", ";
    sql += "(" + std::to_string(id) + ", " + std::to_string(id % kGroups) +
           ", " + std::to_string((id % 97) * 0.5 + 1.0) + ")";
  }
  return sql;
}

const char* kServingQueries[] = {
    "SELECT SUM(sv) AS x FROM V WITH SVC(ratio=0.2, mode=corr)",
    "SELECT SUM(sv) AS x FROM V WITH SVC(ratio=0.2, mode=aqp)",
};
constexpr size_t kNumQueries = 2;

double RunScalar(SqlSession* session, const std::string& sql) {
  SqlResult r = bench::CheckedValue(session->Execute(sql), "svc query");
  bench::CheckOk(r.rows.NumRows() == 1
                     ? Status::OK()
                     : Status::Internal("expected one estimate row"),
                 "svc query shape");
  return r.rows.row(0)[0].AsDouble();
}

/// CREATE TABLE + committed base load + view definition, shared by every
/// replica so their serving state is identical before round 0.
size_t SetUpReplica(SqlSession* session, const Params& p) {
  size_t statements = 0;
  bench::CheckOk(session
                     ->Execute("CREATE TABLE F (id INT, g INT, v DOUBLE, "
                               "PRIMARY KEY (id))")
                     .status(),
                 "create table");
  ++statements;
  for (size_t at = 0; at < p.base; at += 500) {
    std::string sql = "INSERT INTO F VALUES ";
    const size_t end = std::min(p.base, at + 500);
    for (size_t id = at; id < end; ++id) {
      if (id > at) sql += ", ";
      sql += "(" + std::to_string(id) + ", " +
             std::to_string(id % kGroups) + ", " +
             std::to_string((id % 97) * 0.5 + 1.0) + ")";
    }
    bench::CheckOk(session->Execute(sql).status(), "base load");
    ++statements;
  }
  bench::CheckOk(session->Execute("REFRESH ALL").status(), "base refresh");
  bench::CheckOk(
      session
          ->Execute("CREATE MATERIALIZED VIEW V AS SELECT g, COUNT(1) AS c, "
                    "SUM(v) AS sv FROM F GROUP BY g")
          .status(),
      "create view");
  statements += 2;
  return statements;
}

/// Fresh truth per (round, query): an oracle replica that refreshes every
/// round. A refreshed view has nothing pending, so its SVC answer is the
/// exact aggregate.
std::vector<std::vector<double>> ComputeTruth(const Params& p) {
  SqlSession oracle{Database()};
  SetUpReplica(&oracle, p);
  std::vector<std::vector<double>> truth(p.rounds);
  for (int round = 0; round < p.rounds; ++round) {
    if (IsBurstRound(round)) {
      bench::CheckOk(oracle.Execute(BurstInsert(p, round)).status(),
                     "oracle ingest");
    }
    bench::CheckOk(oracle.Execute("REFRESH ALL").status(), "oracle refresh");
    for (size_t q = 0; q < kNumQueries; ++q) {
      truth[round].push_back(RunScalar(&oracle, kServingQueries[q]));
    }
  }
  return truth;
}

struct ArmResult {
  std::string arm;      ///< "fixed" or "policy"
  std::string param;    ///< "K=4" or "sla=800ms"
  uint64_t refreshes = 0;
  uint64_t warms = 0;
  double mean_error = 0;  ///< mean relative error vs the fresh oracle
  size_t statements = 0;
  double wall_s = 0;
};

/// One serving arm over the shared burst stream. `fixed_every` > 0 runs
/// REFRESH ALL on that cadence; otherwise `policy_sql` arms the cost model
/// and each round advances the simulated clock and calls MaintenanceTick.
ArmResult RunArm(const Params& p,
                 const std::vector<std::vector<double>>& truth,
                 int fixed_every, const std::string& policy_sql,
                 const std::string& param_label) {
  auto shared = std::make_shared<SharedEngine>(Database());
  SqlSession session(shared);
  ArmResult out;
  out.arm = fixed_every > 0 ? "fixed" : "policy";
  out.param = param_label;
  Stopwatch sw;
  out.statements = SetUpReplica(&session, p);
  if (fixed_every == 0) {
    bench::CheckOk(session.Execute(policy_sql).status(), "set policy");
    ++out.statements;
  }
  double error_sum = 0;
  size_t error_n = 0;
  uint64_t sim_since_refresh = 0;
  for (int round = 0; round < p.rounds; ++round) {
    if (IsBurstRound(round)) {
      bench::CheckOk(session.Execute(BurstInsert(p, round)).status(),
                     "arm ingest");
      ++out.statements;
    }
    if (fixed_every > 0) {
      if (round % fixed_every == fixed_every - 1) {
        bench::CheckOk(session.Execute("REFRESH ALL").status(),
                       "fixed refresh");
        ++out.statements;
        ++out.refreshes;
      }
    } else {
      sim_since_refresh += kRoundMs;
      const bool refreshed = bench::CheckedValue(
          shared->MaintenanceTick(sim_since_refresh), "policy tick");
      ++out.statements;  // the tick is the arm's maintenance statement
      if (refreshed) sim_since_refresh = 0;
    }
    for (size_t q = 0; q < kNumQueries; ++q) {
      const double got = RunScalar(&session, kServingQueries[q]);
      const double want = truth[round][q];
      if (std::fabs(want) > 1e-12) {
        error_sum += std::fabs(got - want) / std::fabs(want);
        ++error_n;
      }
      ++out.statements;
    }
  }
  out.wall_s = sw.ElapsedSeconds();
  if (fixed_every == 0) {
    const MaintenanceStats ms = shared->maintenance_stats();
    out.refreshes = ms.refreshes;
    out.warms = ms.warms;
  }
  out.mean_error = error_n > 0 ? error_sum / static_cast<double>(error_n) : 0;
  return out;
}

/// The --check Pareto gate (deterministic quantities only).
bool ParetoGate(const std::vector<ArmResult>& fixed,
                const std::vector<ArmResult>& policy, std::string* why) {
  for (const ArmResult& pr : policy) {
    for (const ArmResult& fr : fixed) {
      if (pr.refreshes < fr.refreshes &&
          pr.mean_error <= 1.05 * fr.mean_error) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "policy %s (%llu refreshes, %.4f err) beats fixed %s "
                      "(%llu refreshes, %.4f err)",
                      pr.param.c_str(),
                      static_cast<unsigned long long>(pr.refreshes),
                      pr.mean_error, fr.param.c_str(),
                      static_cast<unsigned long long>(fr.refreshes),
                      fr.mean_error);
        *why = buf;
        return true;
      }
    }
  }
  *why = "no policy point reached a fixed baseline's accuracy with fewer "
         "refreshes";
  return false;
}

/// Appends `"policy_pareto": {...}` into an existing `{...}` JSON artifact
/// (BENCH_executor.json), replacing any block a previous run merged.
void MergeParetoJson(const std::string& path,
                     const std::vector<ArmResult>& fixed,
                     const std::vector<ArmResult>& policy, bool gate_ok) {
  FILE* in = std::fopen(path.c_str(), "r");
  if (in == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot read %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) content.append(buf, n);
  std::fclose(in);
  const size_t close = content.find_last_of('}');
  if (close == std::string::npos) {
    std::fprintf(stderr, "[bench] --merge-json: %s is not a JSON object\n",
                 path.c_str());
    std::exit(2);
  }
  content.resize(close);
  const size_t old = content.find(",\n  \"policy_pareto\":");
  if (old != std::string::npos) content.resize(old);
  auto arm_json = [](const std::vector<ArmResult>& arms) {
    std::string out = "[";
    for (size_t i = 0; i < arms.size(); ++i) {
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s\n      {\"param\": \"%s\", \"refreshes\": %llu, "
                    "\"warms\": %llu, \"mean_rel_error\": %.6f, "
                    "\"stmts_per_s\": %.1f}",
                    i > 0 ? "," : "", arms[i].param.c_str(),
                    static_cast<unsigned long long>(arms[i].refreshes),
                    static_cast<unsigned long long>(arms[i].warms),
                    arms[i].mean_error,
                    static_cast<double>(arms[i].statements) / arms[i].wall_s);
      out += row;
    }
    return out + "\n    ]";
  };
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench] --merge-json: cannot write %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::fprintf(out,
               "%s,\n  \"policy_pareto\": {\n"
               "    \"fixed\": %s,\n"
               "    \"policy\": %s,\n"
               "    \"pareto_gate\": %s\n  }\n}\n",
               content.c_str(), arm_json(fixed).c_str(),
               arm_json(policy).c_str(), gate_ok ? "true" : "false");
  std::fclose(out);
  std::printf("merged policy_pareto into %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Params p;
  bool check = false;
  std::string merge_json;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* what) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return std::atol(argv[++i]);
    };
    if (std::strcmp(argv[i], "--rounds") == 0) {
      p.rounds = static_cast<int>(next("--rounds"));
    } else if (std::strcmp(argv[i], "--base") == 0) {
      p.base = static_cast<size_t>(next("--base"));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      p.batch = static_cast<int>(next("--batch"));
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--merge-json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --merge-json\n");
        return 2;
      }
      merge_json = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  std::printf(
      "-- Maintenance policy vs fixed-interval REFRESH "
      "(rounds=%d base=%zu burst_batch=%d, bursts at round %% 8 < 3) --\n",
      p.rounds, p.base, p.batch);

  const std::vector<std::vector<double>> truth = ComputeTruth(p);

  std::vector<ArmResult> fixed;
  for (int k : {1, 4, 16}) {
    fixed.push_back(RunArm(p, truth, k, "", "K=" + std::to_string(k)));
  }
  std::vector<ArmResult> policy;
  for (int sla_ms : {200, 800, 3200}) {
    const std::string sql =
        "SET MAINTENANCE POLICY (mode=auto, budget=0.05, sla_ms=" +
        std::to_string(sla_ms) + ", ratio=0.2)";
    policy.push_back(
        RunArm(p, truth, 0, sql, "sla=" + std::to_string(sla_ms) + "ms"));
  }

  TablePrinter t({"arm", "param", "refreshes", "warms", "mean_rel_err",
                  "stmts", "wall_s", "stmts_per_s"});
  auto add = [&](const ArmResult& r) {
    t.AddRow({r.arm, r.param, std::to_string(r.refreshes),
              std::to_string(r.warms), TablePrinter::Num(r.mean_error, 4),
              std::to_string(r.statements), TablePrinter::Num(r.wall_s, 3),
              TablePrinter::Num(
                  static_cast<double>(r.statements) / r.wall_s, 1)});
  };
  for (const auto& r : fixed) add(r);
  for (const auto& r : policy) add(r);
  t.Print();

  std::string why;
  const bool ok = ParetoGate(fixed, policy, &why);
  std::printf(
      "\nmean_rel_err = serving-query error vs a fresh oracle replica; "
      "refreshes and\nerrors are deterministic (hash sampling + simulated "
      "100 ms rounds), wall_s is\nnot (single-core container — see "
      "docs/PERF.md).\npareto gate: %s — %s\n",
      ok ? "PASS" : "FAIL", why.c_str());

  if (!merge_json.empty()) MergeParetoJson(merge_json, fixed, policy, ok);
  if (check && !ok) return 1;
  return 0;
}
