// Micro-benchmark (google-benchmark): throughput of the hash families the
// η operator can use, plus η sampling itself. Quantifies the paper's §12.3
// latency/uniformity trade-off: SHA-1 is the most uniform and the slowest,
// the linear hash the cheapest.

#include <benchmark/benchmark.h>

#include "common/hash.h"

namespace svc {
namespace {

void BM_Hash64(benchmark::State& state) {
  const HashFamily family = static_cast<HashFamily>(state.range(0));
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back("order-" + std::to_string(i * 7919));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hash64(keys[i++ & 1023], family));
  }
  state.SetLabel(HashFamilyName(family));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hash64)
    ->Arg(static_cast<int>(HashFamily::kLinear))
    ->Arg(static_cast<int>(HashFamily::kSdbm))
    ->Arg(static_cast<int>(HashFamily::kFnv1a))
    ->Arg(static_cast<int>(HashFamily::kSha1));

void BM_EtaMembership(benchmark::State& state) {
  const double m = static_cast<double>(state.range(0)) / 100.0;
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) {
    keys.push_back("pk:" + std::to_string(i));
  }
  size_t i = 0;
  size_t kept = 0;
  for (auto _ : state) {
    kept += HashInSample(keys[i++ & 1023], m, HashFamily::kFnv1a) ? 1 : 0;
  }
  benchmark::DoNotOptimize(kept);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EtaMembership)->Arg(5)->Arg(10)->Arg(50);

}  // namespace
}  // namespace svc

BENCHMARK_MAIN();
