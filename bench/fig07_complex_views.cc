// Reproduces Figure 7: the ten "Complex Views" (TPCD queries treated as
// materialized views, incl. the nested-aggregate V13/V21 and the
// key-transforming V22).
//  (a) maintenance time: full IVM vs SVC-10% cleaning; V21/V22 show muted
//      speedups because their structure blocks the η push-down (reported).
//  (b) median relative error of randomly generated aggregate queries:
//      stale vs SVC+AQP-10% vs SVC+CORR-10%.

#include "bench/bench_util.h"
#include "sql/planner.h"

int main() {
  using namespace svc;
  using namespace svc::bench;

  TpcdConfig cfg;
  cfg.scale_factor = 0.02;
  cfg.zipf_z = 2.0;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");

  std::printf(
      "-- Figure 7(a): Complex views, maintenance time (10%% updates) --\n");
  TablePrinter timing({"view", "ivm_s", "svc10_s", "speedup",
                       "pushdown"});
  struct Prepared {
    std::string name;
    MaterializedView view;
    Table fresh;
    CorrespondingSamples samples;
  };
  std::vector<Prepared> prepared;
  for (const auto& cv : TpcdComplexViews()) {
    PlanPtr def = CheckedValue(SqlToPlan(cv.sql, db), cv.name.c_str());
    MaterializedView view = CheckedValue(
        MaterializedView::Create(cv.name, def, &db, cv.sampling_key),
        cv.name.c_str());
    auto [ivm_s, fresh] = TimeFullMaintenance(view, deltas, db);
    PushdownReport report;
    auto [svc_s, samples] =
        TimeSvcCleaning(view, deltas, db, 0.10, &report);
    timing.AddRow({cv.name, TablePrinter::Num(ivm_s, 3),
                   TablePrinter::Num(svc_s, 3),
                   TablePrinter::Num(ivm_s / svc_s, 2) + "x",
                   report.FullyPushed()
                       ? "full"
                       : "blocked(" + std::to_string(report.blocked) + ")"});
    prepared.push_back({cv.name, std::move(view), std::move(fresh),
                        std::move(samples)});
  }
  timing.Print();

  std::printf(
      "\n-- Figure 7(b): generated-query accuracy (median relative error, "
      "10%% sample) --\n");
  TablePrinter acc({"view", "stale", "svc_aqp_10", "svc_corr_10",
                    "queries"});
  Rng rng(99);
  for (auto& p : prepared) {
    const Table* stale = CheckedValue(db.GetTable(p.name), "stale");
    // Random queries over the view's group columns and numeric aggregates.
    std::vector<std::string> group_cols, num_cols;
    for (const auto& sc : p.view.stored_cols()) {
      if (sc.kind == StoredColKind::kGroupKey) group_cols.push_back(sc.name);
      if (sc.kind == StoredColKind::kSumMerge ||
          sc.kind == StoredColKind::kCountMerge ||
          sc.kind == StoredColKind::kAvgVisible) {
        num_cols.push_back(sc.name);
      }
    }
    auto queries =
        GenerateRandomViewQueries(*stale, group_cols, num_cols, 60, &rng);
    double stale_err = 0, aqp_err = 0, corr_err = 0;
    int n = 0;
    for (const auto& vq : queries) {
      MethodErrors e = EvaluateQuery(*stale, p.fresh, p.samples, vq);
      if (e.stale.groups == 0) continue;
      stale_err += e.stale.median;
      aqp_err += e.aqp.median;
      corr_err += e.corr.median;
      ++n;
    }
    if (n == 0) n = 1;
    acc.AddRow({p.name, TablePrinter::Pct(stale_err / n),
                TablePrinter::Pct(aqp_err / n),
                TablePrinter::Pct(corr_err / n), std::to_string(n)});
  }
  acc.Print();
  return 0;
}
