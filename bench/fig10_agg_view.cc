// Reproduces Figure 10 on the data-cube aggregate view (z = 1):
//  (a) maintenance time vs sampling ratio (10% updates);
//  (b) SVC-10% speedup vs update size.

#include "bench/bench_util.h"

namespace svc {
namespace bench {
namespace {

struct CubeFixture {
  Database db;
  MaterializedView view;
  DeltaSet deltas;
};

CubeFixture MakeCube(double update_fraction, uint64_t seed = 7) {
  TpcdConfig cfg;
  cfg.scale_factor = 0.012;
  cfg.zipf_z = 1.0;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("cube", TpcdCubeViewDef(), &db), "cube");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = update_fraction;
  ucfg.seed = seed;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");
  return {std::move(db), std::move(view), std::move(deltas)};
}

void PartA() {
  std::printf(
      "-- Figure 10(a): Aggregate (cube) view maintenance time vs sampling "
      "ratio (10%% updates) --\n");
  CubeFixture fx = MakeCube(0.10);
  auto [ivm_s, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
  (void)fresh;
  TablePrinter table({"sampling_ratio", "svc_s", "ivm_s", "speedup"});
  for (double m : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    auto [svc_s, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db, m);
    (void)samples;
    table.AddRow({TablePrinter::Num(m, 1), TablePrinter::Num(svc_s, 3),
                  TablePrinter::Num(ivm_s, 3),
                  TablePrinter::Num(ivm_s / svc_s, 2) + "x"});
  }
  table.Print();
}

void PartB() {
  std::printf("\n-- Figure 10(b): SVC-10%% speedup vs update size --\n");
  TablePrinter table({"update_size", "ivm_s", "svc10_s", "speedup"});
  for (double frac : {0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20}) {
    CubeFixture fx = MakeCube(frac, 30 + static_cast<uint64_t>(frac * 100));
    auto [ivm_s, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
    (void)fresh;
    auto [svc_s, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db, 0.10);
    (void)samples;
    table.AddRow({TablePrinter::Pct(frac), TablePrinter::Num(ivm_s, 3),
                  TablePrinter::Num(svc_s, 3),
                  TablePrinter::Num(ivm_s / svc_s, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace svc

int main() {
  svc::bench::PartA();
  svc::bench::PartB();
  return 0;
}
