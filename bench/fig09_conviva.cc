// Reproduces Figure 9 on the synthetic Conviva-like activity log:
//  (a) per-view maintenance time, IVM vs SVC-10%, after appending 10% new
//      log records;
//  (b) per-view query accuracy: stale vs SVC+AQP-10% vs SVC+CORR-10%.

#include "bench/bench_util.h"
#include "conviva/conviva.h"
#include "sql/planner.h"

int main() {
  using namespace svc;
  using namespace svc::bench;

  ConvivaConfig cfg;
  cfg.num_sessions = 40000;
  Database db = CheckedValue(GenerateConvivaDatabase(cfg), "conviva");
  DeltaSet deltas = CheckedValue(GenerateConvivaUpdates(db, cfg, 0.10, 5),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");

  std::printf(
      "-- Figure 9(a): Conviva views, maintenance time for 10%% appended "
      "log --\n");
  TablePrinter timing({"view", "ivm_s", "svc10_s", "speedup"});
  struct Prepared {
    std::string name;
    MaterializedView view;
    Table fresh;
    CorrespondingSamples samples;
  };
  std::vector<Prepared> prepared;
  for (const auto& cv : ConvivaViews()) {
    PlanPtr def = CheckedValue(SqlToPlan(cv.sql, db), cv.name.c_str());
    MaterializedView view = CheckedValue(
        MaterializedView::Create(cv.name, def, &db), cv.name.c_str());
    auto [ivm_s, fresh] = TimeFullMaintenance(view, deltas, db);
    auto [svc_s, samples] = TimeSvcCleaning(view, deltas, db, 0.10);
    timing.AddRow({cv.name, TablePrinter::Num(ivm_s, 3),
                   TablePrinter::Num(svc_s, 3),
                   TablePrinter::Num(ivm_s / svc_s, 2) + "x"});
    prepared.push_back({cv.name, std::move(view), std::move(fresh),
                        std::move(samples)});
  }
  timing.Print();

  std::printf(
      "\n-- Figure 9(b): Conviva query accuracy (median relative error) "
      "--\n");
  TablePrinter acc({"view", "stale", "svc_aqp_10", "svc_corr_10"});
  Rng rng(2020);
  for (auto& p : prepared) {
    const Table* stale = CheckedValue(db.GetTable(p.name), "stale");
    std::vector<std::string> group_cols, num_cols;
    for (const auto& sc : p.view.stored_cols()) {
      if (sc.kind == StoredColKind::kGroupKey ||
          sc.kind == StoredColKind::kSpjKey) {
        group_cols.push_back(sc.name);
      }
      if (sc.kind == StoredColKind::kSumMerge ||
          sc.kind == StoredColKind::kCountMerge ||
          sc.kind == StoredColKind::kAvgVisible ||
          sc.kind == StoredColKind::kSpjValue) {
        num_cols.push_back(sc.name);
      }
    }
    auto queries =
        GenerateRandomViewQueries(*stale, group_cols, num_cols, 40, &rng);
    double stale_err = 0, aqp_err = 0, corr_err = 0;
    int n = 0;
    for (const auto& vq : queries) {
      MethodErrors e = EvaluateQuery(*stale, p.fresh, p.samples, vq);
      if (e.stale.groups == 0) continue;
      stale_err += e.stale.median;
      aqp_err += e.aqp.median;
      corr_err += e.corr.median;
      ++n;
    }
    if (n == 0) n = 1;
    acc.AddRow({p.name, TablePrinter::Pct(stale_err / n),
                TablePrinter::Pct(aqp_err / n),
                TablePrinter::Pct(corr_err / n)});
  }
  acc.Print();
  return 0;
}
