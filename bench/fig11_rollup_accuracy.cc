// Reproduces Figure 11: median relative error of the 13 cube roll-up
// queries (sum of revenue over dimension subsets), 10% sample / 10%
// updates: stale vs SVC+AQP-10 vs SVC+Corr-10.

#include "bench/bench_util.h"

int main() {
  using namespace svc;
  using namespace svc::bench;

  TpcdConfig cfg;
  cfg.scale_factor = 0.012;
  cfg.zipf_z = 1.0;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("cube", TpcdCubeViewDef(), &db), "cube");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");

  auto [mt, fresh] = TimeFullMaintenance(view, deltas, db);
  (void)mt;
  auto [st, samples] = TimeSvcCleaning(view, deltas, db, 0.10);
  (void)st;
  const Table* stale = CheckedValue(db.GetTable("cube"), "stale");

  std::printf(
      "-- Figure 11: cube roll-up accuracy (median relative error, sum of "
      "revenue) --\n");
  TablePrinter table({"rollup", "dims", "stale", "svc_aqp_10",
                      "svc_corr_10"});
  double s_sum = 0, a_sum = 0, c_sum = 0;
  int n = 0;
  for (const auto& vq : TpcdCubeRollups()) {
    MethodErrors e = EvaluateQuery(*stale, fresh, samples, vq);
    std::string dims;
    for (const auto& d : vq.group_by) dims += (dims.empty() ? "" : ",") + d;
    if (dims.empty()) dims = "(all)";
    table.AddRow({vq.name, dims, TablePrinter::Pct(e.stale.median),
                  TablePrinter::Pct(e.aqp.median),
                  TablePrinter::Pct(e.corr.median)});
    s_sum += e.stale.median;
    a_sum += e.aqp.median;
    c_sum += e.corr.median;
    ++n;
  }
  table.Print();
  std::printf(
      "average: stale=%.2f%% aqp=%.2f%% corr=%.2f%% (corr %.1fx better than "
      "stale, %.1fx than aqp)\n",
      100 * s_sum / n, 100 * a_sum / n, 100 * c_sum / n,
      s_sum / std::max(c_sum, 1e-9), a_sum / std::max(c_sum, 1e-9));
  return 0;
}
