// Reproduces Figure 12: the MAX per-group error of the cube roll-ups. Even
// with a 10% update size, some stale groups are badly wrong (the paper saw
// ~80%); SVC pulls the worst case down dramatically.

#include "bench/bench_util.h"

int main() {
  using namespace svc;
  using namespace svc::bench;

  TpcdConfig cfg;
  cfg.scale_factor = 0.012;
  cfg.zipf_z = 1.0;
  Database db = CheckedValue(GenerateTpcdDatabase(cfg), "tpcd");
  MaterializedView view = CheckedValue(
      MaterializedView::Create("cube", TpcdCubeViewDef(), &db), "cube");
  TpcdUpdateConfig ucfg;
  ucfg.fraction = 0.10;
  DeltaSet deltas = CheckedValue(GenerateTpcdUpdates(db, cfg, ucfg),
                                 "updates");
  CheckOk(deltas.Register(&db), "register");

  auto [mt, fresh] = TimeFullMaintenance(view, deltas, db);
  (void)mt;
  auto [st, samples] = TimeSvcCleaning(view, deltas, db, 0.10);
  (void)st;
  const Table* stale = CheckedValue(db.GetTable("cube"), "stale");

  std::printf(
      "-- Figure 12: cube roll-up MAX group error (10%% sample, 10%% "
      "updates) --\n");
  TablePrinter table({"rollup", "stale_max", "svc_aqp_max",
                      "svc_corr_max"});
  for (const auto& vq : TpcdCubeRollups()) {
    // Skip the finest roll-ups where single-row groups make max relative
    // error degenerate for sampled estimators; the paper's figure keeps
    // coarser dimensions prominent.
    if (vq.group_by.size() > 2) continue;
    MethodErrors e = EvaluateQuery(*stale, fresh, samples, vq);
    table.AddRow({vq.name, TablePrinter::Pct(e.stale.max),
                  TablePrinter::Pct(e.aqp.max),
                  TablePrinter::Pct(e.corr.max)});
  }
  table.Print();
  return 0;
}
