// Reproduces Figure 4 of the paper:
//  (a) Join View (lineitem ⋈ orders), 10% updates: maintenance time of SVC
//      as a function of sampling ratio, against the full-IVM line.
//  (b) Fixed 10% sampling ratio: SVC speedup over IVM as the update size
//      grows (super-linear because η pushes to both join inputs).

#include "bench/bench_util.h"

namespace svc {
namespace bench {
namespace {

constexpr double kScale = 0.015;
constexpr double kZipf = 2.0;

void PartA() {
  std::printf(
      "-- Figure 4(a): Join View maintenance time vs sampling ratio "
      "(update size 10%%) --\n");
  JoinViewFixture fx = MakeJoinViewFixture(kScale, kZipf, 0.10);
  auto [ivm_secs, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
  (void)fresh;
  TablePrinter table({"sampling_ratio", "svc_maintenance_s", "ivm_s",
                      "speedup"});
  for (double m : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    auto [svc_secs, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db, m);
    (void)samples;
    table.AddRow({TablePrinter::Num(m, 1), TablePrinter::Num(svc_secs, 3),
                  TablePrinter::Num(ivm_secs, 3),
                  TablePrinter::Num(ivm_secs / svc_secs, 2) + "x"});
  }
  table.Print();
}

void PartB() {
  std::printf(
      "\n-- Figure 4(b): SVC-10%% speedup vs update size (%% of base) --\n");
  TablePrinter table({"update_size", "ivm_s", "svc10_s", "speedup"});
  for (double frac : {0.025, 0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20}) {
    JoinViewFixture fx = MakeJoinViewFixture(kScale, kZipf, frac);
    auto [ivm_secs, fresh] = TimeFullMaintenance(fx.view, fx.deltas, fx.db);
    (void)fresh;
    auto [svc_secs, samples] = TimeSvcCleaning(fx.view, fx.deltas, fx.db,
                                               0.10);
    (void)samples;
    table.AddRow({TablePrinter::Pct(frac), TablePrinter::Num(ivm_secs, 3),
                  TablePrinter::Num(svc_secs, 3),
                  TablePrinter::Num(ivm_secs / svc_secs, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace svc

int main() {
  svc::bench::PartA();
  svc::bench::PartB();
  return 0;
}
