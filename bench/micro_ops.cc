// Micro-benchmark: relational operator throughput of the engine substrate
// — scan+filter, hash join, hash aggregation, the composed join+group-by
// pipeline, and the η sampling operator — measured for the *current*
// executor against a faithful replica of the original string-keyed,
// row-copying implementation (kept below as the permanent baseline).
//
// This is the canonical before/after harness for executor work: it emits
// BENCH_executor.json and, with --min-speedup, acts as a regression gate
// on the join+aggregate pipeline (scripts/check.sh runs it at 3.0x).
//
// A second section measures parallel scaling: the current executor at
// threads=1 vs threads=N (--threads, default 8) on the same plans, with a
// row-count cross-check (the parallel executor is bit-deterministic).
// --min-parallel-speedup gates the join+aggregate parallel speedup; it
// defaults to off because the attainable ratio is bounded by the physical
// core count of the machine (a 1-core container can only show 1.0x).
//
// Usage: micro_ops [--rows N] [--reps N] [--out FILE] [--min-speedup X]
//                  [--threads N] [--min-parallel-speedup X]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/shared_engine.h"
#include "core/sharded_engine.h"
#include "core/svc.h"
#include "relational/executor.h"
#include "storage/durable_engine.h"

namespace svc {
namespace {

Database MakeDb(int64_t rows) {
  Database db;
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "key", ValueType::kInt},
                     {"", "val", ValueType::kDouble}}));
  (void)fact.SetPrimaryKey({"id"});
  Table dim(Schema({{"", "key", ValueType::kInt},
                    {"", "attr", ValueType::kDouble}}));
  (void)dim.SetPrimaryKey({"key"});
  Rng rng(5);
  const int64_t dims = std::max<int64_t>(rows / 16, 1);
  for (int64_t k = 0; k < dims; ++k) {
    (void)dim.Insert({Value::Int(k), Value::Double(rng.NextDouble())});
  }
  for (int64_t i = 0; i < rows; ++i) {
    (void)fact.Insert({Value::Int(i), Value::Int(rng.UniformInt(0, dims - 1)),
                       Value::Double(rng.Uniform(0, 100))});
  }
  db.PutTable("fact", std::move(fact));
  db.PutTable("dim", std::move(dim));
  return db;
}

// ---- Baseline: the original executor's algorithms ---------------------------
// Deep-copying scans, std::string row keys, node-based std:: hash
// containers. Deliberately kept verbatim-in-spirit so the comparison stays
// reproducible as the real executor evolves.

Table BaselineScan(const Database& db, const std::string& name,
                   const std::string& alias) {
  const Table* t = *db.GetTable(name);
  Table out(t->schema().WithQualifier(alias));
  for (const auto& r : t->rows()) out.AppendUnchecked(r);
  return out;
}

Table BaselineSelect(Table in, const ExprPtr& pred_template) {
  ExprPtr pred = pred_template->Clone();
  (void)pred->Bind(in.schema());
  Table out(in.schema());
  for (const auto& r : in.rows()) {
    if (pred->Eval(r).IsTrue()) out.AppendUnchecked(r);
  }
  return out;
}

bool BaselineAnyNull(const Row& row, const std::vector<size_t>& idx) {
  for (size_t i : idx) {
    if (row[i].is_null()) return true;
  }
  return false;
}

/// The seed executor's general hash-join path verbatim: build the right
/// side into a std::unordered_multimap keyed by encoded std::string keys,
/// probe the left with a fresh key string per row, and keep the
/// matched-row bookkeeping the seed carried for outer joins.
Table BaselineJoinInner(const Table& left, const Table& right,
                        const std::vector<std::string>& lrefs,
                        const std::vector<std::string>& rrefs) {
  const std::vector<size_t> lidx = *left.schema().ResolveAll(lrefs);
  const std::vector<size_t> ridx = *right.schema().ResolveAll(rrefs);
  const Schema out_schema = Schema::Concat(left.schema(), right.schema());

  std::unordered_multimap<std::string, size_t> build;
  build.reserve(right.NumRows() * 2);
  for (size_t i = 0; i < right.NumRows(); ++i) {
    if (BaselineAnyNull(right.row(i), ridx)) continue;
    build.emplace(EncodeRowKey(right.row(i), ridx), i);
  }
  std::vector<char> right_matched(right.NumRows(), 0);
  Table out(out_schema);
  auto emit = [&](const Row* l, const Row* r) {
    Row row;
    row.reserve(out_schema.NumColumns());
    row.insert(row.end(), l->begin(), l->end());
    row.insert(row.end(), r->begin(), r->end());
    out.AppendUnchecked(std::move(row));
  };
  for (size_t i = 0; i < left.NumRows(); ++i) {
    const Row& l = left.row(i);
    if (BaselineAnyNull(l, lidx)) continue;
    const std::string key = EncodeRowKey(l, lidx);
    auto [it, end] = build.equal_range(key);
    for (; it != end; ++it) {
      right_matched[it->second] = 1;
      emit(&l, &right.row(it->second));
    }
  }
  return out;
}

/// The seed executor's hash aggregation verbatim: std::string group keys
/// into a node-based std::unordered_map, a generic per-aggregate state
/// vector (including the unordered_set the seed embedded for
/// count-distinct), and a virtual Eval + Value copy per aggregate input.
Table BaselineAggregate(const Table& in, const std::string& group_col,
                        const std::vector<AggItem>& aggs) {
  const std::vector<size_t> gidx = *in.schema().ResolveAll({group_col});
  std::vector<ExprPtr> inputs(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].input) {
      inputs[a] = aggs[a].input->Clone();
      (void)inputs[a]->Bind(in.schema());
    }
  }

  struct State {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    bool int_input = true;
    std::unordered_set<std::string> distinct;
  };
  std::unordered_map<std::string, size_t> group_of;
  std::vector<Row> group_keys;
  std::vector<std::vector<State>> states;
  for (const auto& r : in.rows()) {
    const std::string key = EncodeRowKey(r, gidx);
    auto [it, inserted] = group_of.emplace(key, group_keys.size());
    if (inserted) {
      Row gk;
      for (size_t i : gidx) gk.push_back(r[i]);
      group_keys.push_back(std::move(gk));
      states.emplace_back(aggs.size());
    }
    auto& st = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      State& s = st[a];
      if (aggs[a].func == AggFunc::kCountStar) {
        ++s.count;
        continue;
      }
      const Value v = inputs[a]->Eval(r);
      if (v.is_null()) continue;
      switch (aggs[a].func) {
        case AggFunc::kSum:
          ++s.count;
          if (v.type() == ValueType::kInt && s.int_input) {
            s.isum += v.AsInt();
          } else {
            if (s.int_input) {
              s.dsum += static_cast<double>(s.isum);
              s.int_input = false;
            }
            s.dsum += v.ToDouble();
          }
          break;
        case AggFunc::kCount:
          ++s.count;
          break;
        default:
          break;
      }
    }
  }
  Schema out_schema;
  for (size_t i : gidx) out_schema.AddColumn(in.schema().column(i));
  for (const auto& a : aggs) {
    out_schema.AddColumn({"", a.alias, ValueType::kDouble});
  }
  Table out(out_schema);
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      const State& s = states[g][a];
      if (aggs[a].func == AggFunc::kCountStar ||
          aggs[a].func == AggFunc::kCount) {
        row.push_back(Value::Int(s.count));
      } else if (s.int_input) {
        row.push_back(Value::Int(s.isum));
      } else {
        row.push_back(Value::Double(s.dsum));
      }
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Table BaselineEta(const Table& in, const std::vector<std::string>& cols,
                  double m, HashFamily family) {
  const std::vector<size_t> idx = *in.schema().ResolveAll(cols);
  Table out(in.schema());
  for (const auto& r : in.rows()) {
    const std::string key = EncodeRowKey(r, idx);
    if (HashInSample(key, m, family)) out.AppendUnchecked(r);
  }
  return out;
}

// ---- Harness ----------------------------------------------------------------

struct BenchResult {
  std::string name;
  double baseline_ms = 0;
  double current_ms = 0;
  size_t out_rows = 0;
  double speedup() const { return baseline_ms / current_ms; }
};

/// Best-of-`reps` wall time in milliseconds (one warmup run first).
double TimeMs(int reps, const std::function<size_t()>& fn, size_t* out_rows) {
  *out_rows = fn();  // warmup + result capture
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    const size_t n = fn();
    best = std::min(best, sw.ElapsedMillis());
    if (n != *out_rows) {
      std::fprintf(stderr, "[micro_ops] nondeterministic row count\n");
      std::exit(2);
    }
  }
  return best;
}

size_t RunPlan(const PlanNode& plan, const Database& db,
               ExecOptions opts = {}) {
  auto r = ExecutePlan(plan, db, opts);
  if (!r.ok()) {
    std::fprintf(stderr, "[micro_ops] plan failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(2);
  }
  return r->NumRows();
}

}  // namespace
}  // namespace svc

int main(int argc, char** argv) {
  using namespace svc;
  int64_t rows = 100000;
  int reps = 7;
  double min_speedup = 0.0;           // 0 = report only
  double min_parallel_speedup = 0.0;  // 0 = report only
  double min_cache_speedup = 0.0;     // 0 = report only
  int threads = 8;
  std::string out_path = "BENCH_executor.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      rows = std::atoll(next("--rows"));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = std::atoi(next("--reps"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--min-speedup") == 0) {
      min_speedup = std::atof(next("--min-speedup"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(next("--threads"));
    } else if (std::strcmp(argv[i], "--min-parallel-speedup") == 0) {
      min_parallel_speedup = std::atof(next("--min-parallel-speedup"));
    } else if (std::strcmp(argv[i], "--min-cache-speedup") == 0) {
      min_cache_speedup = std::atof(next("--min-cache-speedup"));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  // atoll/atoi return 0 on garbage; zero rows/reps/threads would time
  // nothing and report nonsense (1e300 ms, NaN speedups) as a gate verdict.
  if (rows < 1 || reps < 1 || threads < 1) {
    std::fprintf(stderr,
                 "invalid --rows/--reps/--threads (must be >= 1; got "
                 "%lld/%d/%d)\n",
                 static_cast<long long>(rows), reps, threads);
    return 2;
  }

  Database db = MakeDb(rows);
  std::vector<BenchResult> results;

  auto bench = [&](const std::string& name,
                   const std::function<size_t()>& baseline,
                   const std::function<size_t()>& current) {
    BenchResult r;
    r.name = name;
    size_t rows_base = 0, rows_cur = 0;
    r.baseline_ms = TimeMs(reps, baseline, &rows_base);
    r.current_ms = TimeMs(reps, current, &rows_cur);
    if (rows_base != rows_cur) {
      std::fprintf(stderr,
                   "[micro_ops] %s: baseline produced %zu rows, current %zu\n",
                   name.c_str(), rows_base, rows_cur);
      std::exit(2);
    }
    r.out_rows = rows_cur;
    results.push_back(r);
    std::printf("%-16s baseline %8.2f ms   current %8.2f ms   speedup %5.2fx"
                "   (%zu rows)\n",
                name.c_str(), r.baseline_ms, r.current_ms, r.speedup(),
                r.out_rows);
  };

  // scan + filter
  {
    ExprPtr pred = Expr::Gt(Expr::Col("val"), Expr::LitDouble(50));
    PlanPtr plan = PlanNode::Select(PlanNode::Scan("fact"), pred->Clone());
    bench(
        "scan_filter",
        [&] { return BaselineSelect(BaselineScan(db, "fact", "fact"), pred)
                  .NumRows(); },
        [&] { return RunPlan(*plan, db); });
  }

  // hash join (fact ⋈ dim)
  {
    PlanPtr plan = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                  PlanNode::Scan("dim", "d"), JoinType::kInner,
                                  {{"f.key", "d.key"}}, nullptr, true);
    bench(
        "hash_join",
        [&] {
          return BaselineJoinInner(BaselineScan(db, "fact", "f"),
                                   BaselineScan(db, "dim", "d"), {"f.key"},
                                   {"d.key"})
              .NumRows();
        },
        [&] { return RunPlan(*plan, db); });
  }

  // hash aggregation (group fact by key)
  {
    PlanPtr plan = PlanNode::Aggregate(
        PlanNode::Scan("fact"), {"key"},
        {{AggFunc::kSum, Expr::Col("val"), "s"},
         {AggFunc::kCountStar, nullptr, "c"}});
    bench(
        "hash_aggregate",
        [&] {
          return BaselineAggregate(
                     BaselineScan(db, "fact", "fact"), "key",
                     {{AggFunc::kSum, Expr::Col("val"), "s"},
                      {AggFunc::kCountStar, nullptr, "c"}})
              .NumRows();
        },
        [&] { return RunPlan(*plan, db); });
  }

  // composed join + group-by pipeline — the regression-gated path
  {
    PlanPtr join = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                  PlanNode::Scan("dim", "d"), JoinType::kInner,
                                  {{"f.key", "d.key"}}, nullptr, true);
    PlanPtr plan = PlanNode::Aggregate(
        join, {"f.key"},
        {{AggFunc::kSum, Expr::Col("f.val"), "s"},
         {AggFunc::kCountStar, nullptr, "c"}});
    bench(
        "join_aggregate",
        [&] {
          Table joined = BaselineJoinInner(BaselineScan(db, "fact", "f"),
                                           BaselineScan(db, "dim", "d"),
                                           {"f.key"}, {"d.key"});
          return BaselineAggregate(joined, "f.key",
                                   {{AggFunc::kSum, Expr::Col("f.val"), "s"},
                                    {AggFunc::kCountStar, nullptr, "c"}})
              .NumRows();
        },
        [&] { return RunPlan(*plan, db); });
  }

  // η sampling operator
  {
    PlanPtr plan = PlanNode::HashFilter(PlanNode::Scan("fact"), {"id"}, 0.1,
                                        HashFamily::kFnv1a);
    bench(
        "eta_sample",
        [&] { return BaselineEta(BaselineScan(db, "fact", "fact"), {"id"}, 0.1,
                                 HashFamily::kFnv1a)
                  .NumRows(); },
        [&] { return RunPlan(*plan, db); });
  }

  // ---- Parallel scaling: current executor, threads=1 vs threads=N ----------
  struct ParResult {
    std::string name;
    double t1_ms = 0;
    double tn_ms = 0;
    size_t out_rows = 0;
    double speedup() const { return t1_ms / tn_ms; }
  };
  std::vector<ParResult> par_results;
  auto bench_par = [&](const std::string& name, const PlanNode& plan) {
    ParResult r;
    r.name = name;
    size_t rows_seq = 0, rows_par = 0;
    r.t1_ms = TimeMs(
        reps, [&] { return RunPlan(plan, db, ExecOptions{1}); }, &rows_seq);
    r.tn_ms = TimeMs(
        reps, [&] { return RunPlan(plan, db, ExecOptions{threads}); },
        &rows_par);
    if (rows_seq != rows_par) {
      std::fprintf(stderr,
                   "[micro_ops] %s: threads=1 produced %zu rows, threads=%d "
                   "produced %zu\n",
                   name.c_str(), rows_seq, threads, rows_par);
      std::exit(2);
    }
    r.out_rows = rows_par;
    par_results.push_back(r);
    std::printf("%-16s threads=1 %8.2f ms   threads=%-2d %8.2f ms   "
                "speedup %5.2fx   (%zu rows)\n",
                name.c_str(), r.t1_ms, threads, r.tn_ms, r.speedup(),
                r.out_rows);
  };
  std::printf("-- parallel scaling (threads=%d) --\n", threads);
  {
    PlanPtr join = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                  PlanNode::Scan("dim", "d"), JoinType::kInner,
                                  {{"f.key", "d.key"}}, nullptr, true);
    bench_par("hash_join", *join);
  }
  {
    PlanPtr plan = PlanNode::Aggregate(
        PlanNode::Scan("fact"), {"key"},
        {{AggFunc::kSum, Expr::Col("val"), "s"},
         {AggFunc::kCountStar, nullptr, "c"}});
    bench_par("hash_aggregate", *plan);
  }
  {
    PlanPtr join = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                  PlanNode::Scan("dim", "d"), JoinType::kInner,
                                  {{"f.key", "d.key"}}, nullptr, true);
    PlanPtr plan = PlanNode::Aggregate(
        std::move(join), {"f.key"},
        {{AggFunc::kSum, Expr::Col("f.val"), "s"},
         {AggFunc::kCountStar, nullptr, "c"}});
    bench_par("join_aggregate", *plan);
  }

  // -- Serving layer: repeated SVC queries on an unchanged stale engine --
  // Cold = every query re-runs the full cleaning pipeline (the cache-off
  // path, which was the only path before the cleaned-sample cache); warm =
  // the cache serves the memoized samples and each query pays only the
  // estimator. The CoW ingest measurement drives single-row commits
  // through a SharedEngine at increasing queue depths: with the chunked
  // DeltaSet a commit copies only the rows of the last batch, so the cost
  // stays flat while the queue grows.
  struct CacheBench {
    double cold_ms = 0;
    double warm_ms = 0;
    double speedup() const { return cold_ms / warm_ms; }
    std::vector<std::pair<size_t, double>> commit_us;  // depth -> µs/commit
  } cache_bench;
  {
    const int64_t cache_rows = std::min<int64_t>(rows, 20000);
    SvcEngine engine(MakeDb(cache_rows));
    PlanPtr def = PlanNode::Aggregate(
        PlanNode::Scan("fact"), {"key"},
        {{AggFunc::kSum, Expr::Col("val"), "sv"},
         {AggFunc::kCountStar, nullptr, "c"}});
    if (auto st = engine.CreateView("factView", std::move(def)); !st.ok()) {
      std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
      return 2;
    }
    Rng rng(17);
    const int64_t dims = std::max<int64_t>(cache_rows / 16, 1);
    for (int64_t i = 0; i < cache_rows / 20; ++i) {
      if (auto st = engine.InsertRecord(
              "fact", {Value::Int(cache_rows + i),
                       Value::Int(rng.UniformInt(0, dims - 1)),
                       Value::Double(rng.Uniform(0, 100))});
          !st.ok()) {
        std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
        return 2;
      }
    }
    AggregateQuery q = AggregateQuery::Sum(Expr::Col("sv"));
    SvcQueryOptions qopts;
    qopts.ratio = 0.1;
    auto run_query = [&](const SvcEngine& e) -> size_t {
      auto r = e.Query("factView", q, qopts);
      if (!r.ok()) {
        std::fprintf(stderr, "[micro_ops] query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(2);
      }
      return r->estimate.sample_rows;
    };
    SvcEngine cold(engine);
    cold.set_sample_cache_enabled(false);
    size_t cold_rows = 0, warm_rows = 0;
    cache_bench.cold_ms = TimeMs(reps, [&] { return run_query(cold); },
                                 &cold_rows);
    cache_bench.warm_ms = TimeMs(reps, [&] { return run_query(engine); },
                                 &warm_rows);
    if (cold_rows != warm_rows) {
      std::fprintf(stderr,
                   "[micro_ops] query_cache: cold used %zu sample rows, "
                   "warm %zu\n",
                   cold_rows, warm_rows);
      return 2;
    }
    std::printf("-- query cache (repeated SVC query, %lld-row view) --\n",
                static_cast<long long>(cache_rows));
    std::printf("%-16s cold %8.3f ms   warm %8.3f ms   speedup %7.1fx\n",
                "svc_query", cache_bench.cold_ms, cache_bench.warm_ms,
                cache_bench.speedup());

    // CoW ingest: one-row commits at increasing queue depth.
    std::printf("-- shared-engine ingest commit vs queue depth --\n");
    for (const size_t depth : {size_t{0}, size_t{2000}, size_t{8000}}) {
      SharedEngine se(MakeDb(2000));
      int64_t next_id = 1000000;
      // Pre-queue `depth` rows as one batch commit.
      if (depth > 0) {
        DeltaSet batch;
        for (size_t i = 0; i < depth; ++i) {
          (void)batch.AddInsert(se.Snapshot()->engine.db(), "fact",
                                {Value::Int(next_id++), Value::Int(0),
                                 Value::Double(1.0)});
        }
        if (auto st = se.IngestDeltas(std::move(batch)); !st.ok()) {
          std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
          return 2;
        }
      }
      constexpr int kCommits = 200;
      Stopwatch sw;
      for (int i = 0; i < kCommits; ++i) {
        if (auto st = se.InsertRecord(
                "fact", {Value::Int(next_id++), Value::Int(0),
                         Value::Double(1.0)});
            !st.ok()) {
          std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
          return 2;
        }
      }
      const double us = sw.ElapsedMillis() * 1e3 / kCommits;
      cache_bench.commit_us.push_back({depth, us});
      std::printf("queued=%-6zu commit %8.2f us\n", depth, us);
    }
  }

  // -- Sharded scatter-gather query: unsharded vs 4-way fan-out ---------------
  // The same cold SVC query (sample caches off, so every run pays the full
  // cleaning pipeline) served by one engine vs a 4-shard ShardedEngine:
  // the query scatters to per-shard snapshots on the pool, per-shard
  // samples are merged in canonical order, and the stock estimator runs
  // once at the coordinator. The answer is bit-identical to the unsharded
  // engine's (cross-checked below); the block is report-only because the
  // fan-out win is bounded by the physical core count (docs/PERF.md).
  struct ShardedBench {
    int shards = 0;
    double unsharded_ms = 0;
    double sharded_ms = 0;
    size_t sample_rows = 0;
    double speedup() const { return unsharded_ms / sharded_ms; }
  } sharded_bench;
  {
    const int64_t sh_rows = std::min<int64_t>(rows, 20000);
    constexpr int kShards = 4;
    sharded_bench.shards = kShards;
    // SPJ view keyed by the fact PK (id): one view row per base row, so
    // ratio x rows sample sizes, and the view's natural order is already
    // the canonical encoded-key order the gather path produces.
    auto view_def = [] {
      return PlanNode::Select(PlanNode::Scan("fact"),
                              Expr::Gt(Expr::Col("val"), Expr::LitDouble(-1)));
    };
    // One delta workload, applied identically to both engines.
    Rng rng(23);
    const int64_t dims = std::max<int64_t>(sh_rows / 16, 1);
    std::vector<Row> deltas;
    for (int64_t i = 0; i < sh_rows / 20; ++i) {
      deltas.push_back({Value::Int(sh_rows + i),
                        Value::Int(rng.UniformInt(0, dims - 1)),
                        Value::Double(rng.Uniform(0, 100))});
    }
    Database base = MakeDb(sh_rows);

    SvcEngine flat{Database(base)};
    flat.set_sample_cache_enabled(false);
    if (auto st = flat.CreateView("factView", view_def()); !st.ok()) {
      std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
      return 2;
    }
    for (const Row& r : deltas) {
      if (auto st = flat.InsertRecord("fact", r); !st.ok()) {
        std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
        return 2;
      }
    }

    ShardedEngine sharded(Database(), kShards);
    sharded.set_sample_cache_enabled(false);
    if (auto st = sharded.CreateTable("fact", **base.GetTable("fact"));
        !st.ok()) {
      std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
      return 2;
    }
    if (auto st = sharded.CreateView("factView", view_def()); !st.ok()) {
      std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
      return 2;
    }
    if (auto st = sharded.InsertRows("fact", deltas); !st.ok()) {
      std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
      return 2;
    }

    AggregateQuery q = AggregateQuery::Sum(Expr::Col("val"));
    SvcQueryOptions qopts;
    qopts.ratio = 0.1;
    const auto snap = sharded.Snapshot();
    auto query_flat = [&]() -> Result<SvcAnswer> {
      return flat.Query("factView", q, qopts);
    };
    auto query_sharded = [&]() -> Result<SvcAnswer> {
      return sharded.Query(*snap, "factView", q, qopts);
    };
    auto rows_of = [](const Result<SvcAnswer>& r) -> size_t {
      if (!r.ok()) {
        std::fprintf(stderr, "[micro_ops] sharded_query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(2);
      }
      return r->estimate.sample_rows;
    };
    size_t flat_rows = 0, sharded_rows = 0;
    sharded_bench.unsharded_ms =
        TimeMs(reps, [&] { return rows_of(query_flat()); }, &flat_rows);
    sharded_bench.sharded_ms =
        TimeMs(reps, [&] { return rows_of(query_sharded()); }, &sharded_rows);
    sharded_bench.sample_rows = sharded_rows;
    const double flat_val = query_flat()->estimate.value;
    const double sharded_val = query_sharded()->estimate.value;
    if (flat_rows != sharded_rows ||
        std::memcmp(&flat_val, &sharded_val, sizeof flat_val) != 0) {
      std::fprintf(stderr,
                   "[micro_ops] sharded_query: answers diverged "
                   "(unsharded %.17g on %zu sample rows, sharded %.17g on "
                   "%zu)\n",
                   flat_val, flat_rows, sharded_val, sharded_rows);
      return 2;
    }
    std::printf("-- sharded scatter-gather query (%d shards, cold clean) --\n",
                kShards);
    std::printf("%-16s unsharded %8.3f ms   sharded %8.3f ms   "
                "speedup %5.2fx   (%zu sample rows)\n",
                "sharded_query", sharded_bench.unsharded_ms,
                sharded_bench.sharded_ms, sharded_bench.speedup(),
                sharded_bench.sample_rows);
  }

  // -- Durable commit latency per WAL fsync policy ---------------------------
  // One-row logged commits through a DurableEngine in a scratch directory.
  // The spread between off / every=N / always is the price of the
  // durability guarantee (documented in docs/PERF.md); there is no gate
  // because the absolute numbers are storage-hardware-bound.
  constexpr int kWalCommits = 64;
  std::vector<std::pair<std::string, double>> wal_commit_us;
  {
    std::printf("-- durable commit latency (WAL fsync policy) --\n");
    for (const char* spec : {"off", "every=8", "always"}) {
      char tmpl[] = "/tmp/svc_wal_bench_XXXXXX";
      if (mkdtemp(tmpl) == nullptr) {
        std::fprintf(stderr, "[micro_ops] mkdtemp failed\n");
        return 2;
      }
      const std::string dir = tmpl;
      {
        DurableOptions dopts;
        dopts.data_dir = dir;
        dopts.wal = ParseFsyncSpec(spec).value();
        auto opened = DurableEngine::Open(dopts);
        if (!opened.ok()) {
          std::fprintf(stderr, "[micro_ops] %s\n",
                       opened.status().ToString().c_str());
          return 2;
        }
        std::shared_ptr<DurableEngine> engine = std::move(opened).value();
        Table t(Schema({{"", "id", ValueType::kInt},
                        {"", "val", ValueType::kDouble}}));
        (void)t.SetPrimaryKey({"id"});
        int64_t next_id = 0;
        auto commit = [&] {
          return engine->InsertRecord(
              "wal_fact", {Value::Int(next_id++), Value::Double(1.0)});
        };
        // Table creation (and the first append's file growth) stays out of
        // the timed loop.
        if (auto st = engine->CreateTable("wal_fact", std::move(t));
            !st.ok()) {
          std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
          return 2;
        }
        if (auto st = commit(); !st.ok()) {
          std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
          return 2;
        }
        Stopwatch sw;
        for (int i = 0; i < kWalCommits; ++i) {
          if (auto st = commit(); !st.ok()) {
            std::fprintf(stderr, "[micro_ops] %s\n", st.ToString().c_str());
            return 2;
          }
        }
        const double us = sw.ElapsedMillis() * 1e3 / kWalCommits;
        wal_commit_us.push_back({spec, us});
        std::printf("fsync=%-8s commit %8.2f us   (%d commits)\n", spec, us,
                    kWalCommits);
      }
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }

  // JSON report.
  const BenchResult* gate = nullptr;
  for (const auto& r : results) {
    if (r.name == "join_aggregate") gate = &r;
  }
  const ParResult* par_gate = nullptr;
  for (const auto& r : par_results) {
    if (r.name == "join_aggregate") par_gate = &r;
  }
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"generated_by\": \"bench/micro_ops\",\n");
  std::fprintf(f, "  \"rows\": %lld,\n  \"reps\": %d,\n",
               static_cast<long long>(rows), reps);
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"baseline_ms\": %.3f, "
                 "\"current_ms\": %.3f, \"speedup\": %.2f, "
                 "\"input_rows_per_s\": %.0f, \"out_rows\": %zu}%s\n",
                 r.name.c_str(), r.baseline_ms, r.current_ms, r.speedup(),
                 static_cast<double>(rows) / (r.current_ms / 1e3),
                 r.out_rows, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"parallel\": {\n    \"threads\": %d,\n", threads);
  std::fprintf(f, "    \"benchmarks\": [\n");
  for (size_t i = 0; i < par_results.size(); ++i) {
    const auto& r = par_results[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"threads1_ms\": %.3f, "
                 "\"threadsN_ms\": %.3f, \"speedup\": %.2f, "
                 "\"out_rows\": %zu}%s\n",
                 r.name.c_str(), r.t1_ms, r.tn_ms, r.speedup(), r.out_rows,
                 i + 1 < par_results.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"gate\": {\"name\": \"join_aggregate\", "
               "\"min_speedup\": %.2f, \"speedup\": %.2f, \"pass\": %s}\n"
               "  },\n",
               min_parallel_speedup, par_gate ? par_gate->speedup() : 0.0,
               (par_gate && (min_parallel_speedup <= 0.0 ||
                             par_gate->speedup() >= min_parallel_speedup))
                   ? "true"
                   : "false");
  std::fprintf(f, "  \"query_cache\": {\n");
  std::fprintf(f,
               "    \"cold_ms\": %.3f, \"warm_ms\": %.3f,\n",
               cache_bench.cold_ms, cache_bench.warm_ms);
  std::fprintf(f, "    \"ingest_commit\": [\n");
  for (size_t i = 0; i < cache_bench.commit_us.size(); ++i) {
    std::fprintf(f, "      {\"queued_rows\": %zu, \"commit_us\": %.2f}%s\n",
                 cache_bench.commit_us[i].first,
                 cache_bench.commit_us[i].second,
                 i + 1 < cache_bench.commit_us.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"gate\": {\"name\": \"svc_query_warm_vs_cold\", "
               "\"min_speedup\": %.2f, \"speedup\": %.2f, \"pass\": %s}\n"
               "  },\n",
               min_cache_speedup, cache_bench.speedup(),
               (min_cache_speedup <= 0.0 ||
                cache_bench.speedup() >= min_cache_speedup)
                   ? "true"
                   : "false");
  std::fprintf(f, "  \"sharded_query\": {\n");
  std::fprintf(f,
               "    \"shards\": %d, \"unsharded_ms\": %.3f, "
               "\"sharded_ms\": %.3f, \"speedup\": %.2f,\n",
               sharded_bench.shards, sharded_bench.unsharded_ms,
               sharded_bench.sharded_ms, sharded_bench.speedup());
  std::fprintf(f,
               "    \"sample_rows\": %zu, \"answer_bit_identical\": true\n"
               "  },\n",
               sharded_bench.sample_rows);
  std::fprintf(f, "  \"wal_commit\": {\n    \"commits\": %d,\n", kWalCommits);
  std::fprintf(f, "    \"policies\": [\n");
  for (size_t i = 0; i < wal_commit_us.size(); ++i) {
    std::fprintf(f, "      {\"fsync\": \"%s\", \"commit_us\": %.2f}%s\n",
                 wal_commit_us[i].first.c_str(), wal_commit_us[i].second,
                 i + 1 < wal_commit_us.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f,
               "  \"gate\": {\"name\": \"join_aggregate\", \"min_speedup\": "
               "%.2f, \"speedup\": %.2f, \"pass\": %s}\n}\n",
               min_speedup, gate ? gate->speedup() : 0.0,
               (gate && (min_speedup <= 0.0 || gate->speedup() >= min_speedup))
                   ? "true"
                   : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  bool fail = false;
  if (min_speedup > 0.0 && (!gate || gate->speedup() < min_speedup)) {
    std::fprintf(stderr,
                 "[micro_ops] REGRESSION: join_aggregate speedup %.2fx is "
                 "below the %.2fx floor\n",
                 gate ? gate->speedup() : 0.0, min_speedup);
    fail = true;
  }
  if (min_parallel_speedup > 0.0 &&
      (!par_gate || par_gate->speedup() < min_parallel_speedup)) {
    std::fprintf(stderr,
                 "[micro_ops] REGRESSION: join_aggregate parallel speedup "
                 "%.2fx at %d threads is below the %.2fx floor\n",
                 par_gate ? par_gate->speedup() : 0.0, threads,
                 min_parallel_speedup);
    fail = true;
  }
  if (min_cache_speedup > 0.0 &&
      cache_bench.speedup() < min_cache_speedup) {
    std::fprintf(stderr,
                 "[micro_ops] REGRESSION: warm repeated SVC query is only "
                 "%.1fx faster than cold (floor %.1fx)\n",
                 cache_bench.speedup(), min_cache_speedup);
    fail = true;
  }
  return fail ? 1 : 0;
}
