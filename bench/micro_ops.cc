// Micro-benchmark (google-benchmark): relational operator throughput of
// the engine substrate — scan+filter, hash join, hash aggregation, and the
// η sampling operator over a realistic table.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "relational/executor.h"

namespace svc {
namespace {

Database MakeDb(int64_t rows) {
  Database db;
  Table fact(Schema({{"", "id", ValueType::kInt},
                     {"", "key", ValueType::kInt},
                     {"", "val", ValueType::kDouble}}));
  (void)fact.SetPrimaryKey({"id"});
  Table dim(Schema({{"", "key", ValueType::kInt},
                    {"", "attr", ValueType::kDouble}}));
  (void)dim.SetPrimaryKey({"key"});
  Rng rng(5);
  const int64_t dims = std::max<int64_t>(rows / 16, 1);
  for (int64_t k = 0; k < dims; ++k) {
    (void)dim.Insert({Value::Int(k), Value::Double(rng.NextDouble())});
  }
  for (int64_t i = 0; i < rows; ++i) {
    (void)fact.Insert({Value::Int(i), Value::Int(rng.UniformInt(0, dims - 1)),
                       Value::Double(rng.Uniform(0, 100))});
  }
  db.PutTable("fact", std::move(fact));
  db.PutTable("dim", std::move(dim));
  return db;
}

void BM_ScanFilter(benchmark::State& state) {
  Database db = MakeDb(state.range(0));
  PlanPtr plan = PlanNode::Select(
      PlanNode::Scan("fact"),
      Expr::Gt(Expr::Col("val"), Expr::LitDouble(50)));
  for (auto _ : state) {
    auto r = ExecutePlan(*plan, db);
    benchmark::DoNotOptimize(r->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScanFilter)->Arg(10000)->Arg(100000);

void BM_HashJoin(benchmark::State& state) {
  Database db = MakeDb(state.range(0));
  PlanPtr plan = PlanNode::Join(PlanNode::Scan("fact", "f"),
                                PlanNode::Scan("dim", "d"), JoinType::kInner,
                                {{"f.key", "d.key"}}, nullptr, true);
  for (auto _ : state) {
    auto r = ExecutePlan(*plan, db);
    benchmark::DoNotOptimize(r->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashJoin)->Arg(10000)->Arg(100000);

void BM_HashAggregate(benchmark::State& state) {
  Database db = MakeDb(state.range(0));
  PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("fact"), {"key"},
      {{AggFunc::kSum, Expr::Col("val"), "s"},
       {AggFunc::kCountStar, nullptr, "c"}});
  for (auto _ : state) {
    auto r = ExecutePlan(*plan, db);
    benchmark::DoNotOptimize(r->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashAggregate)->Arg(10000)->Arg(100000);

void BM_EtaOperator(benchmark::State& state) {
  Database db = MakeDb(state.range(0));
  PlanPtr plan = PlanNode::HashFilter(PlanNode::Scan("fact"), {"id"}, 0.1,
                                      HashFamily::kFnv1a);
  for (auto _ : state) {
    auto r = ExecutePlan(*plan, db);
    benchmark::DoNotOptimize(r->NumRows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EtaOperator)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace svc

BENCHMARK_MAIN();
