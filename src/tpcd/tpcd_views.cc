#include "tpcd/tpcd_views.h"

#include <algorithm>

namespace svc {

PlanPtr TpcdJoinViewDef() {
  // lineitem ⋈ orders on the foreign key; orders is the dimension side.
  return PlanNode::Join(PlanNode::Scan("lineitem", "l"),
                        PlanNode::Scan("orders", "o"), JoinType::kInner,
                        {{"l.l_orderkey", "o.o_orderkey"}}, nullptr,
                        /*fk_right=*/true);
}

std::vector<std::string> TpcdJoinViewSamplingKey() { return {"l_orderkey"}; }

namespace {

ExprPtr Revenue() {
  return Expr::Mul(Expr::Col("l_extendedprice"),
                   Expr::Sub(Expr::LitInt(1), Expr::Col("l_discount")));
}

ExprPtr DateBetween(const char* col, int lo, int hi) {
  return Expr::And(Expr::Ge(Expr::Col(col), Expr::LitInt(lo)),
                   Expr::Lt(Expr::Col(col), Expr::LitInt(hi)));
}

}  // namespace

std::vector<ViewQuery> TpcdJoinViewQueries() {
  std::vector<ViewQuery> out;
  // Q3: revenue of un-shipped orders by priority.
  out.push_back({"Q3",
                 {"o_orderpriority"},
                 AggregateQuery::Sum(Revenue(),
                                     Expr::Eq(Expr::Col("o_orderstatus"),
                                              Expr::LitString("O")))});
  // Q4: order counts by priority in a date window.
  out.push_back({"Q4",
                 {"o_orderpriority"},
                 AggregateQuery::Count(DateBetween("o_orderdate", 60, 180))});
  // Q5: revenue by supplier.
  out.push_back({"Q5",
                 {"l_suppkey"},
                 AggregateQuery::Sum(Revenue(),
                                     DateBetween("o_orderdate", 1, 240))});
  // Q7: shipped volume by ship mode across a date window.
  out.push_back({"Q7",
                 {"l_shipmode"},
                 AggregateQuery::Sum(Revenue(),
                                     DateBetween("l_shipdate", 90, 270))});
  // Q8: market share style: average price per order-year bucket.
  out.push_back({"Q8",
                 {"o_orderdate"},
                 AggregateQuery::Avg(Revenue(),
                                     DateBetween("o_orderdate", 240, 300))});
  // Q9: profit by part.
  out.push_back(
      {"Q9",
       {"l_partkey"},
       AggregateQuery::Sum(
           Expr::Sub(Revenue(), Expr::Mul(Expr::Col("l_quantity"),
                                          Expr::LitInt(10))),
           nullptr)});
  // Q10: returned-item revenue by customer.
  out.push_back({"Q10",
                 {"o_custkey"},
                 AggregateQuery::Sum(Revenue(),
                                     Expr::Eq(Expr::Col("l_returnflag"),
                                              Expr::LitString("R")))});
  // Q12: line counts by ship mode for high-priority orders.
  out.push_back(
      {"Q12",
       {"l_shipmode"},
       AggregateQuery::Count(Expr::Or(
           Expr::Eq(Expr::Col("o_orderpriority"), Expr::LitString("1-URGENT")),
           Expr::Eq(Expr::Col("o_orderpriority"),
                    Expr::LitString("2-HIGH"))))});
  // Q14: promo-style: average discount by return flag in a window.
  out.push_back({"Q14",
                 {"l_returnflag"},
                 AggregateQuery::Avg(Expr::Col("l_discount"),
                                     DateBetween("l_shipdate", 150, 200))});
  // Q18: large-volume orders: total quantity per order above a floor.
  out.push_back({"Q18",
                 {"o_custkey"},
                 AggregateQuery::Sum(Expr::Col("l_quantity"),
                                     Expr::Gt(Expr::Col("o_totalprice"),
                                              Expr::LitDouble(250000)))});
  // Q19: discounted revenue for small quantities.
  out.push_back({"Q19",
                 {"l_returnflag"},
                 AggregateQuery::Sum(Revenue(),
                                     Expr::And(Expr::Ge(Expr::Col("l_quantity"),
                                                        Expr::LitInt(1)),
                                               Expr::Le(Expr::Col("l_quantity"),
                                                        Expr::LitInt(15))))});
  // Q21: waiting orders per supplier (simplified to a grouped count).
  out.push_back({"Q21",
                 {"l_suppkey"},
                 AggregateQuery::Count(Expr::Eq(Expr::Col("o_orderstatus"),
                                                Expr::LitString("F")))});
  return out;
}

std::vector<ComplexView> TpcdComplexViews() {
  std::vector<ComplexView> out;
  out.push_back(
      {"V3",
       "SELECT o_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue,"
       " COUNT(1) AS n_lines "
       "FROM lineitem, orders WHERE l_orderkey = o_orderkey "
       "GROUP BY o_custkey",
       {}});
  out.push_back(
      {"V4",
       "SELECT o_orderdate, COUNT(1) AS n_orders, AVG(o_totalprice) AS "
       "avg_price FROM orders GROUP BY o_orderdate",
       {}});
  out.push_back(
      {"V5",
       "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM lineitem, orders WHERE l_orderkey = o_orderkey "
       "AND o_orderdate >= 60 AND o_orderdate < 300 GROUP BY l_suppkey",
       {}});
  out.push_back(
      {"V9",
       "SELECT l_partkey, SUM(l_extendedprice * (1 - l_discount) - "
       "10 * l_quantity) AS profit FROM lineitem GROUP BY l_partkey",
       {}});
  out.push_back(
      {"V10",
       "SELECT o_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue "
       "FROM lineitem, orders WHERE l_orderkey = o_orderkey AND "
       "l_returnflag = 'R' GROUP BY o_custkey",
       {}});
  // V13: customer order-count distribution — nested aggregation.
  out.push_back(
      {"V13",
       "SELECT c_bucket, COUNT(1) AS n_customers FROM "
       "(SELECT o_custkey, floor(c_count / 25) AS c_bucket FROM "
       "(SELECT o_custkey, COUNT(1) AS c_count FROM orders "
       " GROUP BY o_custkey) AS counts) AS per_cust GROUP BY c_bucket",
       {}});
  out.push_back(
      {"V15i",
       "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS "
       "total_revenue FROM lineitem WHERE l_shipdate >= 150 AND "
       "l_shipdate < 240 GROUP BY l_suppkey",
       {}});
  out.push_back(
      {"V18",
       "SELECT o_custkey, o_orderkey, SUM(l_quantity) AS total_qty "
       "FROM lineitem, orders WHERE l_orderkey = o_orderkey "
       "GROUP BY o_custkey, o_orderkey",
       {}});
  // V21: join against an aggregated subquery — its delta stream requires
  // re-evaluating the subquery over old and new states (muted speedup).
  out.push_back(
      {"V21",
       "SELECT l_suppkey, COUNT(1) AS waiting FROM lineitem, "
       "(SELECT o_orderdate AS d, COUNT(1) AS day_orders FROM orders "
       " GROUP BY o_orderdate) AS daily "
       "WHERE l_shipdate = daily.d AND daily.day_orders > 3 "
       "GROUP BY l_suppkey",
       {}});
  // V22: the group key is an arithmetic transformation of a base attribute
  // — the hash operator cannot push below the projection.
  out.push_back(
      {"V22",
       "SELECT price_bucket, COUNT(1) AS n_orders, SUM(o_totalprice) AS "
       "total FROM (SELECT o_orderkey, floor(o_totalprice / 20000) AS "
       "price_bucket, o_totalprice FROM orders) AS b GROUP BY price_bucket",
       {}});
  return out;
}

std::vector<ViewQuery> GenerateRandomViewQueries(
    const Table& view_data, const std::vector<std::string>& group_columns,
    const std::vector<std::string>& numeric_columns, int count, Rng* rng) {
  std::vector<ViewQuery> out;
  if (group_columns.empty() || numeric_columns.empty() ||
      view_data.empty()) {
    return out;
  }
  for (int i = 0; i < count; ++i) {
    const std::string& a =
        group_columns[rng->UniformInt(0, group_columns.size() - 1)];
    const std::string& b =
        numeric_columns[rng->UniformInt(0, numeric_columns.size() - 1)];
    // Domain of `a` from the materialized view.
    auto col = view_data.schema().Resolve(a);
    if (!col.ok()) continue;
    std::vector<Value> domain;
    for (const auto& r : view_data.rows()) domain.push_back(r[*col]);
    std::sort(domain.begin(), domain.end(),
              [](const Value& x, const Value& y) { return x < y; });
    domain.erase(std::unique(domain.begin(), domain.end(),
                             [](const Value& x, const Value& y) {
                               return x == y;
                             }),
                 domain.end());
    if (domain.size() < 2) continue;
    // Random subrange covering 30-70% of the domain (the paper's example:
    // countryCode > 50 AND countryCode < 100).
    const int64_t n_dom = static_cast<int64_t>(domain.size());
    const int64_t span = std::max<int64_t>(
        1, n_dom * 3 / 10 + rng->UniformInt(0, n_dom * 4 / 10));
    const int64_t lo_max = std::max<int64_t>(0, n_dom - 1 - span);
    size_t lo = static_cast<size_t>(rng->UniformInt(0, lo_max));
    size_t hi = static_cast<size_t>(
        std::min<int64_t>(n_dom - 1, static_cast<int64_t>(lo) + span));
    ExprPtr pred;
    if (domain[lo].IsNumeric()) {
      pred = Expr::And(Expr::Ge(Expr::Col(a), Expr::Lit(domain[lo])),
                       Expr::Le(Expr::Col(a), Expr::Lit(domain[hi])));
    } else {
      pred = Expr::Eq(Expr::Col(a), Expr::Lit(domain[lo]));
    }
    AggregateQuery q;
    switch (rng->UniformInt(0, 2)) {
      case 0:
        q = AggregateQuery::Sum(Expr::Col(b), std::move(pred));
        break;
      case 1:
        q = AggregateQuery::Avg(Expr::Col(b), std::move(pred));
        break;
      default:
        q = AggregateQuery::Count(std::move(pred));
        break;
    }
    out.push_back({"rand" + std::to_string(i), {}, std::move(q)});
  }
  return out;
}

PlanPtr TpcdCubeViewDef() {
  // lineitem ⋈ orders ⋈ customer ⋈ nation ⋈ region, rolled up to the
  // four cube dimensions.
  PlanPtr j = PlanNode::Join(PlanNode::Scan("lineitem", "l"),
                             PlanNode::Scan("orders", "o"), JoinType::kInner,
                             {{"l.l_orderkey", "o.o_orderkey"}}, nullptr,
                             true);
  j = PlanNode::Join(std::move(j), PlanNode::Scan("customer", "c"),
                     JoinType::kInner, {{"o.o_custkey", "c.c_custkey"}},
                     nullptr, true);
  j = PlanNode::Join(std::move(j), PlanNode::Scan("nation", "n"),
                     JoinType::kInner, {{"c.c_nationkey", "n.n_nationkey"}},
                     nullptr, true);
  j = PlanNode::Join(std::move(j), PlanNode::Scan("region", "r"),
                     JoinType::kInner, {{"n.n_regionkey", "r.r_regionkey"}},
                     nullptr, true);
  return PlanNode::Aggregate(
      std::move(j),
      {"c.c_custkey", "n.n_nationkey", "r.r_regionkey", "l.l_partkey"},
      {{AggFunc::kSum,
        Expr::Mul(Expr::Col("l_extendedprice"),
                  Expr::Sub(Expr::LitInt(1), Expr::Col("l_discount"))),
        "revenue"}});
}

std::vector<ViewQuery> TpcdCubeRollups(AggFunc agg) {
  // §12.6.3: all subsets used by the paper's 13 roll-ups.
  const std::vector<std::vector<std::string>> dims = {
      {},                                            // Q1: all
      {"c_custkey"},                                 // Q2
      {"n_nationkey"},                               // Q3
      {"r_regionkey"},                               // Q4
      {"l_partkey"},                                 // Q5
      {"c_custkey", "n_nationkey"},                  // Q6
      {"c_custkey", "r_regionkey"},                  // Q7
      {"c_custkey", "l_partkey"},                    // Q8
      {"n_nationkey", "r_regionkey"},                // Q9
      {"n_nationkey", "l_partkey"},                  // Q10
      {"c_custkey", "n_nationkey", "r_regionkey"},   // Q11
      {"c_custkey", "n_nationkey", "l_partkey"},     // Q12
      {"n_nationkey", "r_regionkey", "l_partkey"},   // Q13
  };
  std::vector<ViewQuery> out;
  for (size_t i = 0; i < dims.size(); ++i) {
    AggregateQuery q;
    q.func = agg;
    q.attr = Expr::Col("revenue");
    out.push_back({"Q" + std::to_string(i + 1), dims[i], std::move(q)});
  }
  return out;
}

}  // namespace svc
