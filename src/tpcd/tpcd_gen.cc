#include "tpcd/tpcd_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace svc {

namespace {

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",     "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",      "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",     "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",      "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK",
                            "MAIL", "FOB"};
const char* kReturnFlags[] = {"R", "A", "N"};
const char* kBrands[] = {"Brand#11", "Brand#22", "Brand#33", "Brand#44",
                         "Brand#55"};

constexpr int kMinDate = 1;  // workload day number
constexpr int kMaxDate = 360;

/// Skewed price: a Pareto tail whose index decreases with the skew
/// parameter z — z=1 is a mild long tail, z=4 an extreme one (the regime
/// where sampling without the outlier index falls apart, Figure 8a).
double SkewedPrice(double z, Rng* rng) {
  const double alpha = std::max(0.9, 5.0 - z);
  double u;
  do {
    u = rng->NextDouble();
  } while (u <= 1e-12);
  return std::min(900.0 * std::pow(u, -1.0 / alpha), 5.0e7);
}

struct Generators {
  Rng rng;
  double zipf_z;        // value-skew parameter
  Zipfian value_zipf;   // for quantities
  Zipfian cust_zipf;    // customer popularity in orders
  Zipfian part_zipf;    // part popularity in lineitems
  Zipfian supp_zipf;    // supplier popularity
};

Row MakeLineitem(int64_t orderkey, int64_t linenumber, Generators* g) {
  const int64_t partkey =
      static_cast<int64_t>(g->part_zipf.Next(&g->rng));
  const int64_t suppkey =
      static_cast<int64_t>(g->supp_zipf.Next(&g->rng));
  const int64_t quantity =
      1 + static_cast<int64_t>(g->value_zipf.Next(&g->rng)) % 50;
  const double price = SkewedPrice(g->zipf_z, &g->rng);
  const double discount = 0.01 * static_cast<double>(
                              g->rng.UniformInt(0, 10));
  return {Value::Int(orderkey),
          Value::Int(linenumber),
          Value::Int(partkey),
          Value::Int(suppkey),
          Value::Int(quantity),
          Value::Double(price),
          Value::Double(discount),
          Value::String(kReturnFlags[g->rng.UniformInt(0, 2)]),
          Value::String(kShipModes[g->rng.UniformInt(0, 6)]),
          Value::Int(g->rng.UniformInt(kMinDate, kMaxDate))};
}

Row MakeOrder(int64_t orderkey, size_t num_customers, Generators* g) {
  int64_t custkey = static_cast<int64_t>(g->cust_zipf.Next(&g->rng));
  custkey = 1 + (custkey - 1) % static_cast<int64_t>(num_customers);
  return {Value::Int(orderkey),
          Value::Int(custkey),
          Value::String(g->rng.Bernoulli(0.5) ? "F" : "O"),
          Value::Double(g->rng.Uniform(1000, 400000)),
          Value::Int(g->rng.UniformInt(kMinDate, kMaxDate)),
          Value::String(kPriorities[g->rng.UniformInt(0, 4)])};
}

}  // namespace

Result<Database> GenerateTpcdDatabase(const TpcdConfig& config) {
  Database db;
  Generators g{Rng(config.seed),
               config.zipf_z,
               Zipfian(1000, config.zipf_z),
               Zipfian(std::max<size_t>(config.NumCustomers(), 1),
                       config.PopularityZipf()),
               Zipfian(std::max<size_t>(config.NumParts(), 1),
                       config.PopularityZipf()),
               Zipfian(std::max<size_t>(config.NumSuppliers(), 1),
                       config.PopularityZipf())};

  // region
  {
    Table t(Schema({{"", "r_regionkey", ValueType::kInt},
                    {"", "r_name", ValueType::kString}}));
    SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"r_regionkey"}));
    for (int64_t i = 0; i < 5; ++i) {
      SVC_RETURN_IF_ERROR(t.Insert({Value::Int(i),
                                    Value::String(kRegions[i])}));
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("region", std::move(t)));
  }
  // nation
  {
    Table t(Schema({{"", "n_nationkey", ValueType::kInt},
                    {"", "n_name", ValueType::kString},
                    {"", "n_regionkey", ValueType::kInt}}));
    SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"n_nationkey"}));
    for (int64_t i = 0; i < 25; ++i) {
      SVC_RETURN_IF_ERROR(t.Insert(
          {Value::Int(i), Value::String(kNations[i]), Value::Int(i % 5)}));
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("nation", std::move(t)));
  }
  // customer
  {
    Table t(Schema({{"", "c_custkey", ValueType::kInt},
                    {"", "c_name", ValueType::kString},
                    {"", "c_nationkey", ValueType::kInt},
                    {"", "c_acctbal", ValueType::kDouble},
                    {"", "c_mktsegment", ValueType::kString}}));
    SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"c_custkey"}));
    for (size_t i = 1; i <= config.NumCustomers(); ++i) {
      SVC_RETURN_IF_ERROR(t.Insert(
          {Value::Int(static_cast<int64_t>(i)),
           Value::String("Customer#" + std::to_string(i)),
           Value::Int(g.rng.UniformInt(0, 24)),
           Value::Double(g.rng.Uniform(-999, 9999)),
           Value::String(kSegments[g.rng.UniformInt(0, 4)])}));
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("customer", std::move(t)));
  }
  // supplier
  {
    Table t(Schema({{"", "s_suppkey", ValueType::kInt},
                    {"", "s_name", ValueType::kString},
                    {"", "s_nationkey", ValueType::kInt},
                    {"", "s_acctbal", ValueType::kDouble}}));
    SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"s_suppkey"}));
    for (size_t i = 1; i <= config.NumSuppliers(); ++i) {
      SVC_RETURN_IF_ERROR(t.Insert(
          {Value::Int(static_cast<int64_t>(i)),
           Value::String("Supplier#" + std::to_string(i)),
           Value::Int(g.rng.UniformInt(0, 24)),
           Value::Double(g.rng.Uniform(-999, 9999))}));
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("supplier", std::move(t)));
  }
  // part
  {
    Table t(Schema({{"", "p_partkey", ValueType::kInt},
                    {"", "p_name", ValueType::kString},
                    {"", "p_brand", ValueType::kString},
                    {"", "p_size", ValueType::kInt},
                    {"", "p_retailprice", ValueType::kDouble}}));
    SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"p_partkey"}));
    for (size_t i = 1; i <= config.NumParts(); ++i) {
      SVC_RETURN_IF_ERROR(t.Insert(
          {Value::Int(static_cast<int64_t>(i)),
           Value::String("Part#" + std::to_string(i)),
           Value::String(kBrands[g.rng.UniformInt(0, 4)]),
           Value::Int(g.rng.UniformInt(1, 50)),
           Value::Double(g.rng.Uniform(900, 2000))}));
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("part", std::move(t)));
  }
  // orders + lineitem
  {
    Table orders(Schema({{"", "o_orderkey", ValueType::kInt},
                         {"", "o_custkey", ValueType::kInt},
                         {"", "o_orderstatus", ValueType::kString},
                         {"", "o_totalprice", ValueType::kDouble},
                         {"", "o_orderdate", ValueType::kInt},
                         {"", "o_orderpriority", ValueType::kString}}));
    SVC_RETURN_IF_ERROR(orders.SetPrimaryKey({"o_orderkey"}));
    Table lineitem(Schema({{"", "l_orderkey", ValueType::kInt},
                           {"", "l_linenumber", ValueType::kInt},
                           {"", "l_partkey", ValueType::kInt},
                           {"", "l_suppkey", ValueType::kInt},
                           {"", "l_quantity", ValueType::kInt},
                           {"", "l_extendedprice", ValueType::kDouble},
                           {"", "l_discount", ValueType::kDouble},
                           {"", "l_returnflag", ValueType::kString},
                           {"", "l_shipmode", ValueType::kString},
                           {"", "l_shipdate", ValueType::kInt}}));
    SVC_RETURN_IF_ERROR(lineitem.SetPrimaryKey({"l_orderkey",
                                                "l_linenumber"}));
    for (size_t o = 1; o <= config.NumOrders(); ++o) {
      const int64_t orderkey = static_cast<int64_t>(o);
      SVC_RETURN_IF_ERROR(
          orders.Insert(MakeOrder(orderkey, config.NumCustomers(), &g)));
      const int64_t lines = g.rng.UniformInt(1, 7);
      for (int64_t ln = 1; ln <= lines; ++ln) {
        SVC_RETURN_IF_ERROR(lineitem.Insert(MakeLineitem(orderkey, ln, &g)));
      }
    }
    SVC_RETURN_IF_ERROR(db.CreateTable("orders", std::move(orders)));
    SVC_RETURN_IF_ERROR(db.CreateTable("lineitem", std::move(lineitem)));
  }
  return db;
}

Result<DeltaSet> GenerateTpcdUpdates(const Database& db,
                                     const TpcdConfig& config,
                                     const TpcdUpdateConfig& update_config) {
  DeltaSet deltas;
  Generators g{Rng(update_config.seed ^ config.seed),
               config.zipf_z,
               Zipfian(1000, config.zipf_z),
               Zipfian(std::max<size_t>(config.NumCustomers(), 1),
                       config.PopularityZipf()),
               Zipfian(std::max<size_t>(config.NumParts(), 1),
                       config.PopularityZipf()),
               Zipfian(std::max<size_t>(config.NumSuppliers(), 1),
                       config.PopularityZipf())};
  SVC_ASSIGN_OR_RETURN(const Table* lineitem, db.GetTable("lineitem"));
  SVC_ASSIGN_OR_RETURN(const Table* orders, db.GetTable("orders"));

  const size_t target_lines = static_cast<size_t>(
      static_cast<double>(lineitem->NumRows()) * update_config.fraction);
  const size_t insert_lines = static_cast<size_t>(
      static_cast<double>(target_lines) * update_config.insert_share);
  const size_t update_lines = target_lines - insert_lines;

  // Insertions: new orders with fresh keys, each with a few lineitems.
  int64_t next_orderkey = 0;
  for (const auto& r : orders->rows()) {
    next_orderkey = std::max(next_orderkey, r[0].AsInt());
  }
  ++next_orderkey;
  size_t emitted = 0;
  while (emitted < insert_lines) {
    SVC_RETURN_IF_ERROR(deltas.AddInsert(
        db, "orders", MakeOrder(next_orderkey, config.NumCustomers(), &g)));
    const int64_t lines = g.rng.UniformInt(1, 7);
    for (int64_t ln = 1; ln <= lines && emitted < insert_lines; ++ln) {
      SVC_RETURN_IF_ERROR(deltas.AddInsert(
          db, "lineitem", MakeLineitem(next_orderkey, ln, &g)));
      ++emitted;
    }
    ++next_orderkey;
  }

  // Updates to existing lineitems: new quantity and price.
  std::set<size_t> updated;
  size_t done = 0;
  size_t guard = 0;
  while (done < update_lines && guard < update_lines * 20) {
    ++guard;
    const size_t victim = static_cast<size_t>(
        g.rng.UniformInt(0, static_cast<int64_t>(lineitem->NumRows()) - 1));
    if (!updated.insert(victim).second) continue;
    Row old_row = lineitem->row(victim);
    Row new_row = old_row;
    new_row[4] = Value::Int(1 + static_cast<int64_t>(
                                    g.value_zipf.Next(&g.rng)) % 50);
    new_row[5] = Value::Double(SkewedPrice(g.zipf_z, &g.rng));
    SVC_RETURN_IF_ERROR(
        deltas.AddUpdate(db, "lineitem", std::move(old_row),
                         std::move(new_row)));
    ++done;
  }
  return deltas;
}

}  // namespace svc
