#ifndef SVC_TPCD_TPCD_VIEWS_H_
#define SVC_TPCD_TPCD_VIEWS_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "core/estimator.h"
#include "relational/algebra.h"
#include "relational/database.h"

namespace svc {

/// The Join View of §7.2: the foreign-key join lineitem ⋈ orders. Sampled
/// on the join key l_orderkey (a pk prefix), which pushes η to both inputs
/// — the source of the paper's super-linear speedup.
PlanPtr TpcdJoinViewDef();

/// Recommended sampling key for the join view.
std::vector<std::string> TpcdJoinViewSamplingKey();

/// A named grouped aggregate query against a view's stored schema.
struct ViewQuery {
  std::string name;
  std::vector<std::string> group_by;  ///< stored-schema column names
  AggregateQuery query;
};

/// The 12 TPCD group-by aggregates treated as queries on the join view
/// (Q3, Q4, Q5, Q7, Q8, Q9, Q10, Q12, Q14, Q18, Q19, Q21 analogs over the
/// join view's columns).
std::vector<ViewQuery> TpcdJoinViewQueries();

/// One of the paper's "Complex Views" (§7.3): a named SQL view definition
/// over the TPCD schema plus its sampling key. V21 contains an aggregated
/// subquery (its delta degenerates to recomputation of the subquery) and
/// V22 transforms its group key (blocking the η push-down) — the two views
/// the paper calls out as benefiting less.
struct ComplexView {
  std::string name;
  std::string sql;
  std::vector<std::string> sampling_key;  ///< stored names; empty -> pk
};

/// V3, V4, V5, V9, V10, V13, V15i, V18, V21, V22.
std::vector<ComplexView> TpcdComplexViews();

/// A random aggregate query generator for a complex view (§7.1): picks a
/// random group-by attribute for the predicate (a random range of its
/// domain) and a random aggregate attribute, producing sum/avg/count
/// queries.
std::vector<ViewQuery> GenerateRandomViewQueries(
    const Table& view_data, const std::vector<std::string>& group_columns,
    const std::vector<std::string>& numeric_columns, int count, Rng* rng);

/// The data-cube base view of §12.6.3: revenue grouped by (c_custkey,
/// n_nationkey, r_regionkey, l_partkey) over the five-way join.
PlanPtr TpcdCubeViewDef();

/// The 13 roll-up queries Q1..Q13 over the cube (group-by subsets of the
/// four dimensions; Q1 is the global aggregate). `agg` lets the caller
/// switch the rolled-up aggregate (sum for Fig. 11/12, median for Fig. 13).
std::vector<ViewQuery> TpcdCubeRollups(AggFunc agg = AggFunc::kSum);

}  // namespace svc

#endif  // SVC_TPCD_TPCD_VIEWS_H_
