#ifndef SVC_TPCD_TPCD_GEN_H_
#define SVC_TPCD_TPCD_GEN_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "relational/database.h"
#include "view/delta.h"

namespace svc {

/// Configuration of the TPCD-Skew generator (Chaudhuri & Narasayya's skewed
/// variant of the TPC-D benchmark schema, §7.1 of the paper). Row counts
/// scale linearly with `scale_factor` relative to TPC-D SF 1 (150k
/// customers, 1.5M orders, ~6M lineitems); the default 0.01 produces a
/// laptop-scale database with the same shape. `zipf_z` is the paper's skew
/// parameter z ∈ {1,2,3,4}: values and foreign-key popularity are drawn
/// from Zipfian(z) distributions (z=1 ~ the basic benchmark; larger z gives
/// longer tails — the regime where the outlier index matters).
struct TpcdConfig {
  double scale_factor = 0.01;
  double zipf_z = 2.0;
  uint64_t seed = 20150831;  // the VLDB'15 conference date

  // Orders/lineitems scale with TPC-D proportions; dimension cardinalities
  // are scaled more gently so that per-group row counts at laptop scale
  // stay comparable to the paper's 10GB setting (otherwise every group-by
  // estimate is starved of sample rows).
  size_t NumCustomers() const {
    return static_cast<size_t>(15000 * scale_factor);
  }
  size_t NumOrders() const {
    return static_cast<size_t>(1500000 * scale_factor);
  }
  size_t NumParts() const {
    return static_cast<size_t>(20000 * scale_factor);
  }
  size_t NumSuppliers() const {
    return static_cast<size_t>(2500 * scale_factor);
  }

  /// Foreign-key popularity skew: capped at 1.0 — the Chaudhuri-Narasayya
  /// skew parameter z primarily drives *value* skew (prices, quantities),
  /// which is what the outlier index targets; uncapped key popularity at
  /// z=4 would leave most groups empty at any scale.
  double PopularityZipf() const { return zipf_z < 1.0 ? zipf_z : 1.0; }
};

/// Generates the eight base relations — region, nation, customer, supplier,
/// part, orders, lineitem (plus a small partsupp) — with primary keys
/// declared, into a fresh Database.
///
/// Schema (simplified TPC-D):
///   region  (r_regionkey, r_name)
///   nation  (n_nationkey, n_name, n_regionkey)
///   customer(c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment)
///   supplier(s_suppkey, s_name, s_nationkey, s_acctbal)
///   part    (p_partkey, p_name, p_brand, p_size, p_retailprice)
///   orders  (o_orderkey, o_custkey, o_orderstatus, o_totalprice,
///            o_orderdate, o_orderpriority)
///   lineitem(l_orderkey, l_linenumber, l_partkey, l_suppkey, l_quantity,
///            l_extendedprice, l_discount, l_returnflag, l_shipmode,
///            l_shipdate)
Result<Database> GenerateTpcdDatabase(const TpcdConfig& config);

/// Options for the update stream (§7.2: "insertions and updates to existing
/// records" against lineitem and orders).
struct TpcdUpdateConfig {
  /// Update volume as a fraction of the base lineitem count (the paper's
  /// "update size (% of base data)").
  double fraction = 0.10;
  /// Portion of the volume that is new orders+lineitems (the rest are
  /// in-place updates of existing records, modeled as delete+insert).
  double insert_share = 0.8;
  uint64_t seed = 7;
};

/// Generates a DeltaSet of pending insertions and updates against `db`
/// (which must have been produced by GenerateTpcdDatabase with the same
/// `config`). New orders get fresh keys past the current maximum; updated
/// lineitems change quantity/price.
Result<DeltaSet> GenerateTpcdUpdates(const Database& db,
                                     const TpcdConfig& config,
                                     const TpcdUpdateConfig& update_config);

}  // namespace svc

#endif  // SVC_TPCD_TPCD_GEN_H_
