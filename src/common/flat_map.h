#ifndef SVC_COMMON_FLAT_MAP_H_
#define SVC_COMMON_FLAT_MAP_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace svc {

/// Hash used for byte-string keys throughout the engine's hash tables
/// (join/group/set-op/primary-key indexes). This is an *internal* table
/// hash; the sampling operator η keeps using the plan's configured
/// HashFamily for membership so sample determinism is unaffected.
inline uint64_t KeyHash(std::string_view bytes) {
  return Fnv1aSplitMix64(bytes);
}

/// An open-addressing hash map from byte-string keys to values of type V,
/// tuned for the executor's hot paths:
///
///   * callers pass the key bytes together with a precomputed 64-bit hash
///     (see RowKeyRef / KeyBuffer in relational/row_key.h), so a key that
///     probes several tables is hashed once;
///   * short keys (≤ 12 bytes — e.g. any single int/double key, which is
///     the common join/group key shape) are stored inline in the slot, so
///     a probe touches exactly one cache line; longer keys live in one
///     contiguous arena rather than one heap allocation per key;
///   * slots are a flat power-of-two array probed linearly — no per-node
///     allocation, no pointer chasing;
///   * lookups compare the full key bytes whenever the 64-bit hashes match,
///     so hash collisions are handled correctly (never by assumption).
///
/// Erase uses backward-shift deletion (no tombstones); the arena compacts
/// itself once more than half of its bytes belong to erased keys. V must be
/// default-constructible and movable.
template <typename V>
class FlatKeyMap {
 public:
  FlatKeyMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Prepares for `n` insertions without rehashing, honoring the maximum
  /// load factor (3/4).
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (cap * 3 < (n + 1) * 4) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  /// Inserts `value` under (`key`, `hash`) unless the key is present.
  /// Returns the address of the (existing or new) value and whether an
  /// insertion happened. The pointer is invalidated by the next mutation.
  std::pair<V*, bool> Emplace(std::string_view key, uint64_t hash, V value) {
    GrowIfNeeded();
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (!SlotEmpty(i)) {
      if (slots_[i].hash == hash && KeyEquals(slots_[i], key)) {
        return {&slots_[i].value, false};
      }
      i = (i + 1) & mask;
    }
    StoreKey(&slots_[i], key);
    slots_[i].hash = hash;
    slots_[i].value = std::move(value);
    ++size_;
    return {&slots_[i].value, true};
  }

  /// Convenience overload hashing internally.
  std::pair<V*, bool> Emplace(std::string_view key, V value) {
    return Emplace(key, KeyHash(key), std::move(value));
  }

  V* Find(std::string_view key, uint64_t hash) {
    const size_t i = FindSlot(key, hash);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  const V* Find(std::string_view key, uint64_t hash) const {
    const size_t i = FindSlot(key, hash);
    return i == kNpos ? nullptr : &slots_[i].value;
  }
  V* Find(std::string_view key) { return Find(key, KeyHash(key)); }
  const V* Find(std::string_view key) const { return Find(key, KeyHash(key)); }

  bool Contains(std::string_view key, uint64_t hash) const {
    return FindSlot(key, hash) != kNpos;
  }
  bool Contains(std::string_view key) const {
    return Contains(key, KeyHash(key));
  }

  /// Removes the key if present (backward-shift deletion, so lookups stay
  /// correct without tombstones). Returns true if a key was removed.
  bool Erase(std::string_view key, uint64_t hash) {
    const size_t i = FindSlot(key, hash);
    if (i == kNpos) return false;
    if (slots_[i].len > kInlineKey) dead_bytes_ += slots_[i].len;
    const size_t mask = slots_.size() - 1;
    size_t hole = i, j = i;
    while (true) {
      j = (j + 1) & mask;
      if (SlotEmpty(j)) break;
      const size_t home = static_cast<size_t>(slots_[j].hash) & mask;
      // Slot j may fill the hole iff the hole lies on j's probe path, i.e.
      // strictly closer to j's home position than j itself.
      if (((hole - home) & mask) < ((j - home) & mask)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole].len = kEmptyLen;
    slots_[hole].value = V();
    --size_;
    return true;
  }
  bool Erase(std::string_view key) { return Erase(key, KeyHash(key)); }

  /// Visits every (key bytes, value) pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.len == kEmptyLen) continue;
      fn(KeyOf(s), s.value);
    }
  }
  template <typename Fn>
  void ForEachMutable(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.len == kEmptyLen) continue;
      fn(KeyOf(s), s.value);
    }
  }

  void Clear() {
    slots_.clear();
    arena_.clear();
    size_ = 0;
    dead_bytes_ = 0;
  }

 private:
  static constexpr uint32_t kEmptyLen = UINT32_MAX;
  static constexpr uint32_t kInlineKey = 12;
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr size_t kMinCapacity = 16;

  struct Slot {
    uint64_t hash = 0;
    uint32_t len = kEmptyLen;  ///< key length; kEmptyLen marks a free slot
    /// Key storage: the bytes themselves when len <= kInlineKey, else a
    /// 4-byte offset into arena_.
    char key[kInlineKey] = {};
    V value{};
  };

  bool SlotEmpty(size_t i) const { return slots_[i].len == kEmptyLen; }

  static uint32_t ArenaOff(const Slot& s) {
    uint32_t off;
    std::memcpy(&off, s.key, sizeof(off));
    return off;
  }

  std::string_view KeyOf(const Slot& s) const {
    if (s.len <= kInlineKey) return {s.key, s.len};
    return {arena_.data() + ArenaOff(s), s.len};
  }

  bool KeyEquals(const Slot& s, std::string_view key) const {
    if (s.len != key.size()) return false;
    const char* bytes =
        s.len <= kInlineKey ? s.key : arena_.data() + ArenaOff(s);
    return std::memcmp(bytes, key.data(), key.size()) == 0;
  }

  void StoreKey(Slot* s, std::string_view key) {
    s->len = static_cast<uint32_t>(key.size());
    if (key.size() <= kInlineKey) {
      std::memcpy(s->key, key.data(), key.size());
      return;
    }
    if (arena_.size() + key.size() >= static_cast<size_t>(UINT32_MAX)) {
      // A wrapped uint32 offset would silently alias earlier keys and
      // corrupt lookups; abort loudly instead (also in Release builds).
      std::fprintf(stderr,
                   "FlatKeyMap: key arena exceeds 4 GiB of key bytes\n");
      std::abort();
    }
    const uint32_t off = static_cast<uint32_t>(arena_.size());
    std::memcpy(s->key, &off, sizeof(off));
    arena_.append(key.data(), key.size());
  }

  size_t FindSlot(std::string_view key, uint64_t hash) const {
    if (size_ == 0) return kNpos;
    const size_t mask = slots_.size() - 1;
    size_t i = static_cast<size_t>(hash) & mask;
    while (!SlotEmpty(i)) {
      if (slots_[i].hash == hash && KeyEquals(slots_[i], key)) return i;
      i = (i + 1) & mask;
    }
    return kNpos;
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
      return;
    }
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    } else if (dead_bytes_ > 0 && dead_bytes_ * 2 > arena_.size()) {
      Rehash(slots_.size());  // same capacity; compacts the arena
    }
  }

  /// Re-slots every live entry into a table of `new_capacity` (a power of
  /// two) and rewrites the arena without dead bytes.
  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    std::string old_arena = std::move(arena_);
    slots_.assign(new_capacity, Slot{});
    arena_.clear();
    if (old_arena.size() > dead_bytes_) {
      arena_.reserve(old_arena.size() - dead_bytes_);
    }
    dead_bytes_ = 0;
    const size_t mask = new_capacity - 1;
    for (Slot& s : old) {
      if (s.len == kEmptyLen) continue;
      size_t i = static_cast<size_t>(s.hash) & mask;
      while (!SlotEmpty(i)) i = (i + 1) & mask;
      const std::string_view key =
          s.len <= kInlineKey
              ? std::string_view(s.key, s.len)
              : std::string_view(old_arena.data() + ArenaOff(s), s.len);
      StoreKey(&slots_[i], key);
      slots_[i].hash = s.hash;
      slots_[i].value = std::move(s.value);
    }
  }

  std::vector<Slot> slots_;
  std::string arena_;   ///< key bytes of live slots with len > kInlineKey
  size_t size_ = 0;
  size_t dead_bytes_ = 0;  ///< arena bytes belonging to erased keys
};

/// A set of byte-string keys on top of FlatKeyMap. Used for set-operation
/// dedup, count(distinct), η key-set filters, and the outlier push-up key
/// sets.
class KeySet {
 public:
  /// Inserts the key; returns true if it was new.
  bool Insert(std::string_view key, uint64_t hash) {
    return map_.Emplace(key, hash, 0).second;
  }
  bool Insert(std::string_view key) { return Insert(key, KeyHash(key)); }

  bool Contains(std::string_view key, uint64_t hash) const {
    return map_.Contains(key, hash);
  }
  bool Contains(std::string_view key) const { return map_.Contains(key); }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Reserve(size_t n) { map_.Reserve(n); }
  void Clear() { map_.Clear(); }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    map_.ForEach([&fn](std::string_view key, char) { fn(key); });
  }

 private:
  FlatKeyMap<char> map_;
};

}  // namespace svc

#endif  // SVC_COMMON_FLAT_MAP_H_
