#include "common/hash.h"

#include <cstring>

namespace svc {

namespace {

uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

uint64_t SplitMix64Fin(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}


uint64_t Sdbm64(std::string_view data) {
  uint64_t h = 0;
  for (unsigned char c : data) {
    h = c + (h << 6) + (h << 16) - h;
  }
  // Raw sdbm is poorly mixed in the high bits; finalize so the top bits
  // (which HashToUnit depends on) are usable.
  return SplitMix64Fin(h);
}

uint64_t Linear64(std::string_view data) {
  // Accumulate bytes with a weak linear recurrence, then one Knuth
  // multiplicative step. Deliberately the cheapest family.
  uint64_t h = 0;
  for (unsigned char c : data) {
    h = h * 131 + c;
  }
  return h * 0x9e3779b97f4a7c15ULL;
}

}  // namespace

const char* HashFamilyName(HashFamily family) {
  switch (family) {
    case HashFamily::kLinear: return "linear";
    case HashFamily::kSdbm: return "sdbm";
    case HashFamily::kFnv1a: return "fnv1a";
    case HashFamily::kSha1: return "sha1";
  }
  return "unknown";
}

std::array<uint8_t, 20> Sha1(std::string_view data) {
  uint32_t h0 = 0x67452301, h1 = 0xEFCDAB89, h2 = 0x98BADCFE, h3 = 0x10325476,
           h4 = 0xC3D2E1F0;

  const uint64_t ml = static_cast<uint64_t>(data.size()) * 8;
  // Message + 0x80 + zero pad + 8-byte big-endian length, to a 64B multiple.
  size_t padded = data.size() + 1 + 8;
  padded = (padded + 63) / 64 * 64;
  std::string buf(padded, '\0');
  std::memcpy(buf.data(), data.data(), data.size());
  buf[data.size()] = static_cast<char>(0x80);
  for (int i = 0; i < 8; ++i) {
    buf[padded - 1 - i] = static_cast<char>((ml >> (8 * i)) & 0xff);
  }

  uint32_t w[80];
  for (size_t chunk = 0; chunk < padded; chunk += 64) {
    const auto* p = reinterpret_cast<const unsigned char*>(buf.data() + chunk);
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(p[4 * i]) << 24) |
             (static_cast<uint32_t>(p[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(p[4 * i + 2]) << 8) |
             static_cast<uint32_t>(p[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h0, b = h1, c = h2, d = h3, e = h4;
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      const uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = tmp;
    }
    h0 += a;
    h1 += b;
    h2 += c;
    h3 += d;
    h4 += e;
  }

  std::array<uint8_t, 20> out;
  const uint32_t hs[5] = {h0, h1, h2, h3, h4};
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<uint8_t>(hs[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(hs[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(hs[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(hs[i]);
  }
  return out;
}

std::string Sha1Hex(std::string_view data) {
  static const char kHex[] = "0123456789abcdef";
  const auto digest = Sha1(data);
  std::string out;
  out.reserve(40);
  for (uint8_t b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

uint64_t Hash64(std::string_view data, HashFamily family) {
  switch (family) {
    case HashFamily::kLinear: return Linear64(data);
    case HashFamily::kSdbm: return Sdbm64(data);
    case HashFamily::kFnv1a: return Fnv1aSplitMix64(data);
    case HashFamily::kSha1: {
      const auto d = Sha1(data);
      uint64_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[i];
      return h;
    }
  }
  return 0;
}

double HashToUnit(std::string_view data, HashFamily family) {
  // Top 53 bits -> exactly representable double in [0, 1).
  return static_cast<double>(Hash64(data, family) >> 11) * 0x1.0p-53;
}

bool HashInSample(std::string_view key, double m, HashFamily family) {
  return HashToUnit(key, family) < m;
}

}  // namespace svc
