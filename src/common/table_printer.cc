#include "common/table_printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace svc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << "  ";
      os << row[i];
      for (size_t p = row[i].size(); p < widths[i]; ++p) os << ' ';
    }
    os << '\n';
  };
  emit_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace svc
