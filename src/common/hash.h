#ifndef SVC_COMMON_HASH_H_
#define SVC_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace svc {

/// Hash families available to the sampling operator η. The paper (§4.4,
/// §12.3) observes that commonly used hashes — linear, SDBM, MD5, SHA —
/// behave indistinguishably from a uniform random variable for sampling
/// purposes (the Simple Uniform Hashing Assumption), with a latency /
/// uniformity trade-off: Sha1 is the most uniform and the slowest, Linear
/// the fastest and the least uniform.
enum class HashFamily {
  kLinear,  ///< multiplicative (Knuth) congruential hash of FNV pre-mix
  kSdbm,    ///< classic sdbm string hash, finalized with splitmix64
  kFnv1a,   ///< FNV-1a 64-bit
  kSha1,    ///< from-scratch SHA-1, top 64 bits of the digest
};

/// Returns a short lowercase name ("linear", "sdbm", "fnv1a", "sha1").
const char* HashFamilyName(HashFamily family);

/// SHA-1 digest (20 bytes) of `data`. Implemented from scratch (FIPS 180-1);
/// no external crypto dependency.
std::array<uint8_t, 20> Sha1(std::string_view data);

/// Hex rendering of a SHA-1 digest.
std::string Sha1Hex(std::string_view data);

/// 64-bit hash of `data` under the chosen family.
uint64_t Hash64(std::string_view data, HashFamily family);

/// FNV-1a with a splitmix64 finalizer — the HashFamily::kFnv1a hash,
/// defined inline so the executor's per-row key hashing fully inlines.
/// Hash64(data, HashFamily::kFnv1a) returns exactly this.
inline uint64_t Fnv1aSplitMix64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

/// Maps `data` deterministically to the unit interval [0, 1). This is the
/// hash the η operator compares against the sampling ratio m: a row with
/// key bytes `data` is in the sample iff HashToUnit(data, f) < m. The map
/// divides the 64-bit hash by 2^64, mirroring the paper's normalization of
/// an unsigned hash by MAXINT.
double HashToUnit(std::string_view data, HashFamily family);

/// Convenience: η membership test for key bytes under sampling ratio m.
bool HashInSample(std::string_view key, double m, HashFamily family);

}  // namespace svc

#endif  // SVC_COMMON_HASH_H_
