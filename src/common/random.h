#ifndef SVC_COMMON_RANDOM_H_
#define SVC_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace svc {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// splitmix64. Used by the workload generators and the bootstrap resampler.
/// Deterministic seeding keeps every experiment reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Exponential variate with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Random alphanumeric string of length `len`.
  std::string AlphaNumeric(int len);

  /// Fisher–Yates shuffle of [0, n) index order.
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipfian distribution over {1, ..., n} with exponent `theta` (the paper's
/// skew parameter z): P(k) ∝ 1 / k^theta. Implemented with a precomputed
/// cumulative table and binary search so draws are O(log n). theta = 0 is
/// uniform; larger theta concentrates mass on small ranks, producing the
/// long-tailed distributions the outlier index targets.
class Zipfian {
 public:
  /// Builds the distribution table. Requires n >= 1 and theta >= 0.
  Zipfian(uint64_t n, double theta);

  /// Draws a rank in [1, n].
  uint64_t Next(Rng* rng) const;

  /// Number of distinct values.
  uint64_t n() const { return n_; }
  /// Skew exponent.
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(X <= k)
};

}  // namespace svc

#endif  // SVC_COMMON_RANDOM_H_
