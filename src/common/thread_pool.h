#ifndef SVC_COMMON_THREAD_POOL_H_
#define SVC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace svc {

/// A fixed-size pool of worker threads draining one task queue. No work
/// stealing, no priorities: the executor's data-parallel operators only need
/// "run these chunk bodies somewhere, soon". One process-wide pool (Shared())
/// is reused by every query so steady-state parallel execution never spawns
/// threads.
///
/// Thread-safety: Submit/RunAll may be called from any thread, including
/// from inside a pool task (RunAll has the calling thread participate, so
/// nested batches cannot deadlock on a saturated pool).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one fire-and-forget task. The task must not throw.
  void Submit(std::function<void()> task);

  /// Runs every task in `tasks` — the calling thread participates, so the
  /// batch finishes even when all workers are busy — and blocks until the
  /// last one completes. The first exception thrown by any task is
  /// rethrown here (remaining tasks still run).
  void RunAll(std::vector<std::function<void()>> tasks);

  /// The process-wide pool, created on first use and sized to the
  /// hardware's thread count. Callers limit *their own* parallelism (see
  /// ParallelFor's num_threads), not the pool's size.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_ = false;
};

/// Resolves a requested thread count: values <= 0 mean "all hardware
/// threads"; otherwise the request is returned unchanged (it may exceed the
/// core count — the pool just multiplexes).
int ResolveThreads(int requested);

/// Runs body(chunk) for every chunk in [0, num_chunks) with at most
/// `num_threads` of them in flight at once (the calling thread is one of
/// them). Chunks are claimed dynamically, so callers that need
/// reproducibility must make each chunk's work independent and merge
/// results by chunk index — never by completion order. `body` exceptions
/// are rethrown on the calling thread after the loop drains.
void ParallelFor(int num_threads, size_t num_chunks,
                 const std::function<void(size_t)>& body);

/// The number of chunks a data-parallel loop over `n` items decomposes
/// into. Depends ONLY on n — never on the thread count — so per-chunk
/// partial results (and anything sensitive to floating-point reduction
/// order) merge identically whether the chunks run on 1 thread or 64.
size_t DeterministicChunks(size_t n, size_t min_per_chunk,
                           size_t max_chunks = 64);

/// Half-open bounds [begin, end) of chunk `c` of `chunks` over `n` items:
/// sizes differ by at most one, earlier chunks take the remainder.
inline std::pair<size_t, size_t> ChunkBounds(size_t n, size_t chunks,
                                             size_t c) {
  const size_t base = n / chunks;
  const size_t rem = n % chunks;
  const size_t begin = c * base + (c < rem ? c : rem);
  return {begin, begin + base + (c < rem ? 1 : 0)};
}

}  // namespace svc

#endif  // SVC_COMMON_THREAD_POOL_H_
