#ifndef SVC_COMMON_STOPWATCH_H_
#define SVC_COMMON_STOPWATCH_H_

#include <chrono>

namespace svc {

/// Wall-clock stopwatch used by the benchmark harness.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace svc

#endif  // SVC_COMMON_STOPWATCH_H_
