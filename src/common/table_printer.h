#ifndef SVC_COMMON_TABLE_PRINTER_H_
#define SVC_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace svc {

/// Fixed-width console table used by the benchmark binaries to print the
/// rows/series each paper figure reports. Collects rows of strings and
/// renders them with aligned columns plus a rule under the header.
class TablePrinter {
 public:
  /// Creates a printer with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string.
  std::string ToString() const;

  /// Prints the table to stdout.
  void Print() const;

  /// Formats a double with `digits` decimal places.
  static std::string Num(double v, int digits = 3);
  /// Formats a percentage ("12.3%") with `digits` decimal places.
  static std::string Pct(double fraction, int digits = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace svc

#endif  // SVC_COMMON_TABLE_PRINTER_H_
