#ifndef SVC_COMMON_CANCEL_H_
#define SVC_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace svc {

/// Cooperative cancellation for long-running query work. The serving layer
/// creates one token per request (from the wire deadline_ms field), threads
/// it through ExecOptions, and the executor's chunk loops poll it between
/// chunks — so a query past its deadline stops within one chunk's worth of
/// work instead of running to completion against a client that already
/// gave up.
///
/// Polling is cheap by design: an `expired_` flag check (one relaxed atomic
/// load) short-circuits, and the steady_clock read only happens while the
/// deadline has not yet fired. Once observed expired, the flag latches, so
/// every subsequent check across threads is the single load.
///
/// Cancellation is strictly advisory and read-only: a write statement
/// checks the token *before* it mutates anything and never mid-commit, so a
/// deadline can delay a write's rejection but never tear one.
class CancelToken {
 public:
  CancelToken() = default;

  // Copyable despite the atomic flag (tokens are passed by value into
  // request handlers; the latch state travels with the copy).
  CancelToken(const CancelToken& o)
      : has_deadline_(o.has_deadline_),
        deadline_(o.deadline_),
        expired_(o.expired_.load(std::memory_order_relaxed)) {}
  CancelToken& operator=(const CancelToken& o) {
    has_deadline_ = o.has_deadline_;
    deadline_ = o.deadline_;
    expired_.store(o.expired_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    return *this;
  }

  /// A token that expires `deadline_ms` from now (0 = never).
  static CancelToken After(uint64_t deadline_ms) {
    CancelToken t;
    if (deadline_ms > 0) {
      t.has_deadline_ = true;
      t.deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(deadline_ms);
    }
    return t;
  }

  /// Expires the token immediately (test hook / explicit cancellation).
  void Cancel() { expired_.store(true, std::memory_order_relaxed); }

  /// True once the deadline passed (or Cancel was called). Latches.
  bool Expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() < deadline_) return false;
    expired_.store(true, std::memory_order_relaxed);
    return true;
  }

  /// OK while live; DeadlineExceeded once expired. `what` names the work
  /// being cancelled for the error message.
  Status Check(const char* what) const {
    if (!Expired()) return Status::OK();
    return Status::DeadlineExceeded(std::string("deadline exceeded during ") +
                                    what);
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  mutable std::atomic<bool> expired_{false};
};

}  // namespace svc

#endif  // SVC_COMMON_CANCEL_H_
