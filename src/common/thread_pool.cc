#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace svc {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

namespace {

/// Shared state of one RunAll/ParallelFor batch. Helpers submitted to the
/// pool hold it via shared_ptr, so a helper that wakes up after the batch
/// owner returned still finds valid (exhausted) state.
struct Batch {
  std::function<void(size_t)> body;
  size_t total = 0;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

/// Claims and runs tasks until the batch is exhausted, recording the first
/// exception and counting completions.
void Drain(const std::shared_ptr<Batch>& b) {
  while (true) {
    const size_t i = b->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= b->total) return;
    try {
      b->body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(b->mu);
      if (!b->error) b->error = std::current_exception();
    }
    if (b->done.fetch_add(1, std::memory_order_acq_rel) + 1 == b->total) {
      std::lock_guard<std::mutex> lock(b->mu);  // pairs with the waiter
      b->cv.notify_all();
    }
  }
}

/// Runs `total` invocations of `body` with up to `width` concurrent
/// participants (the caller included) and rethrows the first exception.
void RunBatch(ThreadPool* pool, int width, size_t total,
              std::function<void(size_t)> body) {
  if (total == 0) return;
  if (width <= 1 || total == 1 || pool == nullptr || pool->size() == 0) {
    for (size_t i = 0; i < total; ++i) body(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->body = std::move(body);
  batch->total = total;
  const size_t helpers =
      std::min<size_t>(static_cast<size_t>(width) - 1, total - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool->Submit([batch] { Drain(batch); });
  }
  Drain(batch);
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->total;
  });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace

void ThreadPool::RunAll(std::vector<std::function<void()>> tasks) {
  auto owned = std::make_shared<std::vector<std::function<void()>>>(
      std::move(tasks));
  RunBatch(this, size() + 1, owned->size(),
           [owned](size_t i) { (*owned)[i](); });
}

ThreadPool* ThreadPool::Shared() {
  static ThreadPool pool(ResolveThreads(0));
  return &pool;
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

void ParallelFor(int num_threads, size_t num_chunks,
                 const std::function<void(size_t)>& body) {
  RunBatch(ThreadPool::Shared(), ResolveThreads(num_threads), num_chunks,
           body);
}

size_t DeterministicChunks(size_t n, size_t min_per_chunk,
                           size_t max_chunks) {
  if (n == 0 || min_per_chunk == 0 || max_chunks == 0) return 1;
  const size_t by_grain = n / min_per_chunk;
  return std::max<size_t>(1, std::min(by_grain, max_chunks));
}

}  // namespace svc
