#ifndef SVC_COMMON_STATUS_H_
#define SVC_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace svc {

/// Error categories used across the library. Mirrors the usual
/// database-engine convention (RocksDB / Arrow style): functions that can
/// fail return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kOutOfRange,
  kInternal,
  // Serving-layer codes: these carry enough class information for a client
  // (or the wire protocol's Error frame) to react without parsing message
  // strings.
  kParseError,          // SQL lexer/parser rejection
  kUnknownRelation,     // table or view name does not resolve
  kConstraintViolation, // duplicate or NULL primary key
  kOverloaded,          // admission control rejected the request
  kProtocol,            // malformed wire frame / handshake violation
  kUnavailable,         // transport failure (peer gone / timed out); the
                        // request may not have reached the server
  kDeadlineExceeded,    // the request's deadline elapsed before completion
};

/// A Status encodes either success (ok) or an error code plus a
/// human-readable message. Statuses are cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument error.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Returns a NotFound error.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Returns an AlreadyExists error.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Returns a NotSupported error.
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  /// Returns an OutOfRange error.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Returns an Internal error.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Returns a ParseError (SQL text rejected by the lexer/parser).
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// Returns an UnknownRelation error (no such table or view).
  static Status UnknownRelation(std::string msg) {
    return Status(StatusCode::kUnknownRelation, std::move(msg));
  }
  /// Returns a ConstraintViolation (duplicate / NULL primary key).
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  /// Returns an Overloaded error (admission control shed the request).
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// Returns a Protocol error (malformed wire frame or handshake).
  static Status Protocol(std::string msg) {
    return Status(StatusCode::kProtocol, std::move(msg));
  }
  /// Returns an Unavailable error (transport failure; the request may not
  /// have reached the server and is safe to retry when idempotent).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Returns a DeadlineExceeded error (the request's deadline elapsed).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message ("" for OK).
  const std::string& message() const { return msg_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kAlreadyExists: name = "AlreadyExists"; break;
      case StatusCode::kNotSupported: name = "NotSupported"; break;
      case StatusCode::kOutOfRange: name = "OutOfRange"; break;
      case StatusCode::kInternal: name = "Internal"; break;
      case StatusCode::kParseError: name = "ParseError"; break;
      case StatusCode::kUnknownRelation: name = "UnknownRelation"; break;
      case StatusCode::kConstraintViolation:
        name = "ConstraintViolation";
        break;
      case StatusCode::kOverloaded: name = "Overloaded"; break;
      case StatusCode::kProtocol: name = "Protocol"; break;
      case StatusCode::kUnavailable: name = "Unavailable"; break;
      case StatusCode::kDeadlineExceeded: name = "DeadlineExceeded"; break;
    }
    return std::string(name) + ": " + msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Result<T> is either a value of type T or an error Status. Accessing the
/// value of an errored Result is a programming error (asserts in debug).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The contained value. Aborts with the error message if !ok() — an
  /// errored Result must be checked, never dereferenced.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  /// Moves the contained value out. Requires ok().
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }
  /// Mutable access to the contained value. Requires ok().
  T& value() & {
    CheckOk();
    return *value_;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() called on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the current function.
#define SVC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::svc::Status _svc_status = (expr);          \
    if (!_svc_status.ok()) return _svc_status;   \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagates the error, otherwise assigns
/// the value to `lhs`.
#define SVC_ASSIGN_OR_RETURN(lhs, rexpr)            \
  SVC_ASSIGN_OR_RETURN_IMPL_(                       \
      SVC_STATUS_CONCAT_(_svc_result, __LINE__), lhs, rexpr)

#define SVC_STATUS_CONCAT_INNER_(a, b) a##b
#define SVC_STATUS_CONCAT_(a, b) SVC_STATUS_CONCAT_INNER_(a, b)
#define SVC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace svc

#endif  // SVC_COMMON_STATUS_H_
