#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace svc {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r;
  do {
    r = Next();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Exponential(double rate) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::string Rng::AlphaNumeric(int len) {
  static const char kChars[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(kChars[UniformInt(0, 61)]);
  }
  return out;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  assert(n >= 1);
  cdf_.resize(n);
  double norm = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    norm += 1.0 / std::pow(static_cast<double>(k), theta);
  }
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), theta) / norm;
    cdf_[k - 1] = acc;
  }
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint64_t Zipfian::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  // Binary search for the first k with cdf_[k-1] >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace svc
