#ifndef SVC_MINIBATCH_CLUSTER_SIM_H_
#define SVC_MINIBATCH_CLUSTER_SIM_H_

#include <cstdint>
#include <vector>

namespace svc {

/// Analytic model of the paper's Spark mini-batch deployment (§7.6.2).
/// The real experiment ran on a 10-node Spark 1.1 cluster with immutable
/// RDD "views" maintained in synchronous batches; what Figures 14–16
/// measure are properties of the *batching cost model*: fixed per-batch
/// overhead amortized over batch size, idle CPU windows during synchronous
/// shuffles, contention between concurrent maintenance threads, and the
/// staleness error accumulated between refreshes. This simulator exposes
/// exactly those knobs.
struct ClusterModel {
  /// Records contained in one GB of log (sets the x-axis scale).
  double records_per_gb = 6000.0;
  /// Fixed per-batch cost (job scheduling, task launch, shuffle setup).
  double batch_overhead_s = 18.0;
  /// Marginal per-record processing cost on an idle cluster.
  double per_record_cost_s = 7.2e-7;
  /// Fraction of a batch's compute time spent in synchronous shuffle
  /// barriers, during which CPUs idle (SVC can steal these windows).
  double shuffle_idle_frac = 0.35;
  /// Incoming log rate driving staleness between maintenance periods.
  double arrival_rate_records_s = 250000.0;

  /// Query-error model: staleness contributes error proportional to the
  /// fraction of unapplied records; a sampling ratio m contributes
  /// estimation error ~ sampling_error_coeff / sqrt(m · base_records).
  double base_records = 5.0e8;
  double staleness_error_coeff = 9.0;
  double sampling_error_coeff = 220.0;
  /// Largest sampling ratio the SVC thread can sustain from the cluster's
  /// idle windows; the sample-refresh period diverges as m approaches it.
  double svc_capacity_ratio = 0.30;

  // ---- Throughput (Figure 14) ----------------------------------------------
  /// Cluster throughput (records/s) maintaining views in batches of
  /// `batch_gb`, with `threads` concurrent maintenance jobs. Larger batches
  /// amortize the fixed overhead; a second thread contends for CPU but
  /// overlaps into shuffle-idle windows, so large batches suffer less.
  double Throughput(double batch_gb, int threads) const;

  /// Smallest batch size (GB) achieving `target_rate` records/s with
  /// `threads` maintenance threads; returns -1 if unreachable.
  double MinBatchForThroughput(double target_rate, int threads) const;

  // ---- Error (Figure 15) ---------------------------------------------------
  /// Maximum query error during a maintenance period when only periodic
  /// IVM runs with batches of `ivm_batch_gb`.
  double MaxErrorIvmOnly(double ivm_batch_gb) const;

  /// Maximum query error when an SVC thread with sampling ratio `m`
  /// refreshes a sample in its own (smaller) batches of `svc_batch_gb`
  /// between IVM batches of `ivm_batch_gb`: the sample answers queries, so
  /// the error is the sampling error plus the staleness accumulated since
  /// the last *sample* refresh.
  double MaxErrorWithSvc(double ivm_batch_gb, double svc_batch_gb,
                         double m) const;

  /// Time to process one SVC sample-maintenance batch at ratio m.
  double SvcBatchTime(double svc_batch_gb, double m, int threads) const;

  // ---- CPU utilization (Figure 16) -----------------------------------------
  /// Simulated 1-second CPU utilization samples over `duration_s` of
  /// continuous maintenance. Without SVC the trace oscillates between
  /// compute (high) and shuffle-idle (low) phases; the SVC thread fills
  /// idle windows.
  std::vector<double> UtilizationTrace(double duration_s, bool with_svc,
                                       double batch_gb) const;
};

}  // namespace svc

#endif  // SVC_MINIBATCH_CLUSTER_SIM_H_
