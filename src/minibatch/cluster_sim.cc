#include "minibatch/cluster_sim.h"

#include <algorithm>
#include <cmath>

namespace svc {

namespace {

/// How much of a second thread's work overlaps the first thread's
/// shuffle-idle windows, as a function of batch size: larger batches spend
/// proportionally more wall-clock inside long shuffle barriers, leaving
/// wider windows for the concurrent thread.
double IdleOverlap(double batch_gb, double shuffle_idle_frac) {
  const double x = batch_gb / (batch_gb + 40.0);  // saturating in [0,1)
  return shuffle_idle_frac * (0.4 + 0.6 * x);
}

}  // namespace

double ClusterModel::Throughput(double batch_gb, int threads) const {
  if (batch_gb <= 0) return 0;
  const double records = batch_gb * records_per_gb * 1000.0;
  double contention = 1.0;
  if (threads > 1) {
    // The extra thread's work that does NOT fit into idle windows stretches
    // the whole batch (scheduling and compute serialize); larger batches
    // offer wider shuffle windows to hide it in.
    const double overlap = IdleOverlap(batch_gb, shuffle_idle_frac);
    contention = 1.0 + (threads - 1) * (1.0 - overlap) * 0.85;
  }
  const double time =
      (batch_overhead_s + records * per_record_cost_s) * contention;
  return records / time;
}

double ClusterModel::MinBatchForThroughput(double target_rate,
                                           int threads) const {
  // Throughput is monotone increasing in batch size; bisect.
  double lo = 0.5, hi = 4096.0;
  if (Throughput(hi, threads) < target_rate) return -1;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Throughput(mid, threads) >= target_rate) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double ClusterModel::MaxErrorIvmOnly(double ivm_batch_gb) const {
  // A batch of B gb takes records(B)/rate to accumulate; by the end of the
  // period the view lags by the full batch worth of records.
  const double lag_records = ivm_batch_gb * records_per_gb * 1000.0;
  return staleness_error_coeff * lag_records / base_records;
}

double ClusterModel::SvcBatchTime(double svc_batch_gb, double m,
                                  int threads) const {
  const double records = svc_batch_gb * records_per_gb * 1000.0;
  // The SVC job only materializes the sampled fraction of the delta view
  // (hash push-down), but pays a floor of scan cost on the updates.
  const double effective = records * std::max(m, 0.02);
  double contention = threads > 1 ? 1.15 : 1.0;
  return batch_overhead_s * 0.5 + effective * per_record_cost_s * contention;
}

double ClusterModel::MaxErrorWithSvc(double ivm_batch_gb, double svc_batch_gb,
                                     double m) const {
  (void)svc_batch_gb;
  if (m <= 0) return MaxErrorIvmOnly(ivm_batch_gb);
  // Sampling estimation error shrinks with m...
  const double sampling_error =
      sampling_error_coeff / std::sqrt(m * base_records);
  // ...but SVC only gets the cluster's idle windows, so it can sustain a
  // sampling ratio of at most svc_capacity_ratio; approaching it, the
  // sample-refresh period (and hence the sample's own staleness) blows up.
  if (m >= svc_capacity_ratio) return MaxErrorIvmOnly(ivm_batch_gb);
  const double refresh_period =
      (0.5 * batch_overhead_s) / (1.0 - m / svc_capacity_ratio);
  const double lag_records = refresh_period * arrival_rate_records_s;
  const double residual_staleness =
      staleness_error_coeff * lag_records / base_records;
  return sampling_error + residual_staleness;
}

std::vector<double> ClusterModel::UtilizationTrace(double duration_s,
                                                   bool with_svc,
                                                   double batch_gb) const {
  std::vector<double> trace;
  const double records = batch_gb * records_per_gb * 1000.0;
  const double batch_time = batch_overhead_s + records * per_record_cost_s;
  // Within each batch: compute phases (high utilization) alternate with
  // shuffle barriers (low utilization).
  const double phase = std::max(2.0, batch_time / 8.0);
  double t = 0;
  while (t < duration_s) {
    const double in_batch = std::fmod(t, batch_time);
    const bool shuffle =
        std::fmod(in_batch, phase) > phase * (1.0 - shuffle_idle_frac);
    double util = shuffle ? 18.0 : 88.0;
    if (with_svc && shuffle) {
      // The concurrent SVC thread soaks up most of the idle window.
      util = 72.0;
    } else if (with_svc) {
      util = 95.0;
    }
    trace.push_back(util);
    t += 1.0;
  }
  return trace;
}

}  // namespace svc
