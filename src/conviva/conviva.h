#ifndef SVC_CONVIVA_CONVIVA_H_
#define SVC_CONVIVA_CONVIVA_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "relational/database.h"
#include "view/delta.h"

namespace svc {

/// Synthetic stand-in for the paper's Conviva video-distribution log (§7.5):
/// a denormalized user-activity relation
///
///   activity(sessionId, userId, resourceId, day, errorType, bytes,
///            latency, region, provider)
///
/// with Zipfian resource popularity and a long-tailed bytes distribution.
/// The real dataset is 1TB of production logs; this generator reproduces
/// its dimensional structure (users × resources × days × regions ×
/// providers, error codes, transfer volumes) so the paper's eight
/// summary-statistic views exercise the same code paths.
struct ConvivaConfig {
  size_t num_sessions = 50000;
  size_t num_users = 2000;
  size_t num_resources = 500;
  int num_days = 30;
  int num_regions = 12;
  int num_providers = 8;
  double resource_zipf = 1.3;
  uint64_t seed = 424242;
};

/// Generates the activity log into a fresh database.
Result<Database> GenerateConvivaDatabase(const ConvivaConfig& config);

/// Appends `fraction` × current-size new activity records (log data is
/// append-only, matching the paper's replay of the remaining 200GB as
/// updates "in the order they arrived").
Result<DeltaSet> GenerateConvivaUpdates(const Database& db,
                                        const ConvivaConfig& config,
                                        double fraction, uint64_t seed);

/// One of the paper's eight summary-statistics views (§12.6.2), as SQL.
struct ConvivaView {
  std::string name;
  std::string description;
  std::string sql;
};

/// V1..V8 per the paper's high-level descriptions: error counts, bytes
/// transferred, visit counts over a resource-tag expression, region/provider
/// groupings, a filtered union, and wide network/visit statistics.
std::vector<ConvivaView> ConvivaViews();

}  // namespace svc

#endif  // SVC_CONVIVA_CONVIVA_H_
