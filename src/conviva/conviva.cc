#include "conviva/conviva.h"

namespace svc {

namespace {

Row MakeActivity(int64_t session, const ConvivaConfig& cfg,
                 const Zipfian& res_zipf, Rng* rng) {
  const int64_t resource = static_cast<int64_t>(res_zipf.Next(rng));
  const int64_t user = rng->UniformInt(1, cfg.num_users);
  const int64_t day = rng->UniformInt(1, cfg.num_days);
  // ~6% of sessions hit an error; five error classes.
  const int64_t error = rng->Bernoulli(0.06) ? rng->UniformInt(1, 5) : 0;
  // Long-tailed transfer volume.
  const double bytes = rng->Exponential(1.0 / 50.0) * 1e6;
  const double latency = rng->Exponential(1.0 / 80.0);
  const int64_t region = rng->UniformInt(1, cfg.num_regions);
  const int64_t provider = rng->UniformInt(1, cfg.num_providers);
  return {Value::Int(session),  Value::Int(user),   Value::Int(resource),
          Value::Int(day),      Value::Int(error),  Value::Double(bytes),
          Value::Double(latency), Value::Int(region),
          Value::Int(provider)};
}

Schema ActivitySchema() {
  return Schema({{"", "sessionId", ValueType::kInt},
                 {"", "userId", ValueType::kInt},
                 {"", "resourceId", ValueType::kInt},
                 {"", "day", ValueType::kInt},
                 {"", "errorType", ValueType::kInt},
                 {"", "bytes", ValueType::kDouble},
                 {"", "latency", ValueType::kDouble},
                 {"", "region", ValueType::kInt},
                 {"", "provider", ValueType::kInt}});
}

}  // namespace

Result<Database> GenerateConvivaDatabase(const ConvivaConfig& config) {
  Database db;
  Table t(ActivitySchema());
  SVC_RETURN_IF_ERROR(t.SetPrimaryKey({"sessionId"}));
  Rng rng(config.seed);
  Zipfian res_zipf(config.num_resources, config.resource_zipf);
  for (size_t s = 1; s <= config.num_sessions; ++s) {
    SVC_RETURN_IF_ERROR(t.Insert(
        MakeActivity(static_cast<int64_t>(s), config, res_zipf, &rng)));
  }
  SVC_RETURN_IF_ERROR(db.CreateTable("activity", std::move(t)));
  return db;
}

Result<DeltaSet> GenerateConvivaUpdates(const Database& db,
                                        const ConvivaConfig& config,
                                        double fraction, uint64_t seed) {
  DeltaSet deltas;
  SVC_ASSIGN_OR_RETURN(const Table* t, db.GetTable("activity"));
  Rng rng(seed);
  Zipfian res_zipf(config.num_resources, config.resource_zipf);
  int64_t next = 0;
  for (const auto& r : t->rows()) next = std::max(next, r[0].AsInt());
  const size_t n = static_cast<size_t>(t->NumRows() * fraction);
  for (size_t i = 0; i < n; ++i) {
    SVC_RETURN_IF_ERROR(deltas.AddInsert(
        db, "activity", MakeActivity(++next, config, res_zipf, &rng)));
  }
  return deltas;
}

std::vector<ConvivaView> ConvivaViews() {
  return {
      {"V1", "error counts by resource, error type, day",
       "SELECT resourceId, errorType, day, COUNT(1) AS n_errors "
       "FROM activity WHERE errorType > 0 "
       "GROUP BY resourceId, errorType, day"},
      {"V2", "bytes transferred by resource, day",
       "SELECT resourceId, day, SUM(bytes) AS total_bytes, COUNT(1) AS "
       "visits FROM activity GROUP BY resourceId, day"},
      {"V3", "visit counts over a resource-tag expression, user, day",
       "SELECT tag, day, COUNT(1) AS visits FROM "
       "(SELECT sessionId, floor(resourceId / 10) AS tag, day "
       " FROM activity) AS tagged GROUP BY tag, day"},
      {"V4", "per region/provider traffic statistics",
       "SELECT region, provider, SUM(bytes) AS total_bytes, "
       "AVG(latency) AS avg_latency, COUNT(1) AS sessions "
       "FROM activity GROUP BY region, provider"},
      {"V5", "per region/provider error profile",
       "SELECT region, errorType, COUNT(1) AS n "
       "FROM activity WHERE errorType > 0 GROUP BY region, errorType"},
      {"V6", "filtered union over resource subsets",
       "SELECT resourceId, SUM(bytes) AS b, COUNT(1) AS visits "
       "FROM activity WHERE resourceId <= 50 GROUP BY resourceId "
       "UNION "
       "SELECT resourceId, SUM(bytes) AS b, COUNT(1) AS visits "
       "FROM activity WHERE resourceId > 200 AND resourceId <= 260 "
       "GROUP BY resourceId"},
      {"V7", "wide network statistics by resource, day",
       "SELECT resourceId, day, SUM(bytes) AS total_bytes, "
       "AVG(bytes) AS avg_bytes, AVG(latency) AS avg_latency, "
       "COUNT(1) AS sessions FROM activity GROUP BY resourceId, day"},
      {"V8", "visit statistics by user, day",
       "SELECT userId, day, COUNT(1) AS visits, SUM(bytes) AS total_bytes "
       "FROM activity GROUP BY userId, day"},
  };
}

}  // namespace svc
