#ifndef SVC_SHELL_SHELL_H_
#define SVC_SHELL_SHELL_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "sql/session.h"

namespace svc {

/// Rendering and error-handling knobs for the SQL shell.
struct ShellOptions {
  /// Echo each statement (prefixed "svc> ") before its result — used by
  /// `svc_shell --echo --file` so golden outputs read as transcripts.
  bool echo = false;
  /// Keep executing after a statement fails (errors still print).
  bool keep_going = false;
};

/// The statement-at-a-time driver behind the `svc_shell` binary: splits
/// scripts into statements, executes them on any SqlExecutor (an
/// in-process SqlSession or a SvcClient over a socket — transcripts are
/// bit-identical either way), and renders results (row sets and estimate
/// tables via TablePrinter, DDL/DML as one-line messages). Kept as a
/// library so tests can run scripts in process and diff the exact printed
/// output. All rendering happens here, on the client side of the
/// SqlExecutor interface — the session/server layer returns data only.
class Shell {
 public:
  /// `executor` and `out` must outlive the shell.
  Shell(SqlExecutor* executor, std::ostream* out, ShellOptions opts = {});

  /// Executes every ';'-terminated statement in `script`. Returns the
  /// first error (after printing it); with `keep_going` the last error.
  Status RunScript(const std::string& script);

  /// Executes one statement and prints its result (or error).
  Status RunStatement(const std::string& sql);

  /// Interactive loop: reads lines from `in`, submitting whenever a
  /// statement is terminated by ';'. A `show_prompt` of true prints
  /// "svc> " / "...> " continuation prompts to `prompt_out`. Errors never
  /// end the loop; EOF does. Returns the last statement error (so piped
  /// scripts exit non-zero exactly like --file), OK when everything ran.
  Status RunInteractive(std::istream& in, std::ostream& prompt_out,
                        bool show_prompt);

  /// Statements executed so far (including failed ones).
  size_t statements_run() const { return statements_run_; }

 private:
  void PrintResult(const SqlResult& result);

  SqlExecutor* executor_;
  std::ostream* out_;
  ShellOptions opts_;
  size_t statements_run_ = 0;
};

}  // namespace svc

#endif  // SVC_SHELL_SHELL_H_
