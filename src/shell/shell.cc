#include "shell/shell.h"

#include <istream>
#include <ostream>

#include "common/table_printer.h"
#include "sql/parser.h"

namespace svc {

namespace {

/// Trims leading/trailing whitespace for echoing.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

Shell::Shell(SqlExecutor* executor, std::ostream* out, ShellOptions opts)
    : executor_(executor), out_(out), opts_(opts) {}

Status Shell::RunScript(const std::string& script) {
  Status failed = Status::OK();
  for (const std::string& stmt : SplitSqlScript(script)) {
    const Status s = RunStatement(stmt);
    if (!s.ok()) {
      failed = s;
      if (!opts_.keep_going) return failed;
    }
  }
  return failed;
}

Status Shell::RunStatement(const std::string& sql) {
  if (opts_.echo) *out_ << "svc> " << Trim(sql) << "\n";
  ++statements_run_;
  Result<SqlResult> result = executor_->Execute(sql);
  if (!result.ok()) {
    *out_ << "error: " << result.status().ToString() << "\n";
    return result.status();
  }
  PrintResult(*result);
  return Status::OK();
}

Status Shell::RunInteractive(std::istream& in, std::ostream& prompt_out,
                             bool show_prompt) {
  // Errors never end the loop, but the last one becomes the return value
  // so `cat script.sql | svc_shell` exits non-zero exactly like --file.
  Status failed = Status::OK();
  std::string buffer;
  std::string line;
  while (true) {
    if (show_prompt) {
      prompt_out << (buffer.empty() ? "svc> " : "...> ") << std::flush;
    }
    if (!std::getline(in, line)) break;
    buffer += line;
    buffer += '\n';
    // Submit every complete (';'-terminated) statement; keep the partial
    // tail in the buffer so statements can span lines. The splitter — not
    // a text inspection — decides completeness, so a ';' inside a comment
    // or string never submits early.
    bool last_terminated = false;
    std::vector<std::string> stmts = SplitSqlScript(buffer, &last_terminated);
    if (stmts.empty()) {
      // Nothing executable yet. Keep comment-only text so a leading
      // comment block attaches to the next statement (and piped --echo
      // transcripts match --file); drop pure whitespace.
      if (Trim(buffer).empty()) buffer.clear();
      continue;
    }
    buffer.clear();
    if (!last_terminated) {
      buffer = std::move(stmts.back());  // incomplete tail — wait for more
      stmts.pop_back();
    }
    for (auto& stmt : stmts) {
      ShellOptions saved = opts_;
      // Suppress echo only on a real terminal (the user just typed it);
      // piped stdin keeps --echo so it can produce the same transcript
      // as --file.
      if (show_prompt) opts_.echo = false;
      const Status st = RunStatement(stmt);
      opts_ = saved;
      if (!st.ok()) failed = st;
    }
  }
  // EOF with a non-empty tail: run it (scripts piped on stdin may omit the
  // final ';'; comment-only tails yield no statements and are dropped).
  for (auto& stmt : SplitSqlScript(buffer)) {
    const Status s = RunStatement(stmt);
    if (!s.ok()) failed = s;
  }
  return failed;
}

void Shell::PrintResult(const SqlResult& result) {
  if (result.kind == SqlResultKind::kOk) {
    *out_ << result.message << "\n";
    return;
  }
  const Table& t = result.rows;
  std::vector<std::string> headers;
  headers.reserve(t.schema().NumColumns());
  for (const auto& c : t.schema().columns()) headers.push_back(c.FullName());
  TablePrinter printer(std::move(headers));
  for (const auto& row : t.rows()) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& v : row) cells.push_back(v.ToString());
    printer.AddRow(std::move(cells));
  }
  *out_ << printer.ToString();
  *out_ << "-- " << result.message << "\n";
}

}  // namespace svc
