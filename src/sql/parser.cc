#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "sql/lexer.h"

namespace svc {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Recursive-descent parser over the token stream. Expression grammar
/// (loosest to tightest): OR, AND, NOT, comparison (= <> < <= > >=,
/// BETWEEN, IS [NOT] NULL), additive (+ -), multiplicative (* / %), unary
/// minus, primary (literal, column, function call, parenthesized).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectBody());
    SelectStmt* tail = stmt.get();
    while (Peek().IsKeyword("UNION") || Peek().IsKeyword("INTERSECT") ||
           Peek().IsKeyword("EXCEPT")) {
      PlanKind op = PlanKind::kUnion;
      if (Peek().IsKeyword("INTERSECT")) op = PlanKind::kIntersect;
      if (Peek().IsKeyword("EXCEPT")) op = PlanKind::kDifference;
      Advance();
      SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> next,
                           ParseSelectBody());
      tail->set_op = op;
      tail->set_next = std::move(next);
      tail = tail->set_next.get();
    }
    if (Peek().type != TokenType::kEnd && !Peek().IsSymbol(")") &&
        !Peek().IsSymbol(";") && !Peek().IsKeyword("WITH")) {
      return Err("unexpected trailing tokens");
    }
    return stmt;
  }

  /// Parses one top-level statement of any kind (SELECT, DDL, DML).
  Result<Statement> ParseTop() {
    Statement stmt;
    if (Peek().type == TokenType::kEnd || Peek().IsSymbol(";")) {
      return Err("empty statement");
    }
    if (Peek().IsKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      SVC_ASSIGN_OR_RETURN(stmt.select, ParseStatement());
      SVC_ASSIGN_OR_RETURN(stmt.svc, ParseSvcClause());
    } else if (Accept("CREATE")) {
      if (Accept("TABLE")) {
        SVC_RETURN_IF_ERROR(ParseCreateTable(&stmt));
      } else if (Accept("MATERIALIZED")) {
        SVC_RETURN_IF_ERROR(Expect("VIEW"));
        SVC_RETURN_IF_ERROR(ParseCreateView(&stmt));
      } else {
        return Err(
            "expected TABLE or MATERIALIZED VIEW after CREATE (only "
            "materialized views are supported)");
      }
    } else if (Accept("INSERT")) {
      SVC_RETURN_IF_ERROR(ParseInsert(&stmt));
    } else if (Accept("DELETE")) {
      SVC_RETURN_IF_ERROR(ParseDelete(&stmt));
    } else if (Accept("REFRESH")) {
      SVC_RETURN_IF_ERROR(ParseRefresh(&stmt));
    } else if (Accept("CHECKPOINT")) {
      stmt.kind = Statement::Kind::kCheckpoint;
    } else if (Accept("SET")) {
      SVC_RETURN_IF_ERROR(Expect("MAINTENANCE"));
      SVC_RETURN_IF_ERROR(Expect("POLICY"));
      SVC_RETURN_IF_ERROR(ParseSetPolicy(&stmt));
    } else if (Accept("SHOW")) {
      if (Accept("TABLES")) {
        stmt.kind = Statement::Kind::kShowTables;
      } else if (Accept("VIEWS")) {
        stmt.kind = Statement::Kind::kShowViews;
      } else if (Accept("STATS")) {
        stmt.kind = Statement::Kind::kShowStats;
      } else if (Accept("MAINTENANCE")) {
        stmt.kind = Statement::Kind::kShowMaintenance;
      } else {
        return Err("expected TABLES, VIEWS, STATS, or MAINTENANCE after SHOW");
      }
    } else {
      return Err(
          "expected a statement (SELECT, CREATE TABLE, CREATE MATERIALIZED "
          "VIEW, INSERT INTO, DELETE FROM, REFRESH, CHECKPOINT, SET "
          "MAINTENANCE POLICY, SHOW)");
    }
    if (!AtEnd()) return Err("unexpected trailing tokens");
    stmt.num_params = num_params_;
    return stmt;
  }

  /// True once every remaining token is a statement separator.
  bool AtEnd() {
    while (AcceptSymbol(";")) {
    }
    return Peek().type == TokenType::kEnd;
  }

  Result<ExprPtr> ParseLooseExpr() {
    SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing tokens");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const char* kw) {
    if (!Accept(kw)) {
      return Status::ParseError(std::string("expected ") + kw +
                                     " near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(std::string("expected '") + sym +
                                     "' near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " near offset " +
                              std::to_string(Peek().offset));
  }

  /// std::stoll with overflow mapped to a parse error (an out-of-range
  /// literal must not abort the process).
  Result<int64_t> ToInt(const std::string& text) const {
    try {
      return std::stoll(text);
    } catch (const std::exception&) {
      return Err("integer literal out of range: " + text);
    }
  }

  /// std::stod with overflow mapped to a parse error.
  Result<double> ToDouble(const std::string& text) const {
    try {
      return std::stod(text);
    } catch (const std::exception&) {
      return Err("numeric literal out of range: " + text);
    }
  }

  /// Consumes an identifier token; `what` names it in the error message.
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Err(std::string("expected ") + what);
    }
    return Advance().text;
  }

  /// Parses a parenthesized, comma-separated identifier list.
  Result<std::vector<std::string>> ParseIdentList(const char* what) {
    SVC_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> out;
    do {
      SVC_ASSIGN_OR_RETURN(std::string name, ExpectIdent(what));
      out.push_back(std::move(name));
    } while (AcceptSymbol(","));
    SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    return out;
  }

  Status ParseCreateTable(Statement* stmt) {
    stmt->kind = Statement::Kind::kCreateTable;
    SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a table name"));
    SVC_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      if (Accept("PRIMARY")) {
        SVC_RETURN_IF_ERROR(Expect("KEY"));
        if (!stmt->primary_key.empty()) {
          return Err("duplicate PRIMARY KEY clause");
        }
        SVC_ASSIGN_OR_RETURN(stmt->primary_key,
                             ParseIdentList("a key column name"));
        continue;
      }
      ColumnDef col;
      SVC_ASSIGN_OR_RETURN(col.name, ExpectIdent("a column name"));
      if (Accept("INT") || Accept("INTEGER")) {
        col.type = ValueType::kInt;
      } else if (Accept("DOUBLE") || Accept("FLOAT") || Accept("REAL")) {
        col.type = ValueType::kDouble;
      } else if (Accept("STRING") || Accept("TEXT") || Accept("VARCHAR")) {
        col.type = ValueType::kString;
      } else {
        return Err("expected a column type (INT, DOUBLE, or STRING) after '" +
                   col.name + "'");
      }
      stmt->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (stmt->columns.empty()) {
      return Err("CREATE TABLE requires at least one column");
    }
    return Status::OK();
  }

  Status ParseCreateView(Statement* stmt) {
    stmt->kind = Statement::Kind::kCreateView;
    SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a view name"));
    if (Accept("SAMPLING")) {
      SVC_RETURN_IF_ERROR(Expect("KEY"));
      SVC_ASSIGN_OR_RETURN(stmt->sampling_key,
                           ParseIdentList("a sampling-key column name"));
    }
    SVC_RETURN_IF_ERROR(Expect("AS"));
    SVC_ASSIGN_OR_RETURN(stmt->select, ParseStatement());
    if (Peek().IsKeyword("WITH")) {
      return Err("WITH SVC(...) applies to queries, not view definitions");
    }
    return Status::OK();
  }

  Status ParseInsert(Statement* stmt) {
    stmt->kind = Statement::Kind::kInsert;
    SVC_RETURN_IF_ERROR(Expect("INTO"));
    SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a table name"));
    SVC_RETURN_IF_ERROR(Expect("VALUES"));
    do {
      SVC_RETURN_IF_ERROR(ExpectSymbol("("));
      Row row;
      do {
        if (Peek().IsSymbol("?")) {
          // Placeholder: remember the slot, insert NULL until EXECUTE
          // substitutes the bound value.
          Advance();
          Statement::ValueParamSlot slot;
          slot.row = static_cast<uint32_t>(stmt->values.size());
          slot.col = static_cast<uint32_t>(row.size());
          slot.param = num_params_++;
          stmt->value_params.push_back(slot);
          row.push_back(Value::Null());
          continue;
        }
        SVC_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
      } while (AcceptSymbol(","));
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->values.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  Status ParseDelete(Statement* stmt) {
    stmt->kind = Statement::Kind::kDelete;
    SVC_RETURN_IF_ERROR(Expect("FROM"));
    SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a table name"));
    if (Accept("WHERE")) {
      SVC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return Status::OK();
  }

  Status ParseRefresh(Statement* stmt) {
    stmt->kind = Statement::Kind::kRefresh;
    if (Accept("ALL")) {
      stmt->refresh_all = true;
      return Status::OK();
    }
    SVC_RETURN_IF_ERROR(Expect("VIEW"));
    SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a view name"));
    return Status::OK();
  }

  /// A literal row value: number (optionally negated), 'string', NULL,
  /// TRUE, FALSE.
  Result<Value> ParseLiteral() {
    const bool neg = AcceptSymbol("-");
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      Advance();
      if (t.text.find('.') != std::string::npos) {
        SVC_ASSIGN_OR_RETURN(double v, ToDouble(t.text));
        return Value::Double(neg ? -v : v);
      }
      // Negate inside the parse so INT64_MIN (whose magnitude overflows)
      // stays representable.
      SVC_ASSIGN_OR_RETURN(int64_t v, ToInt(neg ? "-" + t.text : t.text));
      return Value::Int(v);
    }
    if (neg) return Err("expected a number after '-'");
    if (t.type == TokenType::kString) {
      Advance();
      return Value::String(t.text);
    }
    if (Accept("NULL")) return Value::Null();
    if (Accept("TRUE")) return Value::Bool(true);
    if (Accept("FALSE")) return Value::Bool(false);
    return Err(
        "expected a literal value (number, 'string', NULL, TRUE, or FALSE)");
  }

  /// `SET MAINTENANCE POLICY (mode=off|auto, budget=..., sla_ms=...,
  /// tick_ms=..., ratio=...)` — keys in any order, each at most meaningful
  /// once; unspecified keys take the MaintenancePolicyConfig defaults.
  /// The ON-form, `SET MAINTENANCE POLICY ON <view> (budget=..., sla_ms=...,
  /// ratio=...)`, instead records a per-view override of exactly the keys
  /// given; mode and tick_ms stay global (one scheduler, one cadence), and
  /// `ON <view> ()` clears the view's override.
  Status ParseSetPolicy(Statement* stmt) {
    stmt->kind = Statement::Kind::kSetPolicy;
    stmt->policy = MaintenancePolicyConfig{};
    if (Accept("ON")) {
      stmt->policy_on_view = true;
      SVC_ASSIGN_OR_RETURN(stmt->target, ExpectIdent("a view name after ON"));
      return ParseViewPolicyOverride(stmt);
    }
    SVC_RETURN_IF_ERROR(ExpectSymbol("("));
    if (AcceptSymbol(")")) return Status::OK();
    do {
      SVC_ASSIGN_OR_RETURN(std::string key,
                           ExpectIdent("a maintenance policy option name"));
      key = Lower(key);
      SVC_RETURN_IF_ERROR(ExpectSymbol("="));
      if (key == "mode") {
        if (Peek().type != TokenType::kIdentifier &&
            Peek().type != TokenType::kString) {
          return Err("maintenance mode must be off or auto");
        }
        const std::string mode = Lower(Advance().text);
        if (mode == "off") {
          stmt->policy.mode = MaintenancePolicyConfig::Mode::kOff;
        } else if (mode == "auto") {
          stmt->policy.mode = MaintenancePolicyConfig::Mode::kAuto;
        } else {
          return Err("maintenance mode must be off or auto; got '" + mode +
                     "'");
        }
      } else if (key == "budget") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("budget"));
        if (!(v > 0.0)) {
          return Err("maintenance budget must be > 0; got " +
                     std::to_string(v));
        }
        stmt->policy.budget = v;
      } else if (key == "sla_ms") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("sla_ms"));
        if (!(v >= 0.0)) {
          return Err("maintenance sla_ms must be >= 0; got " +
                     std::to_string(v));
        }
        stmt->policy.sla_ms = static_cast<uint64_t>(v);
      } else if (key == "tick_ms") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("tick_ms"));
        if (!(v > 0.0)) {
          return Err("maintenance tick_ms must be > 0; got " +
                     std::to_string(v));
        }
        stmt->policy.tick_ms = static_cast<uint64_t>(v);
      } else if (key == "ratio") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("ratio"));
        if (!(v > 0.0 && v <= 1.0)) {
          return Err("maintenance ratio must be in (0, 1]; got " +
                     std::to_string(v));
        }
        stmt->policy.ratio = v;
      } else {
        return Err("unknown maintenance policy option '" + key +
                   "'; supported options are mode, budget, sla_ms, tick_ms, "
                   "ratio");
      }
    } while (AcceptSymbol(","));
    return ExpectSymbol(")");
  }

  /// The parenthesized key list of the ON-form: budget/sla_ms/ratio only,
  /// same value bounds as the global form.
  Status ParseViewPolicyOverride(Statement* stmt) {
    SVC_RETURN_IF_ERROR(ExpectSymbol("("));
    if (AcceptSymbol(")")) return Status::OK();  // clears the override
    do {
      SVC_ASSIGN_OR_RETURN(std::string key,
                           ExpectIdent("a maintenance policy option name"));
      key = Lower(key);
      SVC_RETURN_IF_ERROR(ExpectSymbol("="));
      if (key == "budget") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("budget"));
        if (!(v > 0.0)) {
          return Err("maintenance budget must be > 0; got " +
                     std::to_string(v));
        }
        stmt->policy_override.budget = v;
      } else if (key == "sla_ms") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("sla_ms"));
        if (!(v >= 0.0)) {
          return Err("maintenance sla_ms must be >= 0; got " +
                     std::to_string(v));
        }
        stmt->policy_override.sla_ms = static_cast<uint64_t>(v);
      } else if (key == "ratio") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("ratio"));
        if (!(v > 0.0 && v <= 1.0)) {
          return Err("maintenance ratio must be in (0, 1]; got " +
                     std::to_string(v));
        }
        stmt->policy_override.ratio = v;
      } else if (key == "mode" || key == "tick_ms") {
        return Err("maintenance policy option '" + key +
                   "' is global and cannot be set per view");
      } else {
        return Err("unknown per-view maintenance policy option '" + key +
                   "'; supported options are budget, sla_ms, ratio");
      }
    } while (AcceptSymbol(","));
    return ExpectSymbol(")");
  }

  /// `WITH SVC(ratio=..., mode=aqp|corr|auto, confidence=...)`.
  Result<SvcClause> ParseSvcClause() {
    SvcClause clause;
    if (!Accept("WITH")) return clause;
    SVC_RETURN_IF_ERROR(Expect("SVC"));
    clause.present = true;
    SVC_RETURN_IF_ERROR(ExpectSymbol("("));
    if (AcceptSymbol(")")) return clause;
    do {
      SVC_ASSIGN_OR_RETURN(std::string key, ExpectIdent("an SVC option name"));
      key = Lower(key);
      SVC_RETURN_IF_ERROR(ExpectSymbol("="));
      if (key == "ratio") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("ratio"));
        if (!(v > 0.0 && v <= 1.0)) {
          return Err("SVC ratio must be in (0, 1]; got " + std::to_string(v));
        }
        clause.ratio = v;
      } else if (key == "mode") {
        if (Peek().type != TokenType::kIdentifier &&
            Peek().type != TokenType::kString) {
          return Err("SVC mode must be aqp, corr, or auto");
        }
        const std::string mode = Lower(Advance().text);
        if (mode == "aqp") {
          clause.mode = EstimatorMode::kAqp;
        } else if (mode == "corr") {
          clause.mode = EstimatorMode::kCorr;
        } else if (mode == "auto") {
          clause.auto_mode = true;
        } else {
          return Err("SVC mode must be aqp, corr, or auto; got '" + mode +
                     "'");
        }
      } else if (key == "confidence") {
        SVC_ASSIGN_OR_RETURN(double v, ParseNumberArg("confidence"));
        if (!(v > 0.0 && v < 1.0)) {
          return Err("SVC confidence must be in (0, 1); got " +
                     std::to_string(v));
        }
        clause.confidence = v;
      } else {
        return Err("unknown SVC option '" + key +
                   "'; supported options are ratio, mode, confidence");
      }
    } while (AcceptSymbol(","));
    SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    return clause;
  }

  Result<double> ParseNumberArg(const char* what) {
    const bool neg = AcceptSymbol("-");
    if (Peek().type != TokenType::kNumber) {
      return Err(std::string("SVC ") + what + " must be a number");
    }
    SVC_ASSIGN_OR_RETURN(double v, ToDouble(Advance().text));
    return neg ? -v : v;
  }

  static bool IsAggKeyword(const Token& t, AggFunc* func) {
    if (t.type != TokenType::kKeyword) return false;
    if (t.text == "SUM") *func = AggFunc::kSum;
    else if (t.text == "COUNT") *func = AggFunc::kCount;
    else if (t.text == "AVG") *func = AggFunc::kAvg;
    else if (t.text == "MIN") *func = AggFunc::kMin;
    else if (t.text == "MAX") *func = AggFunc::kMax;
    else if (t.text == "MEDIAN") *func = AggFunc::kMedian;
    else return false;
    return true;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    SVC_RETURN_IF_ERROR(Expect("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();

    // Select list.
    do {
      SVC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    SVC_RETURN_IF_ERROR(Expect("FROM"));
    SVC_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    for (;;) {
      if (AcceptSymbol(",")) {
        SVC_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt->from.push_back(std::move(t));
        continue;
      }
      JoinType jt;
      bool is_join = false;
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        jt = JoinType::kInner;
        is_join = true;
        Accept("INNER");
      } else if (Peek().IsKeyword("LEFT")) {
        jt = JoinType::kLeft;
        is_join = true;
        Advance();
        Accept("OUTER");
      } else if (Peek().IsKeyword("RIGHT")) {
        jt = JoinType::kRight;
        is_join = true;
        Advance();
        Accept("OUTER");
      } else if (Peek().IsKeyword("FULL")) {
        jt = JoinType::kFull;
        is_join = true;
        Advance();
        Accept("OUTER");
      }
      if (!is_join) break;
      SVC_RETURN_IF_ERROR(Expect("JOIN"));
      JoinClause jc;
      jc.type = jt;
      SVC_ASSIGN_OR_RETURN(jc.table, ParseTableRef());
      SVC_RETURN_IF_ERROR(Expect("ON"));
      SVC_ASSIGN_OR_RETURN(jc.on, ParseExpr());
      stmt->joins.push_back(std::move(jc));
    }

    if (Accept("WHERE")) {
      SVC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Accept("GROUP")) {
      SVC_RETURN_IF_ERROR(Expect("BY"));
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Err("GROUP BY expects column references");
        }
        stmt->group_by.push_back(Advance().text);
      } while (AcceptSymbol(","));
    }
    if (Accept("HAVING")) {
      SVC_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.is_star = true;
      return item;
    }
    AggFunc func;
    if (IsAggKeyword(Peek(), &func) && Peek(1).IsSymbol("(")) {
      Advance();
      Advance();  // '('
      item.is_agg = true;
      item.agg = func;
      if (func == AggFunc::kCount) {
        if (AcceptSymbol("*")) {
          item.agg = AggFunc::kCountStar;
        } else if (Peek().type == TokenType::kNumber && Peek(1).IsSymbol(")")) {
          Advance();  // COUNT(1) == COUNT(*)
          item.agg = AggFunc::kCountStar;
        } else if (Accept("DISTINCT")) {
          item.agg = AggFunc::kCountDistinct;
          SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
        } else {
          SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
        }
      } else {
        SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
      }
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      SVC_ASSIGN_OR_RETURN(item.scalar, ParseExpr());
    }
    if (Accept("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier &&
               !Peek().IsKeyword("FROM")) {
      // Implicit alias: `expr name`.
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptSymbol("(")) {
      SVC_ASSIGN_OR_RETURN(ref.subquery, ParseStatement());
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.table = Advance().text;
    } else {
      return Err("expected table name or subquery");
    }
    if (Accept("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    if (ref.alias.empty()) {
      if (ref.table.empty()) return Err("subquery requires an alias");
      ref.alias = ref.table;
    }
    return ref;
  }

  // ---- Expressions ---------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Accept("IS")) {
      const bool negated = Accept("NOT");
      SVC_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(lhs));
    }
    if (Accept("BETWEEN")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      SVC_RETURN_IF_ERROR(Expect("AND"));
      SVC_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr lhs_copy = lhs->Clone();
      return Expr::And(Expr::Ge(std::move(lhs_copy), std::move(lo)),
                       Expr::Le(std::move(lhs), std::move(hi)));
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<>", BinaryOp::kNe}, {"=", BinaryOp::kEq},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Add(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (AcceptSymbol("*")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Mul(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Div(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("%")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.IsSymbol("?")) {
      Advance();
      return Expr::Param(num_params_++);
    }
    if (t.type == TokenType::kNumber) {
      Advance();
      if (t.text.find('.') != std::string::npos) {
        SVC_ASSIGN_OR_RETURN(double v, ToDouble(t.text));
        return Expr::LitDouble(v);
      }
      SVC_ASSIGN_OR_RETURN(int64_t v, ToInt(t.text));
      return Expr::LitInt(v);
    }
    if (t.type == TokenType::kString) {
      Advance();
      return Expr::LitString(t.text);
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return Expr::Lit(Value::Null());
    }
    if (t.IsKeyword("TRUE")) {
      Advance();
      return Expr::Lit(Value::Bool(true));
    }
    if (t.IsKeyword("FALSE")) {
      Advance();
      return Expr::Lit(Value::Bool(false));
    }
    if (t.IsSymbol("(")) {
      Advance();
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (t.type == TokenType::kIdentifier) {
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        const std::string name = Advance().text;
        Advance();  // '('
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          do {
            SVC_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          } while (AcceptSymbol(","));
        }
        SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::Func(name, std::move(args));
      }
      Advance();
      return Expr::Col(t.text);
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  uint32_t num_params_ = 0;  // `?` placeholders seen, in text order
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                       parser.ParseStatement());
  if (!parser.AtEnd()) {
    return Status::ParseError(
        "unexpected trailing tokens after SELECT (WITH SVC(...) queries go "
        "through SqlSession::Execute, not ParseSelect)");
  }
  return stmt;
}

Result<Statement> ParseStatement(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseTop();
}

std::vector<std::string> SplitSqlScript(const std::string& script,
                                        bool* last_terminated) {
  std::vector<std::string> out;
  std::string current;
  bool has_content = false;  // non-space, non-comment text seen
  size_t i = 0;
  const size_t n = script.size();
  auto flush = [&] {
    if (has_content) out.push_back(current);
    current.clear();
    has_content = false;
  };
  while (i < n) {
    const char c = script[i];
    if (c == '-' && i + 1 < n && script[i + 1] == '-') {
      while (i < n && script[i] != '\n') current.push_back(script[i++]);
      continue;
    }
    if (c == '\'') {
      current.push_back(script[i++]);
      has_content = true;
      while (i < n) {
        if (script[i] == '\'') {
          // '' is an escaped quote (matches the lexer) — stay in-string.
          if (i + 1 < n && script[i + 1] == '\'') {
            current.push_back(script[i++]);
            current.push_back(script[i++]);
            continue;
          }
          current.push_back(script[i++]);  // closing quote
          break;
        }
        current.push_back(script[i++]);
      }
      continue;
    }
    if (c == ';') {
      current.push_back(script[i++]);
      flush();
      continue;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) has_content = true;
    current.push_back(script[i++]);
  }
  // Anything left at end-of-input never saw its ';'.
  if (last_terminated != nullptr) *last_terminated = !has_content;
  flush();
  return out;
}

Result<ExprPtr> ParseScalarExpr(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseLooseExpr();
}

}  // namespace svc
