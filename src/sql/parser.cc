#include "sql/parser.h"

#include "sql/lexer.h"

namespace svc {

namespace {

/// Recursive-descent parser over the token stream. Expression grammar
/// (loosest to tightest): OR, AND, NOT, comparison (= <> < <= > >=,
/// BETWEEN, IS [NOT] NULL), additive (+ -), multiplicative (* / %), unary
/// minus, primary (literal, column, function call, parenthesized).
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectBody());
    if (!Peek().IsKeyword("UNION") && !Peek().IsKeyword("INTERSECT") &&
        !Peek().IsKeyword("EXCEPT")) {
      if (Peek().type != TokenType::kEnd && !Peek().IsSymbol(")")) {
        return Err("unexpected trailing tokens");
      }
      return stmt;
    }
    SelectStmt* tail = stmt.get();
    while (Peek().IsKeyword("UNION") || Peek().IsKeyword("INTERSECT") ||
           Peek().IsKeyword("EXCEPT")) {
      PlanKind op = PlanKind::kUnion;
      if (Peek().IsKeyword("INTERSECT")) op = PlanKind::kIntersect;
      if (Peek().IsKeyword("EXCEPT")) op = PlanKind::kDifference;
      Advance();
      SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> next,
                           ParseSelectBody());
      tail->set_op = op;
      tail->set_next = std::move(next);
      tail = tail->set_next.get();
    }
    if (Peek().type != TokenType::kEnd && !Peek().IsSymbol(")")) {
      return Err("unexpected trailing tokens");
    }
    return stmt;
  }

  Result<ExprPtr> ParseLooseExpr() {
    SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing tokens");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(const char* kw) {
    if (!Accept(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " near offset " +
                                   std::to_string(Peek().offset));
  }

  static bool IsAggKeyword(const Token& t, AggFunc* func) {
    if (t.type != TokenType::kKeyword) return false;
    if (t.text == "SUM") *func = AggFunc::kSum;
    else if (t.text == "COUNT") *func = AggFunc::kCount;
    else if (t.text == "AVG") *func = AggFunc::kAvg;
    else if (t.text == "MIN") *func = AggFunc::kMin;
    else if (t.text == "MAX") *func = AggFunc::kMax;
    else if (t.text == "MEDIAN") *func = AggFunc::kMedian;
    else return false;
    return true;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    SVC_RETURN_IF_ERROR(Expect("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();

    // Select list.
    do {
      SVC_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    SVC_RETURN_IF_ERROR(Expect("FROM"));
    SVC_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    for (;;) {
      if (AcceptSymbol(",")) {
        SVC_ASSIGN_OR_RETURN(TableRef t, ParseTableRef());
        stmt->from.push_back(std::move(t));
        continue;
      }
      JoinType jt;
      bool is_join = false;
      if (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
        jt = JoinType::kInner;
        is_join = true;
        Accept("INNER");
      } else if (Peek().IsKeyword("LEFT")) {
        jt = JoinType::kLeft;
        is_join = true;
        Advance();
        Accept("OUTER");
      } else if (Peek().IsKeyword("RIGHT")) {
        jt = JoinType::kRight;
        is_join = true;
        Advance();
        Accept("OUTER");
      } else if (Peek().IsKeyword("FULL")) {
        jt = JoinType::kFull;
        is_join = true;
        Advance();
        Accept("OUTER");
      }
      if (!is_join) break;
      SVC_RETURN_IF_ERROR(Expect("JOIN"));
      JoinClause jc;
      jc.type = jt;
      SVC_ASSIGN_OR_RETURN(jc.table, ParseTableRef());
      SVC_RETURN_IF_ERROR(Expect("ON"));
      SVC_ASSIGN_OR_RETURN(jc.on, ParseExpr());
      stmt->joins.push_back(std::move(jc));
    }

    if (Accept("WHERE")) {
      SVC_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Accept("GROUP")) {
      SVC_RETURN_IF_ERROR(Expect("BY"));
      do {
        if (Peek().type != TokenType::kIdentifier) {
          return Err("GROUP BY expects column references");
        }
        stmt->group_by.push_back(Advance().text);
      } while (AcceptSymbol(","));
    }
    if (Accept("HAVING")) {
      SVC_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().IsSymbol("*")) {
      Advance();
      item.is_star = true;
      return item;
    }
    AggFunc func;
    if (IsAggKeyword(Peek(), &func) && Peek(1).IsSymbol("(")) {
      Advance();
      Advance();  // '('
      item.is_agg = true;
      item.agg = func;
      if (func == AggFunc::kCount) {
        if (AcceptSymbol("*")) {
          item.agg = AggFunc::kCountStar;
        } else if (Peek().type == TokenType::kNumber && Peek(1).IsSymbol(")")) {
          Advance();  // COUNT(1) == COUNT(*)
          item.agg = AggFunc::kCountStar;
        } else if (Accept("DISTINCT")) {
          item.agg = AggFunc::kCountDistinct;
          SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
        } else {
          SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
        }
      } else {
        SVC_ASSIGN_OR_RETURN(item.agg_input, ParseExpr());
      }
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else {
      SVC_ASSIGN_OR_RETURN(item.scalar, ParseExpr());
    }
    if (Accept("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after AS");
      }
      item.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier &&
               !Peek().IsKeyword("FROM")) {
      // Implicit alias: `expr name`.
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (AcceptSymbol("(")) {
      SVC_ASSIGN_OR_RETURN(ref.subquery, ParseStatement());
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.table = Advance().text;
    } else {
      return Err("expected table name or subquery");
    }
    if (Accept("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Err("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    if (ref.alias.empty()) {
      if (ref.table.empty()) return Err("subquery requires an alias");
      ref.alias = ref.table;
    }
    return ref;
  }

  // ---- Expressions ---------------------------------------------------------
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Accept("OR")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Accept("AND")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return Expr::Not(std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Accept("IS")) {
      const bool negated = Accept("NOT");
      SVC_RETURN_IF_ERROR(Expect("NULL"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(lhs));
    }
    if (Accept("BETWEEN")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      SVC_RETURN_IF_ERROR(Expect("AND"));
      SVC_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr lhs_copy = lhs->Clone();
      return Expr::And(Expr::Ge(std::move(lhs_copy), std::move(lo)),
                       Expr::Le(std::move(lhs), std::move(hi)));
    }
    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<>", BinaryOp::kNe}, {"=", BinaryOp::kEq},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
    for (const auto& [sym, op] : kOps) {
      if (AcceptSymbol(sym)) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      if (AcceptSymbol("+")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Add(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Sub(std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    SVC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      if (AcceptSymbol("*")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Mul(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Div(std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("%")) {
        SVC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(e));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber) {
      Advance();
      if (t.text.find('.') != std::string::npos) {
        return Expr::LitDouble(std::stod(t.text));
      }
      return Expr::LitInt(std::stoll(t.text));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return Expr::LitString(t.text);
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return Expr::Lit(Value::Null());
    }
    if (t.IsKeyword("TRUE")) {
      Advance();
      return Expr::Lit(Value::Bool(true));
    }
    if (t.IsKeyword("FALSE")) {
      Advance();
      return Expr::Lit(Value::Bool(false));
    }
    if (t.IsSymbol("(")) {
      Advance();
      SVC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (t.type == TokenType::kIdentifier) {
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        const std::string name = Advance().text;
        Advance();  // '('
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          do {
            SVC_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
          } while (AcceptSymbol(","));
        }
        SVC_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::Func(name, std::move(args));
      }
      Advance();
      return Expr::Col(t.text);
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseScalarExpr(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseLooseExpr();
}

}  // namespace svc
