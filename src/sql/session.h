#ifndef SVC_SQL_SESSION_H_
#define SVC_SQL_SESSION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/svc.h"
#include "sql/parser.h"

namespace svc {

/// What a statement produced.
enum class SqlResultKind {
  kOk,        ///< DDL / DML: no rows, `message` summarizes the effect
  kRows,      ///< plain SELECT: `rows` holds the result relation
  kEstimate,  ///< SELECT ... WITH SVC: `rows` holds estimate ± CI columns
};

/// The result of executing one SQL statement.
struct SqlResult {
  SqlResultKind kind = SqlResultKind::kOk;
  Table rows;           ///< kRows / kEstimate
  std::string message;  ///< one-line human-readable summary (always set)
  /// For kEstimate: which estimator answered (matters with mode=auto).
  EstimatorMode mode_used = EstimatorMode::kCorr;
};

/// A SQL-driven session over one SvcEngine: the full SVC lifecycle —
/// define base relations, materialize views, ingest deltas, answer
/// bounded-error aggregate queries on stale views, commit maintenance —
/// scripted as SQL text (§3.2 of the paper):
///
///   CREATE TABLE Log (sessionId INT, videoId INT,
///                     PRIMARY KEY (sessionId));
///   INSERT INTO Log VALUES (0, 1), (1, 3);      -- queued as deltas
///   REFRESH ALL;                                -- commit into base tables
///   CREATE MATERIALIZED VIEW visitView AS
///     SELECT videoId, COUNT(1) AS visitCount FROM Log GROUP BY videoId;
///   INSERT INTO Log VALUES (2, 3);              -- the view is now stale
///   SELECT COUNT(1) FROM visitView WHERE visitCount > 1
///     WITH SVC(ratio=0.5, mode=corr);           -- estimate ± CI
///   REFRESH VIEW visitView;                     -- maintenance commit
///
/// Statement routing:
///   * `SELECT ... WITH SVC(...)` must aggregate over a single materialized
///     view; it lowers to an AggregateQuery and runs through
///     SvcEngine::Query (or QueryGrouped under GROUP BY), so session
///     answers are bit-identical to direct engine calls with the same
///     options.
///   * Every other SELECT parses and plans through sql/planner and runs on
///     the plain executor against the current committed state (stale view
///     tables included).
///   * INSERT / DELETE queue deltas through the engine; base tables change
///     only at REFRESH (the paper's maintenance model). A DELETE's WHERE
///     selects the *committed* rows to queue for deletion.
///   * REFRESH VIEW <v> validates that <v> exists, then runs MaintainAll —
///     pending deltas are engine-global, so maintenance is a single commit
///     point that freshens every view.
class SqlSession {
 public:
  /// A session over an empty catalog (populate it with CREATE TABLE).
  SqlSession() : engine_(Database()) {}
  /// A session over pre-loaded base relations.
  explicit SqlSession(Database db) : engine_(std::move(db)) {}

  SvcEngine& engine() { return engine_; }
  const SvcEngine& engine() const { return engine_; }

  /// Session-wide SVC defaults; `WITH SVC(...)` keys override per query.
  SvcQueryOptions& default_svc_options() { return svc_defaults_; }
  const SvcQueryOptions& default_svc_options() const { return svc_defaults_; }

  /// Parses and executes one statement.
  Result<SqlResult> Execute(const std::string& sql);

  /// Executes an already-parsed statement.
  Result<SqlResult> Execute(const Statement& stmt);

 private:
  Result<SqlResult> ExecSelect(const Statement& stmt);
  Result<SqlResult> ExecSvcSelect(const Statement& stmt);
  Result<SqlResult> ExecCreateTable(const Statement& stmt);
  Result<SqlResult> ExecCreateView(const Statement& stmt);
  Result<SqlResult> ExecInsert(const Statement& stmt);
  Result<SqlResult> ExecDelete(const Statement& stmt);
  Result<SqlResult> ExecRefresh(const Statement& stmt);
  Result<SqlResult> ExecShowTables();
  Result<SqlResult> ExecShowViews();

  /// Rejects targets that are views or internal delta tables; returns the
  /// base table.
  Result<const Table*> ResolveBaseTable(const std::string& name,
                                        const char* verb) const;

  /// Cached encoded-primary-key sets of one relation's pending deltas, so
  /// ExecInsert's conflict checks stay O(batch) per statement instead of
  /// re-encoding the whole pending queue (O(pending)) every INSERT. The
  /// row counts validate the cache: REFRESH empties the queue and any
  /// direct engine_ mutation between statements changes the counts, both
  /// of which trigger a rebuild.
  struct PendingKeys {
    size_t insert_rows = 0;
    size_t delete_rows = 0;
    std::set<std::string> inserts;
    std::set<std::string> deletes;
  };

  /// Rebuilds `cache` from the pending tables when the row counts drifted.
  void SyncPendingKeys(const std::string& relation,
                       const std::vector<size_t>& pk_indices,
                       PendingKeys* cache) const;

  SvcEngine engine_;
  SvcQueryOptions svc_defaults_;
  std::map<std::string, PendingKeys> pending_keys_;
};

}  // namespace svc

#endif  // SVC_SQL_SESSION_H_
