#ifndef SVC_SQL_SESSION_H_
#define SVC_SQL_SESSION_H_

#include <cassert>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "core/sharded_engine.h"
#include "core/shared_engine.h"
#include "core/svc.h"
#include "sql/parser.h"
#include "storage/durable_engine.h"

namespace svc {

/// What a statement produced.
enum class SqlResultKind {
  kOk,        ///< DDL / DML: no rows, `message` summarizes the effect
  kRows,      ///< plain SELECT: `rows` holds the result relation
  kEstimate,  ///< SELECT ... WITH SVC: `rows` holds estimate ± CI columns
};

/// The result of executing one SQL statement.
struct SqlResult {
  SqlResultKind kind = SqlResultKind::kOk;
  Table rows;           ///< kRows / kEstimate
  std::string message;  ///< one-line human-readable summary (always set)
  /// For kEstimate: which estimator answered (matters with mode=auto).
  EstimatorMode mode_used = EstimatorMode::kCorr;
  /// For kEstimate: the answer was produced under degraded admission (a
  /// reduced sampling ratio — same estimator mode, wider CI). Set by the
  /// server's --degrade path and carried over the wire (protocol v2), so
  /// clients can tell a shed-load answer from a normal one.
  bool degraded = false;
};

/// Anything that can execute SQL text and return a SqlResult: an in-process
/// SqlSession, or a SvcClient talking to a remote svc_served. Results cross
/// this interface as data (rows + a one-line summary); all rendering
/// (TablePrinter) happens in the shell/client layer, so a server never pays
/// for string formatting.
class SqlExecutor {
 public:
  virtual ~SqlExecutor() = default;
  /// Parses and executes one statement.
  virtual Result<SqlResult> Execute(const std::string& sql) = 0;
};

/// Names the engine a session (or server) runs on — exactly one of:
///
///   * **Private**: the handle owns a SvcEngine (shared-nothing; one
///     engine per session).
///   * **Shared**: the handle addresses a SharedEngine; many sessions run
///     concurrently with snapshot isolation.
///   * **Durable**: shared-mode semantics over a DurableEngine (each write
///     is one WAL-logged commit).
///   * **Sharded**: the handle addresses a ShardedEngine; statements run
///     against hash-partitioned shards, reads against one published cut.
///
/// Collapses what used to be five SqlSession constructors into one value,
/// so callers (svc_shell, svc_served, tests) build the handle once and
/// never branch on engine mode again. Move-only, like the engine ownership
/// it carries.
class EngineHandle {
 public:
  /// A fresh private engine over an empty catalog.
  static EngineHandle Private() { return Private(Database()); }
  /// A private engine over pre-loaded base relations.
  static EngineHandle Private(Database db) {
    return Private(SvcEngine(std::move(db)));
  }
  /// A private engine adopting existing engine state — e.g. a copy of a
  /// SharedEngine snapshot's engine, for deterministic offline replay.
  static EngineHandle Private(SvcEngine engine) {
    EngineHandle h;
    h.own_ = std::make_unique<SvcEngine>(std::move(engine));
    return h;
  }
  /// A handle onto a shared (snapshot-isolated) engine.
  static EngineHandle Shared(std::shared_ptr<SharedEngine> shared) {
    EngineHandle h;
    h.shared_ = std::move(shared);
    return h;
  }
  /// A handle onto a durable engine: shared-mode semantics plus the WAL.
  static EngineHandle Durable(std::shared_ptr<DurableEngine> durable) {
    EngineHandle h;
    h.shared_ = durable->shared();
    h.durable_ = std::move(durable);
    return h;
  }
  /// A handle onto a sharded engine (scatter-gather serving).
  static EngineHandle Sharded(std::shared_ptr<ShardedEngine> sharded) {
    EngineHandle h;
    h.sharded_ = std::move(sharded);
    return h;
  }

  /// True iff the handle addresses a SharedEngine (durable included).
  bool is_shared() const { return shared_ != nullptr; }
  /// True iff the handle addresses a DurableEngine.
  bool is_durable() const { return durable_ != nullptr; }
  /// True iff the handle addresses a ShardedEngine.
  bool is_sharded() const { return sharded_ != nullptr; }
  /// The owned engine (null unless private mode).
  SvcEngine* private_engine() const { return own_.get(); }
  /// The shared engine (null in private mode).
  const std::shared_ptr<SharedEngine>& shared() const { return shared_; }
  /// The durable engine (null unless durable mode).
  const std::shared_ptr<DurableEngine>& durable() const { return durable_; }
  /// The sharded engine (null unless sharded mode).
  const std::shared_ptr<ShardedEngine>& sharded() const { return sharded_; }

 private:
  EngineHandle() = default;  // factories fill exactly one mode

  std::unique_ptr<SvcEngine> own_;
  std::shared_ptr<SharedEngine> shared_;
  std::shared_ptr<DurableEngine> durable_;
  std::shared_ptr<ShardedEngine> sharded_;
};

/// A SQL-driven session over one SvcEngine: the full SVC lifecycle —
/// define base relations, materialize views, ingest deltas, answer
/// bounded-error aggregate queries on stale views, commit maintenance —
/// scripted as SQL text (§3.2 of the paper):
///
///   CREATE TABLE Log (sessionId INT, videoId INT,
///                     PRIMARY KEY (sessionId));
///   INSERT INTO Log VALUES (0, 1), (1, 3);      -- queued as deltas
///   REFRESH ALL;                                -- commit into base tables
///   CREATE MATERIALIZED VIEW visitView AS
///     SELECT videoId, COUNT(1) AS visitCount FROM Log GROUP BY videoId;
///   INSERT INTO Log VALUES (2, 3);              -- the view is now stale
///   SELECT COUNT(1) FROM visitView WHERE visitCount > 1
///     WITH SVC(ratio=0.5, mode=corr);           -- estimate ± CI
///   REFRESH VIEW visitView;                     -- maintenance commit
///
/// A session runs in one of two modes:
///
///   * **Private** (the default constructors): the session owns its
///     SvcEngine — the shared-nothing model, one engine per session.
///   * **Shared** (the SharedEngine constructor): many sessions address
///     one engine concurrently with snapshot isolation. Each read
///     statement runs against one immutable snapshot (readers never block
///     on other sessions' writes or on REFRESH); each write statement is
///     one atomic SharedEngine::Commit — its validation and mutation run
///     under the writer lock, so cross-session races (e.g. two sessions
///     inserting the same primary key) are serialized, and a failed
///     statement publishes nothing.
///
/// Statement semantics are identical in both modes; answers for the same
/// engine state are bit-identical (asserted by tests/test_differential.cc).
///
/// Statement routing:
///   * `SELECT ... WITH SVC(...)` must aggregate over a single materialized
///     view; it lowers to an AggregateQuery and runs through
///     SvcEngine::Query (or QueryGrouped under GROUP BY), so session
///     answers are bit-identical to direct engine calls with the same
///     options.
///   * Every other SELECT parses and plans through sql/planner and runs on
///     the plain executor against the current committed state (stale view
///     tables included).
///   * INSERT / DELETE queue deltas through the engine; base tables change
///     only at REFRESH (the paper's maintenance model). A DELETE's WHERE
///     selects the *committed* rows to queue for deletion.
///   * REFRESH VIEW <v> validates that <v> exists, then runs MaintainAll —
///     pending deltas are engine-global, so maintenance is a single commit
///     point that freshens every view.
class SqlSession : public SqlExecutor {
 public:
  /// The one real constructor: a session over whichever engine the handle
  /// names. Durable handles get shared-mode semantics, plus every write
  /// statement is one logged commit (the handler encodes the DurableOp it
  /// performed; DurableEngine WAL-appends it before the commit publishes),
  /// CHECKPOINT is live, and SHOW STATS reports the durability counters.
  explicit SqlSession(EngineHandle engine) : handle_(std::move(engine)) {}

  // Forwarding constructors, kept for source compatibility. Deprecated:
  // new code should construct an EngineHandle and use the constructor
  // above.
  /// \deprecated Use SqlSession(EngineHandle::Private()).
  SqlSession() : SqlSession(EngineHandle::Private()) {}
  /// \deprecated Use SqlSession(EngineHandle::Private(db)).
  explicit SqlSession(Database db)
      : SqlSession(EngineHandle::Private(std::move(db))) {}
  /// \deprecated Use SqlSession(EngineHandle::Private(engine)).
  explicit SqlSession(SvcEngine engine)
      : SqlSession(EngineHandle::Private(std::move(engine))) {}
  /// \deprecated Use SqlSession(EngineHandle::Shared(shared)).
  explicit SqlSession(std::shared_ptr<SharedEngine> shared)
      : SqlSession(EngineHandle::Shared(std::move(shared))) {}
  /// \deprecated Use SqlSession(EngineHandle::Durable(durable)).
  explicit SqlSession(std::shared_ptr<DurableEngine> durable)
      : SqlSession(EngineHandle::Durable(std::move(durable))) {}

  /// True iff this session addresses a SharedEngine.
  bool is_shared() const { return handle_.is_shared(); }

  /// The owned engine. REQUIRES: !is_shared() (a shared session has no
  /// private engine; use shared() / snapshots instead).
  SvcEngine& engine() {
    assert(handle_.private_engine() != nullptr &&
           "engine() requires !is_shared()");
    return *handle_.private_engine();
  }
  const SvcEngine& engine() const {
    assert(handle_.private_engine() != nullptr &&
           "engine() requires !is_shared()");
    return *handle_.private_engine();
  }

  /// The shared engine (null in private mode).
  const std::shared_ptr<SharedEngine>& shared() const {
    return handle_.shared();
  }

  /// The durable engine (null unless constructed from one).
  const std::shared_ptr<DurableEngine>& durable() const {
    return handle_.durable();
  }

  /// The sharded engine (null unless constructed from one).
  const std::shared_ptr<ShardedEngine>& sharded() const {
    return handle_.sharded();
  }

  /// Session-wide SVC defaults; `WITH SVC(...)` keys override per query.
  SvcQueryOptions& default_svc_options() { return svc_defaults_; }
  const SvcQueryOptions& default_svc_options() const { return svc_defaults_; }

  // ---- Per-request controls (set by the serving layer around Execute) ----

  /// Cooperative cancellation for the next Execute calls. Borrowed: `cancel`
  /// must outlive every Execute issued while set; null disables. Reads poll
  /// it per executor chunk; writes check it only *before* mutating, so a
  /// deadline never tears a commit — an admitted write either runs to
  /// completion or never starts.
  void set_cancel_token(const CancelToken* cancel) { cancel_ = cancel; }

  /// Degraded-admission mode: scales the sampling ratio of WITH SVC
  /// queries by `scale` in (0, 1] and flags their results `degraded`.
  /// 1.0 (the default) means normal admission — no scaling, no flag.
  void set_degrade_ratio_scale(double scale) { degrade_scale_ = scale; }

  /// Idempotency mark for the next write statement: durable sessions append
  /// (token, seq) to the statement's WAL record, so recovery can rebuild
  /// the server's dedup journal and a retried-then-crashed write still
  /// commits exactly once. Cleared with token = "".
  void set_idempotency(std::string token, uint64_t seq) {
    idem_ = DurableEngine::IdemMark{std::move(token), seq};
  }

  /// Parses and executes one statement.
  Result<SqlResult> Execute(const std::string& sql) override;

  /// Executes an already-parsed statement. Statements with unbound `?`
  /// placeholders are rejected (bind them first: sql/params.h).
  Result<SqlResult> Execute(const Statement& stmt);

 private:
  // Reads take the engine (a snapshot in shared mode) by const reference;
  // writes run on the engine fork handed to them by ExecWrite.
  // Write handlers additionally encode the DurableOp they performed into
  // `*wal` when it is non-null (durable mode; null otherwise).
  Result<SqlResult> ExecSelect(const Statement& stmt, const SvcEngine& eng);
  Result<SqlResult> ExecSvcSelect(const Statement& stmt, const SvcEngine& eng);

  /// The mode-independent body of ExecSvcSelect: validates and lowers the
  /// statement against `catalog` (any engine holding the view metadata —
  /// shard 0's in sharded mode, since catalogs are identical on every
  /// shard), runs the query through the injected callables, and renders
  /// the result. Sharing this body is what keeps sharded answers
  /// message-for-message identical with the other modes.
  Result<SqlResult> ExecSvcSelectImpl(
      const Statement& stmt, const SvcEngine& catalog,
      const std::function<Result<SvcAnswer>(
          const std::string&, const AggregateQuery&, const SvcQueryOptions&)>&
          run_query,
      const std::function<Result<SvcGroupedAnswer>(
          const std::string&, const std::vector<std::string>&,
          const AggregateQuery&, const SvcQueryOptions&)>& run_grouped);

  /// Sharded-mode statement dispatch (Execute branches here when the
  /// handle is sharded): reads run against one published cut; writes
  /// validate and commit under the engine's statement lock.
  Result<SqlResult> ExecuteSharded(const Statement& stmt);
  Result<SqlResult> ExecSelectSharded(const Statement& stmt,
                                      const ShardedSnapshot& snap);
  Result<SqlResult> ExecInsertSharded(const Statement& stmt);
  Result<SqlResult> ExecDeleteSharded(const Statement& stmt);
  Result<SqlResult> ExecCreateTableSharded(const Statement& stmt);
  Result<SqlResult> ExecCreateViewSharded(const Statement& stmt);
  Result<SqlResult> ExecRefreshSharded(const Statement& stmt);
  Result<SqlResult> ExecSetPolicySharded(const Statement& stmt);
  Result<SqlResult> ExecShowTablesSharded(const ShardedSnapshot& snap);
  Result<SqlResult> ExecShowViewsSharded(const ShardedSnapshot& snap);
  Result<SqlResult> ExecShowStatsSharded(const ShardedSnapshot& snap);
  Result<SqlResult> ExecShowMaintenanceSharded(const ShardedSnapshot& snap);
  Result<SqlResult> ExecCreateTable(const Statement& stmt, SvcEngine* eng,
                                    std::string* wal);
  Result<SqlResult> ExecCreateView(const Statement& stmt, SvcEngine* eng,
                                   std::string* wal);
  Result<SqlResult> ExecInsert(const Statement& stmt, SvcEngine* eng,
                               std::string* wal);
  Result<SqlResult> ExecDelete(const Statement& stmt, SvcEngine* eng,
                               std::string* wal);
  Result<SqlResult> ExecRefresh(const Statement& stmt, SvcEngine* eng,
                                std::string* wal);
  Result<SqlResult> ExecSetPolicy(const Statement& stmt, SvcEngine* eng,
                                  std::string* wal);
  Result<SqlResult> ExecCheckpoint();
  Result<SqlResult> ExecShowTables(const SvcEngine& eng);
  Result<SqlResult> ExecShowViews(const SvcEngine& eng);
  Result<SqlResult> ExecShowStats(const SvcEngine& eng);
  /// SHOW MAINTENANCE: the policy line plus a deterministic per-view score
  /// table (scored at elapsed_ms=0, so no wall-clock leaks into output).
  Result<SqlResult> ExecShowMaintenance(const SvcEngine& eng);

  /// Runs a write statement. Private mode: directly on the owned engine.
  /// Shared mode: inside one SharedEngine::Commit, so the statement's
  /// validation + mutation are atomic and serialized against other writers,
  /// and an error publishes nothing. Durable mode: inside one
  /// DurableEngine::CommitLogged — same atomicity, plus the handler's
  /// payload is WAL-appended before the commit publishes.
  Result<SqlResult> ExecWrite(
      const std::function<Result<SqlResult>(SvcEngine*, std::string*)>& fn);

  /// Rejects targets that are views or internal delta tables; returns the
  /// base table.
  Result<const Table*> ResolveBaseTable(const SvcEngine& eng,
                                        const std::string& name,
                                        const char* verb) const;

  /// Cached encoded-primary-key sets of one relation's pending deltas, so
  /// ExecInsert's conflict checks stay O(batch) per statement instead of
  /// re-encoding the whole pending queue (O(pending)) every INSERT. The
  /// row counts validate the cache: REFRESH empties the queue and any
  /// direct engine mutation between statements changes the counts, both
  /// of which trigger a rebuild. Only trustworthy in private mode — in
  /// shared mode other sessions mutate the queue between statements, so
  /// each write statement rebuilds from the fork it runs on (see
  /// PendingKeysFor).
  struct PendingKeys {
    size_t insert_rows = 0;
    size_t delete_rows = 0;
    std::set<std::string> inserts;
    std::set<std::string> deletes;
  };

  /// The cache to use for a write statement on `relation`: the session's
  /// persistent cache in private mode, `scratch` (rebuilt from the current
  /// fork) in shared mode.
  PendingKeys* PendingKeysFor(const std::string& relation,
                              PendingKeys* scratch);

  /// Rebuilds `cache` from the pending tables when the row counts drifted.
  static void SyncPendingKeys(const SvcEngine& eng, const std::string& relation,
                              const std::vector<size_t>& pk_indices,
                              PendingKeys* cache);

  /// Aggregated pending-delta keys for one relation across every shard of
  /// `snap` (set semantics collapse a replicated relation's per-shard
  /// copies back to the logical rows). Always rebuilds: sharded sessions
  /// share the engine, so the drift check cannot be trusted.
  static void SyncPendingKeysSharded(const ShardedSnapshot& snap,
                                     const std::string& relation,
                                     const std::vector<size_t>& pk_indices,
                                     PendingKeys* cache);

  /// INSERT row validation shared with the sharded path: checks arity and
  /// value types against `schema`, widening INT literals into DOUBLE
  /// columns in place.
  static Status CoerceInsertRows(const Statement& stmt, const Schema& schema,
                                 std::vector<Row>* rows);

  /// ExecInsert's primary-key screening, shared with the sharded path:
  /// rejects NULL key columns, duplicates within the statement, keys
  /// already queued for insertion, and committed keys (of `table`) not
  /// queued for deletion. Appends each row's encoded key to `batch_keys`.
  static Status CheckInsertKeys(const Statement& stmt, const Table& table,
                                const std::vector<Row>& rows,
                                const PendingKeys& pending,
                                std::vector<std::string>* batch_keys);

  EngineHandle handle_;
  SvcQueryOptions svc_defaults_;
  std::map<std::string, PendingKeys> pending_keys_;
  const CancelToken* cancel_ = nullptr;
  double degrade_scale_ = 1.0;
  DurableEngine::IdemMark idem_;
};

}  // namespace svc

#endif  // SVC_SQL_SESSION_H_
