#ifndef SVC_SQL_LEXER_H_
#define SVC_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace svc {

enum class TokenType {
  kIdentifier,  ///< possibly qualified: a, t.a
  kKeyword,     ///< upper-cased SQL keyword
  kNumber,      ///< integer or decimal literal
  kString,      ///< '...' literal (quotes stripped)
  kSymbol,      ///< punctuation / operator: ( ) , * + - / % = <> <= >= < > .
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< keyword text is upper-cased; identifiers keep case
  size_t offset = 0;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively;
/// anything alphabetic that is not a keyword is an identifier. Fails on
/// unterminated strings or unexpected characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace svc

#endif  // SVC_SQL_LEXER_H_
