#ifndef SVC_SQL_PARAMS_H_
#define SVC_SQL_PARAMS_H_

#include <vector>

#include "common/status.h"
#include "sql/parser.h"

namespace svc {

/// Deep copy of a parsed statement (expressions and subqueries included).
/// The copy is independent: rebinding or rewriting it never touches the
/// original, so a server can cache one parsed Statement per prepared
/// statement and clone per execution.
Statement CloneStatement(const Statement& stmt);

/// Substitutes the statement's `?` placeholders with `params` (one value
/// per placeholder, in text order) and returns the bound deep copy; the
/// result has num_params == 0 and executes like a literal statement.
/// Fails with InvalidArgument when params.size() != stmt.num_params.
Result<Statement> BindStatementParams(const Statement& stmt,
                                      const std::vector<Value>& params);

}  // namespace svc

#endif  // SVC_SQL_PARAMS_H_
