#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace svc {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      // Query surface.
      "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS", "AND", "OR",
      "NOT", "NULL", "IS", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
      "ON", "UNION", "INTERSECT", "EXCEPT", "SUM", "COUNT", "AVG", "MIN",
      "MAX", "MEDIAN", "DISTINCT", "BETWEEN", "LIKE", "IN", "CASE", "WHEN",
      "THEN", "ELSE", "END", "TRUE", "FALSE",
      // DDL / DML / SVC serving-layer statements.
      "CREATE", "TABLE", "MATERIALIZED", "VIEW", "INSERT", "INTO", "VALUES",
      "DELETE", "REFRESH", "ALL", "WITH", "SVC", "SHOW", "TABLES", "VIEWS",
      "STATS", "CHECKPOINT", "SET", "MAINTENANCE", "POLICY",
      "PRIMARY", "KEY", "SAMPLING",
      // Column types for CREATE TABLE.
      "INT", "INTEGER", "DOUBLE", "FLOAT", "REAL", "STRING", "TEXT",
      "VARCHAR",
  };
  return kKeywords;
}

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;  // line comment
      continue;
    }
    const size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      const std::string up = Upper(word);
      if (Keywords().count(up)) {
        out.push_back({TokenType::kKeyword, up, start});
      } else {
        // Qualified identifier t.a (or t.a.b, rejected later).
        std::string ident = std::move(word);
        while (i + 1 < n && sql[i] == '.' &&
               (std::isalpha(static_cast<unsigned char>(sql[i + 1])) ||
                sql[i + 1] == '_')) {
          ident.push_back('.');
          ++i;
          const size_t s2 = i;
          while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                           sql[i] == '_')) {
            ++i;
          }
          ident += sql.substr(s2, i - s2);
        }
        out.push_back({TokenType::kIdentifier, std::move(ident), start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        seen_dot = seen_dot || sql[i] == '.';
        ++i;
      }
      out.push_back({TokenType::kNumber, sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          // SQL-standard escape: '' inside a literal is one quote.
          if (i + 1 < n && sql[i + 1] == '\'') {
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;  // closing quote
          closed = true;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            "unterminated string literal at offset " + std::to_string(start));
      }
      out.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Multi-char operators first.
    if (i + 1 < n) {
      const std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=" ||
          two == "||") {
        out.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two, start});
        i += 2;
        continue;
      }
    }
    static const std::string kSingles = "(),*+-/%=<>.;?";
    if (kSingles.find(c) != std::string::npos) {
      out.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::ParseError("unexpected character '" +
                              std::string(1, c) + "' at offset " +
                              std::to_string(i));
  }
  out.push_back({TokenType::kEnd, "", n});
  return out;
}

}  // namespace svc
