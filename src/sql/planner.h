#ifndef SVC_SQL_PLANNER_H_
#define SVC_SQL_PLANNER_H_

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "sql/parser.h"

namespace svc {

/// Lowers a parsed SELECT statement to a relational-algebra plan against
/// `db`'s catalog:
///
///   * comma-joined FROM sources are combined into a join tree, greedily
///     extracting cross-source equality conjuncts from WHERE as hash-join
///     keys (remaining sources fall back to cross products),
///   * explicit JOIN ... ON clauses keep equi-conjuncts as join keys and
///     the rest as residual predicates,
///   * aggregate select-lists lower to γ (group-by + aggregates) with
///     HAVING as a σ above it,
///   * subqueries in FROM lower recursively and re-qualify their output
///     columns with the subquery alias,
///   * UNION / INTERSECT / EXCEPT lower to the set operators.
Result<PlanPtr> PlanSelect(const SelectStmt& stmt, const Database& db);

/// Convenience: parse + plan.
Result<PlanPtr> SqlToPlan(const std::string& sql, const Database& db);

}  // namespace svc

#endif  // SVC_SQL_PLANNER_H_
