#include "sql/planner.h"

#include <algorithm>
#include <optional>

namespace svc {

namespace {

/// Flattens nested ANDs into a conjunct list.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kBinary && e->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(e->children()[0], out);
    SplitConjuncts(e->children()[1], out);
    return;
  }
  out->push_back(e->Clone());
}

ExprPtr JoinConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr e = std::move(conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    e = Expr::And(std::move(e), std::move(conjuncts[i]));
  }
  return e;
}

/// Matches `a = b` where both sides are bare column references.
bool IsColumnEquality(const Expr& e, std::string* left, std::string* right) {
  if (e.kind() != ExprKind::kBinary || e.binary_op() != BinaryOp::kEq) {
    return false;
  }
  const auto& l = e.children()[0];
  const auto& r = e.children()[1];
  if (l->kind() != ExprKind::kColumn || r->kind() != ExprKind::kColumn) {
    return false;
  }
  *left = l->column_ref();
  *right = r->column_ref();
  return true;
}

struct Source {
  PlanPtr plan;
  Schema schema;
};

/// A planned FROM source: base scan or aliased subquery.
Result<Source> LowerTableRef(const TableRef& ref, const Database& db);

/// Splits `on` into equi-join keys between `left`/`right` schemas and a
/// residual predicate.
struct JoinCondition {
  std::vector<JoinKeyPair> keys;
  ExprPtr residual;
};

JoinCondition ExtractJoinKeys(const ExprPtr& on, const Schema& left,
                              const Schema& right) {
  JoinCondition out;
  if (!on) return out;
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(on, &conjuncts);
  std::vector<ExprPtr> residual;
  for (auto& c : conjuncts) {
    std::string a, b;
    if (IsColumnEquality(*c, &a, &b)) {
      const bool a_left = left.Resolve(a).ok();
      const bool a_right = right.Resolve(a).ok();
      const bool b_left = left.Resolve(b).ok();
      const bool b_right = right.Resolve(b).ok();
      if (a_left && !a_right && b_right && !b_left) {
        out.keys.push_back({a, b});
        continue;
      }
      if (b_left && !b_right && a_right && !a_left) {
        out.keys.push_back({b, a});
        continue;
      }
    }
    residual.push_back(std::move(c));
  }
  out.residual = JoinConjuncts(std::move(residual));
  return out;
}

/// Builds the join tree for the FROM clause, consuming cross-source
/// equality conjuncts from `*conjuncts` as join keys.
Result<Source> BuildFromTree(const SelectStmt& stmt, const Database& db,
                             std::vector<ExprPtr>* conjuncts) {
  std::vector<Source> pending;
  for (const auto& ref : stmt.from) {
    SVC_ASSIGN_OR_RETURN(Source s, LowerTableRef(ref, db));
    pending.push_back(std::move(s));
  }
  Source current = std::move(pending.front());
  pending.erase(pending.begin());

  while (!pending.empty()) {
    // Find a pending source connected to `current` by an equality conjunct.
    bool joined = false;
    for (size_t p = 0; p < pending.size() && !joined; ++p) {
      std::vector<JoinKeyPair> keys;
      for (auto it = conjuncts->begin(); it != conjuncts->end();) {
        std::string a, b;
        if (IsColumnEquality(**it, &a, &b)) {
          const bool a_cur = current.schema.Resolve(a).ok();
          const bool b_cur = current.schema.Resolve(b).ok();
          const bool a_new = pending[p].schema.Resolve(a).ok();
          const bool b_new = pending[p].schema.Resolve(b).ok();
          if (a_cur && !a_new && b_new && !b_cur) {
            keys.push_back({a, b});
            it = conjuncts->erase(it);
            continue;
          }
          if (b_cur && !b_new && a_new && !a_cur) {
            keys.push_back({b, a});
            it = conjuncts->erase(it);
            continue;
          }
        }
        ++it;
      }
      if (!keys.empty()) {
        Schema joined_schema =
            Schema::Concat(current.schema, pending[p].schema);
        current.plan = PlanNode::Join(current.plan, pending[p].plan,
                                      JoinType::kInner, std::move(keys));
        current.schema = std::move(joined_schema);
        pending.erase(pending.begin() + p);
        joined = true;
      }
    }
    if (!joined) {
      // No connecting conjunct: cross product with the first pending source.
      Schema joined_schema = Schema::Concat(current.schema,
                                            pending.front().schema);
      current.plan = PlanNode::Join(current.plan, pending.front().plan,
                                    JoinType::kInner, {});
      current.schema = std::move(joined_schema);
      pending.erase(pending.begin());
    }
  }

  // Explicit JOIN ... ON chains.
  for (const auto& jc : stmt.joins) {
    SVC_ASSIGN_OR_RETURN(Source s, LowerTableRef(jc.table, db));
    JoinCondition cond = ExtractJoinKeys(jc.on, current.schema, s.schema);
    Schema joined_schema = Schema::Concat(current.schema, s.schema);
    current.plan = PlanNode::Join(current.plan, s.plan, jc.type,
                                  std::move(cond.keys),
                                  std::move(cond.residual));
    current.schema = std::move(joined_schema);
  }
  return current;
}

Result<Source> LowerTableRef(const TableRef& ref, const Database& db) {
  if (ref.subquery) {
    SVC_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*ref.subquery, db));
    SVC_ASSIGN_OR_RETURN(Schema sub_schema, ComputeSchema(*sub, db));
    // Re-qualify the subquery's output columns with the alias.
    std::vector<ProjectItem> items;
    for (const auto& c : sub_schema.columns()) {
      items.push_back({c.name, Expr::Col(c.FullName()), ref.alias});
    }
    PlanPtr plan = PlanNode::Project(std::move(sub), std::move(items));
    SVC_ASSIGN_OR_RETURN(Schema schema, ComputeSchema(*plan, db));
    return Source{std::move(plan), std::move(schema)};
  }
  PlanPtr plan = PlanNode::Scan(ref.table, ref.alias);
  SVC_ASSIGN_OR_RETURN(Schema schema, ComputeSchema(*plan, db));
  return Source{std::move(plan), std::move(schema)};
}

/// Derives a display alias for an unaliased select item.
std::string DefaultAlias(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.is_agg) {
    std::string base = AggFuncName(item.agg);
    const size_t paren = base.find('(');
    if (paren != std::string::npos) base = base.substr(0, paren);
    return base + "_" + std::to_string(index);
  }
  if (item.scalar && item.scalar->kind() == ExprKind::kColumn) {
    const std::string& ref = item.scalar->column_ref();
    const size_t dot = ref.rfind('.');
    return dot == std::string::npos ? ref : ref.substr(dot + 1);
  }
  return "col_" + std::to_string(index);
}

Result<PlanPtr> LowerSelectCore(const SelectStmt& stmt, const Database& db) {
  std::vector<ExprPtr> conjuncts;
  if (stmt.where) SplitConjuncts(stmt.where, &conjuncts);
  SVC_ASSIGN_OR_RETURN(Source src, BuildFromTree(stmt, db, &conjuncts));
  PlanPtr plan = src.plan;
  if (ExprPtr leftover = JoinConjuncts(std::move(conjuncts))) {
    plan = PlanNode::Select(std::move(plan), std::move(leftover));
  }

  const bool has_agg = std::any_of(stmt.items.begin(), stmt.items.end(),
                                   [](const SelectItem& i) {
                                     return i.is_agg;
                                   }) ||
                       !stmt.group_by.empty();
  if (has_agg) {
    std::vector<AggItem> aggs;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.is_star) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      if (item.is_agg) {
        aggs.push_back({item.agg,
                        item.agg_input ? item.agg_input->Clone() : nullptr,
                        DefaultAlias(item, i)});
        continue;
      }
      // Non-aggregate item must be a group-by column.
      if (item.scalar->kind() != ExprKind::kColumn) {
        return Status::InvalidArgument(
            "non-aggregate select expression must be a group-by column: " +
            item.scalar->ToString());
      }
      SVC_ASSIGN_OR_RETURN(size_t item_pos,
                           src.schema.Resolve(item.scalar->column_ref()));
      bool found = false;
      for (const auto& g : stmt.group_by) {
        auto gp = src.schema.Resolve(g);
        if (gp.ok() && *gp == item_pos) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("select column '" +
                                       item.scalar->column_ref() +
                                       "' is not in GROUP BY");
      }
    }
    plan = PlanNode::Aggregate(std::move(plan), stmt.group_by,
                               std::move(aggs));
    if (stmt.having) {
      plan = PlanNode::Select(std::move(plan), stmt.having->Clone());
    }
    // Final projection in select-list order.
    SVC_ASSIGN_OR_RETURN(Schema agg_schema, ComputeSchema(*plan, db));
    std::vector<ProjectItem> items;
    size_t agg_seen = 0;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.is_agg) {
        // Aggregate outputs follow the group columns, in aggs order.
        const Column& c =
            agg_schema.column(stmt.group_by.size() + agg_seen++);
        items.push_back({DefaultAlias(item, i), Expr::Col(c.FullName()), ""});
      } else {
        items.push_back(
            {DefaultAlias(item, i), item.scalar->Clone(), ""});
      }
    }
    // Skip the projection when it is an identity over the aggregate's
    // output (the common SELECT <group cols>, <aggs> shape): leaving the
    // γ node on top lets the view layer classify the plan as an
    // incrementally maintainable aggregate view.
    bool identity = !stmt.having && items.size() == agg_schema.NumColumns();
    for (size_t i = 0; identity && i < items.size(); ++i) {
      if (items[i].expr->kind() != ExprKind::kColumn ||
          items[i].alias != agg_schema.column(i).name) {
        identity = false;
        break;
      }
      auto pos = agg_schema.Resolve(items[i].expr->column_ref());
      identity = pos.ok() && *pos == i;
    }
    if (identity) return plan;
    return PlanNode::Project(std::move(plan), std::move(items));
  }

  // Pure SPJ select list.
  if (stmt.items.size() == 1 && stmt.items[0].is_star) {
    return plan;
  }
  std::vector<ProjectItem> items;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const SelectItem& item = stmt.items[i];
    if (item.is_star) {
      for (const auto& c : src.schema.columns()) {
        items.push_back(PassThroughItem(c));
      }
      continue;
    }
    items.push_back({DefaultAlias(item, i), item.scalar->Clone(), ""});
  }
  return PlanNode::Project(std::move(plan), std::move(items));
}

}  // namespace

Result<PlanPtr> PlanSelect(const SelectStmt& stmt, const Database& db) {
  SVC_ASSIGN_OR_RETURN(PlanPtr plan, LowerSelectCore(stmt, db));
  if (stmt.set_next) {
    SVC_ASSIGN_OR_RETURN(PlanPtr rhs, PlanSelect(*stmt.set_next, db));
    switch (stmt.set_op) {
      case PlanKind::kUnion:
        return PlanNode::Union(std::move(plan), std::move(rhs));
      case PlanKind::kIntersect:
        return PlanNode::Intersect(std::move(plan), std::move(rhs));
      case PlanKind::kDifference:
        return PlanNode::Difference(std::move(plan), std::move(rhs));
      default:
        return Status::Internal("bad set op");
    }
  }
  return plan;
}

Result<PlanPtr> SqlToPlan(const std::string& sql, const Database& db) {
  SVC_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  return PlanSelect(*stmt, db);
}

}  // namespace svc
