#include "sql/params.h"

#include <memory>
#include <string>
#include <utility>

namespace svc {

namespace {

// Rebuilds an expression tree through the public factories, replacing
// kParam nodes with literals from `params` (null `params` = plain clone,
// placeholders preserved).
ExprPtr SubstExpr(const Expr& e, const std::vector<Value>* params) {
  switch (e.kind()) {
    case ExprKind::kColumn:
      return Expr::Col(e.column_ref());
    case ExprKind::kLiteral:
      return Expr::Lit(e.literal());
    case ExprKind::kParam:
      if (params == nullptr) return Expr::Param(e.param_index());
      return Expr::Lit((*params)[e.param_index()]);
    case ExprKind::kUnary:
      return Expr::Unary(e.unary_op(), SubstExpr(*e.children()[0], params));
    case ExprKind::kBinary:
      return Expr::Binary(e.binary_op(), SubstExpr(*e.children()[0], params),
                          SubstExpr(*e.children()[1], params));
    case ExprKind::kFunc: {
      std::vector<ExprPtr> args;
      args.reserve(e.children().size());
      for (const ExprPtr& c : e.children()) {
        args.push_back(SubstExpr(*c, params));
      }
      return Expr::Func(e.func_name(), std::move(args));
    }
  }
  return nullptr;  // unreachable: the switch is total
}

ExprPtr SubstExprPtr(const ExprPtr& e, const std::vector<Value>* params) {
  return e == nullptr ? nullptr : SubstExpr(*e, params);
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s,
                                        const std::vector<Value>* params) {
  auto out = std::make_unique<SelectStmt>();
  out->items.reserve(s.items.size());
  for (const SelectItem& item : s.items) {
    SelectItem copy;
    copy.is_star = item.is_star;
    copy.is_agg = item.is_agg;
    copy.agg = item.agg;
    copy.agg_input = SubstExprPtr(item.agg_input, params);
    copy.scalar = SubstExprPtr(item.scalar, params);
    copy.alias = item.alias;
    out->items.push_back(std::move(copy));
  }
  auto clone_ref = [&](const TableRef& ref) {
    TableRef copy;
    copy.table = ref.table;
    if (ref.subquery != nullptr) {
      copy.subquery = CloneSelect(*ref.subquery, params);
    }
    copy.alias = ref.alias;
    return copy;
  };
  out->from.reserve(s.from.size());
  for (const TableRef& ref : s.from) out->from.push_back(clone_ref(ref));
  out->joins.reserve(s.joins.size());
  for (const JoinClause& join : s.joins) {
    JoinClause copy;
    copy.type = join.type;
    copy.table = clone_ref(join.table);
    copy.on = SubstExprPtr(join.on, params);
    out->joins.push_back(std::move(copy));
  }
  out->where = SubstExprPtr(s.where, params);
  out->group_by = s.group_by;
  out->having = SubstExprPtr(s.having, params);
  if (s.set_next != nullptr) out->set_next = CloneSelect(*s.set_next, params);
  out->set_op = s.set_op;
  return out;
}

Statement CloneStatementImpl(const Statement& stmt,
                             const std::vector<Value>* params) {
  Statement out;
  out.kind = stmt.kind;
  if (stmt.select != nullptr) out.select = CloneSelect(*stmt.select, params);
  out.svc = stmt.svc;
  out.target = stmt.target;
  out.columns = stmt.columns;
  out.primary_key = stmt.primary_key;
  out.sampling_key = stmt.sampling_key;
  out.values = stmt.values;
  out.where = SubstExprPtr(stmt.where, params);
  out.refresh_all = stmt.refresh_all;
  if (params == nullptr) {
    out.num_params = stmt.num_params;
    out.value_params = stmt.value_params;
  } else {
    // VALUES placeholders: patch the NULL slots the parser left behind.
    for (const Statement::ValueParamSlot& slot : stmt.value_params) {
      out.values[slot.row][slot.col] = (*params)[slot.param];
    }
  }
  return out;
}

}  // namespace

Statement CloneStatement(const Statement& stmt) {
  return CloneStatementImpl(stmt, nullptr);
}

Result<Statement> BindStatementParams(const Statement& stmt,
                                      const std::vector<Value>& params) {
  if (params.size() != stmt.num_params) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(stmt.num_params) +
        " parameter(s), got " + std::to_string(params.size()) + " value(s)");
  }
  return CloneStatementImpl(stmt, &params);
}

}  // namespace svc
