#include "sql/session.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>

#include "relational/executor.h"
#include "sql/planner.h"
#include "storage/ops.h"

namespace svc {

namespace {

const char* ModeName(EstimatorMode m) {
  return m == EstimatorMode::kAqp ? "AQP" : "CORR";
}

/// Display alias for the aggregate output column: the user's alias, or the
/// function's base name ("count", "sum", ...).
std::string AggAlias(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string base = AggFuncName(item.agg);
  const size_t paren = base.find('(');
  if (paren != std::string::npos) base = base.substr(0, paren);
  return base;
}

/// The estimate columns appended to every SVC result row.
void AppendEstimateColumns(const std::string& value_alias, Schema* schema) {
  schema->AddColumn({"", value_alias, ValueType::kDouble});
  schema->AddColumn({"", "ci_low", ValueType::kDouble});
  schema->AddColumn({"", "ci_high", ValueType::kDouble});
  schema->AddColumn({"", "mode", ValueType::kString});
  schema->AddColumn({"", "sample_rows", ValueType::kInt});
}

void AppendEstimateValues(const Estimate& e, EstimatorMode mode, Row* row) {
  row->push_back(Value::Double(e.value));
  row->push_back(e.has_ci ? Value::Double(e.ci_low) : Value::Null());
  row->push_back(e.has_ci ? Value::Double(e.ci_high) : Value::Null());
  row->push_back(Value::String(ModeName(mode)));
  row->push_back(Value::Int(static_cast<int64_t>(e.sample_rows)));
}

/// "%.6g" as a std::string (matches Value::ToString's double format).
std::string Num6g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatEstimateMessage(const AggregateQuery& q,
                                  const std::string& view,
                                  const Estimate& e, EstimatorMode mode) {
  // Built as a string (not a fixed buffer) so long predicates never
  // truncate the estimate/CI suffix.
  std::string out = q.ToString() + " on " + view + ": " + Num6g(e.value);
  if (e.has_ci) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f", e.confidence * 100.0);
    out += " +/- " + Num6g(e.HalfWidth()) + " (" + pct + "% CI, ";
  } else {
    out += " (no CI, ";
  }
  out += std::string(ModeName(mode)) + ", " +
         std::to_string(e.sample_rows) + " sample rows)";
  return out;
}

}  // namespace

Result<SqlResult> SqlSession::Execute(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return Execute(stmt);
}

Result<SqlResult> SqlSession::Execute(const Statement& stmt) {
  if (stmt.num_params > 0) {
    // Without this check an INSERT would silently write the parser's NULL
    // placeholder values; expression params would only fail later at Bind.
    return Status::InvalidArgument(
        "statement has " + std::to_string(stmt.num_params) +
        " unbound parameter(s); bind values first (prepared-statement "
        "EXECUTE, or BindStatementParams)");
  }
  // Reads run against one consistent version: the owned engine in private
  // mode, the current published snapshot in shared mode (held alive for
  // the duration of the statement; concurrent commits don't affect it).
  SnapshotPtr snap;
  auto reader = [&]() -> const SvcEngine& {
    if (!handle_.is_shared()) return *handle_.private_engine();
    snap = handle_.shared()->Snapshot();
    return snap->engine;
  };
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return stmt.svc.present ? ExecSvcSelect(stmt, reader())
                              : ExecSelect(stmt, reader());
    case Statement::Kind::kShowTables:
      return ExecShowTables(reader());
    case Statement::Kind::kShowViews:
      return ExecShowViews(reader());
    case Statement::Kind::kShowStats:
      return ExecShowStats(reader());
    case Statement::Kind::kCreateTable:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecCreateTable(stmt, e, wal);
      });
    case Statement::Kind::kCreateView:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecCreateView(stmt, e, wal);
      });
    case Statement::Kind::kInsert:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecInsert(stmt, e, wal);
      });
    case Statement::Kind::kDelete:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecDelete(stmt, e, wal);
      });
    case Statement::Kind::kRefresh:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecRefresh(stmt, e, wal);
      });
    case Statement::Kind::kCheckpoint:
      return ExecCheckpoint();
  }
  return Status::Internal("unhandled statement kind");
}

Result<SqlResult> SqlSession::ExecWrite(
    const std::function<Result<SqlResult>(SvcEngine*, std::string*)>& fn) {
  if (handle_.is_durable()) {
    // One statement = one logged commit: the handler's payload (the
    // DurableOp it performed) hits the WAL before the commit publishes.
    std::optional<SqlResult> out;
    SVC_RETURN_IF_ERROR(handle_.durable()->CommitLogged(
        [&](SvcEngine* e, std::string* payload) -> Status {
          auto r = fn(e, payload);
          if (!r.ok()) return r.status();
          out = std::move(r).value();
          return Status::OK();
        }));
    return std::move(*out);
  }
  if (!handle_.is_shared()) return fn(handle_.private_engine(), nullptr);
  // One statement = one commit: validation and mutation run on the fork
  // under the writer lock, so concurrent sessions cannot race a conflicting
  // write in between, and an error publishes nothing.
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(handle_.shared()->Commit([&](SvcEngine* e) -> Status {
    auto r = fn(e, nullptr);
    if (!r.ok()) return r.status();
    out = std::move(r).value();
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecSelect(const Statement& stmt,
                                         const SvcEngine& eng) {
  SVC_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select, eng.db()));
  SVC_ASSIGN_OR_RETURN(Table out,
                       ExecutePlan(*plan, eng.db(), eng.exec_options()));
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " row(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecSvcSelect(const Statement& stmt,
                                            const SvcEngine& eng) {
  const SelectStmt& sel = *stmt.select;
  if (sel.set_next) {
    return Status::NotSupported(
        "WITH SVC does not combine with UNION/INTERSECT/EXCEPT; query each "
        "view separately");
  }
  if (sel.from.size() != 1 || sel.from[0].subquery || !sel.joins.empty()) {
    return Status::InvalidArgument(
        "WITH SVC requires FROM to name exactly one materialized view "
        "(joins and subqueries belong in the view definition)");
  }
  const std::string& view_name = sel.from[0].table;
  auto view = eng.GetView(view_name);
  if (!view.ok()) {
    if (eng.db().HasTable(view_name)) {
      return Status::InvalidArgument(
          "WITH SVC corrects stale materialized views, but '" + view_name +
          "' is a base table; query it with a plain SELECT or define a view "
          "over it");
    }
    return view.status();
  }
  if (sel.having) {
    return Status::NotSupported(
        "HAVING is not supported with WITH SVC; filter rows with WHERE "
        "(per-group estimates carry their own CIs)");
  }

  // Exactly one aggregate; every other select item must be a GROUP BY
  // column (the estimator evaluates one aggregate per group, §5.1).
  for (const auto& item : sel.items) {
    if (item.is_star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with WITH SVC; ask for one aggregate "
          "(sum/count/avg/median/min/max) over the view's columns");
    }
  }
  const bool any_agg =
      std::any_of(sel.items.begin(), sel.items.end(),
                  [](const SelectItem& i) { return i.is_agg; });
  if (!any_agg) {
    return Status::InvalidArgument(
        "WITH SVC requires an aggregate select list "
        "(sum/count/avg/median/min/max over the view's columns); a plain "
        "row SELECT reads the stale view directly - drop WITH SVC");
  }
  const SelectItem* agg_item = nullptr;
  for (const auto& item : sel.items) {
    if (item.is_agg) {
      if (agg_item != nullptr) {
        return Status::NotSupported(
            "WITH SVC supports exactly one aggregate per query; split the "
            "select list into separate statements");
      }
      agg_item = &item;
      continue;
    }
    const bool is_group_col =
        item.scalar->kind() == ExprKind::kColumn &&
        std::find(sel.group_by.begin(), sel.group_by.end(),
                  item.scalar->column_ref()) != sel.group_by.end();
    if (!is_group_col) {
      return Status::InvalidArgument(
          "non-aggregate select expression '" + item.scalar->ToString() +
          "' must be a GROUP BY column when using WITH SVC");
    }
  }
  if (agg_item->agg == AggFunc::kCountDistinct) {
    return Status::NotSupported(
        "count(DISTINCT ...) is not an SVC-estimable aggregate; supported: "
        "sum, count, count(*), avg, median, min, max");
  }

  AggregateQuery q;
  q.func = agg_item->agg;
  if (agg_item->agg_input) q.attr = agg_item->agg_input->Clone();
  if (sel.where) q.predicate = sel.where->Clone();

  // Per-query options: session defaults overridden by WITH SVC(...) keys.
  SvcQueryOptions opts = svc_defaults_;
  if (stmt.svc.ratio) opts.ratio = *stmt.svc.ratio;
  if (stmt.svc.auto_mode) {
    opts.auto_mode = true;
  } else if (stmt.svc.mode) {
    opts.mode = *stmt.svc.mode;
    opts.auto_mode = false;
  }
  if (stmt.svc.confidence) opts.estimator.confidence = *stmt.svc.confidence;

  const std::string value_alias = AggAlias(*agg_item);
  SqlResult result;
  result.kind = SqlResultKind::kEstimate;

  if (sel.group_by.empty()) {
    SVC_ASSIGN_OR_RETURN(SvcAnswer answer, eng.Query(view_name, q, opts));
    Schema schema;
    AppendEstimateColumns(value_alias, &schema);
    Table out(std::move(schema));
    Row row;
    AppendEstimateValues(answer.estimate, answer.mode_used, &row);
    out.AppendUnchecked(std::move(row));
    result.rows = std::move(out);
    result.mode_used = answer.mode_used;
    result.message = FormatEstimateMessage(q, view_name, answer.estimate,
                                           answer.mode_used);
    return result;
  }

  // Grouped path: one estimate per observed group.
  SVC_ASSIGN_OR_RETURN(const Table* stored, eng.db().GetTable(view_name));
  Schema schema;
  for (const auto& g : sel.group_by) {
    SVC_ASSIGN_OR_RETURN(size_t pos, stored->schema().Resolve(g));
    const Column& c = stored->schema().column(pos);
    schema.AddColumn({"", c.name, c.type});
  }
  AppendEstimateColumns(value_alias, &schema);

  SVC_ASSIGN_OR_RETURN(SvcGroupedAnswer answer,
                       eng.QueryGrouped(view_name, sel.group_by, q, opts));
  // Sort groups by key for stable, scannable output (estimates are
  // unchanged; the engine's group order is first-encounter).
  std::vector<size_t> order(answer.result.group_keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Row& ka = answer.result.group_keys[a];
    const Row& kb = answer.result.group_keys[b];
    for (size_t c = 0; c < ka.size() && c < kb.size(); ++c) {
      if (ka[c] < kb[c]) return true;
      if (kb[c] < ka[c]) return false;
    }
    return a < b;
  });
  Table out(std::move(schema));
  for (size_t i : order) {
    Row row = answer.result.group_keys[i];
    AppendEstimateValues(answer.result.estimates[i], answer.mode_used, &row);
    out.AppendUnchecked(std::move(row));
  }
  result.rows = std::move(out);
  result.mode_used = answer.mode_used;
  result.message = q.ToString() + " on " + view_name + ": " +
                   std::to_string(order.size()) + " group(s) (" +
                   ModeName(answer.mode_used) + ")";
  return result;
}

Result<SqlResult> SqlSession::ExecCreateTable(const Statement& stmt,
                                              SvcEngine* eng,
                                              std::string* wal) {
  if (eng->db()->HasTable(stmt.target)) {
    return Status::AlreadyExists("table or view already exists: " +
                                 stmt.target);
  }
  if (stmt.primary_key.empty()) {
    return Status::InvalidArgument(
        "CREATE TABLE " + stmt.target +
        " requires a PRIMARY KEY (...) clause: the maintenance model "
        "identifies records by key (paper §3.1)");
  }
  Schema schema;
  for (const auto& col : stmt.columns) {
    if (schema.Contains(col.name)) {
      return Status::InvalidArgument("duplicate column '" + col.name +
                                     "' in CREATE TABLE " + stmt.target);
    }
    schema.AddColumn({"", col.name, col.type});
  }
  Table table(std::move(schema));
  SVC_RETURN_IF_ERROR(table.SetPrimaryKey(stmt.primary_key));
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::CreateTableOp(stmt.target, table), wal));
  }
  SVC_RETURN_IF_ERROR(eng->db()->CreateTable(stmt.target, std::move(table)));
  SqlResult result;
  result.message = "created table " + stmt.target + " (" +
                   std::to_string(stmt.columns.size()) + " columns)";
  return result;
}

Result<SqlResult> SqlSession::ExecCreateView(const Statement& stmt,
                                             SvcEngine* eng,
                                             std::string* wal) {
  if (eng->HasView(stmt.target)) {
    return Status::AlreadyExists("view already exists: " + stmt.target);
  }
  if (eng->db()->HasTable(stmt.target)) {
    return Status::AlreadyExists("a table named '" + stmt.target +
                                 "' already exists; views need a fresh name");
  }
  SVC_ASSIGN_OR_RETURN(PlanPtr def, PlanSelect(*stmt.select, *eng->db()));
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(
        DurableOp::CreateViewOp(stmt.target, def->Clone(), stmt.sampling_key),
        wal));
  }
  SVC_RETURN_IF_ERROR(
      eng->CreateView(stmt.target, std::move(def), stmt.sampling_key));
  SVC_ASSIGN_OR_RETURN(const Table* stored, eng->db()->GetTable(stmt.target));
  SqlResult result;
  result.message = "materialized view " + stmt.target + " (" +
                   std::to_string(stored->NumRows()) + " rows)";
  return result;
}

Result<SqlResult> SqlSession::ExecInsert(const Statement& stmt,
                                         SvcEngine* eng, std::string* wal) {
  SVC_ASSIGN_OR_RETURN(const Table* table,
                       ResolveBaseTable(*eng, stmt.target, "INSERT INTO"));
  const Schema& schema = table->schema();
  // Validate and coerce every row before ingesting any (the statement
  // either queues completely or not at all).
  std::vector<Row> rows = stmt.values;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != schema.NumColumns()) {
      std::string cols;
      for (const auto& c : schema.columns()) {
        cols += (cols.empty() ? "" : ", ") + c.name;
      }
      return Status::InvalidArgument(
          "INSERT INTO " + stmt.target + " expects " +
          std::to_string(schema.NumColumns()) + " values (" + cols +
          "); row " + std::to_string(r + 1) + " has " +
          std::to_string(rows[r].size()));
    }
    for (size_t c = 0; c < rows[r].size(); ++c) {
      Value& v = rows[r][c];
      const Column& col = schema.column(c);
      if (v.is_null()) continue;
      if (col.type == ValueType::kDouble && v.type() == ValueType::kInt) {
        v = Value::Double(static_cast<double>(v.AsInt()));  // widen
        continue;
      }
      if (v.type() != col.type) {
        return Status::InvalidArgument(
            "INSERT INTO " + stmt.target + " column '" + col.name +
            "' expects " + ValueTypeName(col.type) + "; row " +
            std::to_string(r + 1) + " has " + v.ToString() + " (" +
            ValueTypeName(v.type()) + ")");
      }
    }
  }
  // Primary-key validation: a conflicting delta would poison the pending
  // queue (every later REFRESH fails on the duplicate), so reject NULL
  // keys, duplicates within the statement, keys already queued for
  // insertion, and keys of committed rows not queued for deletion.
  std::vector<std::string> batch_keys;
  PendingKeys scratch;
  PendingKeys* cache = nullptr;
  if (table->HasPrimaryKey()) {
    const std::vector<size_t>& pk = table->pk_indices();
    auto describe_key = [&](const Row& row) {
      std::string out;
      for (size_t i : pk) {
        if (!out.empty()) out += ", ";
        out += schema.column(i).name + "=" + row[i].ToString();
      }
      return out;
    };
    cache = PendingKeysFor(stmt.target, &scratch);
    SyncPendingKeys(*eng, stmt.target, pk, cache);
    std::set<std::string> batch;
    batch_keys.reserve(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t i : pk) {
        if (rows[r][i].is_null()) {
          return Status::ConstraintViolation(
              "INSERT INTO " + stmt.target + " row " + std::to_string(r + 1) +
              " has NULL in primary-key column '" + schema.column(i).name +
              "'");
        }
      }
      std::string key = EncodeRowKey(rows[r], pk);
      std::string where;
      if (!batch.insert(key).second) {
        where = "this statement";
      } else if (cache->inserts.count(key)) {
        where = "the pending deltas";
      } else if (table->FindByEncodedKey(key).ok() &&
                 !cache->deletes.count(key)) {
        where =
            "a committed row (DELETE it first; an update is "
            "delete + insert)";
      }
      if (!where.empty()) {
        return Status::ConstraintViolation(
            "INSERT INTO " + stmt.target + " row " + std::to_string(r + 1) +
            " duplicates the primary key (" + describe_key(rows[r]) +
            ") of " + where);
      }
      batch_keys.push_back(std::move(key));
    }
  }
  if (wal != nullptr) {
    // The *coerced* rows are what replay must re-queue.
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::InsertOp(stmt.target, rows), wal));
  }
  for (auto& row : rows) {
    SVC_RETURN_IF_ERROR(eng->InsertRecord(stmt.target, std::move(row)));
  }
  if (cache != nullptr) {
    // Extend the cache in step with what was just queued.
    for (auto& key : batch_keys) cache->inserts.insert(std::move(key));
    cache->insert_rows += rows.size();
  }
  SqlResult result;
  result.message = "queued " + std::to_string(rows.size()) +
                   " insert(s) into " + stmt.target +
                   "; REFRESH commits them";
  return result;
}

Result<SqlResult> SqlSession::ExecDelete(const Statement& stmt,
                                         SvcEngine* eng, std::string* wal) {
  SVC_ASSIGN_OR_RETURN(const Table* table,
                       ResolveBaseTable(*eng, stmt.target, "DELETE FROM"));
  ExprPtr pred;
  if (stmt.where) {
    pred = stmt.where->Clone();
    SVC_RETURN_IF_ERROR(pred->Bind(table->schema()));
  }
  // WHERE selects from the committed rows; matches are queued as delete
  // deltas (the base table changes at REFRESH).
  std::vector<Row> doomed;
  for (const auto& row : table->rows()) {
    if (!pred || pred->Eval(row).IsTrue()) doomed.push_back(row);
  }
  // DELETE is idempotent: a row already queued for deletion is skipped —
  // queueing it twice would double-count in the change table and silently
  // corrupt maintained aggregate views at REFRESH.
  PendingKeys scratch;
  PendingKeys* cache = nullptr;
  std::vector<std::string> new_keys;
  if (table->HasPrimaryKey()) {
    const std::vector<size_t>& pk = table->pk_indices();
    cache = PendingKeysFor(stmt.target, &scratch);
    SyncPendingKeys(*eng, stmt.target, pk, cache);
    std::vector<Row> fresh;
    fresh.reserve(doomed.size());
    for (auto& row : doomed) {
      std::string key = EncodeRowKey(row, pk);
      if (cache->deletes.count(key)) continue;  // already pending
      new_keys.push_back(std::move(key));
      fresh.push_back(std::move(row));
    }
    doomed = std::move(fresh);
  }
  if (wal != nullptr) {
    // The rows the WHERE selected (post-dedup) are what replay re-queues —
    // replaying the predicate against a different committed state would
    // diverge.
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::DeleteOp(stmt.target, doomed), wal));
  }
  for (auto& row : doomed) {
    SVC_RETURN_IF_ERROR(eng->DeleteRecord(stmt.target, std::move(row)));
  }
  if (cache != nullptr) {
    for (auto& key : new_keys) cache->deletes.insert(std::move(key));
    cache->delete_rows += doomed.size();
  }
  SqlResult result;
  result.message = "queued " + std::to_string(doomed.size()) +
                   " delete(s) from " + stmt.target + "; REFRESH commits them";
  return result;
}

Result<SqlResult> SqlSession::ExecRefresh(const Statement& stmt,
                                          SvcEngine* eng, std::string* wal) {
  const size_t inserts = eng->pending().TotalInserts();
  const size_t deletes = eng->pending().TotalDeletes();
  if (!stmt.refresh_all) {
    // Validate the target; maintenance itself is engine-global (pending
    // deltas are one set), so every view freshens at the commit.
    SVC_RETURN_IF_ERROR(eng->GetView(stmt.target).status());
  }
  // MaintainAll is transactional: on error nothing changed — queued deltas
  // (and the session's pending-key cache over them) stay intact, so the
  // error propagates here without touching session state. In shared mode
  // `eng` is already a disposable fork that ExecWrite's Commit discards on
  // error, so the in-place body skips a redundant second fork.
  SVC_RETURN_IF_ERROR(handle_.is_shared() ? eng->MaintainAllInPlace()
                                         : eng->MaintainAll());
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(DurableOp::RefreshOp(), wal));
  }
  pending_keys_.clear();  // the commit emptied the pending queue
  const size_t n_views = eng->ViewNames().size();
  SqlResult result;
  result.message = "refreshed " + std::to_string(n_views) +
                   " view(s); committed " + std::to_string(inserts) +
                   " insert(s) and " + std::to_string(deletes) + " delete(s)";
  return result;
}

Result<SqlResult> SqlSession::ExecCheckpoint() {
  SqlResult result;
  if (!handle_.is_durable()) {
    result.message = "no durable storage attached; CHECKPOINT skipped";
    return result;
  }
  SVC_ASSIGN_OR_RETURN(uint64_t epoch, handle_.durable()->Checkpoint());
  result.message = "checkpoint at epoch " + std::to_string(epoch);
  return result;
}

Result<SqlResult> SqlSession::ExecShowTables(const SvcEngine& eng) {
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "kind", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : eng.db().TableNames()) {
    if (name.rfind("__", 0) == 0) continue;  // internal delta tables
    SVC_ASSIGN_OR_RETURN(const Table* t, eng.db().GetTable(name));
    const bool is_view = eng.HasView(name);
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(t->NumRows())),
                         Value::String(is_view ? "view" : "base")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " table(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowViews(const SvcEngine& eng) {
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "class", ValueType::kString});
  schema.AddColumn({"", "stale", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : eng.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, eng.GetView(name));
    SVC_ASSIGN_OR_RETURN(const Table* t, eng.db().GetTable(name));
    const char* cls = "recompute";
    if (view->view_class() == ViewClass::kSpj) cls = "spj";
    if (view->view_class() == ViewClass::kAggregate) cls = "aggregate";
    bool stale = false;
    for (const auto& rel : view->base_relations()) {
      stale = stale || eng.pending().Touches(rel);
    }
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(t->NumRows())),
                         Value::String(cls),
                         Value::String(stale ? "yes" : "no")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowStats(const SvcEngine& eng) {
  // One row per view: serving-cache counters (cumulative across commits),
  // the pending delta rows touching the view's base relations, and the
  // engine's delta version (the pending queue's mutation counter — the
  // epoch-like key cache entries validate against).
  Schema schema;
  schema.AddColumn({"", "view", ValueType::kString});
  schema.AddColumn({"", "cache_hits", ValueType::kInt});
  schema.AddColumn({"", "cache_misses", ValueType::kInt});
  schema.AddColumn({"", "full_cleans", ValueType::kInt});
  schema.AddColumn({"", "incr_advances", ValueType::kInt});
  schema.AddColumn({"", "pending_rows", ValueType::kInt});
  schema.AddColumn({"", "delta_version", ValueType::kInt});
  // Durable sessions also report the engine-wide durability counters
  // (repeated on every row — SHOW STATS is a per-view relation).
  if (handle_.is_durable()) {
    schema.AddColumn({"", "wal_records", ValueType::kInt});
    schema.AddColumn({"", "wal_bytes", ValueType::kInt});
    schema.AddColumn({"", "last_checkpoint_epoch", ValueType::kInt});
    schema.AddColumn({"", "recovered_epoch", ValueType::kInt});
  }
  Table out(std::move(schema));
  const std::map<std::string, ViewCacheStats> stats = eng.CacheStats();
  const auto as_int = [](uint64_t v) {
    return Value::Int(static_cast<int64_t>(v));
  };
  for (const auto& name : eng.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, eng.GetView(name));
    size_t pending_rows = 0;
    for (const auto& rel : view->base_relations()) {
      pending_rows += eng.pending().InsertRows(rel);
      pending_rows += eng.pending().DeleteRows(rel);
    }
    auto it = stats.find(name);
    const ViewCacheStats s = it == stats.end() ? ViewCacheStats{} : it->second;
    Row row = {Value::String(name),          as_int(s.hits),
               as_int(s.misses),             as_int(s.full_cleans),
               as_int(s.incremental_advances), as_int(pending_rows),
               as_int(eng.pending().version())};
    if (handle_.is_durable()) {
      const DurabilityStats ds = handle_.durable()->stats();
      row.push_back(as_int(ds.wal_records));
      row.push_back(as_int(ds.wal_bytes));
      row.push_back(as_int(ds.last_checkpoint_epoch));
      row.push_back(as_int(ds.recovered_epoch));
    }
    out.AppendUnchecked(std::move(row));
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

SqlSession::PendingKeys* SqlSession::PendingKeysFor(
    const std::string& relation, PendingKeys* scratch) {
  // Shared mode: other sessions mutate the pending queue between this
  // session's statements, and the row-count drift check cannot distinguish
  // "same counts, different keys" (e.g. a REFRESH followed by the same
  // number of new inserts). Rebuild from the fork every statement — the
  // statement runs under the writer lock, so the fork is authoritative.
  if (handle_.is_shared()) return scratch;
  return &pending_keys_[relation];
}

void SqlSession::SyncPendingKeys(const SvcEngine& eng,
                                 const std::string& relation,
                                 const std::vector<size_t>& pk_indices,
                                 PendingKeys* cache) {
  auto sync = [&](size_t n, auto for_each, size_t* rows,
                  std::set<std::string>* keys) {
    if (*rows == n) return;
    keys->clear();
    for_each([&](const Row& r) {
      keys->insert(EncodeRowKey(r, pk_indices));
    });
    *rows = n;
  };
  const DeltaSet& pending = eng.pending();
  sync(pending.InsertRows(relation),
       [&](auto fn) { pending.ForEachInsert(relation, fn); },
       &cache->insert_rows, &cache->inserts);
  sync(pending.DeleteRows(relation),
       [&](auto fn) { pending.ForEachDelete(relation, fn); },
       &cache->delete_rows, &cache->deletes);
}

Result<const Table*> SqlSession::ResolveBaseTable(const SvcEngine& eng,
                                                  const std::string& name,
                                                  const char* verb) const {
  if (eng.HasView(name)) {
    return Status::InvalidArgument(
        std::string(verb) + " targets a base relation, but '" + name +
        "' is a materialized view (views change via REFRESH after deltas "
        "to their base relations)");
  }
  if (name.rfind("__", 0) == 0) {
    return Status::InvalidArgument("'" + name +
                                   "' is an internal delta relation");
  }
  return eng.db().GetTable(name);
}

}  // namespace svc
