#include "sql/session.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>

#include "relational/executor.h"
#include "sql/planner.h"
#include "storage/ops.h"

namespace svc {

namespace {

const char* ModeName(EstimatorMode m) {
  return m == EstimatorMode::kAqp ? "AQP" : "CORR";
}

/// Display alias for the aggregate output column: the user's alias, or the
/// function's base name ("count", "sum", ...).
std::string AggAlias(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  std::string base = AggFuncName(item.agg);
  const size_t paren = base.find('(');
  if (paren != std::string::npos) base = base.substr(0, paren);
  return base;
}

/// The estimate columns appended to every SVC result row.
void AppendEstimateColumns(const std::string& value_alias, Schema* schema) {
  schema->AddColumn({"", value_alias, ValueType::kDouble});
  schema->AddColumn({"", "ci_low", ValueType::kDouble});
  schema->AddColumn({"", "ci_high", ValueType::kDouble});
  schema->AddColumn({"", "mode", ValueType::kString});
  schema->AddColumn({"", "sample_rows", ValueType::kInt});
}

void AppendEstimateValues(const Estimate& e, EstimatorMode mode, Row* row) {
  row->push_back(Value::Double(e.value));
  row->push_back(e.has_ci ? Value::Double(e.ci_low) : Value::Null());
  row->push_back(e.has_ci ? Value::Double(e.ci_high) : Value::Null());
  row->push_back(Value::String(ModeName(mode)));
  row->push_back(Value::Int(static_cast<int64_t>(e.sample_rows)));
}

/// "%.6g" as a std::string (matches Value::ToString's double format).
std::string Num6g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string FormatEstimateMessage(const AggregateQuery& q,
                                  const std::string& view,
                                  const Estimate& e, EstimatorMode mode) {
  // Built as a string (not a fixed buffer) so long predicates never
  // truncate the estimate/CI suffix.
  std::string out = q.ToString() + " on " + view + ": " + Num6g(e.value);
  if (e.has_ci) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.0f", e.confidence * 100.0);
    out += " +/- " + Num6g(e.HalfWidth()) + " (" + pct + "% CI, ";
  } else {
    out += " (no CI, ";
  }
  out += std::string(ModeName(mode)) + ", " +
         std::to_string(e.sample_rows) + " sample rows)";
  return out;
}

/// Validates CREATE TABLE's column list and PRIMARY KEY clause and builds
/// the (empty) table; shared by the unsharded and sharded paths.
Result<Table> BuildTableForCreate(const Statement& stmt) {
  if (stmt.primary_key.empty()) {
    return Status::InvalidArgument(
        "CREATE TABLE " + stmt.target +
        " requires a PRIMARY KEY (...) clause: the maintenance model "
        "identifies records by key (paper §3.1)");
  }
  Schema schema;
  for (const auto& col : stmt.columns) {
    if (schema.Contains(col.name)) {
      return Status::InvalidArgument("duplicate column '" + col.name +
                                     "' in CREATE TABLE " + stmt.target);
    }
    schema.AddColumn({"", col.name, col.type});
  }
  Table table(std::move(schema));
  SVC_RETURN_IF_ERROR(table.SetPrimaryKey(stmt.primary_key));
  return table;
}

/// Renders SHOW MAINTENANCE: the active policy line as the message plus one
/// score row per view. Scores come from ScoreViews at elapsed_ms=0, so every
/// column is a pure function of engine state — the output is golden-safe.
SqlResult RenderMaintenance(const MaintenancePolicyConfig& cfg,
                            const std::vector<ViewMaintenanceScore>& scores) {
  Schema schema;
  schema.AddColumn({"", "view", ValueType::kString});
  schema.AddColumn({"", "pending_rows", ValueType::kInt});
  schema.AddColumn({"", "staleness", ValueType::kDouble});
  schema.AddColumn({"", "error", ValueType::kDouble});
  schema.AddColumn({"", "sla", ValueType::kDouble});
  schema.AddColumn({"", "score", ValueType::kDouble});
  schema.AddColumn({"", "action", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& s : scores) {
    out.AppendUnchecked({Value::String(s.view),
                         Value::Int(static_cast<int64_t>(s.pending_rows)),
                         Value::Double(s.staleness), Value::Double(s.error),
                         Value::Double(s.sla), Value::Double(s.score),
                         Value::String(MaintenanceActionName(s.action))});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = DescribeMaintenancePolicy(cfg);
  result.rows = std::move(out);
  return result;
}

}  // namespace

Result<SqlResult> SqlSession::Execute(const std::string& sql) {
  SVC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return Execute(stmt);
}

Result<SqlResult> SqlSession::Execute(const Statement& stmt) {
  if (stmt.num_params > 0) {
    // Without this check an INSERT would silently write the parser's NULL
    // placeholder values; expression params would only fail later at Bind.
    return Status::InvalidArgument(
        "statement has " + std::to_string(stmt.num_params) +
        " unbound parameter(s); bind values first (prepared-statement "
        "EXECUTE, or BindStatementParams)");
  }
  // Deadline gate: a statement whose deadline already passed never starts.
  // This is the *only* cancellation point for writes — once a write is
  // admitted it runs to completion, so a deadline can never tear a commit.
  if (cancel_ != nullptr) {
    SVC_RETURN_IF_ERROR(cancel_->Check("statement admission"));
  }
  if (handle_.is_sharded()) return ExecuteSharded(stmt);
  // Reads run against one consistent version: the owned engine in private
  // mode, the current published snapshot in shared mode (held alive for
  // the duration of the statement; concurrent commits don't affect it).
  SnapshotPtr snap;
  auto reader = [&]() -> const SvcEngine& {
    if (!handle_.is_shared()) return *handle_.private_engine();
    snap = handle_.shared()->Snapshot();
    return snap->engine;
  };
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return stmt.svc.present ? ExecSvcSelect(stmt, reader())
                              : ExecSelect(stmt, reader());
    case Statement::Kind::kShowTables:
      return ExecShowTables(reader());
    case Statement::Kind::kShowViews:
      return ExecShowViews(reader());
    case Statement::Kind::kShowStats:
      return ExecShowStats(reader());
    case Statement::Kind::kShowMaintenance:
      return ExecShowMaintenance(reader());
    case Statement::Kind::kCreateTable:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecCreateTable(stmt, e, wal);
      });
    case Statement::Kind::kCreateView:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecCreateView(stmt, e, wal);
      });
    case Statement::Kind::kInsert:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecInsert(stmt, e, wal);
      });
    case Statement::Kind::kDelete:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecDelete(stmt, e, wal);
      });
    case Statement::Kind::kRefresh:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecRefresh(stmt, e, wal);
      });
    case Statement::Kind::kSetPolicy:
      return ExecWrite([&](SvcEngine* e, std::string* wal) {
        return ExecSetPolicy(stmt, e, wal);
      });
    case Statement::Kind::kCheckpoint:
      return ExecCheckpoint();
  }
  return Status::Internal("unhandled statement kind");
}

Result<SqlResult> SqlSession::ExecWrite(
    const std::function<Result<SqlResult>(SvcEngine*, std::string*)>& fn) {
  if (handle_.is_durable()) {
    // One statement = one logged commit: the handler's payload (the
    // DurableOp it performed) hits the WAL before the commit publishes.
    std::optional<SqlResult> out;
    SVC_RETURN_IF_ERROR(handle_.durable()->CommitLogged(
        [&](SvcEngine* e, std::string* payload) -> Status {
          auto r = fn(e, payload);
          if (!r.ok()) return r.status();
          out = std::move(r).value();
          return Status::OK();
        },
        idem_));
    return std::move(*out);
  }
  if (!handle_.is_shared()) return fn(handle_.private_engine(), nullptr);
  // One statement = one commit: validation and mutation run on the fork
  // under the writer lock, so concurrent sessions cannot race a conflicting
  // write in between, and an error publishes nothing.
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(handle_.shared()->Commit([&](SvcEngine* e) -> Status {
    auto r = fn(e, nullptr);
    if (!r.ok()) return r.status();
    out = std::move(r).value();
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecSelect(const Statement& stmt,
                                         const SvcEngine& eng) {
  SVC_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select, eng.db()));
  ExecOptions exec = eng.exec_options();
  exec.cancel = cancel_;
  SVC_ASSIGN_OR_RETURN(Table out, ExecutePlan(*plan, eng.db(), exec));
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " row(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecSvcSelect(const Statement& stmt,
                                            const SvcEngine& eng) {
  return ExecSvcSelectImpl(
      stmt, eng,
      [&](const std::string& view, const AggregateQuery& q,
          const SvcQueryOptions& opts) { return eng.Query(view, q, opts); },
      [&](const std::string& view, const std::vector<std::string>& groups,
          const AggregateQuery& q, const SvcQueryOptions& opts) {
        return eng.QueryGrouped(view, groups, q, opts);
      });
}

Result<SqlResult> SqlSession::ExecSvcSelectImpl(
    const Statement& stmt, const SvcEngine& eng,
    const std::function<Result<SvcAnswer>(
        const std::string&, const AggregateQuery&, const SvcQueryOptions&)>&
        run_query,
    const std::function<Result<SvcGroupedAnswer>(
        const std::string&, const std::vector<std::string>&,
        const AggregateQuery&, const SvcQueryOptions&)>& run_grouped) {
  const SelectStmt& sel = *stmt.select;
  if (sel.set_next) {
    return Status::NotSupported(
        "WITH SVC does not combine with UNION/INTERSECT/EXCEPT; query each "
        "view separately");
  }
  if (sel.from.size() != 1 || sel.from[0].subquery || !sel.joins.empty()) {
    return Status::InvalidArgument(
        "WITH SVC requires FROM to name exactly one materialized view "
        "(joins and subqueries belong in the view definition)");
  }
  const std::string& view_name = sel.from[0].table;
  auto view = eng.GetView(view_name);
  if (!view.ok()) {
    if (eng.db().HasTable(view_name)) {
      return Status::InvalidArgument(
          "WITH SVC corrects stale materialized views, but '" + view_name +
          "' is a base table; query it with a plain SELECT or define a view "
          "over it");
    }
    return view.status();
  }
  if (sel.having) {
    return Status::NotSupported(
        "HAVING is not supported with WITH SVC; filter rows with WHERE "
        "(per-group estimates carry their own CIs)");
  }

  // Exactly one aggregate; every other select item must be a GROUP BY
  // column (the estimator evaluates one aggregate per group, §5.1).
  for (const auto& item : sel.items) {
    if (item.is_star) {
      return Status::InvalidArgument(
          "SELECT * cannot be combined with WITH SVC; ask for one aggregate "
          "(sum/count/avg/median/min/max) over the view's columns");
    }
  }
  const bool any_agg =
      std::any_of(sel.items.begin(), sel.items.end(),
                  [](const SelectItem& i) { return i.is_agg; });
  if (!any_agg) {
    return Status::InvalidArgument(
        "WITH SVC requires an aggregate select list "
        "(sum/count/avg/median/min/max over the view's columns); a plain "
        "row SELECT reads the stale view directly - drop WITH SVC");
  }
  const SelectItem* agg_item = nullptr;
  for (const auto& item : sel.items) {
    if (item.is_agg) {
      if (agg_item != nullptr) {
        return Status::NotSupported(
            "WITH SVC supports exactly one aggregate per query; split the "
            "select list into separate statements");
      }
      agg_item = &item;
      continue;
    }
    const bool is_group_col =
        item.scalar->kind() == ExprKind::kColumn &&
        std::find(sel.group_by.begin(), sel.group_by.end(),
                  item.scalar->column_ref()) != sel.group_by.end();
    if (!is_group_col) {
      return Status::InvalidArgument(
          "non-aggregate select expression '" + item.scalar->ToString() +
          "' must be a GROUP BY column when using WITH SVC");
    }
  }
  if (agg_item->agg == AggFunc::kCountDistinct) {
    return Status::NotSupported(
        "count(DISTINCT ...) is not an SVC-estimable aggregate; supported: "
        "sum, count, count(*), avg, median, min, max");
  }

  AggregateQuery q;
  q.func = agg_item->agg;
  if (agg_item->agg_input) q.attr = agg_item->agg_input->Clone();
  if (sel.where) q.predicate = sel.where->Clone();

  // Per-query options: session defaults overridden by WITH SVC(...) keys.
  SvcQueryOptions opts = svc_defaults_;
  if (stmt.svc.ratio) opts.ratio = *stmt.svc.ratio;
  if (stmt.svc.auto_mode) {
    opts.auto_mode = true;
  } else if (stmt.svc.mode) {
    opts.mode = *stmt.svc.mode;
    opts.auto_mode = false;
  }
  if (stmt.svc.confidence) opts.estimator.confidence = *stmt.svc.confidence;
  opts.exec.cancel = cancel_;
  // Degraded admission (server --degrade past the inflight cap): same
  // estimator, smaller sample. The answer stays correct-with-CI — the CI
  // is just wider — and the result is flagged so clients can tell.
  const bool degraded = degrade_scale_ < 1.0;
  if (degraded) opts.ratio *= degrade_scale_;

  const std::string value_alias = AggAlias(*agg_item);
  SqlResult result;
  result.kind = SqlResultKind::kEstimate;
  result.degraded = degraded;

  if (sel.group_by.empty()) {
    SVC_ASSIGN_OR_RETURN(SvcAnswer answer, run_query(view_name, q, opts));
    Schema schema;
    AppendEstimateColumns(value_alias, &schema);
    Table out(std::move(schema));
    Row row;
    AppendEstimateValues(answer.estimate, answer.mode_used, &row);
    out.AppendUnchecked(std::move(row));
    result.rows = std::move(out);
    result.mode_used = answer.mode_used;
    result.message = FormatEstimateMessage(q, view_name, answer.estimate,
                                           answer.mode_used);
    return result;
  }

  // Grouped path: one estimate per observed group.
  SVC_ASSIGN_OR_RETURN(const Table* stored, eng.db().GetTable(view_name));
  Schema schema;
  for (const auto& g : sel.group_by) {
    SVC_ASSIGN_OR_RETURN(size_t pos, stored->schema().Resolve(g));
    const Column& c = stored->schema().column(pos);
    schema.AddColumn({"", c.name, c.type});
  }
  AppendEstimateColumns(value_alias, &schema);

  SVC_ASSIGN_OR_RETURN(SvcGroupedAnswer answer,
                       run_grouped(view_name, sel.group_by, q, opts));
  // Sort groups by key for stable, scannable output (estimates are
  // unchanged; the engine's group order is first-encounter).
  std::vector<size_t> order(answer.result.group_keys.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Row& ka = answer.result.group_keys[a];
    const Row& kb = answer.result.group_keys[b];
    for (size_t c = 0; c < ka.size() && c < kb.size(); ++c) {
      if (ka[c] < kb[c]) return true;
      if (kb[c] < ka[c]) return false;
    }
    return a < b;
  });
  Table out(std::move(schema));
  for (size_t i : order) {
    Row row = answer.result.group_keys[i];
    AppendEstimateValues(answer.result.estimates[i], answer.mode_used, &row);
    out.AppendUnchecked(std::move(row));
  }
  result.rows = std::move(out);
  result.mode_used = answer.mode_used;
  result.message = q.ToString() + " on " + view_name + ": " +
                   std::to_string(order.size()) + " group(s) (" +
                   ModeName(answer.mode_used) + ")";
  return result;
}

Result<SqlResult> SqlSession::ExecCreateTable(const Statement& stmt,
                                              SvcEngine* eng,
                                              std::string* wal) {
  if (eng->db()->HasTable(stmt.target)) {
    return Status::AlreadyExists("table or view already exists: " +
                                 stmt.target);
  }
  SVC_ASSIGN_OR_RETURN(Table table, BuildTableForCreate(stmt));
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::CreateTableOp(stmt.target, table), wal));
  }
  SVC_RETURN_IF_ERROR(eng->db()->CreateTable(stmt.target, std::move(table)));
  SqlResult result;
  result.message = "created table " + stmt.target + " (" +
                   std::to_string(stmt.columns.size()) + " columns)";
  return result;
}

Result<SqlResult> SqlSession::ExecCreateView(const Statement& stmt,
                                             SvcEngine* eng,
                                             std::string* wal) {
  if (eng->HasView(stmt.target)) {
    return Status::AlreadyExists("view already exists: " + stmt.target);
  }
  if (eng->db()->HasTable(stmt.target)) {
    return Status::AlreadyExists("a table named '" + stmt.target +
                                 "' already exists; views need a fresh name");
  }
  SVC_ASSIGN_OR_RETURN(PlanPtr def, PlanSelect(*stmt.select, *eng->db()));
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(
        DurableOp::CreateViewOp(stmt.target, def->Clone(), stmt.sampling_key),
        wal));
  }
  SVC_RETURN_IF_ERROR(
      eng->CreateView(stmt.target, std::move(def), stmt.sampling_key));
  SVC_ASSIGN_OR_RETURN(const Table* stored, eng->db()->GetTable(stmt.target));
  SqlResult result;
  result.message = "materialized view " + stmt.target + " (" +
                   std::to_string(stored->NumRows()) + " rows)";
  return result;
}

Result<SqlResult> SqlSession::ExecInsert(const Statement& stmt,
                                         SvcEngine* eng, std::string* wal) {
  SVC_ASSIGN_OR_RETURN(const Table* table,
                       ResolveBaseTable(*eng, stmt.target, "INSERT INTO"));
  // Validate and coerce every row before ingesting any (the statement
  // either queues completely or not at all).
  std::vector<Row> rows = stmt.values;
  SVC_RETURN_IF_ERROR(CoerceInsertRows(stmt, table->schema(), &rows));
  std::vector<std::string> batch_keys;
  PendingKeys scratch;
  PendingKeys* cache = nullptr;
  if (table->HasPrimaryKey()) {
    cache = PendingKeysFor(stmt.target, &scratch);
    SyncPendingKeys(*eng, stmt.target, table->pk_indices(), cache);
    SVC_RETURN_IF_ERROR(
        CheckInsertKeys(stmt, *table, rows, *cache, &batch_keys));
  }
  if (wal != nullptr) {
    // The *coerced* rows are what replay must re-queue.
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::InsertOp(stmt.target, rows), wal));
  }
  for (auto& row : rows) {
    SVC_RETURN_IF_ERROR(eng->InsertRecord(stmt.target, std::move(row)));
  }
  if (cache != nullptr) {
    // Extend the cache in step with what was just queued.
    for (auto& key : batch_keys) cache->inserts.insert(std::move(key));
    cache->insert_rows += rows.size();
  }
  SqlResult result;
  result.message = "queued " + std::to_string(rows.size()) +
                   " insert(s) into " + stmt.target +
                   "; REFRESH commits them";
  return result;
}

Result<SqlResult> SqlSession::ExecDelete(const Statement& stmt,
                                         SvcEngine* eng, std::string* wal) {
  SVC_ASSIGN_OR_RETURN(const Table* table,
                       ResolveBaseTable(*eng, stmt.target, "DELETE FROM"));
  ExprPtr pred;
  if (stmt.where) {
    pred = stmt.where->Clone();
    SVC_RETURN_IF_ERROR(pred->Bind(table->schema()));
  }
  // WHERE selects from the committed rows; matches are queued as delete
  // deltas (the base table changes at REFRESH).
  std::vector<Row> doomed;
  for (const auto& row : table->rows()) {
    if (!pred || pred->Eval(row).IsTrue()) doomed.push_back(row);
  }
  // DELETE is idempotent: a row already queued for deletion is skipped —
  // queueing it twice would double-count in the change table and silently
  // corrupt maintained aggregate views at REFRESH.
  PendingKeys scratch;
  PendingKeys* cache = nullptr;
  std::vector<std::string> new_keys;
  if (table->HasPrimaryKey()) {
    const std::vector<size_t>& pk = table->pk_indices();
    cache = PendingKeysFor(stmt.target, &scratch);
    SyncPendingKeys(*eng, stmt.target, pk, cache);
    std::vector<Row> fresh;
    fresh.reserve(doomed.size());
    for (auto& row : doomed) {
      std::string key = EncodeRowKey(row, pk);
      if (cache->deletes.count(key)) continue;  // already pending
      new_keys.push_back(std::move(key));
      fresh.push_back(std::move(row));
    }
    doomed = std::move(fresh);
  }
  if (wal != nullptr) {
    // The rows the WHERE selected (post-dedup) are what replay re-queues —
    // replaying the predicate against a different committed state would
    // diverge.
    SVC_RETURN_IF_ERROR(
        EncodeDurableOp(DurableOp::DeleteOp(stmt.target, doomed), wal));
  }
  for (auto& row : doomed) {
    SVC_RETURN_IF_ERROR(eng->DeleteRecord(stmt.target, std::move(row)));
  }
  if (cache != nullptr) {
    for (auto& key : new_keys) cache->deletes.insert(std::move(key));
    cache->delete_rows += doomed.size();
  }
  SqlResult result;
  result.message = "queued " + std::to_string(doomed.size()) +
                   " delete(s) from " + stmt.target + "; REFRESH commits them";
  return result;
}

Result<SqlResult> SqlSession::ExecRefresh(const Statement& stmt,
                                          SvcEngine* eng, std::string* wal) {
  const size_t inserts = eng->pending().TotalInserts();
  const size_t deletes = eng->pending().TotalDeletes();
  if (!stmt.refresh_all) {
    // Validate the target; maintenance itself is engine-global (pending
    // deltas are one set), so every view freshens at the commit.
    SVC_RETURN_IF_ERROR(eng->GetView(stmt.target).status());
  }
  // MaintainAll is transactional: on error nothing changed — queued deltas
  // (and the session's pending-key cache over them) stay intact, so the
  // error propagates here without touching session state. In shared mode
  // `eng` is already a disposable fork that ExecWrite's Commit discards on
  // error, so the in-place body skips a redundant second fork.
  SVC_RETURN_IF_ERROR(handle_.is_shared() ? eng->MaintainAllInPlace()
                                         : eng->MaintainAll());
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(DurableOp::RefreshOp(), wal));
  }
  pending_keys_.clear();  // the commit emptied the pending queue
  const size_t n_views = eng->ViewNames().size();
  SqlResult result;
  result.message = "refreshed " + std::to_string(n_views) +
                   " view(s); committed " + std::to_string(inserts) +
                   " insert(s) and " + std::to_string(deletes) + " delete(s)";
  return result;
}

/// The config a SET MAINTENANCE POLICY statement publishes, given the
/// engine's current one. Global form: the statement's config (a complete
/// state), carrying over the existing per-view overrides — they are
/// orthogonal knobs set by separate statements. ON-form: the current
/// config with `target`'s override replaced by exactly the statement's
/// keys (empty parens clear it). Either way the result is the FULL config,
/// so the WAL record stays self-describing and replays verbatim.
static Result<MaintenancePolicyConfig> ResolvePolicyStatement(
    const Statement& stmt, const SvcEngine& eng) {
  MaintenancePolicyConfig cfg;
  if (!stmt.policy_on_view) {
    cfg = stmt.policy;
    cfg.overrides = eng.maintenance_policy().overrides;
    return cfg;
  }
  if (!eng.HasView(stmt.target)) {
    return Status::NotFound("SET MAINTENANCE POLICY ON " + stmt.target +
                            ": no such materialized view");
  }
  cfg = eng.maintenance_policy();
  if (stmt.policy_override.empty()) {
    cfg.overrides.erase(stmt.target);
  } else {
    cfg.overrides[stmt.target] = stmt.policy_override;
  }
  return cfg;
}

Result<SqlResult> SqlSession::ExecSetPolicy(const Statement& stmt,
                                            SvcEngine* eng, std::string* wal) {
  SVC_ASSIGN_OR_RETURN(MaintenancePolicyConfig cfg,
                       ResolvePolicyStatement(stmt, *eng));
  if (wal != nullptr) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(DurableOp::SetPolicyOp(cfg), wal));
  }
  eng->set_maintenance_policy(cfg);
  SqlResult result;
  result.message = "maintenance policy set: " + DescribeMaintenancePolicy(cfg);
  return result;
}

Result<SqlResult> SqlSession::ExecCheckpoint() {
  SqlResult result;
  if (!handle_.is_durable()) {
    result.message = "no durable storage attached; CHECKPOINT skipped";
    return result;
  }
  SVC_ASSIGN_OR_RETURN(uint64_t epoch, handle_.durable()->Checkpoint());
  result.message = "checkpoint at epoch " + std::to_string(epoch);
  return result;
}

Result<SqlResult> SqlSession::ExecShowTables(const SvcEngine& eng) {
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "kind", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : eng.db().TableNames()) {
    if (name.rfind("__", 0) == 0) continue;  // internal delta tables
    SVC_ASSIGN_OR_RETURN(const Table* t, eng.db().GetTable(name));
    const bool is_view = eng.HasView(name);
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(t->NumRows())),
                         Value::String(is_view ? "view" : "base")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " table(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowViews(const SvcEngine& eng) {
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "class", ValueType::kString});
  schema.AddColumn({"", "stale", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : eng.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, eng.GetView(name));
    SVC_ASSIGN_OR_RETURN(const Table* t, eng.db().GetTable(name));
    const char* cls = "recompute";
    if (view->view_class() == ViewClass::kSpj) cls = "spj";
    if (view->view_class() == ViewClass::kAggregate) cls = "aggregate";
    bool stale = false;
    for (const auto& rel : view->base_relations()) {
      stale = stale || eng.pending().Touches(rel);
    }
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(t->NumRows())),
                         Value::String(cls),
                         Value::String(stale ? "yes" : "no")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowStats(const SvcEngine& eng) {
  // One row per view: serving-cache counters (cumulative across commits),
  // the pending delta rows touching the view's base relations, and the
  // engine's delta version (the pending queue's mutation counter — the
  // epoch-like key cache entries validate against).
  Schema schema;
  schema.AddColumn({"", "view", ValueType::kString});
  schema.AddColumn({"", "cache_hits", ValueType::kInt});
  schema.AddColumn({"", "cache_misses", ValueType::kInt});
  schema.AddColumn({"", "full_cleans", ValueType::kInt});
  schema.AddColumn({"", "incr_advances", ValueType::kInt});
  schema.AddColumn({"", "pending_rows", ValueType::kInt});
  schema.AddColumn({"", "delta_version", ValueType::kInt});
  // Durable sessions also report the engine-wide durability counters
  // (repeated on every row — SHOW STATS is a per-view relation).
  if (handle_.is_durable()) {
    schema.AddColumn({"", "wal_records", ValueType::kInt});
    schema.AddColumn({"", "wal_bytes", ValueType::kInt});
    schema.AddColumn({"", "last_checkpoint_epoch", ValueType::kInt});
    schema.AddColumn({"", "recovered_epoch", ValueType::kInt});
  }
  Table out(std::move(schema));
  const std::map<std::string, ViewCacheStats> stats = eng.CacheStats();
  const auto as_int = [](uint64_t v) {
    return Value::Int(static_cast<int64_t>(v));
  };
  for (const auto& name : eng.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, eng.GetView(name));
    size_t pending_rows = 0;
    for (const auto& rel : view->base_relations()) {
      pending_rows += eng.pending().InsertRows(rel);
      pending_rows += eng.pending().DeleteRows(rel);
    }
    auto it = stats.find(name);
    const ViewCacheStats s = it == stats.end() ? ViewCacheStats{} : it->second;
    Row row = {Value::String(name),          as_int(s.hits),
               as_int(s.misses),             as_int(s.full_cleans),
               as_int(s.incremental_advances), as_int(pending_rows),
               as_int(eng.pending().version())};
    if (handle_.is_durable()) {
      const DurabilityStats ds = handle_.durable()->stats();
      row.push_back(as_int(ds.wal_records));
      row.push_back(as_int(ds.wal_bytes));
      row.push_back(as_int(ds.last_checkpoint_epoch));
      row.push_back(as_int(ds.recovered_epoch));
    }
    out.AppendUnchecked(std::move(row));
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowMaintenance(const SvcEngine& eng) {
  const MaintenancePolicyConfig cfg = eng.maintenance_policy();
  SVC_ASSIGN_OR_RETURN(std::vector<ViewMaintenanceScore> scores,
                       ScoreViews(eng, cfg, /*elapsed_ms=*/0));
  return RenderMaintenance(cfg, scores);
}

SqlSession::PendingKeys* SqlSession::PendingKeysFor(
    const std::string& relation, PendingKeys* scratch) {
  // Shared mode: other sessions mutate the pending queue between this
  // session's statements, and the row-count drift check cannot distinguish
  // "same counts, different keys" (e.g. a REFRESH followed by the same
  // number of new inserts). Rebuild from the fork every statement — the
  // statement runs under the writer lock, so the fork is authoritative.
  if (handle_.is_shared()) return scratch;
  return &pending_keys_[relation];
}

void SqlSession::SyncPendingKeys(const SvcEngine& eng,
                                 const std::string& relation,
                                 const std::vector<size_t>& pk_indices,
                                 PendingKeys* cache) {
  auto sync = [&](size_t n, auto for_each, size_t* rows,
                  std::set<std::string>* keys) {
    if (*rows == n) return;
    keys->clear();
    for_each([&](const Row& r) {
      keys->insert(EncodeRowKey(r, pk_indices));
    });
    *rows = n;
  };
  const DeltaSet& pending = eng.pending();
  sync(pending.InsertRows(relation),
       [&](auto fn) { pending.ForEachInsert(relation, fn); },
       &cache->insert_rows, &cache->inserts);
  sync(pending.DeleteRows(relation),
       [&](auto fn) { pending.ForEachDelete(relation, fn); },
       &cache->delete_rows, &cache->deletes);
}

Status SqlSession::CoerceInsertRows(const Statement& stmt,
                                    const Schema& schema,
                                    std::vector<Row>* rows) {
  for (size_t r = 0; r < rows->size(); ++r) {
    Row& row = (*rows)[r];
    if (row.size() != schema.NumColumns()) {
      std::string cols;
      for (const auto& c : schema.columns()) {
        cols += (cols.empty() ? "" : ", ") + c.name;
      }
      return Status::InvalidArgument(
          "INSERT INTO " + stmt.target + " expects " +
          std::to_string(schema.NumColumns()) + " values (" + cols +
          "); row " + std::to_string(r + 1) + " has " +
          std::to_string(row.size()));
    }
    for (size_t c = 0; c < row.size(); ++c) {
      Value& v = row[c];
      const Column& col = schema.column(c);
      if (v.is_null()) continue;
      if (col.type == ValueType::kDouble && v.type() == ValueType::kInt) {
        v = Value::Double(static_cast<double>(v.AsInt()));  // widen
        continue;
      }
      if (v.type() != col.type) {
        return Status::InvalidArgument(
            "INSERT INTO " + stmt.target + " column '" + col.name +
            "' expects " + ValueTypeName(col.type) + "; row " +
            std::to_string(r + 1) + " has " + v.ToString() + " (" +
            ValueTypeName(v.type()) + ")");
      }
    }
  }
  return Status::OK();
}

Status SqlSession::CheckInsertKeys(const Statement& stmt, const Table& table,
                                   const std::vector<Row>& rows,
                                   const PendingKeys& pending,
                                   std::vector<std::string>* batch_keys) {
  // Primary-key validation: a conflicting delta would poison the pending
  // queue (every later REFRESH fails on the duplicate), so reject NULL
  // keys, duplicates within the statement, keys already queued for
  // insertion, and keys of committed rows not queued for deletion.
  const Schema& schema = table.schema();
  const std::vector<size_t>& pk = table.pk_indices();
  auto describe_key = [&](const Row& row) {
    std::string out;
    for (size_t i : pk) {
      if (!out.empty()) out += ", ";
      out += schema.column(i).name + "=" + row[i].ToString();
    }
    return out;
  };
  std::set<std::string> batch;
  batch_keys->reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t i : pk) {
      if (rows[r][i].is_null()) {
        return Status::ConstraintViolation(
            "INSERT INTO " + stmt.target + " row " + std::to_string(r + 1) +
            " has NULL in primary-key column '" + schema.column(i).name + "'");
      }
    }
    std::string key = EncodeRowKey(rows[r], pk);
    std::string where;
    if (!batch.insert(key).second) {
      where = "this statement";
    } else if (pending.inserts.count(key)) {
      where = "the pending deltas";
    } else if (table.FindByEncodedKey(key).ok() &&
               !pending.deletes.count(key)) {
      where =
          "a committed row (DELETE it first; an update is "
          "delete + insert)";
    }
    if (!where.empty()) {
      return Status::ConstraintViolation(
          "INSERT INTO " + stmt.target + " row " + std::to_string(r + 1) +
          " duplicates the primary key (" + describe_key(rows[r]) + ") of " +
          where);
    }
    batch_keys->push_back(std::move(key));
  }
  return Status::OK();
}

Result<const Table*> SqlSession::ResolveBaseTable(const SvcEngine& eng,
                                                  const std::string& name,
                                                  const char* verb) const {
  if (eng.HasView(name)) {
    return Status::InvalidArgument(
        std::string(verb) + " targets a base relation, but '" + name +
        "' is a materialized view (views change via REFRESH after deltas "
        "to their base relations)");
  }
  if (name.rfind("__", 0) == 0) {
    return Status::InvalidArgument("'" + name +
                                   "' is an internal delta relation");
  }
  return eng.db().GetTable(name);
}

// ---- Sharded mode -----------------------------------------------------------

Result<SqlResult> SqlSession::ExecuteSharded(const Statement& stmt) {
  // Reads run against one published cut, held alive for the statement;
  // writes validate and commit under the engine's statement lock (the
  // sharded analog of running inside SharedEngine::Commit).
  ShardedSnapshotPtr snap;
  auto reader = [&]() -> const ShardedSnapshot& {
    snap = handle_.sharded()->Snapshot();
    return *snap;
  };
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      const ShardedSnapshot& cut = reader();
      if (!stmt.svc.present) return ExecSelectSharded(stmt, cut);
      const ShardedEngine& eng = *handle_.sharded();
      return ExecSvcSelectImpl(
          stmt, cut.shards[0]->engine,
          [&](const std::string& view, const AggregateQuery& q,
              const SvcQueryOptions& opts) {
            return eng.Query(cut, view, q, opts);
          },
          [&](const std::string& view, const std::vector<std::string>& groups,
              const AggregateQuery& q, const SvcQueryOptions& opts) {
            return eng.QueryGrouped(cut, view, groups, q, opts);
          });
    }
    case Statement::Kind::kShowTables:
      return ExecShowTablesSharded(reader());
    case Statement::Kind::kShowViews:
      return ExecShowViewsSharded(reader());
    case Statement::Kind::kShowStats:
      return ExecShowStatsSharded(reader());
    case Statement::Kind::kShowMaintenance:
      return ExecShowMaintenanceSharded(reader());
    case Statement::Kind::kCreateTable:
      return ExecCreateTableSharded(stmt);
    case Statement::Kind::kCreateView:
      return ExecCreateViewSharded(stmt);
    case Statement::Kind::kInsert:
      return ExecInsertSharded(stmt);
    case Statement::Kind::kDelete:
      return ExecDeleteSharded(stmt);
    case Statement::Kind::kRefresh:
      return ExecRefreshSharded(stmt);
    case Statement::Kind::kSetPolicy:
      return ExecSetPolicySharded(stmt);
    case Statement::Kind::kCheckpoint:
      return ExecCheckpoint();  // sharded engines are not durable
  }
  return Status::Internal("unhandled statement kind");
}

Result<SqlResult> SqlSession::ExecSelectSharded(const Statement& stmt,
                                                const ShardedSnapshot& snap) {
  const ShardedEngine& eng = *handle_.sharded();
  // Plan and execute against the gathered logical catalog: partitioned
  // relations and views are reassembled in canonical order (memoized per
  // shard-part identity, so repeated SELECTs between maintenance commits
  // reuse the merge; replicated tables are shard 0's, zero-copy).
  const SvcEngine& shard0 = snap.shards[0]->engine;
  std::vector<std::string> names;
  for (const auto& name : shard0.db().TableNames()) {
    if (name.rfind("__", 0) == 0) continue;  // internal delta tables
    names.push_back(name);
  }
  SVC_ASSIGN_OR_RETURN(Database gathered, eng.GatherDatabase(snap, names));
  SVC_ASSIGN_OR_RETURN(PlanPtr plan, PlanSelect(*stmt.select, gathered));
  SVC_ASSIGN_OR_RETURN(Table out,
                       ExecutePlan(*plan, gathered, shard0.exec_options()));
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " row(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecCreateTableSharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    ShardedSnapshotPtr snap = eng.Snapshot();
    if (snap->shards[0]->engine.db().HasTable(stmt.target)) {
      return Status::AlreadyExists("table or view already exists: " +
                                   stmt.target);
    }
    auto table = BuildTableForCreate(stmt);
    if (!table.ok()) return table.status();
    SVC_RETURN_IF_ERROR(eng.CreateTable(stmt.target, std::move(table).value()));
    SqlResult result;
    result.message = "created table " + stmt.target + " (" +
                     std::to_string(stmt.columns.size()) + " columns)";
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecCreateViewSharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    ShardedSnapshotPtr snap = eng.Snapshot();
    const SvcEngine& shard0 = snap->shards[0]->engine;
    if (shard0.HasView(stmt.target)) {
      return Status::AlreadyExists("view already exists: " + stmt.target);
    }
    if (shard0.db().HasTable(stmt.target)) {
      return Status::AlreadyExists("a table named '" + stmt.target +
                                   "' already exists; views need a fresh "
                                   "name");
    }
    // Plan against shard 0's catalog: schemas are identical on every shard
    // (only row placement differs), and planning never reads rows.
    SVC_ASSIGN_OR_RETURN(PlanPtr def, PlanSelect(*stmt.select, shard0.db()));
    SVC_RETURN_IF_ERROR(
        eng.CreateView(stmt.target, std::move(def), stmt.sampling_key));
    // Report the logical row count from the freshly published cut.
    ShardedSnapshotPtr next = eng.Snapshot();
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> stored,
                         eng.GatherTable(*next, stmt.target));
    SqlResult result;
    result.message = "materialized view " + stmt.target + " (" +
                     std::to_string(stored->NumRows()) + " rows)";
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecInsertSharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    ShardedSnapshotPtr snap = eng.Snapshot();
    const SvcEngine& shard0 = snap->shards[0]->engine;
    SVC_RETURN_IF_ERROR(
        ResolveBaseTable(shard0, stmt.target, "INSERT INTO").status());
    // Key checks run against the *gathered* logical table: a conflicting
    // committed row may live on any shard.
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                         eng.GatherTable(*snap, stmt.target));
    std::vector<Row> rows = stmt.values;
    SVC_RETURN_IF_ERROR(CoerceInsertRows(stmt, table->schema(), &rows));
    if (table->HasPrimaryKey()) {
      PendingKeys pending;
      SyncPendingKeysSharded(*snap, stmt.target, table->pk_indices(),
                             &pending);
      std::vector<std::string> batch_keys;
      SVC_RETURN_IF_ERROR(
          CheckInsertKeys(stmt, *table, rows, pending, &batch_keys));
    }
    SVC_RETURN_IF_ERROR(eng.InsertRows(stmt.target, std::move(rows)));
    SqlResult result;
    result.message = "queued " + std::to_string(stmt.values.size()) +
                     " insert(s) into " + stmt.target +
                     "; REFRESH commits them";
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecDeleteSharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    ShardedSnapshotPtr snap = eng.Snapshot();
    const SvcEngine& shard0 = snap->shards[0]->engine;
    SVC_RETURN_IF_ERROR(
        ResolveBaseTable(shard0, stmt.target, "DELETE FROM").status());
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> table,
                         eng.GatherTable(*snap, stmt.target));
    ExprPtr pred;
    if (stmt.where) {
      pred = stmt.where->Clone();
      SVC_RETURN_IF_ERROR(pred->Bind(table->schema()));
    }
    // WHERE selects from the gathered committed rows (canonical order, so
    // the queued delta order is shard-count-invariant); matches are routed
    // to their owning shards as delete deltas.
    std::vector<Row> doomed;
    for (const auto& row : table->rows()) {
      if (!pred || pred->Eval(row).IsTrue()) doomed.push_back(row);
    }
    if (table->HasPrimaryKey()) {
      // DELETE is idempotent: skip rows already queued for deletion.
      PendingKeys pending;
      SyncPendingKeysSharded(*snap, stmt.target, table->pk_indices(),
                             &pending);
      std::vector<Row> fresh;
      fresh.reserve(doomed.size());
      for (auto& row : doomed) {
        if (pending.deletes.count(EncodeRowKey(row, table->pk_indices()))) {
          continue;
        }
        fresh.push_back(std::move(row));
      }
      doomed = std::move(fresh);
    }
    const size_t n_doomed = doomed.size();
    SVC_RETURN_IF_ERROR(eng.DeleteRows(stmt.target, std::move(doomed)));
    SqlResult result;
    result.message = "queued " + std::to_string(n_doomed) + " delete(s) from " +
                     stmt.target + "; REFRESH commits them";
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecRefreshSharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    ShardedSnapshotPtr snap = eng.Snapshot();
    const SvcEngine& shard0 = snap->shards[0]->engine;
    if (!stmt.refresh_all) {
      SVC_RETURN_IF_ERROR(shard0.GetView(stmt.target).status());
    }
    size_t inserts = 0;
    size_t deletes = 0;
    SVC_RETURN_IF_ERROR(eng.Refresh(&inserts, &deletes));
    const size_t n_views = shard0.ViewNames().size();
    SqlResult result;
    result.message = "refreshed " + std::to_string(n_views) +
                     " view(s); committed " + std::to_string(inserts) +
                     " insert(s) and " + std::to_string(deletes) +
                     " delete(s)";
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecSetPolicySharded(const Statement& stmt) {
  ShardedEngine& eng = *handle_.sharded();
  std::optional<SqlResult> out;
  SVC_RETURN_IF_ERROR(eng.WithStatementLock([&]() -> Status {
    // Catalogs (and the policy) are identical on every shard; resolve the
    // ON-form merge against shard 0 under the statement lock.
    ShardedSnapshotPtr snap = eng.Snapshot();
    SVC_ASSIGN_OR_RETURN(
        MaintenancePolicyConfig cfg,
        ResolvePolicyStatement(stmt, snap->shards[0]->engine));
    SVC_RETURN_IF_ERROR(eng.SetMaintenancePolicy(cfg));
    SqlResult result;
    result.message =
        "maintenance policy set: " + DescribeMaintenancePolicy(cfg);
    out = std::move(result);
    return Status::OK();
  }));
  return std::move(*out);
}

Result<SqlResult> SqlSession::ExecShowTablesSharded(
    const ShardedSnapshot& snap) {
  const SvcEngine& shard0 = snap.shards[0]->engine;
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "kind", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : shard0.db().TableNames()) {
    if (name.rfind("__", 0) == 0) continue;  // internal delta tables
    // Partitioned relations/views report their logical row count (the sum
    // of the shard parts); replicated ones hold it whole on shard 0.
    const bool partitioned = snap.meta->IsPartitionedRelation(name) ||
                             snap.meta->IsPartitionedView(name);
    size_t rows = 0;
    for (size_t s = 0; s < snap.shards.size(); ++s) {
      SVC_ASSIGN_OR_RETURN(const Table* t,
                           snap.shards[s]->engine.db().GetTable(name));
      rows += t->NumRows();
      if (!partitioned) break;
    }
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(rows)),
                         Value::String(shard0.HasView(name) ? "view" : "base")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " table(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowViewsSharded(const ShardedSnapshot& snap) {
  const SvcEngine& shard0 = snap.shards[0]->engine;
  Schema schema;
  schema.AddColumn({"", "name", ValueType::kString});
  schema.AddColumn({"", "rows", ValueType::kInt});
  schema.AddColumn({"", "class", ValueType::kString});
  schema.AddColumn({"", "stale", ValueType::kString});
  Table out(std::move(schema));
  for (const auto& name : shard0.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, shard0.GetView(name));
    const bool partitioned = snap.meta->IsPartitionedView(name);
    size_t rows = 0;
    for (size_t s = 0; s < snap.shards.size(); ++s) {
      SVC_ASSIGN_OR_RETURN(const Table* t,
                           snap.shards[s]->engine.db().GetTable(name));
      rows += t->NumRows();
      if (!partitioned) break;
    }
    const char* cls = "recompute";
    if (view->view_class() == ViewClass::kSpj) cls = "spj";
    if (view->view_class() == ViewClass::kAggregate) cls = "aggregate";
    // A partitioned relation's deltas live only on the owning shard: a
    // view is stale when *any* shard has pending rows for its bases.
    bool stale = false;
    for (const auto& rel : view->base_relations()) {
      for (const auto& shard : snap.shards) {
        stale = stale || shard->engine.pending().Touches(rel);
      }
    }
    out.AppendUnchecked({Value::String(name),
                         Value::Int(static_cast<int64_t>(rows)),
                         Value::String(cls),
                         Value::String(stale ? "yes" : "no")});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowStatsSharded(const ShardedSnapshot& snap) {
  const ShardedEngine& eng = *handle_.sharded();
  const SvcEngine& shard0 = snap.shards[0]->engine;
  Schema schema;
  schema.AddColumn({"", "view", ValueType::kString});
  schema.AddColumn({"", "cache_hits", ValueType::kInt});
  schema.AddColumn({"", "cache_misses", ValueType::kInt});
  schema.AddColumn({"", "full_cleans", ValueType::kInt});
  schema.AddColumn({"", "incr_advances", ValueType::kInt});
  schema.AddColumn({"", "pending_rows", ValueType::kInt});
  schema.AddColumn({"", "delta_version", ValueType::kInt});
  Table out(std::move(schema));
  // Counters are logical (one scatter-gather query = one hit/miss/clean,
  // not one per shard) and the delta version is the coordinator's publish
  // counter — both match what a single-shard engine reports for the same
  // statement history, so the relation is shard-count-invariant.
  const std::map<std::string, ViewCacheStats> stats =
      eng.CoordinatorCacheStats(snap);
  const uint64_t delta_version = snap.version;
  const auto as_int = [](uint64_t v) {
    return Value::Int(static_cast<int64_t>(v));
  };
  for (const auto& name : shard0.ViewNames()) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, shard0.GetView(name));
    size_t pending_rows = 0;
    for (const auto& rel : view->base_relations()) {
      pending_rows += eng.PendingRowsFor(snap, rel);
    }
    auto it = stats.find(name);
    const ViewCacheStats s = it == stats.end() ? ViewCacheStats{} : it->second;
    out.AppendUnchecked({Value::String(name), as_int(s.hits),
                         as_int(s.misses), as_int(s.full_cleans),
                         as_int(s.incremental_advances), as_int(pending_rows),
                         as_int(delta_version)});
  }
  SqlResult result;
  result.kind = SqlResultKind::kRows;
  result.message = std::to_string(out.NumRows()) + " view(s)";
  result.rows = std::move(out);
  return result;
}

Result<SqlResult> SqlSession::ExecShowMaintenanceSharded(
    const ShardedSnapshot& snap) {
  const ShardedEngine& eng = *handle_.sharded();
  const MaintenancePolicyConfig cfg = snap.shards[0]->engine.maintenance_policy();
  SVC_ASSIGN_OR_RETURN(std::vector<ViewMaintenanceScore> scores,
                       eng.ScoreViews(snap, cfg, /*elapsed_ms=*/0));
  return RenderMaintenance(cfg, scores);
}

void SqlSession::SyncPendingKeysSharded(const ShardedSnapshot& snap,
                                        const std::string& relation,
                                        const std::vector<size_t>& pk_indices,
                                        PendingKeys* cache) {
  for (const auto& shard : snap.shards) {
    const DeltaSet& pending = shard->engine.pending();
    pending.ForEachInsert(relation, [&](const Row& r) {
      cache->inserts.insert(EncodeRowKey(r, pk_indices));
    });
    pending.ForEachDelete(relation, [&](const Row& r) {
      cache->deletes.insert(EncodeRowKey(r, pk_indices));
    });
  }
  cache->insert_rows = cache->inserts.size();
  cache->delete_rows = cache->deletes.size();
}

}  // namespace svc
