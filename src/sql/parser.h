#ifndef SVC_SQL_PARSER_H_
#define SVC_SQL_PARSER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/maintenance_policy.h"
#include "core/policy.h"
#include "relational/algebra.h"
#include "relational/expr.h"

namespace svc {

/// One SELECT-list entry: `*`, a scalar expression, or a top-level
/// aggregate call `agg(expr)` / `count(*)` — each optionally aliased.
struct SelectItem {
  bool is_star = false;
  bool is_agg = false;
  AggFunc agg = AggFunc::kCountStar;
  ExprPtr agg_input;  ///< null for count(*)
  ExprPtr scalar;     ///< non-aggregate expression
  std::string alias;  ///< "" -> derived from the expression
};

struct SelectStmt;

/// A FROM-clause source: a base table or a parenthesized subquery, with an
/// optional alias.
struct TableRef {
  std::string table;                     ///< base table name ("" if subquery)
  std::unique_ptr<SelectStmt> subquery;  ///< non-null for (SELECT ...)
  std::string alias;
};

/// An explicit JOIN clause.
struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;  ///< raw ON condition (equi-keys extracted by the planner)
};

/// Parsed `SELECT ... [UNION ...]` statement.
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;      ///< comma-separated sources
  std::vector<JoinClause> joins;   ///< explicit JOIN ... ON chains
  ExprPtr where;
  std::vector<std::string> group_by;  ///< column references
  ExprPtr having;
  /// UNION / INTERSECT / EXCEPT continuation.
  std::unique_ptr<SelectStmt> set_next;
  PlanKind set_op = PlanKind::kUnion;
};

/// Options attached to a SELECT via `WITH SVC(key=value, ...)`. Each field
/// is only set when the script spelled it out; SqlSession fills the rest
/// from its per-session defaults.
struct SvcClause {
  bool present = false;
  std::optional<double> ratio;       ///< sampling ratio m ∈ (0, 1]
  std::optional<EstimatorMode> mode; ///< absent when mode=auto
  bool auto_mode = false;            ///< mode=auto (§5.2.2 break-even rule)
  std::optional<double> confidence;  ///< CI level ∈ (0, 1)
};

/// One column of a CREATE TABLE definition.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// A parsed top-level statement of the SVC serving layer:
///
///   SELECT ... [WITH SVC(ratio=..., mode=aqp|corr|auto, confidence=...)]
///   CREATE TABLE <name> (<col> <type>, ..., PRIMARY KEY (<cols>))
///   CREATE MATERIALIZED VIEW <name> [SAMPLING KEY (<cols>)] AS <select>
///   INSERT INTO <table> VALUES (...), ...
///   DELETE FROM <table> [WHERE <pred>]
///   REFRESH VIEW <name> | REFRESH ALL
///   CHECKPOINT
///   SET MAINTENANCE POLICY (mode=off|auto, budget=..., sla_ms=..., ...)
///   SHOW TABLES | SHOW VIEWS | SHOW STATS | SHOW MAINTENANCE
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateView,
    kInsert,
    kDelete,
    kRefresh,
    kCheckpoint,
    kSetPolicy,
    kShowTables,
    kShowViews,
    kShowStats,
    kShowMaintenance,
  };
  Kind kind = Kind::kSelect;
  /// kSelect: the query; kCreateView: the view definition.
  std::unique_ptr<SelectStmt> select;
  SvcClause svc;                         ///< kSelect only
  std::string target;                    ///< table / view name
  std::vector<ColumnDef> columns;        ///< kCreateTable
  std::vector<std::string> primary_key;  ///< kCreateTable
  std::vector<std::string> sampling_key; ///< kCreateView (optional)
  std::vector<Row> values;               ///< kInsert literal rows
  ExprPtr where;                         ///< kDelete (null = every row)
  bool refresh_all = false;              ///< kRefresh: REFRESH ALL
  /// kSetPolicy: the full config to publish. Parsing starts from the
  /// defaults, so unspecified keys mean "the default", not "keep current"
  /// (the statement is a complete, self-describing engine state — which is
  /// what lets it replay verbatim from the WAL).
  MaintenancePolicyConfig policy;
  /// kSetPolicy, ON-form: `SET MAINTENANCE POLICY ON <view> (...)` sets
  /// `policy_on_view` and fills `policy_override` with exactly the keys
  /// given (the view's name goes in `target`). Empty parens clear the
  /// view's override. Unlike the global form, this *merges* with the
  /// engine's current config: the session folds the override in and logs
  /// the full resulting config, keeping WAL replay self-describing.
  bool policy_on_view = false;
  ViewPolicyOverride policy_override;

  /// One `?` placeholder inside an INSERT VALUES row: `values[row][col]`
  /// holds NULL until EXECUTE substitutes parameter `param`.
  struct ValueParamSlot {
    uint32_t row = 0;
    uint32_t col = 0;
    uint32_t param = 0;  ///< 0-based parameter index
  };
  /// Number of `?` placeholders in the statement, numbered left to right
  /// in text order. A statement with num_params > 0 can only run after
  /// BindStatementParams (sql/params.h) substitutes literals.
  uint32_t num_params = 0;
  std::vector<ValueParamSlot> value_params;  ///< kInsert placeholders
};

/// Parses one SELECT statement (errors carry the offending token offset).
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

/// Parses one statement of any kind (trailing ';' allowed).
Result<Statement> ParseStatement(const std::string& sql);

/// Splits a script into ';'-terminated statements. Quoted strings and line
/// comments are respected; empty statements are dropped; a final statement
/// without ';' is kept. `last_terminated` (optional) reports whether the
/// final returned statement ended at a real ';' — the REPL uses it to
/// decide between submitting and waiting for more input (a ';' inside a
/// comment or string does not terminate).
std::vector<std::string> SplitSqlScript(const std::string& script,
                                        bool* last_terminated = nullptr);

/// Parses a scalar expression in isolation (used for query predicates).
Result<ExprPtr> ParseScalarExpr(const std::string& sql);

}  // namespace svc

#endif  // SVC_SQL_PARSER_H_
