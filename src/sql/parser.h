#ifndef SVC_SQL_PARSER_H_
#define SVC_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/expr.h"

namespace svc {

/// One SELECT-list entry: `*`, a scalar expression, or a top-level
/// aggregate call `agg(expr)` / `count(*)` — each optionally aliased.
struct SelectItem {
  bool is_star = false;
  bool is_agg = false;
  AggFunc agg = AggFunc::kCountStar;
  ExprPtr agg_input;  ///< null for count(*)
  ExprPtr scalar;     ///< non-aggregate expression
  std::string alias;  ///< "" -> derived from the expression
};

struct SelectStmt;

/// A FROM-clause source: a base table or a parenthesized subquery, with an
/// optional alias.
struct TableRef {
  std::string table;                     ///< base table name ("" if subquery)
  std::unique_ptr<SelectStmt> subquery;  ///< non-null for (SELECT ...)
  std::string alias;
};

/// An explicit JOIN clause.
struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;  ///< raw ON condition (equi-keys extracted by the planner)
};

/// Parsed `SELECT ... [UNION ...]` statement.
struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;      ///< comma-separated sources
  std::vector<JoinClause> joins;   ///< explicit JOIN ... ON chains
  ExprPtr where;
  std::vector<std::string> group_by;  ///< column references
  ExprPtr having;
  /// UNION / INTERSECT / EXCEPT continuation.
  std::unique_ptr<SelectStmt> set_next;
  PlanKind set_op = PlanKind::kUnion;
};

/// Parses one SELECT statement (errors carry the offending token offset).
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

/// Parses a scalar expression in isolation (used for query predicates).
Result<ExprPtr> ParseScalarExpr(const std::string& sql);

}  // namespace svc

#endif  // SVC_SQL_PARSER_H_
