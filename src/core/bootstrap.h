#ifndef SVC_CORE_BOOTSTRAP_H_
#define SVC_CORE_BOOTSTRAP_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/random.h"

namespace svc {

/// The statistical bootstrap (§5.2.5): repeatedly evaluates `resample_stat`
/// — a closure that draws one resample (using the provided Rng) and returns
/// the statistic — and returns the empirical two-sided percentile interval
/// at `confidence` (e.g. 0.95 -> the 2.5% and 97.5% percentiles).
///
/// Replicates are independent by construction: replicate i draws from its
/// own deterministic RNG stream derived from (seed, i), so the interval is
/// bit-identical at every `num_threads` (1 = sequential; 0 = all hardware
/// threads). `resample_stat` must be safe to call concurrently from several
/// threads (it receives a distinct Rng per call and should only read shared
/// state).
std::pair<double, double> BootstrapPercentileInterval(
    const std::function<double(Rng*)>& resample_stat, int iterations,
    uint64_t seed, double confidence, int num_threads = 1);

/// Draws a with-replacement resample of `n` indices in [0, n).
std::vector<size_t> ResampleIndices(size_t n, Rng* rng);

/// Median of `values` (destroys ordering). Returns 0 for empty input.
double MedianInPlace(std::vector<double>* values);

/// p-th percentile (0..1) of `values` (destroys ordering).
double PercentileInPlace(std::vector<double>* values, double p);

}  // namespace svc

#endif  // SVC_CORE_BOOTSTRAP_H_
