#ifndef SVC_CORE_ESTIMATOR_MERGE_H_
#define SVC_CORE_ESTIMATOR_MERGE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "sample/cleaner.h"

namespace svc {

/// Merges per-shard corresponding samples into one sample in a canonical,
/// shard-count-invariant order, so the stock estimators (core/estimator.h)
/// run once at the coordinator and produce bit-identical answers at every
/// shard count.
///
/// Why merge samples instead of per-shard estimates: floating-point
/// addition is not associative, so summing N per-shard partial sums would
/// make the answer depend on N. Concatenating the per-shard rows and
/// stable-sorting them by sampling-key *values* (Value's total order)
/// yields an order that depends only on the data: a sampling key's rows
/// all live on exactly one shard (that is the partitioning rule), so
/// within a key the rows keep that shard's local order — which is the
/// global ingestion order filtered to the key — and across keys the value
/// order decides. The result is the same logical sample at N = 1, 2, 4,
/// ..., and the estimator's deterministic chunking (DeterministicChunks
/// depends only on row count) does the rest. Value order is also why
/// answers match the *unsharded* engine bit-for-bit whenever the view's
/// natural row order is increasing in the key (the common case: views
/// materialize in base-scan order and deltas append with fresh keys).
///
/// All parts must agree on ratio, family, and key columns (they come from
/// one fan-out). Empty parts are fine; at least one part is required.
/// Output tables carry the parts' schema and primary key (rows are
/// PK-disjoint across shards by construction).
Result<CorrespondingSamples> MergeCorrespondingSamples(
    const std::vector<std::shared_ptr<const CorrespondingSamples>>& parts);

/// Merges per-shard partitions of one table into a single table in
/// canonical order: rows sorted by primary-key values (all columns for
/// keyless tables, where equal rows are interchangeable). Used
/// to gather a partitioned view's full stale contents for SVC+CORR and to
/// reassemble partitioned base relations for plain SELECTs — the merged
/// table is identical at every shard count.
Result<Table> MergeShardTables(
    const std::vector<std::shared_ptr<const Table>>& parts);

}  // namespace svc

#endif  // SVC_CORE_ESTIMATOR_MERGE_H_
