#include "core/minmax.h"

#include <algorithm>
#include <cmath>

namespace svc {

namespace {

Result<MinMaxEstimate> Extremum(const Table& stale_view,
                                const CorrespondingSamples& samples,
                                const AggregateQuery& q, bool is_max) {
  AggregateQuery exact_q = q;
  exact_q.func = is_max ? AggFunc::kMax : AggFunc::kMin;
  AggregateQuery corr_q = exact_q;

  // Point estimate via the correction rule.
  SVC_ASSIGN_OR_RETURN(Estimate corr,
                       SvcCorrEstimate(stale_view, samples, corr_q, {}));

  // Cantelli bound from the clean sample's value distribution.
  ExprPtr attr = q.attr ? q.attr->Clone() : nullptr;
  ExprPtr pred = q.predicate ? q.predicate->Clone() : nullptr;
  if (!attr) {
    return Status::InvalidArgument(
        std::string(AggFuncName(q.func)) +
        " requires an aggregation attribute; query: " + q.ToString());
  }
  SVC_RETURN_IF_ERROR(attr->Bind(samples.fresh.schema()));
  if (pred) SVC_RETURN_IF_ERROR(pred->Bind(samples.fresh.schema()));
  std::vector<double> values;
  for (const auto& r : samples.fresh.rows()) {
    if (pred && !pred->Eval(r).IsTrue()) continue;
    const Value v = attr->Eval(r);
    if (!v.is_null() && v.IsNumeric()) values.push_back(v.ToDouble());
  }
  MinMaxEstimate out;
  out.value = corr.value;
  out.sample_rows = values.size();
  if (values.size() >= 2) {
    double mean = 0;
    for (double x : values) mean += x;
    mean /= static_cast<double>(values.size());
    double var = 0;
    for (double x : values) var += (x - mean) * (x - mean);
    var /= static_cast<double>(values.size() - 1);
    const double eps = is_max ? out.value - mean : mean - out.value;
    if (eps > 0 && var > 0) {
      out.tail_probability = var / (var + eps * eps);
    } else if (var == 0) {
      out.tail_probability = 0.0;
    }
  }
  return out;
}

}  // namespace

Result<MinMaxEstimate> SvcMaxEstimate(const Table& stale_view,
                                      const CorrespondingSamples& samples,
                                      const AggregateQuery& q) {
  return Extremum(stale_view, samples, q, /*is_max=*/true);
}

Result<MinMaxEstimate> SvcMinEstimate(const Table& stale_view,
                                      const CorrespondingSamples& samples,
                                      const AggregateQuery& q) {
  return Extremum(stale_view, samples, q, /*is_max=*/false);
}

}  // namespace svc
