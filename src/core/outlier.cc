#include "core/outlier.h"

#include <algorithm>
#include <queue>

#include "relational/executor.h"

namespace svc {

namespace {

/// Replaces every scan of `relation` in the tree with a scan of
/// `replacement` under the same alias.
PlanPtr ReplaceScan(const PlanNode& plan, const std::string& relation,
                    const std::string& replacement) {
  if (plan.kind() == PlanKind::kScan && plan.table_name() == relation) {
    return PlanNode::Scan(replacement, plan.alias());
  }
  PlanPtr n = plan.Clone();
  for (size_t i = 0; i < n->children().size(); ++i) {
    n->set_child(i, ReplaceScan(*n->child(i), relation, replacement));
  }
  return n;
}

/// The paper's eligibility condition (§6.2) asks for the indexed relation
/// to sit below the sampling operator so outliers can be tested during the
/// sampling pass. Our keyed-cleaning materialization is exact for any key
/// set, so we relax eligibility to "the view reads the relation" — this
/// matches the paper's evaluation, where an index on l_extendedprice
/// serves views sampled on orders-side keys (V3, V10).
bool ViewReadsRelation(const MaterializedView& view,
                       const std::string& relation) {
  for (const auto& r : view.base_relations()) {
    if (r == relation) return true;
  }
  return false;
}

/// Copies `t` keeping only rows whose encoded `key_idx` projection is (not)
/// in `keys`.
Table FilterByKeys(const Table& t, const std::vector<size_t>& key_idx,
                   const KeySet& keys, bool keep_in) {
  Table out(t.schema());
  KeyBuffer kb;
  for (const auto& r : t.rows()) {
    const RowKeyRef key = kb.Encode(r, key_idx);
    const bool in = keys.Contains(key.bytes, key.hash);
    if (in == keep_in) out.AppendUnchecked(r);
  }
  return out;
}

}  // namespace

Result<OutlierIndex> OutlierIndex::Build(const Database& db,
                                         const DeltaSet& deltas,
                                         const OutlierIndexSpec& spec) {
  OutlierIndex index;
  index.spec_ = spec;
  SVC_ASSIGN_OR_RETURN(const Table* base, db.GetTable(spec.base_relation));
  index.base_schema_ = base->schema();
  SVC_ASSIGN_OR_RETURN(size_t attr_idx,
                       base->schema().Resolve(spec.attribute));

  // Threshold: explicit, or the k-th largest base value (top-k strategy).
  if (spec.threshold.has_value()) {
    index.threshold_ = *spec.threshold;
  } else {
    std::priority_queue<double, std::vector<double>, std::greater<double>>
        topk;
    for (const auto& r : base->rows()) {
      const Value& v = r[attr_idx];
      if (v.is_null() || !v.IsNumeric()) continue;
      const double x = v.ToDouble();
      if (topk.size() < spec.capacity) {
        topk.push(x);
      } else if (!topk.empty() && x > topk.top()) {
        topk.pop();
        topk.push(x);
      }
    }
    index.threshold_ = topk.empty() ? 0.0 : topk.top();
  }

  // Single pass over base rows and pending inserts, skipping rows pending
  // deletion; keep the top `capacity` records above the threshold.
  KeySet deleted;
  KeyBuffer kb;
  if (base->HasPrimaryKey()) {
    deltas.ForEachDelete(spec.base_relation, [&](const Row& r) {
      const RowKeyRef key = kb.Encode(r, base->pk_indices());
      deleted.Insert(key.bytes, key.hash);
    });
  }
  using Entry = std::pair<double, size_t>;  // attr value, slot in records_
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  auto consider = [&](const Row& r) {
    const Value& v = r[attr_idx];
    if (v.is_null() || !v.IsNumeric()) return;
    const double x = v.ToDouble();
    if (x < index.threshold_) return;
    if (heap.size() >= spec.capacity) {
      if (x <= heap.top().first) return;
      index.records_[heap.top().second] = r;
      heap.push({x, heap.top().second});
      heap.pop();
      return;
    }
    heap.push({x, index.records_.size()});
    index.records_.push_back(r);
  };
  for (const auto& r : base->rows()) {
    if (!deleted.empty() && base->HasPrimaryKey()) {
      const RowKeyRef key = kb.Encode(r, base->pk_indices());
      if (deleted.Contains(key.bytes, key.hash)) continue;
    }
    consider(r);
  }
  deltas.ForEachInsert(spec.base_relation,
                       [&](const Row& r) { consider(r); });
  return index;
}

Result<OutlierIndex::ViewOutliers> OutlierIndex::PushUpToView(
    const MaterializedView& view, const DeltaSet& deltas, Database* db,
    ExecOptions exec) const {
  ViewOutliers out;
  if (!ViewReadsRelation(view, spec_.base_relation)) {
    out.eligible = false;
    return out;
  }
  out.eligible = true;

  // Affected view keys: evaluate the view's pre-aggregation expression with
  // the indexed records substituted for the base relation (other relations
  // at their new state) and collect the sampling-key values.
  Table outlier_table(base_schema_);
  for (const auto& r : records_) outlier_table.AppendUnchecked(r);
  const std::string tmp_name = "__outlier_" + spec_.base_relation;
  db->PutTable(tmp_name, std::move(outlier_table));

  const PlanNode* key_source;
  PlanPtr source_holder;
  if (view.view_class() == ViewClass::kAggregate) {
    // The aggregate's child, from the augmented Project(Aggregate(child)).
    source_holder = view.augmented_plan()->child(0)->child(0);
  } else {
    source_holder = view.definition();
  }
  key_source = source_holder.get();

  PlanPtr restricted = ReplaceScan(*key_source, spec_.base_relation, tmp_name);
  restricted = RewriteToNewState(*restricted, deltas);
  std::vector<ProjectItem> items;
  for (const auto& k : view.sampling_key_def()) {
    items.push_back({"k" + std::to_string(items.size()), Expr::Col(k), ""});
  }
  PlanPtr key_plan = PlanNode::Project(std::move(restricted),
                                       std::move(items));
  SVC_ASSIGN_OR_RETURN(Table key_rows, ExecutePlan(*key_plan, *db, exec));
  (void)db->DropTable(tmp_name);

  auto keys = std::make_shared<KeySet>();
  std::vector<size_t> all(key_rows.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  keys->Reserve(key_rows.NumRows());
  KeyBuffer key_buf;
  for (const auto& r : key_rows.rows()) {
    const RowKeyRef key = key_buf.Encode(r, all);
    keys->Insert(key.bytes, key.hash);
  }
  out.keys = keys;

  SVC_ASSIGN_OR_RETURN(
      out.fresh,
      CleanViewByKeys(view, deltas, *db, keys, /*report=*/nullptr, exec));
  SVC_ASSIGN_OR_RETURN(out.stale,
                       StaleViewRowsByKeys(view, *db, keys, exec));
  return out;
}

namespace {

/// Removes outlier-key rows from both samples (outlier membership takes
/// precedence over sample membership, §6.2).
Result<CorrespondingSamples> RestrictSamples(
    const CorrespondingSamples& samples,
    const OutlierIndex::ViewOutliers& outliers) {
  CorrespondingSamples rest;
  rest.ratio = samples.ratio;
  rest.family = samples.family;
  rest.key_columns = samples.key_columns;
  SVC_ASSIGN_OR_RETURN(
      std::vector<size_t> fresh_keys,
      samples.fresh.schema().ResolveAll(samples.key_columns));
  SVC_ASSIGN_OR_RETURN(
      std::vector<size_t> stale_keys,
      samples.stale.schema().ResolveAll(samples.key_columns));
  rest.fresh = FilterByKeys(samples.fresh, fresh_keys, *outliers.keys,
                            /*keep_in=*/false);
  rest.stale = FilterByKeys(samples.stale, stale_keys, *outliers.keys,
                            /*keep_in=*/false);
  SVC_RETURN_IF_ERROR(
      rest.fresh.SetPrimaryKey(samples.fresh.PrimaryKeyNames()));
  SVC_RETURN_IF_ERROR(
      rest.stale.SetPrimaryKey(samples.stale.PrimaryKeyNames()));
  return rest;
}

bool OutlierMergeSupported(AggFunc f) {
  return f == AggFunc::kSum || f == AggFunc::kCount ||
         f == AggFunc::kCountStar || f == AggFunc::kAvg;
}

AggregateQuery SumPart(const AggregateQuery& q) {
  return AggregateQuery{AggFunc::kSum, q.attr ? q.attr->Clone() : nullptr,
                        q.predicate ? q.predicate->Clone() : nullptr};
}

AggregateQuery CntPart(const AggregateQuery& q) {
  return AggregateQuery{AggFunc::kCount, q.attr ? q.attr->Clone() : nullptr,
                        q.predicate ? q.predicate->Clone() : nullptr};
}

}  // namespace

Result<Estimate> SvcAqpEstimateWithOutliers(
    const CorrespondingSamples& samples,
    const OutlierIndex::ViewOutliers& outliers, const AggregateQuery& q,
    const EstimatorOptions& opts) {
  if (!outliers.eligible || !OutlierMergeSupported(q.func)) {
    return SvcAqpEstimate(samples, q, opts);
  }
  SVC_ASSIGN_OR_RETURN(CorrespondingSamples rest,
                       RestrictSamples(samples, outliers));
  if (q.func == AggFunc::kAvg) {
    // avg = (est_sum_rest + sum_out) / (est_cnt_rest + cnt_out).
    SVC_ASSIGN_OR_RETURN(Estimate sum_rest,
                         SvcAqpEstimate(rest, SumPart(q), opts));
    SVC_ASSIGN_OR_RETURN(Estimate cnt_rest,
                         SvcAqpEstimate(rest, CntPart(q), opts));
    SVC_ASSIGN_OR_RETURN(double sum_out,
                         ExactAggregate(outliers.fresh, SumPart(q)));
    SVC_ASSIGN_OR_RETURN(double cnt_out,
                         ExactAggregate(outliers.fresh, CntPart(q)));
    Estimate e;
    const double denom = cnt_rest.value + cnt_out;
    e.value = denom > 0 ? (sum_rest.value + sum_out) / denom : 0.0;
    // The deterministic part has zero variance; scale the restricted-mean
    // CI by the restricted weight.
    SVC_ASSIGN_OR_RETURN(Estimate avg_rest, SvcAqpEstimate(rest, q, opts));
    const double w = denom > 0 ? cnt_rest.value / denom : 0.0;
    e.ci_low = e.value - w * avg_rest.HalfWidth();
    e.ci_high = e.value + w * avg_rest.HalfWidth();
    e.confidence = opts.confidence;
    e.has_ci = avg_rest.has_ci;
    e.sample_rows = avg_rest.sample_rows;
    return e;
  }
  // sum / count: additive merge preserves unbiasedness.
  SVC_ASSIGN_OR_RETURN(Estimate rest_est, SvcAqpEstimate(rest, q, opts));
  SVC_ASSIGN_OR_RETURN(double out_exact, ExactAggregate(outliers.fresh, q));
  Estimate e = rest_est;
  e.value += out_exact;
  e.ci_low += out_exact;
  e.ci_high += out_exact;
  return e;
}

Result<Estimate> SvcCorrEstimateWithOutliers(
    const Table& stale_view, const CorrespondingSamples& samples,
    const OutlierIndex::ViewOutliers& outliers, const AggregateQuery& q,
    const EstimatorOptions& opts) {
  if (!outliers.eligible || !OutlierMergeSupported(q.func)) {
    return SvcCorrEstimate(stale_view, samples, q, opts);
  }
  SVC_ASSIGN_OR_RETURN(CorrespondingSamples rest,
                       RestrictSamples(samples, outliers));
  if (q.func == AggFunc::kAvg) {
    // Decompose into sum/count corrections, each outlier-merged.
    SVC_ASSIGN_OR_RETURN(
        Estimate sum_est,
        SvcCorrEstimateWithOutliers(stale_view, samples, outliers, SumPart(q),
                                    opts));
    SVC_ASSIGN_OR_RETURN(
        Estimate cnt_est,
        SvcCorrEstimateWithOutliers(stale_view, samples, outliers, CntPart(q),
                                    opts));
    Estimate e;
    e.value = cnt_est.value > 0 ? sum_est.value / cnt_est.value : 0.0;
    // CI via the restricted-pair avg correction (outlier part is exact).
    SVC_ASSIGN_OR_RETURN(Estimate rest_avg,
                         SvcCorrEstimate(stale_view, rest, q, opts));
    const double hw = rest_avg.HalfWidth();
    e.ci_low = e.value - hw;
    e.ci_high = e.value + hw;
    e.confidence = opts.confidence;
    e.has_ci = rest_avg.has_ci;
    e.sample_rows = rest_avg.sample_rows;
    return e;
  }
  // c = c_out (exact) + ĉ_rest (sampled over non-outlier keys).
  SVC_ASSIGN_OR_RETURN(double exact_stale, ExactAggregate(stale_view, q));
  SVC_ASSIGN_OR_RETURN(double out_fresh, ExactAggregate(outliers.fresh, q));
  SVC_ASSIGN_OR_RETURN(double out_stale, ExactAggregate(outliers.stale, q));
  const double c_out = out_fresh - out_stale;
  // Correction-only estimate from the restricted pairs: run the CORR
  // estimator against an empty "stale view" so the exact term is zero.
  Table empty_stale(stale_view.schema());
  SVC_ASSIGN_OR_RETURN(Estimate c_rest,
                       SvcCorrEstimate(empty_stale, rest, q, opts));
  Estimate e = c_rest;
  const double shift = exact_stale + c_out;
  e.value += shift;
  e.ci_low += shift;
  e.ci_high += shift;
  return e;
}

}  // namespace svc
