#include "core/svc.h"

#include "relational/executor.h"

namespace svc {

SvcEngine::SvcEngine(const SvcEngine& other)
    : db_(other.db_),
      views_(other.views_),
      pending_(other.pending_),
      exec_options_(other.exec_options_),
      maintenance_policy_(other.maintenance_policy_),
      sample_cache_enabled_(other.sample_cache_enabled_) {
  // The pending-queue copy sealed other's tails into fresh chunks; sync the
  // forked catalog so maintenance/cleaning plans built on this engine can
  // scan them (the sealed-chunk registrations share storage — no copies).
  (void)pending_.Register(&db_);
  // Carry the cached samples and counters into the fork behind a *new*
  // cache object: two forks may later reach equal delta versions with
  // different queued rows, so they must never validate against each
  // other's entries. The carried entries seed the fork's incremental
  // advance (the first query after an ingest commit cleans only the new
  // rows).
  sample_cache_->CopyFrom(*other.sample_cache_);
}

SvcEngine& SvcEngine::operator=(const SvcEngine& other) {
  if (this != &other) *this = SvcEngine(other);
  return *this;
}

Status SvcEngine::CreateView(const std::string& name, PlanPtr definition,
                             std::vector<std::string> sampling_key) {
  SVC_ASSIGN_OR_RETURN(
      MaterializedView view,
      MaterializedView::Create(name, std::move(definition), &db_,
                               std::move(sampling_key), exec_options_));
  views_.emplace(name, std::move(view));
  return Status::OK();
}

Result<const MaterializedView*> SvcEngine::GetView(
    const std::string& name) const {
  auto it = views_.find(name);
  if (it == views_.end()) {
    std::string msg = "no such view: " + name;
    if (views_.empty()) {
      msg += " (no views have been created)";
    } else {
      msg += " (known views:";
      for (const auto& [k, v] : views_) msg += " " + k;
      msg += ")";
    }
    return Status::UnknownRelation(std::move(msg));
  }
  return &it->second;
}

std::vector<std::string> SvcEngine::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [k, v] : views_) names.push_back(k);
  return names;
}

Status SvcEngine::InsertRecord(const std::string& relation, Row row) {
  SVC_RETURN_IF_ERROR(pending_.AddInsert(db_, relation, std::move(row)));
  return pending_.Register(&db_);
}

Status SvcEngine::DeleteRecord(const std::string& relation, Row row) {
  SVC_RETURN_IF_ERROR(pending_.AddDelete(db_, relation, std::move(row)));
  return pending_.Register(&db_);
}

Status SvcEngine::UpdateRecord(const std::string& relation, Row old_row,
                               Row new_row) {
  SVC_RETURN_IF_ERROR(pending_.AddUpdate(db_, relation, std::move(old_row),
                                         std::move(new_row)));
  return pending_.Register(&db_);
}

Status SvcEngine::IngestDeltas(DeltaSet&& deltas) {
  SVC_RETURN_IF_ERROR(pending_.Merge(std::move(deltas)));
  return pending_.Register(&db_);
}

Status SvcEngine::RepartitionRelation(
    const std::string& relation, const std::function<bool(const Row&)>& keep) {
  SVC_ASSIGN_OR_RETURN(const Table* base, db_.GetTable(relation));
  Table owned(base->schema());
  SVC_RETURN_IF_ERROR(owned.SetPrimaryKey(base->PrimaryKeyNames()));
  for (const Row& r : base->rows()) {
    if (keep(r)) SVC_RETURN_IF_ERROR(owned.Insert(r));
  }
  db_.PutTable(relation, std::move(owned));
  pending_.RetainRows(relation, keep);
  return pending_.Register(&db_);
}

Status SvcEngine::MaintainAll() {
  // Maintain a forked copy and swap it in only on success: a failure
  // anywhere (a maintenance plan, its execution, or the base-table commit)
  // leaves this engine — including the pending delta queue — untouched.
  // The fork is cheap: the database copy shares table storage copy-on-write
  // and only the tables maintenance touches are actually cloned.
  SvcEngine next(*this);
  SVC_RETURN_IF_ERROR(next.MaintainAllInPlace());
  *this = std::move(next);
  return Status::OK();
}

Status SvcEngine::MaintainAllInPlace() {
  for (auto& [name, view] : views_) {
    SVC_ASSIGN_OR_RETURN(MaintenancePlan plan,
                         BuildMaintenancePlan(view, pending_, db_));
    SVC_RETURN_IF_ERROR(ApplyMaintenance(view, plan, &db_, exec_options_));
  }
  return pending_.ApplyToBase(&db_);
}

Result<Table> SvcEngine::ComputeFreshView(const std::string& name) const {
  SVC_ASSIGN_OR_RETURN(const MaterializedView* view, GetView(name));
  SVC_ASSIGN_OR_RETURN(MaintenancePlan plan,
                       BuildMaintenancePlan(*view, pending_, db_));
  if (plan.kind == MaintenanceKind::kNoOp) {
    SVC_ASSIGN_OR_RETURN(const Table* t, db_.GetTable(name));
    return *t;
  }
  SVC_ASSIGN_OR_RETURN(Table fresh,
                       ExecutePlan(*plan.plan, db_, exec_options_));
  SVC_RETURN_IF_ERROR(fresh.SetPrimaryKey(view->stored_pk()));
  return fresh;
}

Result<CorrespondingSamples> SvcEngine::CleanSample(
    const std::string& name, const CleanOptions& opts,
    PushdownReport* report) const {
  SVC_ASSIGN_OR_RETURN(const MaterializedView* view, GetView(name));
  return CleanViewSample(*view, pending_, db_, opts, report);
}

Result<std::shared_ptr<const CorrespondingSamples>>
SvcEngine::CleanSampleCached(const std::string& name, const CleanOptions& opts,
                             CacheOutcome* outcome) const {
  SVC_ASSIGN_OR_RETURN(const MaterializedView* view, GetView(name));
  if (outcome != nullptr) *outcome = CacheOutcome::kFullClean;
  if (!sample_cache_enabled_) {
    SVC_ASSIGN_OR_RETURN(CorrespondingSamples cold,
                         CleanViewSample(*view, pending_, db_, opts));
    return std::make_shared<const CorrespondingSamples>(std::move(cold));
  }
  auto slot = sample_cache_->SlotFor({name, opts.ratio, opts.family});
  // Serialize population per key: concurrent snapshot readers racing on
  // the same key run exactly one cleaning pass; the rest hit the entry it
  // installed.
  std::lock_guard<std::mutex> lock(slot->mu);
  SampleCache::Entry& entry = slot->entry;
  const std::shared_ptr<const Table> current = db_.GetTableShared(name);
  const bool same_view =
      entry.samples != nullptr && entry.view_table == current;
  if (same_view && entry.delta_version == pending_.version()) {
    sample_cache_->RecordHit(name);
    if (outcome != nullptr) *outcome = CacheOutcome::kHit;
    return entry.samples;
  }
  std::shared_ptr<const CorrespondingSamples> samples;
  if (same_view) {
    // The view table is untouched but the queue moved: advance the cached
    // sample by cleaning only the newly arrived rows, when provable.
    SVC_ASSIGN_OR_RETURN(
        samples, AdvanceCleanedSamples(*view, entry.samples, entry.watermark,
                                       pending_, db_, opts));
  }
  if (samples != nullptr) {
    sample_cache_->RecordAdvance(name);
    if (outcome != nullptr) *outcome = CacheOutcome::kAdvance;
  } else {
    SVC_ASSIGN_OR_RETURN(CorrespondingSamples cold,
                         CleanViewSample(*view, pending_, db_, opts));
    samples = std::make_shared<const CorrespondingSamples>(std::move(cold));
    sample_cache_->RecordFullClean(name);
  }
  entry.samples = samples;
  entry.view_table = current;
  entry.delta_version = pending_.version();
  entry.watermark = pending_.Watermark();
  return samples;
}

Result<std::shared_ptr<const CorrespondingSamples>> SvcEngine::PrepareSvcQuery(
    const std::string& name, const AggregateQuery& q,
    const SvcQueryOptions& opts, EstimatorMode* mode_used) const {
  CleanOptions clean_opts{opts.ratio, opts.family, opts.exec};
  SVC_ASSIGN_OR_RETURN(std::shared_ptr<const CorrespondingSamples> samples,
                       CleanSampleCached(name, clean_opts));
  *mode_used = opts.mode;
  if (opts.auto_mode) {
    SVC_ASSIGN_OR_RETURN(PolicyDecision d, ChooseEstimator(*samples, q));
    *mode_used = d.mode;
  }
  return samples;
}

Result<SvcAnswer> SvcEngine::Query(const std::string& name,
                                   const AggregateQuery& q,
                                   const SvcQueryOptions& opts) const {
  SvcAnswer answer;
  SVC_ASSIGN_OR_RETURN(std::shared_ptr<const CorrespondingSamples> samples,
                       PrepareSvcQuery(name, q, opts, &answer.mode_used));
  if (answer.mode_used == EstimatorMode::kAqp) {
    SVC_ASSIGN_OR_RETURN(answer.estimate,
                         SvcAqpEstimate(*samples, q, opts.estimator));
  } else {
    SVC_ASSIGN_OR_RETURN(const Table* stale, db_.GetTable(name));
    SVC_ASSIGN_OR_RETURN(answer.estimate,
                         SvcCorrEstimate(*stale, *samples, q, opts.estimator));
  }
  return answer;
}

Result<SvcGroupedAnswer> SvcEngine::QueryGrouped(
    const std::string& name, const std::vector<std::string>& group_columns,
    const AggregateQuery& q, const SvcQueryOptions& opts) const {
  SvcGroupedAnswer answer;
  SVC_ASSIGN_OR_RETURN(std::shared_ptr<const CorrespondingSamples> samples,
                       PrepareSvcQuery(name, q, opts, &answer.mode_used));
  if (answer.mode_used == EstimatorMode::kAqp) {
    SVC_ASSIGN_OR_RETURN(
        answer.result,
        SvcAqpEstimateGrouped(*samples, group_columns, q, opts.estimator));
  } else {
    SVC_ASSIGN_OR_RETURN(const Table* stale, db_.GetTable(name));
    SVC_ASSIGN_OR_RETURN(
        answer.result, SvcCorrEstimateGrouped(*stale, *samples, group_columns,
                                              q, opts.estimator));
  }
  return answer;
}

Result<double> SvcEngine::QueryStale(const std::string& name,
                                     const AggregateQuery& q) const {
  SVC_ASSIGN_OR_RETURN(const Table* stale, db_.GetTable(name));
  return ExactAggregate(*stale, q);
}

}  // namespace svc
