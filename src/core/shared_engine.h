#ifndef SVC_CORE_SHARED_ENGINE_H_
#define SVC_CORE_SHARED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/maintenance_policy.h"
#include "core/svc.h"

namespace svc {

/// One published, immutable version of the engine state. Readers query
/// `engine` freely (every SvcEngine read entry point is const); the
/// snapshot stays alive — and bit-stable — for as long as any reader holds
/// the shared_ptr, no matter how many commits happen behind it.
struct EngineSnapshot {
  /// Monotonic version number: 0 for the initial state, +1 per commit.
  uint64_t epoch = 0;
  SvcEngine engine;

  explicit EngineSnapshot(SvcEngine e) : engine(std::move(e)) {}
  EngineSnapshot(uint64_t ep, SvcEngine e) : epoch(ep), engine(std::move(e)) {}
};

using SnapshotPtr = std::shared_ptr<const EngineSnapshot>;

/// Background maintenance-scheduler counters (SHOW MAINTENANCE / tests).
struct MaintenanceStats {
  uint64_t ticks = 0;      ///< scheduler evaluations under mode=auto
  uint64_t warms = 0;      ///< stale views scored-and-warmed, not refreshed
  uint64_t refreshes = 0;  ///< policy-triggered maintenance commits
};

/// A multi-session engine: one SvcEngine's worth of state shared by many
/// concurrent SqlSessions (or direct callers) with snapshot isolation.
///
/// Concurrency model (docs/ARCHITECTURE.md "Shared engine & snapshots"):
///
///   * Readers call Snapshot() and run any number of queries against the
///     returned immutable version. They never take the writer lock, never
///     block on maintenance, and never observe a half-applied commit.
///   * Writers call Commit(fn) (or a convenience wrapper). Commits are
///     serialized by a writer mutex; each one forks the head state
///     (copy-on-write, so the fork shares all untouched table storage),
///     applies `fn` to the fork, and publishes it as epoch+1 — but only if
///     `fn` succeeds. A failed commit publishes nothing: the head, and
///     every queued delta in it, is exactly as before.
///
/// The epoch sequence is deterministic given the commit sequence, which is
/// what the differential and stress tests key on: the answer to any query
/// is a pure function of (snapshot epoch, query, options).
class SharedEngine {
 public:
  /// Starts at epoch 0 over the given base relations.
  explicit SharedEngine(Database db);
  /// Starts from a fully built engine (views, pending deltas) at
  /// `start_epoch` — 0 for a fresh engine, or the recovered head epoch
  /// when a DurableEngine rebuilds state from checkpoint + WAL (epoch
  /// numbering must continue where the crashed process stopped, because
  /// WAL records are keyed by the epoch they published).
  explicit SharedEngine(SvcEngine engine, uint64_t start_epoch = 0);

  SharedEngine(const SharedEngine&) = delete;
  SharedEngine& operator=(const SharedEngine&) = delete;

  /// Joins the maintenance thread (StopMaintenance) before members die.
  ~SharedEngine();

  /// The current head version. Cheap (one mutex-guarded shared_ptr copy);
  /// safe to call from any thread at any time.
  SnapshotPtr Snapshot() const;

  /// Epoch of the current head.
  uint64_t epoch() const { return Snapshot()->epoch; }

  /// Runs `fn` on a private fork of the head state, serialized against
  /// every other writer. If `fn` returns OK the fork is published
  /// atomically as the next epoch; otherwise nothing is published and the
  /// error is returned. `fn` must not retain the SvcEngine* beyond the
  /// call.
  Status Commit(const std::function<Status(SvcEngine*)>& fn);

  /// Commit with a durability hook: after `fn` succeeds on the fork but
  /// *before* the fork is published, `pre_publish` runs (still under the
  /// writer lock) with the epoch the fork is about to become. The durable
  /// engine appends the WAL record there — write-ahead ordering: a commit
  /// is published only once its log record is on disk, so a crash can lose
  /// an unpublished record (harmless: it was never observable) but never
  /// publish an unlogged epoch. If `pre_publish` fails, nothing is
  /// published and the error is returned.
  Status Commit(const std::function<Status(SvcEngine*)>& fn,
                const std::function<Status(uint64_t next_epoch)>& pre_publish);

  // ---- Convenience writers (each is one Commit) ---------------------------
  Status CreateTable(const std::string& name, Table table);
  Status CreateView(const std::string& name, PlanPtr definition,
                    std::vector<std::string> sampling_key = {});
  Status InsertRecord(const std::string& relation, Row row);
  Status DeleteRecord(const std::string& relation, Row row);
  /// Ingests a whole delta batch as one commit (one published version).
  Status IngestDeltas(DeltaSet&& deltas);
  /// Maintenance commit: MaintainAll on the fork, published atomically.
  /// Readers holding pre-refresh snapshots keep the stale view and its
  /// pending deltas; new snapshots see the fresh view and an empty queue.
  Status Refresh();

  // ---- Maintenance policy (docs/ARCHITECTURE.md "Maintenance policy") -----
  /// Publishes `cfg` as the engine's policy (one commit; snapshots carry
  /// it, so the scheduler reads the policy the same way readers read data).
  Status SetMaintenancePolicy(const MaintenancePolicyConfig& cfg);
  /// The head snapshot's policy.
  MaintenancePolicyConfig maintenance_policy() const {
    return Snapshot()->engine.maintenance_policy();
  }

  /// Starts the background scheduler thread (idempotent — a running thread
  /// is left alone). Each tick it reads the head policy; under mode=off it
  /// just sleeps, under mode=auto it runs MaintenanceTick. `refresh_fn`,
  /// when set, replaces this->Refresh() as the maintenance commit — the
  /// durable engine passes its WAL-logged Refresh so policy refreshes
  /// survive recovery. Only honored when the thread is not yet running.
  void StartMaintenance(std::function<Status()> refresh_fn = nullptr);

  /// Stops and joins the scheduler thread. Idempotent; safe when never
  /// started. After it returns no policy refresh can be in flight — tools
  /// call this before their clean-exit checkpoint.
  void StopMaintenance();

  /// One deterministic scheduler evaluation, callable without the thread
  /// (tests drive the policy tick-by-tick): scores the head snapshot's
  /// views `elapsed_ms` after the last policy refresh, warms stale views
  /// (scoring runs the probe through the serving cache), and runs one
  /// maintenance commit when any view crosses the threshold. Returns true
  /// iff it refreshed. No-op (false) under mode=off.
  Result<bool> MaintenanceTick(uint64_t elapsed_ms);

  MaintenanceStats maintenance_stats() const;

 private:
  void MaintenanceLoop();

  /// Serializes writers (fork → mutate → publish).
  std::mutex writer_mu_;
  /// Guards loads/stores of head_ (readers and the publish step).
  mutable std::mutex head_mu_;
  SnapshotPtr head_;

  /// Maintenance scheduler state. maint_mu_ guards the thread handle and
  /// stop flag; the counters are atomics so MaintenanceTick (which runs
  /// commits — no lock held) can bump them from any thread.
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  std::thread maint_thread_;
  bool maint_stop_ = false;
  std::function<Status()> maint_refresh_;
  std::atomic<uint64_t> maint_ticks_{0};
  std::atomic<uint64_t> maint_warms_{0};
  std::atomic<uint64_t> maint_refreshes_{0};
};

}  // namespace svc

#endif  // SVC_CORE_SHARED_ENGINE_H_
