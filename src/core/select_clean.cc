#include "core/select_clean.h"

#include <cmath>

#include "common/flat_map.h"
#include "relational/row_key.h"

namespace svc {

namespace {

/// Horvitz–Thompson count estimate from `hits` sampled 0/1 terms.
Estimate HtCount(size_t hits, double m, const EstimatorOptions& opts) {
  Estimate e;
  e.value = static_cast<double>(hits) / m;
  const double var = (1.0 - m) / (m * m) * static_cast<double>(hits);
  const double hw = NormalQuantile(opts.confidence) * std::sqrt(var);
  e.ci_low = e.value - hw;
  e.ci_high = e.value + hw;
  e.confidence = opts.confidence;
  e.has_ci = true;
  e.sample_rows = hits;
  return e;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

Result<CleanedSelect> SvcCleanSelect(const Table& stale_view,
                                     const CorrespondingSamples& samples,
                                     const ExprPtr& predicate,
                                     const EstimatorOptions& opts) {
  if (!stale_view.HasPrimaryKey()) {
    return Status::InvalidArgument("select cleaning requires a keyed view");
  }
  // One clone + bind serves all three scans when the schemas agree — and
  // they do whenever the samples carry the view's stored schema, which is
  // how the cleaner materializes them. Only a schema that actually
  // diverges pays for its own binding; no predicate, no binds at all.
  ExprPtr stale_pred, fresh_pred, stale_sample_pred;
  if (predicate) {
    stale_pred = predicate->Clone();
    SVC_RETURN_IF_ERROR(stale_pred->Bind(stale_view.schema()));
    auto bind_for = [&](const Schema& schema) -> Result<ExprPtr> {
      if (schema == stale_view.schema()) return stale_pred;
      ExprPtr bound = predicate->Clone();
      SVC_RETURN_IF_ERROR(bound->Bind(schema));
      return bound;
    };
    SVC_ASSIGN_OR_RETURN(fresh_pred, bind_for(samples.fresh.schema()));
    SVC_ASSIGN_OR_RETURN(stale_sample_pred,
                         bind_for(samples.stale.schema()));
  }

  // 1. Run the selection on the stale view.
  FlatKeyMap<Row> result;  // encoded key -> row
  KeyBuffer kb;
  for (size_t i = 0; i < stale_view.NumRows(); ++i) {
    const Row& r = stale_view.row(i);
    if (!stale_pred || stale_pred->Eval(r).IsTrue()) {
      const RowKeyRef key = kb.Encode(r, stale_view.pk_indices());
      result.Emplace(key.bytes, key.hash, r);
    }
  }

  // 2. Walk the clean sample: overwrite updated rows, add new rows.
  size_t updated = 0, added = 0, deleted = 0;
  for (size_t i = 0; i < samples.fresh.NumRows(); ++i) {
    const Row& r = samples.fresh.row(i);
    if (fresh_pred && !fresh_pred->Eval(r).IsTrue()) continue;
    const RowKeyRef key = kb.Encode(r, samples.fresh.pk_indices());
    Row* existing = result.Find(key.bytes, key.hash);
    if (existing == nullptr) {
      // Entering the selection (missing row, or newly satisfying rows).
      result.Emplace(key.bytes, key.hash, r);
      ++added;
    } else if (!RowsEqual(*existing, r)) {
      *existing = r;
      ++updated;
    }
  }
  // 3. Walk the dirty sample: keys that satisfied the predicate before but
  // are gone (or no longer satisfy) leave the selection.
  for (size_t i = 0; i < samples.stale.NumRows(); ++i) {
    const Row& r = samples.stale.row(i);
    if (stale_sample_pred && !stale_sample_pred->Eval(r).IsTrue()) continue;
    const RowKeyRef key = kb.Encode(r, samples.stale.pk_indices());
    auto f = samples.fresh.FindByKeyRef(key);
    bool still_in = false;
    if (f.ok()) {
      const Row& fr = samples.fresh.row(*f);
      still_in = !fresh_pred || fresh_pred->Eval(fr).IsTrue();
    }
    if (!still_in && result.Erase(key.bytes, key.hash)) {
      ++deleted;
    }
  }

  CleanedSelect out;
  Table cleaned(stale_view.schema());
  result.ForEachMutable([&cleaned](std::string_view, Row& row) {
    cleaned.AppendUnchecked(std::move(row));
  });
  SVC_RETURN_IF_ERROR(cleaned.SetPrimaryKey(stale_view.PrimaryKeyNames()));
  out.rows = std::move(cleaned);
  out.updated_rows = HtCount(updated, samples.ratio, opts);
  out.added_rows = HtCount(added, samples.ratio, opts);
  out.deleted_rows = HtCount(deleted, samples.ratio, opts);
  return out;
}

}  // namespace svc
