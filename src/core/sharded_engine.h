#ifndef SVC_CORE_SHARDED_ENGINE_H_
#define SVC_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/shared_engine.h"
#include "core/svc.h"

namespace svc {

/// How the sharded engine places one base relation.
struct ShardRouting {
  /// Column positions (in the relation's schema) the placement hashes on.
  /// Empty = the relation is replicated (full copy on every shard).
  std::vector<size_t> columns;
  bool partitioned() const { return !columns.empty(); }
};

/// The placement catalog published with every sharded snapshot: which
/// relations are hash-partitioned (and by what), which views fan out, and
/// which views pin a relation to stay replicated. Immutable once
/// published; DDL builds a new one.
struct ShardMeta {
  /// Base relation -> placement. Every known relation has an entry.
  std::map<std::string, ShardRouting> routing;
  /// Relation -> views that require it replicated. A pinned relation can
  /// never be re-partitioned (the views' per-shard state would break).
  std::map<std::string, std::set<std::string>> replicated_pins;
  /// View -> true when the view is partitioned-class (its per-shard
  /// contents partition the global view; queries fan out and merge).
  /// False = replicated-class (every shard holds the identical full view;
  /// reads are served from shard 0).
  std::map<std::string, bool> view_partitioned;

  bool IsPartitionedRelation(const std::string& relation) const {
    auto it = routing.find(relation);
    return it != routing.end() && it->second.partitioned();
  }
  bool IsPartitionedView(const std::string& view) const {
    auto it = view_partitioned.find(view);
    return it != view_partitioned.end() && it->second;
  }
};

/// One consistent cross-shard cut: per-shard engine snapshots taken
/// together with the placement catalog that describes them. Readers hold
/// the pointer and query freely; a concurrent statement publishes a whole
/// new cut, so a reader never sees shard A after a statement and shard B
/// before it.
struct ShardedSnapshot {
  /// Monotonic statement counter: +1 per published statement.
  uint64_t version = 0;
  /// One snapshot per shard, in shard-index order.
  std::vector<SnapshotPtr> shards;
  std::shared_ptr<const ShardMeta> meta;
};

using ShardedSnapshotPtr = std::shared_ptr<const ShardedSnapshot>;

/// N `SharedEngine` shards behind one engine facade: base tables and their
/// pending `DeltaSet` queues are hash-partitioned by each view's sampling
/// key (`KeyHash` over the encoded key bytes — the same FNV-1a/splitmix64
/// hash the executor's `KeyBuffer` uses), so a sampling key's rows — and
/// therefore its η-sample membership — live on exactly one shard. SVC
/// queries fan out to the per-shard snapshots on the shared `ThreadPool`,
/// clean each shard's sample locally (each shard has its own
/// `SampleCache`), and merge the per-shard corresponding samples in a
/// canonical order (core/estimator_merge.h) before running the stock
/// estimators once at the coordinator — which is what makes every answer
/// bit-identical at every shard count.
///
/// Placement is derived, not declared: relations start replicated; CREATE
/// VIEW pushes the view's sampling key down its plan (the same Theorem-1
/// rewriter η uses) and partitions exactly the relations the key reaches
/// as a scan-level filter, re-routing their queued deltas. Relations the
/// key cannot reach (e.g. the unfiltered side of a one-sided join push)
/// stay replicated and are pinned. Views whose key pushes nowhere fall
/// back to replicated-class: every shard materializes the identical full
/// view and reads come from shard 0. Conflicting demands (one view needs
/// R partitioned, another needs it replicated — or partitioned by a
/// different key) fail CREATE VIEW with NotSupported naming the conflict.
///
/// Concurrency: statements (writes + DDL) are serialized by one statement
/// mutex and commit per shard through each shard's `SharedEngine`;
/// `Refresh` commits the shards' maintenance in parallel — one shard's
/// maintenance never stalls another shard's commit, and readers are never
/// stalled at all: they read the last published cut until the whole
/// statement lands, then the new cut is swapped in atomically (O(shards)
/// pointer copies).
class ShardedEngine {
 public:
  /// Starts with every relation of `db` replicated across `num_shards`
  /// shards (clamped to >= 1).
  ShardedEngine(Database db, int num_shards);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Joins the maintenance thread (StopMaintenance) before shards die.
  ~ShardedEngine();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The current published cut. Cheap; safe from any thread.
  ShardedSnapshotPtr Snapshot() const;
  uint64_t version() const { return Snapshot()->version; }

  // ---- Statements (serialized; each publishes one new cut) ----------------
  /// Broadcasts the table to every shard (relations start replicated).
  Status CreateTable(const std::string& name, Table table);

  /// Derives the view's placement (see class comment), re-partitions any
  /// newly partitioned relations, and creates the view on every shard.
  Status CreateView(const std::string& name, PlanPtr definition,
                    std::vector<std::string> sampling_key = {});

  /// Queues inserts, routed to the owning shard (replicated relations
  /// broadcast to every shard). One commit per involved shard; the cut is
  /// published once all land. Rows must already be validated (the SQL
  /// layer checks keys against a snapshot first) — a per-shard failure
  /// aborts with the remaining shards unchanged.
  Status InsertRows(const std::string& relation, std::vector<Row> rows);
  Status InsertRecord(const std::string& relation, Row row);

  /// Queues deletes of the given full rows (routed like InsertRows).
  Status DeleteRows(const std::string& relation, std::vector<Row> rows);

  /// Maintenance: every shard runs MaintainAll on its own fork, committed
  /// per shard in parallel. `committed_inserts`/`committed_deletes`
  /// (optional) receive the logical row counts that were committed
  /// (replicated relations count once, not once per shard).
  Status Refresh(size_t* committed_inserts = nullptr,
                 size_t* committed_deletes = nullptr);

  // ---- Reads (against one snapshot cut) -----------------------------------
  /// SVC estimate on the named view. Partitioned-class views fan out,
  /// merge samples, and estimate at the coordinator; replicated-class
  /// views answer from shard 0 (identical state everywhere).
  Result<SvcAnswer> Query(const ShardedSnapshot& snap, const std::string& view,
                          const AggregateQuery& q,
                          const SvcQueryOptions& opts = {}) const;

  /// Per-group variant of Query.
  Result<SvcGroupedAnswer> QueryGrouped(
      const ShardedSnapshot& snap, const std::string& view,
      const std::vector<std::string>& group_columns, const AggregateQuery& q,
      const SvcQueryOptions& opts = {}) const;

  /// The full logical contents of table `name` under `snap`: partitioned
  /// relations/views merge their shard parts in canonical order
  /// (memoized per shard-part identity, so repeated gathers between
  /// maintenance commits are free); everything else is shard 0's table.
  Result<std::shared_ptr<const Table>> GatherTable(
      const ShardedSnapshot& snap, const std::string& name) const;

  /// A scratch catalog holding GatherTable(name) for every `name`, against
  /// which coordinator-side plans (plain SELECT) execute.
  Result<Database> GatherDatabase(const ShardedSnapshot& snap,
                                  const std::vector<std::string>& names) const;

  /// Logical pending-delta row counts under `snap` (replicated relations
  /// count shard 0 only; partitioned relations sum their shards).
  void PendingCounts(const ShardedSnapshot& snap, size_t* inserts,
                     size_t* deletes) const;

  /// Logical pending rows for one relation under `snap`.
  size_t PendingRowsFor(const ShardedSnapshot& snap,
                        const std::string& relation) const;

  /// Enables/disables every shard's sample cache (new statements fork from
  /// the current heads, so this takes effect at the next commit; call it
  /// before serving).
  void set_sample_cache_enabled(bool enabled);

  // ---- Maintenance policy (docs/ARCHITECTURE.md "Maintenance policy") -----
  /// Publishes `cfg` on every shard as one statement (every shard's policy
  /// is always identical — the scheduler reads shard 0's).
  Status SetMaintenancePolicy(const MaintenancePolicyConfig& cfg);
  MaintenancePolicyConfig maintenance_policy() const {
    return Snapshot()->shards[0]->engine.maintenance_policy();
  }

  /// Starts/stops the coordinator's scheduler thread — one thread for the
  /// whole engine, fanning each policy refresh out per shard through
  /// Refresh(). Same contract as SharedEngine's pair: idempotent, and after
  /// StopMaintenance returns no policy refresh is in flight.
  void StartMaintenance();
  void StopMaintenance();

  /// One deterministic scheduler evaluation against the current cut:
  /// scores with logical pending counts and coordinator-merged probes (so
  /// scores are bit-identical at any shard count) and runs one parallel
  /// Refresh when any view crosses the threshold. Returns true iff it
  /// refreshed; no-op (false) under mode=off.
  Result<bool> MaintenanceTick(uint64_t elapsed_ms);

  MaintenanceStats maintenance_stats() const;

  /// Coordinator-side view scores under `snap` (SHOW MAINTENANCE and the
  /// tick): pending rows are logical (PendingRowsFor), view rows come from
  /// the gathered table, and the error probe is a coordinator-merged
  /// auto-mode COUNT(*) — all shard-count-invariant.
  Result<std::vector<ViewMaintenanceScore>> ScoreViews(
      const ShardedSnapshot& snap, const MaintenancePolicyConfig& cfg,
      uint64_t elapsed_ms) const;

  /// Logical per-view serving counters: partitioned-class views count one
  /// event per coordinator query (a fan-out is one logical serving event,
  /// however many shards it touched); replicated-class views read shard
  /// 0's counters (their queries only ever touch shard 0's cache). The
  /// numbers are shard-count-invariant.
  std::map<std::string, ViewCacheStats> CoordinatorCacheStats(
      const ShardedSnapshot& snap) const;

  /// Runs `fn` with the statement lock held, so validation done inside
  /// `fn` against `Snapshot()` cannot race another session's write landing
  /// in between (the SQL layer checks INSERT keys against a snapshot and
  /// then commits — that read-validate-write must be one critical
  /// section). `fn` may call any statement method on this engine (the
  /// lock is recursive); reads never take this lock.
  Status WithStatementLock(const std::function<Status()>& fn);

 private:
  void MaintenanceLoop();

  /// Folds per-shard cache outcomes into one logical serving event for
  /// `view` (any full clean dominates, else any advance, else a hit) and
  /// records it in fanout_stats_.
  void RecordFanOutOutcome(const std::string& view,
                           const std::vector<CacheOutcome>& outcomes) const;

  /// Re-reads every shard's head and publishes them as one cut with
  /// `meta`. Caller holds stmt_mu_.
  void PublishLocked(std::shared_ptr<const ShardMeta> meta);

  /// The shard owning the encoded routing-key bytes.
  size_t OwnerShard(const std::string& key_bytes) const;

  /// Derives the placement a new view demands: which relations it needs
  /// partitioned (and by which columns) and which it needs replicated.
  struct ViewPlacement {
    bool partitioned_class = false;
    std::map<std::string, std::vector<size_t>> partition_by;
    std::set<std::string> need_replicated;
  };
  Result<ViewPlacement> DerivePlacement(const std::string& name,
                                        const PlanPtr& definition,
                                        const std::vector<std::string>& key,
                                        const ShardedSnapshot& snap) const;

  /// Merged per-shard samples for a partitioned view (fan-out + canonical
  /// merge), plus the resolved estimator mode.
  Result<std::shared_ptr<const CorrespondingSamples>> FanOutSamples(
      const ShardedSnapshot& snap, const std::string& view,
      const AggregateQuery& q, const SvcQueryOptions& opts,
      EstimatorMode* mode_used) const;

  std::vector<std::unique_ptr<SharedEngine>> shards_;

  /// Serializes statements (writes + DDL). Recursive so WithStatementLock
  /// callers can invoke statement methods while holding it.
  std::recursive_mutex stmt_mu_;
  /// Guards head_ loads/stores.
  mutable std::mutex head_mu_;
  ShardedSnapshotPtr head_;

  /// Memoized cross-shard table merges, validated by part identity.
  struct GatherEntry {
    std::vector<std::shared_ptr<const Table>> parts;
    std::shared_ptr<const Table> merged;
  };
  mutable std::mutex gather_mu_;
  mutable std::map<std::string, GatherEntry> gather_cache_;

  /// Logical serving counters for partitioned-class views (one event per
  /// coordinator fan-out; see CoordinatorCacheStats).
  mutable std::mutex fanout_stats_mu_;
  mutable std::map<std::string, ViewCacheStats> fanout_stats_;

  /// Coordinator maintenance-scheduler state (mirrors SharedEngine's).
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  std::thread maint_thread_;
  bool maint_stop_ = false;
  std::atomic<uint64_t> maint_ticks_{0};
  std::atomic<uint64_t> maint_warms_{0};
  std::atomic<uint64_t> maint_refreshes_{0};
};

}  // namespace svc

#endif  // SVC_CORE_SHARDED_ENGINE_H_
