#include "core/sharded_engine.h"

#include <chrono>
#include <utility>

#include "common/flat_map.h"
#include "common/thread_pool.h"
#include "core/estimator_merge.h"
#include "relational/algebra.h"
#include "relational/value.h"
#include "sample/pushdown.h"
#include "view/view.h"

namespace svc {

namespace {

/// Number of scan nodes per base relation in `plan`. Placement needs the
/// count (not just the set): a relation is partitionable only when *every*
/// one of its scans received the pushed-down sampling filter.
void CountScans(const PlanNode& plan, std::map<std::string, int>* counts) {
  if (plan.kind() == PlanKind::kScan) {
    ++(*counts)[plan.table_name()];
    return;
  }
  for (const auto& child : plan.children()) CountScans(*child, counts);
}

}  // namespace

ShardedEngine::ShardedEngine(Database db, int num_shards) {
  const int n = num_shards < 1 ? 1 : num_shards;
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<SharedEngine>(Database(db)));
  }
  auto meta = std::make_shared<ShardMeta>();
  for (const std::string& name : db.TableNames()) {
    meta->routing[name] = ShardRouting{};
  }
  auto head = std::make_shared<ShardedSnapshot>();
  head->meta = std::move(meta);
  head->shards.reserve(shards_.size());
  for (auto& shard : shards_) head->shards.push_back(shard->Snapshot());
  head_ = std::move(head);
}

ShardedEngine::~ShardedEngine() { StopMaintenance(); }

ShardedSnapshotPtr ShardedEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return head_;
}

void ShardedEngine::PublishLocked(std::shared_ptr<const ShardMeta> meta) {
  auto next = std::make_shared<ShardedSnapshot>();
  next->meta = std::move(meta);
  next->shards.reserve(shards_.size());
  for (auto& shard : shards_) next->shards.push_back(shard->Snapshot());
  std::lock_guard<std::mutex> lock(head_mu_);
  next->version = head_->version + 1;
  head_ = std::move(next);
}

size_t ShardedEngine::OwnerShard(const std::string& key_bytes) const {
  return static_cast<size_t>(KeyHash(key_bytes) % shards_.size());
}

Status ShardedEngine::CreateTable(const std::string& name, Table table) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  auto meta = std::make_shared<ShardMeta>(*Snapshot()->meta);
  for (auto& shard : shards_) {
    SVC_RETURN_IF_ERROR(shard->CreateTable(name, Table(table)));
  }
  meta->routing[name] = ShardRouting{};
  PublishLocked(std::move(meta));
  return Status::OK();
}

Result<ShardedEngine::ViewPlacement> ShardedEngine::DerivePlacement(
    const std::string& name, const PlanPtr& definition,
    const std::vector<std::string>& key, const ShardedSnapshot& snap) const {
  // Probe against a throwaway copy of shard 0's catalog: validates the
  // definition and yields the stored schema, sampling key, and augmented
  // plan. The probe's materialized contents (built on shard 0's partial
  // data) are discarded — only the plan analysis is kept.
  Database probe = snap.shards[0]->engine.db();
  SVC_ASSIGN_OR_RETURN(MaterializedView view,
                       MaterializedView::Create(name, definition, &probe, key));

  std::map<std::string, int> scan_counts;
  CountScans(*view.augmented_plan(), &scan_counts);

  // Run the Theorem-1 rewriter with a recording factory: wherever the
  // sampling key would land as a scan-level filter, record (relation,
  // resolved key columns) and leave the plan unchanged. The rewriter also
  // hands blocked (non-scan) stop sites to the factory — those are not
  // routing sites and are skipped; report.blocked counts them.
  std::map<std::string, std::vector<std::vector<size_t>>> sites;
  bool record_failed = false;
  FilterFactory factory =
      [&](PlanPtr child, const std::vector<std::string>& attrs) -> PlanPtr {
    if (child != nullptr && child->kind() == PlanKind::kScan) {
      Result<Schema> schema = ComputeSchema(*child, probe);
      if (!schema.ok()) {
        record_failed = true;
        return child;
      }
      Result<std::vector<size_t>> idx = schema->ResolveAll(attrs);
      if (!idx.ok()) {
        record_failed = true;
        return child;
      }
      sites[child->table_name()].push_back(std::move(idx).value());
    }
    return child;
  };
  PushdownReport report;
  Result<PlanPtr> pushed = PushDownFilter(*view.augmented_plan(),
                                          view.sampling_key(), factory, probe,
                                          &report);

  ViewPlacement placement;
  bool partitionable = pushed.ok() && !record_failed && report.blocked == 0;
  if (partitionable) {
    for (const auto& [rel, count] : scan_counts) {
      auto sit = sites.find(rel);
      if (sit == sites.end()) {
        // The key never reaches this relation (e.g. the unfiltered side
        // of a one-sided join push): every shard needs all of it.
        placement.need_replicated.insert(rel);
        continue;
      }
      const std::vector<std::vector<size_t>>& cols_list = sit->second;
      bool consistent = static_cast<int>(cols_list.size()) == count;
      for (size_t i = 1; consistent && i < cols_list.size(); ++i) {
        consistent = cols_list[i] == cols_list[0];
      }
      if (!consistent) {
        // Filtered and unfiltered scans of the same relation (or two
        // different key mappings): it cannot be both partitioned and
        // whole. The view falls back to replicated-class.
        partitionable = false;
        break;
      }
      placement.partition_by[rel] = cols_list[0];
    }
  }
  if (!partitionable || placement.partition_by.empty()) {
    placement = ViewPlacement{};
    for (const std::string& rel : view.base_relations()) {
      placement.need_replicated.insert(rel);
    }
    return placement;
  }
  placement.partitioned_class = true;
  return placement;
}

Status ShardedEngine::CreateView(const std::string& name, PlanPtr definition,
                                 std::vector<std::string> sampling_key) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  ShardedSnapshotPtr snap = Snapshot();
  SVC_ASSIGN_OR_RETURN(
      ViewPlacement placement,
      DerivePlacement(name, definition, sampling_key, *snap));

  const ShardMeta& cur = *snap->meta;
  auto meta = std::make_shared<ShardMeta>(cur);
  std::map<std::string, std::vector<size_t>> to_repartition;
  if (placement.partitioned_class) {
    for (const auto& [rel, cols] : placement.partition_by) {
      auto rit = cur.routing.find(rel);
      const bool already =
          rit != cur.routing.end() && rit->second.partitioned();
      if (already) {
        if (rit->second.columns != cols) {
          return Status::NotSupported(
              "view '" + name + "' would hash-partition relation '" + rel +
              "' by a different key than its current partitioning; create "
              "views sharing a relation with a compatible sampling key");
        }
        continue;
      }
      auto pit = cur.replicated_pins.find(rel);
      if (pit != cur.replicated_pins.end() && !pit->second.empty()) {
        return Status::NotSupported(
            "view '" + name + "' needs relation '" + rel +
            "' hash-partitioned, but view '" + *pit->second.begin() +
            "' requires it replicated on every shard");
      }
      to_repartition[rel] = cols;
    }
  }
  for (const std::string& rel : placement.need_replicated) {
    if (cur.IsPartitionedRelation(rel)) {
      return Status::NotSupported(
          "view '" + name + "' needs relation '" + rel +
          "' replicated on every shard, but it is hash-partitioned by an "
          "existing view's sampling key");
    }
    meta->replicated_pins[rel].insert(name);
  }
  for (const auto& [rel, cols] : to_repartition) {
    meta->routing[rel] = ShardRouting{cols};
  }
  meta->view_partitioned[name] = placement.partitioned_class;

  for (size_t s = 0; s < shards_.size(); ++s) {
    SVC_RETURN_IF_ERROR(shards_[s]->Commit([&](SvcEngine* e) -> Status {
      for (const auto& entry : to_repartition) {
        const std::string& rel = entry.first;
        const std::vector<size_t>& cols = entry.second;
        SVC_RETURN_IF_ERROR(
            e->RepartitionRelation(rel, [this, &cols, s](const Row& r) {
              return OwnerShard(EncodeRowKey(r, cols)) == s;
            }));
      }
      return e->CreateView(name, definition, sampling_key);
    }));
  }
  PublishLocked(std::move(meta));
  return Status::OK();
}

Status ShardedEngine::InsertRows(const std::string& relation,
                                 std::vector<Row> rows) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  ShardedSnapshotPtr snap = Snapshot();
  const size_t n = shards_.size();
  auto rit = snap->meta->routing.find(relation);
  const bool partitioned =
      rit != snap->meta->routing.end() && rit->second.partitioned();
  std::vector<std::vector<Row>> groups(n);
  if (partitioned) {
    for (Row& r : rows) {
      const size_t owner = OwnerShard(EncodeRowKey(r, rit->second.columns));
      groups[owner].push_back(std::move(r));
    }
  }
  for (size_t s = 0; s < n; ++s) {
    const std::vector<Row>& batch = partitioned ? groups[s] : rows;
    if (batch.empty()) continue;
    SVC_RETURN_IF_ERROR(shards_[s]->Commit([&](SvcEngine* e) -> Status {
      for (const Row& r : batch) {
        SVC_RETURN_IF_ERROR(e->InsertRecord(relation, r));
      }
      return Status::OK();
    }));
  }
  PublishLocked(snap->meta);
  return Status::OK();
}

Status ShardedEngine::InsertRecord(const std::string& relation, Row row) {
  std::vector<Row> rows;
  rows.push_back(std::move(row));
  return InsertRows(relation, std::move(rows));
}

Status ShardedEngine::DeleteRows(const std::string& relation,
                                 std::vector<Row> rows) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  ShardedSnapshotPtr snap = Snapshot();
  const size_t n = shards_.size();
  auto rit = snap->meta->routing.find(relation);
  const bool partitioned =
      rit != snap->meta->routing.end() && rit->second.partitioned();
  std::vector<std::vector<Row>> groups(n);
  if (partitioned) {
    for (Row& r : rows) {
      const size_t owner = OwnerShard(EncodeRowKey(r, rit->second.columns));
      groups[owner].push_back(std::move(r));
    }
  }
  for (size_t s = 0; s < n; ++s) {
    const std::vector<Row>& batch = partitioned ? groups[s] : rows;
    if (batch.empty()) continue;
    SVC_RETURN_IF_ERROR(shards_[s]->Commit([&](SvcEngine* e) -> Status {
      for (const Row& r : batch) {
        SVC_RETURN_IF_ERROR(e->DeleteRecord(relation, r));
      }
      return Status::OK();
    }));
  }
  PublishLocked(snap->meta);
  return Status::OK();
}

Status ShardedEngine::Refresh(size_t* committed_inserts,
                              size_t* committed_deletes) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  ShardedSnapshotPtr snap = Snapshot();
  size_t ins = 0;
  size_t del = 0;
  PendingCounts(*snap, &ins, &del);
  // Each shard maintains and commits independently, in parallel: a slow
  // shard never serializes behind the others, and readers keep the old
  // cut until every shard has landed.
  const size_t n = shards_.size();
  std::vector<Status> statuses(n);
  ParallelFor(static_cast<int>(n), n,
              [&](size_t s) { statuses[s] = shards_[s]->Refresh(); });
  for (const Status& st : statuses) SVC_RETURN_IF_ERROR(st);
  PublishLocked(snap->meta);
  if (committed_inserts != nullptr) *committed_inserts = ins;
  if (committed_deletes != nullptr) *committed_deletes = del;
  return Status::OK();
}

void ShardedEngine::PendingCounts(const ShardedSnapshot& snap, size_t* inserts,
                                  size_t* deletes) const {
  *inserts = 0;
  *deletes = 0;
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const DeltaSet& pending = snap.shards[s]->engine.pending();
    for (const std::string& rel : pending.TouchedRelations()) {
      // Replicated relations queue a copy of every delta on every shard;
      // count the logical rows once (shard 0's copy).
      if (!snap.meta->IsPartitionedRelation(rel) && s != 0) continue;
      *inserts += pending.InsertRows(rel);
      *deletes += pending.DeleteRows(rel);
    }
  }
}

size_t ShardedEngine::PendingRowsFor(const ShardedSnapshot& snap,
                                     const std::string& relation) const {
  if (snap.meta->IsPartitionedRelation(relation)) {
    size_t total = 0;
    for (const auto& shard : snap.shards) {
      const DeltaSet& p = shard->engine.pending();
      total += p.InsertRows(relation) + p.DeleteRows(relation);
    }
    return total;
  }
  const DeltaSet& p = snap.shards[0]->engine.pending();
  return p.InsertRows(relation) + p.DeleteRows(relation);
}

void ShardedEngine::set_sample_cache_enabled(bool enabled) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  for (auto& shard : shards_) {
    (void)shard->Commit([&](SvcEngine* e) -> Status {
      e->set_sample_cache_enabled(enabled);
      return Status::OK();
    });
  }
  PublishLocked(Snapshot()->meta);
}

Status ShardedEngine::WithStatementLock(const std::function<Status()>& fn) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  return fn();
}

Status ShardedEngine::SetMaintenancePolicy(const MaintenancePolicyConfig& cfg) {
  std::lock_guard<std::recursive_mutex> stmt(stmt_mu_);
  for (auto& shard : shards_) {
    SVC_RETURN_IF_ERROR(shard->SetMaintenancePolicy(cfg));
  }
  PublishLocked(Snapshot()->meta);
  return Status::OK();
}

void ShardedEngine::StartMaintenance() {
  std::lock_guard<std::mutex> lock(maint_mu_);
  if (maint_thread_.joinable()) return;  // already running
  maint_stop_ = false;
  maint_thread_ = std::thread([this] { MaintenanceLoop(); });
}

void ShardedEngine::StopMaintenance() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
    t = std::move(maint_thread_);
  }
  maint_cv_.notify_all();
  t.join();
}

Result<bool> ShardedEngine::MaintenanceTick(uint64_t elapsed_ms) {
  ShardedSnapshotPtr snap = Snapshot();
  const MaintenancePolicyConfig cfg =
      snap->shards[0]->engine.maintenance_policy();
  if (cfg.mode == MaintenancePolicyConfig::Mode::kOff) return false;
  maint_ticks_.fetch_add(1, std::memory_order_relaxed);
  SVC_ASSIGN_OR_RETURN(std::vector<ViewMaintenanceScore> scores,
                       ScoreViews(*snap, cfg, elapsed_ms));
  uint64_t warms = 0;
  for (const ViewMaintenanceScore& s : scores) {
    if (s.action == MaintenanceAction::kWarm) ++warms;
  }
  if (warms > 0) maint_warms_.fetch_add(warms, std::memory_order_relaxed);
  if (!AnyRefresh(scores)) return false;
  SVC_RETURN_IF_ERROR(Refresh());
  maint_refreshes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ShardedEngine::MaintenanceLoop() {
  auto last_refresh = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(maint_mu_);
  while (!maint_stop_) {
    const MaintenancePolicyConfig cfg = maintenance_policy();
    const uint64_t wait_ms = cfg.tick_ms > 0 ? cfg.tick_ms : 50;
    maint_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                       [&] { return maint_stop_; });
    if (maint_stop_) break;
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    const uint64_t elapsed_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              last_refresh)
            .count());
    Result<bool> refreshed = MaintenanceTick(elapsed_ms);
    if (refreshed.ok() && refreshed.value()) last_refresh = now;
    lock.lock();
  }
}

MaintenanceStats ShardedEngine::maintenance_stats() const {
  MaintenanceStats s;
  s.ticks = maint_ticks_.load(std::memory_order_relaxed);
  s.warms = maint_warms_.load(std::memory_order_relaxed);
  s.refreshes = maint_refreshes_.load(std::memory_order_relaxed);
  return s;
}

Result<std::vector<ViewMaintenanceScore>> ShardedEngine::ScoreViews(
    const ShardedSnapshot& snap, const MaintenancePolicyConfig& cfg,
    uint64_t elapsed_ms) const {
  std::vector<ViewMaintenanceScore> out;
  for (const std::string& name : snap.shards[0]->engine.ViewNames()) {
    // Same per-view override fold as the unsharded ScoreViews — overrides
    // are part of the replicated policy, so scores stay shard-invariant.
    const MaintenancePolicyConfig eff = EffectiveFor(cfg, name);
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view,
                         snap.shards[0]->engine.GetView(name));
    uint64_t pending_rows = 0;
    for (const std::string& rel : view->base_relations()) {
      pending_rows += PendingRowsFor(snap, rel);
    }
    if (pending_rows == 0) {
      out.push_back(ScoreOneView(name, 0, 0, nullptr, eff, elapsed_ms));
      continue;
    }
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> stored,
                         GatherTable(snap, name));
    // Coordinator-merged probe: same shape as the single-engine probe, and
    // bit-identical at any shard count, so the resulting scores (and
    // therefore the policy's refresh choices) are shard-count-invariant.
    SvcQueryOptions opts;
    opts.ratio = eff.ratio;
    opts.auto_mode = true;
    Result<SvcAnswer> probe = Query(snap, name, AggregateQuery::Count(), opts);
    const Estimate* est = probe.ok() ? &probe.value().estimate : nullptr;
    out.push_back(ScoreOneView(name, pending_rows, stored->NumRows(), est, eff,
                               elapsed_ms));
  }
  return out;
}

Result<std::shared_ptr<const CorrespondingSamples>>
ShardedEngine::FanOutSamples(const ShardedSnapshot& snap,
                             const std::string& view, const AggregateQuery& q,
                             const SvcQueryOptions& opts,
                             EstimatorMode* mode_used) const {
  const size_t n = snap.shards.size();
  CleanOptions clean(opts.ratio, opts.family, opts.exec);
  std::vector<std::shared_ptr<const CorrespondingSamples>> parts(n);
  std::vector<Status> statuses(n);
  std::vector<CacheOutcome> outcomes(n, CacheOutcome::kFullClean);
  ParallelFor(static_cast<int>(n), n, [&](size_t s) {
    Result<std::shared_ptr<const CorrespondingSamples>> r =
        snap.shards[s]->engine.CleanSampleCached(view, clean, &outcomes[s]);
    if (r.ok()) {
      parts[s] = std::move(r).value();
    } else {
      statuses[s] = r.status();
    }
  });
  for (const Status& st : statuses) SVC_RETURN_IF_ERROR(st);
  RecordFanOutOutcome(view, outcomes);
  SVC_ASSIGN_OR_RETURN(CorrespondingSamples merged,
                       MergeCorrespondingSamples(parts));
  auto shared = std::make_shared<const CorrespondingSamples>(std::move(merged));
  *mode_used = opts.mode;
  if (opts.auto_mode) {
    SVC_ASSIGN_OR_RETURN(PolicyDecision d, ChooseEstimator(*shared, q));
    *mode_used = d.mode;
  }
  return std::shared_ptr<const CorrespondingSamples>(shared);
}

Result<SvcAnswer> ShardedEngine::Query(const ShardedSnapshot& snap,
                                       const std::string& view,
                                       const AggregateQuery& q,
                                       const SvcQueryOptions& opts) const {
  if (!snap.meta->IsPartitionedView(view)) {
    // Replicated-class (or unknown — shard 0 renders the standard error):
    // every shard holds the identical full view, so shard 0's answer is
    // the answer, bitwise, at any shard count.
    return snap.shards[0]->engine.Query(view, q, opts);
  }
  SvcAnswer answer;
  SVC_ASSIGN_OR_RETURN(std::shared_ptr<const CorrespondingSamples> samples,
                       FanOutSamples(snap, view, q, opts, &answer.mode_used));
  if (answer.mode_used == EstimatorMode::kAqp) {
    SVC_ASSIGN_OR_RETURN(answer.estimate,
                         SvcAqpEstimate(*samples, q, opts.estimator));
  } else {
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> stale,
                         GatherTable(snap, view));
    SVC_ASSIGN_OR_RETURN(answer.estimate,
                         SvcCorrEstimate(*stale, *samples, q, opts.estimator));
  }
  return answer;
}

Result<SvcGroupedAnswer> ShardedEngine::QueryGrouped(
    const ShardedSnapshot& snap, const std::string& view,
    const std::vector<std::string>& group_columns, const AggregateQuery& q,
    const SvcQueryOptions& opts) const {
  if (!snap.meta->IsPartitionedView(view)) {
    return snap.shards[0]->engine.QueryGrouped(view, group_columns, q, opts);
  }
  SvcGroupedAnswer answer;
  SVC_ASSIGN_OR_RETURN(std::shared_ptr<const CorrespondingSamples> samples,
                       FanOutSamples(snap, view, q, opts, &answer.mode_used));
  if (answer.mode_used == EstimatorMode::kAqp) {
    SVC_ASSIGN_OR_RETURN(
        answer.result,
        SvcAqpEstimateGrouped(*samples, group_columns, q, opts.estimator));
  } else {
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> stale,
                         GatherTable(snap, view));
    SVC_ASSIGN_OR_RETURN(
        answer.result, SvcCorrEstimateGrouped(*stale, *samples, group_columns,
                                              q, opts.estimator));
  }
  return answer;
}

Result<std::shared_ptr<const Table>> ShardedEngine::GatherTable(
    const ShardedSnapshot& snap, const std::string& name) const {
  std::shared_ptr<const Table> first =
      snap.shards[0]->engine.db().GetTableShared(name);
  if (first == nullptr) {
    return Status::UnknownRelation("no such table: " + name);
  }
  const bool merge = snap.meta->IsPartitionedRelation(name) ||
                     snap.meta->IsPartitionedView(name);
  if (!merge) return first;
  std::vector<std::shared_ptr<const Table>> parts;
  parts.reserve(snap.shards.size());
  parts.push_back(std::move(first));
  for (size_t s = 1; s < snap.shards.size(); ++s) {
    std::shared_ptr<const Table> part =
        snap.shards[s]->engine.db().GetTableShared(name);
    if (part == nullptr) {
      return Status::Internal("shard " + std::to_string(s) +
                              " is missing partitioned table " + name);
    }
    parts.push_back(std::move(part));
  }
  {
    std::lock_guard<std::mutex> lock(gather_mu_);
    auto it = gather_cache_.find(name);
    if (it != gather_cache_.end() && it->second.parts == parts) {
      return it->second.merged;
    }
  }
  SVC_ASSIGN_OR_RETURN(Table merged, MergeShardTables(parts));
  std::shared_ptr<const Table> shared =
      std::make_shared<Table>(std::move(merged));
  std::lock_guard<std::mutex> lock(gather_mu_);
  gather_cache_[name] = GatherEntry{std::move(parts), shared};
  return shared;
}

void ShardedEngine::RecordFanOutOutcome(
    const std::string& view, const std::vector<CacheOutcome>& outcomes) const {
  CacheOutcome logical = CacheOutcome::kHit;
  for (CacheOutcome o : outcomes) {
    if (o == CacheOutcome::kFullClean) {
      logical = CacheOutcome::kFullClean;
      break;
    }
    if (o == CacheOutcome::kAdvance) logical = CacheOutcome::kAdvance;
  }
  std::lock_guard<std::mutex> lock(fanout_stats_mu_);
  ViewCacheStats& s = fanout_stats_[view];
  switch (logical) {
    case CacheOutcome::kHit:
      ++s.hits;
      break;
    case CacheOutcome::kAdvance:
      ++s.misses;
      ++s.incremental_advances;
      break;
    case CacheOutcome::kFullClean:
      ++s.misses;
      ++s.full_cleans;
      break;
  }
}

std::map<std::string, ViewCacheStats> ShardedEngine::CoordinatorCacheStats(
    const ShardedSnapshot& snap) const {
  // Replicated-class views are served entirely by shard 0, so shard 0's
  // counters already are the logical numbers; partitioned-class views are
  // counted at the coordinator (one event per fan-out).
  std::map<std::string, ViewCacheStats> out =
      snap.shards[0]->engine.CacheStats();
  std::lock_guard<std::mutex> lock(fanout_stats_mu_);
  for (const auto& [view, stats] : fanout_stats_) out[view] = stats;
  return out;
}

Result<Database> ShardedEngine::GatherDatabase(
    const ShardedSnapshot& snap, const std::vector<std::string>& names) const {
  Database out;
  std::set<std::string> seen;
  for (const std::string& name : names) {
    if (!seen.insert(name).second) continue;
    SVC_ASSIGN_OR_RETURN(std::shared_ptr<const Table> t,
                         GatherTable(snap, name));
    out.PutTableShared(name, std::move(t));
  }
  return out;
}

}  // namespace svc
