#include "core/policy.h"

#include "common/flat_map.h"
#include "relational/row_key.h"

namespace svc {

namespace {

/// Per-row query term: attr·cond for sum, cond for counts, attr (when the
/// predicate holds) for avg/median.
Result<std::vector<double>> Terms(const Table& t, const AggregateQuery& q) {
  ExprPtr pred, attr;
  if (q.predicate) {
    pred = q.predicate->Clone();
    SVC_RETURN_IF_ERROR(pred->Bind(t.schema()));
  }
  if (q.attr) {
    attr = q.attr->Clone();
    SVC_RETURN_IF_ERROR(attr->Bind(t.schema()));
  }
  std::vector<double> out;
  out.reserve(t.NumRows());
  for (const auto& r : t.rows()) {
    const bool p = !pred || pred->Eval(r).IsTrue();
    double x = 1.0;
    if (attr) {
      const Value v = attr->Eval(r);
      x = (v.is_null() || !v.IsNumeric()) ? 0.0 : v.ToDouble();
    }
    out.push_back(p ? x : 0.0);
  }
  return out;
}

}  // namespace

Result<PolicyDecision> ChooseEstimator(const CorrespondingSamples& samples,
                                       const AggregateQuery& q) {
  SVC_ASSIGN_OR_RETURN(std::vector<double> fresh_terms,
                       Terms(samples.fresh, q));
  SVC_ASSIGN_OR_RETURN(std::vector<double> stale_terms,
                       Terms(samples.stale, q));

  // Pair by key; a key missing on one side contributes zero there.
  FlatKeyMap<std::pair<double, double>> paired;
  paired.Reserve(samples.fresh.NumRows());
  KeyBuffer kb;
  for (size_t i = 0; i < samples.fresh.NumRows(); ++i) {
    const RowKeyRef key =
        kb.Encode(samples.fresh.row(i), samples.fresh.pk_indices());
    paired.Emplace(key.bytes, key.hash, {}).first->first = fresh_terms[i];
  }
  for (size_t i = 0; i < samples.stale.NumRows(); ++i) {
    const RowKeyRef key =
        kb.Encode(samples.stale.row(i), samples.stale.pk_indices());
    paired.Emplace(key.bytes, key.hash, {}).first->second = stale_terms[i];
  }
  const double n = static_cast<double>(paired.size());
  PolicyDecision d;
  if (n < 2) {
    d.mode = EstimatorMode::kCorr;
    return d;
  }
  double mean_f = 0, mean_s = 0;
  paired.ForEach([&](std::string_view, const std::pair<double, double>& fs) {
    mean_f += fs.first;
    mean_s += fs.second;
  });
  mean_f /= n;
  mean_s /= n;
  double var_s = 0, cov = 0;
  paired.ForEach([&](std::string_view, const std::pair<double, double>& fs) {
    var_s += (fs.second - mean_s) * (fs.second - mean_s);
    cov += (fs.second - mean_s) * (fs.first - mean_f);
  });
  var_s /= (n - 1);
  cov /= (n - 1);
  d.var_stale = var_s;
  d.cov = cov;
  d.mode = var_s <= 2 * cov ? EstimatorMode::kCorr : EstimatorMode::kAqp;
  return d;
}

}  // namespace svc
