#include "core/sample_cache.h"

namespace svc {

std::shared_ptr<SampleCache::Slot> SampleCache::SlotFor(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Slot>& slot = slots_[key];
  if (slot == nullptr) slot = std::make_shared<Slot>();
  slot->last_used = ++use_counter_;
  std::shared_ptr<Slot> out = slot;  // keep alive across a self-eviction
  if (slots_.size() > kMaxSlots) {
    auto lru = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second.get() == out.get()) continue;
      // Never evict a slot a reader is mid-population on (its mutex is
      // held): a later request for that key would make a fresh slot and
      // run a duplicate cleaning pass for the same snapshot.
      if (!it->second->mu.try_lock()) continue;
      it->second->mu.unlock();
      if (lru == slots_.end() ||
          it->second->last_used < lru->second->last_used) {
        lru = it;
      }
    }
    if (lru != slots_.end()) slots_.erase(lru);
  }
  return out;
}

void SampleCache::CopyFrom(const SampleCache& other) {
  // Two phases to respect the slot-then-map lock order used by readers
  // (who take a slot's mutex first and the map mutex only inside the
  // counter updates): grab the slot pointers under the map mutex, then
  // copy each entry under its own slot mutex with the map mutex released.
  std::map<Key, std::shared_ptr<Slot>> src;
  std::map<Key, uint64_t> stamps;
  std::map<std::string, ViewCacheStats> stats;
  uint64_t counter = 0;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    src = other.slots_;
    stats = other.stats_;
    counter = other.use_counter_;
    // Stamps are guarded by the map mutex, not the slot mutex: read them
    // here, while it is held.
    for (const auto& [key, slot] : src) stamps[key] = slot->last_used;
  }
  std::map<Key, std::shared_ptr<Slot>> slots;
  for (const auto& [key, slot] : src) {
    auto copy = std::make_shared<Slot>();
    {
      // try_lock, not lock: a reader holds the slot mutex for the whole
      // cleaning pipeline while populating, and this runs inside every
      // SharedEngine commit — blocking here would couple ingest latency
      // to reader cleaning runs. A busy slot is simply not carried (the
      // fork re-cleans that key once on next use; answers are unchanged).
      std::unique_lock<std::mutex> slot_lock(slot->mu, std::try_to_lock);
      if (!slot_lock.owns_lock()) continue;
      copy->entry = slot->entry;
    }
    copy->last_used = stamps[key];
    slots.emplace(key, std::move(copy));
  }
  std::lock_guard<std::mutex> lock(mu_);
  slots_ = std::move(slots);
  stats_ = std::move(stats);
  use_counter_ = counter;
}

void SampleCache::RecordHit(const std::string& view) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_[view].hits;
}

void SampleCache::RecordFullClean(const std::string& view) {
  std::lock_guard<std::mutex> lock(mu_);
  ViewCacheStats& s = stats_[view];
  ++s.misses;
  ++s.full_cleans;
}

void SampleCache::RecordAdvance(const std::string& view) {
  std::lock_guard<std::mutex> lock(mu_);
  ViewCacheStats& s = stats_[view];
  ++s.misses;
  ++s.incremental_advances;
}

std::map<std::string, ViewCacheStats> SampleCache::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace svc
