#ifndef SVC_CORE_MAINTENANCE_POLICY_H_
#define SVC_CORE_MAINTENANCE_POLICY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/estimator.h"

namespace svc {

class SvcEngine;

/// Per-view knobs overriding the global policy (SET MAINTENANCE POLICY ON
/// <view> (...)). Only the error budget, freshness SLA, and probe ratio can
/// differ per view — mode and tick cadence belong to the one scheduler
/// thread and stay global. An unset field falls through to the global value.
struct ViewPolicyOverride {
  std::optional<double> budget;
  std::optional<uint64_t> sla_ms;
  std::optional<double> ratio;

  bool empty() const { return !budget && !sla_ms && !ratio; }
  bool operator==(const ViewPolicyOverride& o) const {
    return budget == o.budget && sla_ms == o.sla_ms && ratio == o.ratio;
  }
  bool operator!=(const ViewPolicyOverride& o) const { return !(*this == o); }
};

/// The maintenance policy attached to an engine (SET MAINTENANCE POLICY).
/// Part of the engine state proper — forks copy it, checkpoints persist it,
/// and the DurableOp log replays it — so a recovered engine resumes the
/// same policy the crashed process ran.
struct MaintenancePolicyConfig {
  enum class Mode : uint8_t {
    kOff = 0,   ///< scheduler idles; REFRESH timing is manual
    kAuto = 1,  ///< scheduler scores views each tick and refreshes on demand
  };
  Mode mode = Mode::kOff;
  /// Target relative CI half-width: a view whose probe estimate carries a
  /// half-width above `budget * |value|` is past its error budget.
  double budget = 0.1;
  /// Freshness SLA: staleness older than this forces maintenance even when
  /// the error budget still holds.
  uint64_t sla_ms = 5000;
  /// Scheduler cadence (how often the background thread re-scores).
  uint64_t tick_ms = 50;
  /// Sampling ratio of the scoring probe (which doubles as deterministic
  /// cache warming — see ScoreViews).
  double ratio = 0.1;
  /// Per-view overrides of budget/sla_ms/ratio, keyed by view name. Views
  /// not listed (and unset fields of listed views) use the global values
  /// above. Empty overrides are never stored: clearing a view removes its
  /// entry.
  std::map<std::string, ViewPolicyOverride> overrides;

  bool operator==(const MaintenancePolicyConfig& o) const {
    return mode == o.mode && budget == o.budget && sla_ms == o.sla_ms &&
           tick_ms == o.tick_ms && ratio == o.ratio && overrides == o.overrides;
  }
  bool operator!=(const MaintenancePolicyConfig& o) const {
    return !(*this == o);
  }
};

const char* MaintenanceModeName(MaintenancePolicyConfig::Mode mode);

/// "mode=auto budget=0.05 sla_ms=1000" — the SQL layer's one-line summary.
/// Views with overrides are appended as " overrides: v(budget=...)" only
/// when any exist, so configs without them describe exactly as before.
std::string DescribeMaintenancePolicy(const MaintenancePolicyConfig& cfg);

/// The config `view` actually runs under: the global fields with that
/// view's override (if any) folded in. The result carries no overrides of
/// its own.
MaintenancePolicyConfig EffectiveFor(const MaintenancePolicyConfig& cfg,
                                     const std::string& view);

/// What the policy decided for one view this tick.
enum class MaintenanceAction : uint8_t {
  kNone = 0,     ///< fresh: nothing pending, nothing to do
  kWarm = 1,     ///< stale but within budget: the scoring probe already
                 ///< re-cleaned (or advanced) the cached sample
  kRefresh = 2,  ///< over budget: run the full maintenance commit
};

const char* MaintenanceActionName(MaintenanceAction action);

/// One view's score. Deterministic given (engine state, cfg, elapsed_ms):
/// every term is computed from snapshot state and the engine's
/// bit-deterministic estimates, so the same inputs score identically at any
/// thread or shard count.
struct ViewMaintenanceScore {
  std::string view;
  uint64_t pending_rows = 0;  ///< pending delta rows over the view's bases
  double staleness = 0.0;     ///< pending / (pending + view rows)
  double error = 0.0;         ///< probe relative CI half-width / budget
  double sla = 0.0;           ///< elapsed_ms / sla_ms
  double score = 0.0;         ///< staleness + error + sla
  MaintenanceAction action = MaintenanceAction::kNone;
};

/// The scoring formula shared by the unsharded and sharded schedulers.
/// `probe` is the engine's auto-mode COUNT(*) estimate on the stale view
/// (null when the probe failed — the PolicyDecision-style moment estimates
/// behind auto mode need sum/count shapes; exotic views degrade to
/// staleness + SLA scoring instead of killing the scheduler).
ViewMaintenanceScore ScoreOneView(std::string view, uint64_t pending_rows,
                                  uint64_t view_rows, const Estimate* probe,
                                  const MaintenancePolicyConfig& cfg,
                                  uint64_t elapsed_ms);

/// Scores every view of `engine` under `cfg`, `elapsed_ms` after the last
/// policy refresh. The error term runs a COUNT(*) probe with
/// `opts.ratio = cfg.ratio, auto_mode = true` through the engine's cached
/// cleaning path, so scoring a stale view *is* the re-clean/advance step:
/// the serving cache is warm afterward, and the scheduler's kWarm action
/// costs nothing extra. Pure read — never mutates engine state beyond the
/// cache.
Result<std::vector<ViewMaintenanceScore>> ScoreViews(
    const SvcEngine& engine, const MaintenancePolicyConfig& cfg,
    uint64_t elapsed_ms);

/// True iff any view scored past the refresh threshold.
bool AnyRefresh(const std::vector<ViewMaintenanceScore>& scores);

}  // namespace svc

#endif  // SVC_CORE_MAINTENANCE_POLICY_H_
