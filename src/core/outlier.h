#ifndef SVC_CORE_OUTLIER_H_
#define SVC_CORE_OUTLIER_H_

#include <memory>
#include <optional>
#include <string>

#include "common/flat_map.h"
#include "common/status.h"
#include "core/estimator.h"
#include "relational/database.h"
#include "sample/cleaner.h"
#include "view/delta.h"
#include "view/view.h"

namespace svc {

/// Configuration of an outlier index on a base-relation attribute (§6.1).
struct OutlierIndexSpec {
  std::string base_relation;  ///< e.g. "lineitem"
  std::string attribute;      ///< e.g. "l_extendedprice"
  size_t capacity = 100;      ///< size limit k (top-k eviction)
  /// Explicit threshold t; if unset, the threshold is chosen as the k-th
  /// largest attribute value in the base relation (the paper's top-k
  /// strategy, computable in the background during maintenance).
  std::optional<double> threshold;
};

/// An index of base records whose attribute exceeds the threshold, built in
/// a single pass over the base relation and the pending update stream
/// (§6.1), plus its push-up through the view (§6.2): the set O of
/// up-to-date view rows whose provenance includes an indexed record, and
/// the corresponding stale rows (needed by the CORR estimator).
class OutlierIndex {
 public:
  /// Builds the index: chooses the threshold (top-k if unspecified), scans
  /// the base relation and the delta stream, and keeps at most `capacity`
  /// records, evicting the smallest.
  static Result<OutlierIndex> Build(const Database& db, const DeltaSet& deltas,
                                    const OutlierIndexSpec& spec);

  /// The effective threshold t.
  double threshold() const { return threshold_; }
  /// Number of indexed base records.
  size_t size() const { return records_.size(); }
  const std::vector<Row>& records() const { return records_; }

  /// Push-up (Definition 5): computes the set of view keys whose rows are
  /// derived from indexed records and materializes (a) the *up-to-date*
  /// rows for those keys via keyed cleaning and (b) the *stale* rows.
  /// Requires the index's base relation to appear below the view's
  /// sampling operator (the paper's eligibility condition); returns an
  /// empty context otherwise.
  struct ViewOutliers {
    Table fresh;  ///< O ⊂ S′
    Table stale;  ///< matching stale rows
    std::shared_ptr<const KeySet> keys;
    bool eligible = false;
  };
  /// `exec` controls executor parallelism for the key-restricted cleaning
  /// plans (results are identical at any thread count).
  Result<ViewOutliers> PushUpToView(const MaterializedView& view,
                                    const DeltaSet& deltas, Database* db,
                                    ExecOptions exec = {}) const;

 private:
  OutlierIndex() = default;

  OutlierIndexSpec spec_;
  double threshold_ = 0.0;
  std::vector<Row> records_;  // schema of the base relation
  Schema base_schema_;
};

/// Outlier-aware estimation (§6.3): splits the query between the
/// deterministic outlier rows (sampling ratio 1, zero variance) and the
/// hash sample restricted to non-outlier keys, then merges. Falls back to
/// the plain estimators when `outliers.eligible` is false.
Result<Estimate> SvcAqpEstimateWithOutliers(
    const CorrespondingSamples& samples,
    const OutlierIndex::ViewOutliers& outliers, const AggregateQuery& q,
    const EstimatorOptions& opts = {});

Result<Estimate> SvcCorrEstimateWithOutliers(
    const Table& stale_view, const CorrespondingSamples& samples,
    const OutlierIndex::ViewOutliers& outliers, const AggregateQuery& q,
    const EstimatorOptions& opts = {});

}  // namespace svc

#endif  // SVC_CORE_OUTLIER_H_
