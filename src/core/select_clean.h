#ifndef SVC_CORE_SELECT_CLEAN_H_
#define SVC_CORE_SELECT_CLEAN_H_

#include "common/status.h"
#include "core/estimator.h"
#include "sample/cleaner.h"

namespace svc {

/// Result of cleaning a SELECT query (§12.1.2): the stale selection with
/// sampled repairs applied, plus three scaled count estimates quantifying
/// the remaining uncertainty (rows updated / added / deleted across the
/// whole view, extrapolated from the sample).
struct CleanedSelect {
  /// The repaired selection: updated rows overwritten, sampled new rows
  /// unioned in, sampled missing rows removed.
  Table rows;
  Estimate updated_rows;  ///< estimated # of view rows with changed content
  Estimate added_rows;    ///< estimated # of rows entering the selection
  Estimate deleted_rows;  ///< estimated # of rows leaving the selection
};

/// Cleans `SELECT * FROM view WHERE predicate` using the corresponding
/// samples: lineage (primary keys) identifies which stale result rows are
/// out of date. The repaired table is exact for every key that landed in
/// the sample and stale elsewhere; the three estimates bound how much
/// staleness remains.
Result<CleanedSelect> SvcCleanSelect(const Table& stale_view,
                                     const CorrespondingSamples& samples,
                                     const ExprPtr& predicate,
                                     const EstimatorOptions& opts = {});

}  // namespace svc

#endif  // SVC_CORE_SELECT_CLEAN_H_
