#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "core/bootstrap.h"

namespace svc {

std::string AggregateQuery::ToString() const {
  std::string out = AggFuncName(func);
  if (func != AggFunc::kCountStar) {
    out += "(" + (attr ? attr->ToString() : std::string("<no attribute>")) +
           ")";
  }
  if (predicate) out += " WHERE " + predicate->ToString();
  return out;
}

namespace {

/// Per-row evaluation of an aggregate query: did the row satisfy the
/// predicate, and what is its aggregation value.
struct EvalRow {
  bool pred = false;
  bool x_null = false;
  double x = 0.0;
};

Result<std::vector<EvalRow>> EvalRows(const Table& t,
                                      const AggregateQuery& q) {
  ExprPtr pred, attr;
  if (q.predicate) {
    pred = q.predicate->Clone();
    SVC_RETURN_IF_ERROR(pred->Bind(t.schema()));
  }
  if (q.attr) {
    attr = q.attr->Clone();
    SVC_RETURN_IF_ERROR(attr->Bind(t.schema()));
  } else if (q.func != AggFunc::kCountStar) {
    return Status::InvalidArgument(
        std::string(AggFuncName(q.func)) +
        " requires an aggregation attribute (only count(*) takes none); "
        "query: " +
        q.ToString());
  }
  std::vector<EvalRow> out;
  out.reserve(t.NumRows());
  for (const auto& r : t.rows()) {
    EvalRow er;
    er.pred = !pred || pred->Eval(r).IsTrue();
    if (attr) {
      const Value v = attr->Eval(r);
      if (v.is_null() || !v.IsNumeric()) {
        er.x_null = true;
      } else {
        er.x = v.ToDouble();
      }
    } else {
      er.x = 1.0;  // count(*)
    }
    out.push_back(er);
  }
  return out;
}

/// The per-row "trans" term of §5.2.1 (unscaled): the row's contribution
/// to the query total. sum -> x·cond, count(*) -> cond, count(a) ->
/// cond·[a not null].
double SumTerm(const AggregateQuery& q, const EvalRow& er) {
  if (!er.pred) return 0.0;
  switch (q.func) {
    case AggFunc::kSum:
      return er.x_null ? 0.0 : er.x;
    case AggFunc::kCountStar:
      return 1.0;
    case AggFunc::kCount:
      return er.x_null ? 0.0 : 1.0;
    default:
      return 0.0;
  }
}

bool IsTotalQuery(AggFunc f) {
  return f == AggFunc::kSum || f == AggFunc::kCount ||
         f == AggFunc::kCountStar;
}

/// Values satisfying the predicate (for avg / median / min / max).
std::vector<double> PredValues(const std::vector<EvalRow>& rows) {
  std::vector<double> out;
  for (const auto& er : rows) {
    if (er.pred && !er.x_null) out.push_back(er.x);
  }
  return out;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double SampleVariance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

/// Horvitz–Thompson total estimate and CI under Bernoulli(m) sampling:
/// T̂ = Σ t_i/m, V̂(T̂) = (1−m)/m² · Σ t_i².
Estimate HtTotal(const std::vector<double>& terms, double m, double z,
                 double confidence) {
  double total = 0, ssq = 0;
  for (double t : terms) {
    total += t;
    ssq += t * t;
  }
  Estimate e;
  e.value = total / m;
  const double var = (1.0 - m) / (m * m) * ssq;
  const double hw = z * std::sqrt(std::max(0.0, var));
  e.ci_low = e.value - hw;
  e.ci_high = e.value + hw;
  e.confidence = confidence;
  e.has_ci = true;
  e.sample_rows = terms.size();
  return e;
}

/// Conditional-mean estimate and CI (avg queries).
Estimate MeanEstimate(const std::vector<double>& values, double m, double z,
                      double confidence) {
  Estimate e;
  e.value = Mean(values);
  e.sample_rows = values.size();
  if (values.size() >= 2) {
    const double var =
        SampleVariance(values) * (1.0 - m) / static_cast<double>(values.size());
    const double hw = z * std::sqrt(std::max(0.0, var));
    e.ci_low = e.value - hw;
    e.ci_high = e.value + hw;
    e.confidence = confidence;
    e.has_ci = true;
  }
  return e;
}

/// AQP estimate on one set of evaluated sample rows.
Estimate AqpFromRows(const std::vector<EvalRow>& rows,
                     const AggregateQuery& q, double m,
                     const EstimatorOptions& opts) {
  const double z = NormalQuantile(opts.confidence);
  if (IsTotalQuery(q.func)) {
    std::vector<double> terms;
    terms.reserve(rows.size());
    for (const auto& er : rows) terms.push_back(SumTerm(q, er));
    return HtTotal(terms, m, z, opts.confidence);
  }
  std::vector<double> values = PredValues(rows);
  switch (q.func) {
    case AggFunc::kAvg:
      return MeanEstimate(values, m, z, opts.confidence);
    case AggFunc::kMedian: {
      Estimate e;
      std::vector<double> copy = values;
      e.value = MedianInPlace(&copy);
      e.sample_rows = values.size();
      if (values.size() >= 4) {
        auto [lo, hi] = BootstrapPercentileInterval(
            [&values](Rng* rng) {
              std::vector<double> res;
              res.reserve(values.size());
              for (size_t i : ResampleIndices(values.size(), rng)) {
                res.push_back(values[i]);
              }
              return MedianInPlace(&res);
            },
            opts.bootstrap_iterations, opts.bootstrap_seed, opts.confidence,
            opts.num_threads);
        e.ci_low = lo;
        e.ci_high = hi;
        e.confidence = opts.confidence;
        e.has_ci = true;
      }
      return e;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      // Sample extrema are biased; the corrected estimator with a Cantelli
      // tail bound lives in core/minmax.h.
      Estimate e;
      e.sample_rows = values.size();
      if (!values.empty()) {
        e.value = q.func == AggFunc::kMin
                      ? *std::min_element(values.begin(), values.end())
                      : *std::max_element(values.begin(), values.end());
      }
      return e;
    }
    default:
      return Estimate{};
  }
}

/// A pair of corresponding rows (one per key in either sample).
struct PairRow {
  bool has_fresh = false;
  bool has_stale = false;
  EvalRow fresh;
  EvalRow stale;
};

Result<std::vector<PairRow>> PairRows(const CorrespondingSamples& samples,
                                      const AggregateQuery& q) {
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> fresh,
                       EvalRows(samples.fresh, q));
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> stale,
                       EvalRows(samples.stale, q));
  std::vector<PairRow> pairs;
  pairs.reserve(fresh.size() + stale.size());
  FlatKeyMap<size_t> by_key;
  by_key.Reserve(samples.fresh.NumRows());
  KeyBuffer kb;
  for (size_t i = 0; i < samples.fresh.NumRows(); ++i) {
    const RowKeyRef key =
        kb.Encode(samples.fresh.row(i), samples.fresh.pk_indices());
    by_key.Emplace(key.bytes, key.hash, pairs.size());
    PairRow p;
    p.has_fresh = true;
    p.fresh = fresh[i];
    pairs.push_back(p);
  }
  for (size_t i = 0; i < samples.stale.NumRows(); ++i) {
    const RowKeyRef key =
        kb.Encode(samples.stale.row(i), samples.stale.pk_indices());
    const size_t* slot = by_key.Find(key.bytes, key.hash);
    if (slot == nullptr) {
      PairRow p;
      p.has_stale = true;
      p.stale = stale[i];
      pairs.push_back(p);
    } else {
      pairs[*slot].has_stale = true;
      pairs[*slot].stale = stale[i];
    }
  }
  return pairs;
}

/// Correction estimate (and CI) for one set of pairs.
Estimate CorrFromPairs(const std::vector<PairRow>& pairs,
                       const AggregateQuery& q, double exact_stale, double m,
                       bool stale_group_exists, const EstimatorOptions& opts) {
  const double z = NormalQuantile(opts.confidence);
  if (IsTotalQuery(q.func)) {
    // ĉ = Σ (t'_i − t_i)/m over corresponding keys (−̇, nulls as zero);
    // HT variance as in the AQP case but on the differences.
    double total = 0, ssq = 0;
    for (const auto& p : pairs) {
      const double d = (p.has_fresh ? SumTerm(q, p.fresh) : 0.0) -
                       (p.has_stale ? SumTerm(q, p.stale) : 0.0);
      total += d;
      ssq += d * d;
    }
    Estimate e;
    const double c = total / m;
    e.value = exact_stale + c;
    const double var = (1.0 - m) / (m * m) * ssq;
    const double hw = z * std::sqrt(std::max(0.0, var));
    e.ci_low = e.value - hw;
    e.ci_high = e.value + hw;
    e.confidence = opts.confidence;
    e.has_ci = true;
    e.sample_rows = pairs.size();
    return e;
  }

  // avg / median: correction on the statistic itself, bootstrap-bounded
  // (§5.2.5's SVC+CORR bootstrap: resample pairs, re-estimate c).
  auto stat_of = [&q](const std::vector<PairRow>& ps,
                      const std::vector<size_t>* idx) {
    std::vector<double> f, s;
    auto visit = [&](const PairRow& p) {
      if (p.has_fresh && p.fresh.pred && !p.fresh.x_null) {
        f.push_back(p.fresh.x);
      }
      if (p.has_stale && p.stale.pred && !p.stale.x_null) {
        s.push_back(p.stale.x);
      }
    };
    if (idx) {
      for (size_t i : *idx) visit(ps[i]);
    } else {
      for (const auto& p : ps) visit(p);
    }
    double fs, ss;
    if (q.func == AggFunc::kMedian) {
      fs = MedianInPlace(&f);
      ss = MedianInPlace(&s);
    } else {
      fs = Mean(f);
      ss = Mean(s);
    }
    return fs - ss;
  };

  Estimate e;
  const double c = stat_of(pairs, nullptr);
  e.value = stale_group_exists ? exact_stale + c : c;
  e.sample_rows = pairs.size();
  if (pairs.size() >= 4) {
    auto [lo, hi] = BootstrapPercentileInterval(
        [&](Rng* rng) {
          const std::vector<size_t> idx = ResampleIndices(pairs.size(), rng);
          return stat_of(pairs, &idx);
        },
        opts.bootstrap_iterations, opts.bootstrap_seed, opts.confidence,
        opts.num_threads);
    e.ci_low = (stale_group_exists ? exact_stale : 0.0) + lo;
    e.ci_high = (stale_group_exists ? exact_stale : 0.0) + hi;
    e.confidence = opts.confidence;
    e.has_ci = true;
  }
  return e;
}

}  // namespace

double NormalQuantile(double confidence) {
  // Two-sided: z = Phi^{-1}((1 + confidence) / 2), via Acklam's rational
  // approximation of the inverse normal CDF.
  const double p = (1.0 + confidence) / 2.0;
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

Result<double> ExactAggregate(const Table& view, const AggregateQuery& q) {
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> rows, EvalRows(view, q));
  if (IsTotalQuery(q.func)) {
    double total = 0;
    for (const auto& er : rows) total += SumTerm(q, er);
    return total;
  }
  std::vector<double> values = PredValues(rows);
  switch (q.func) {
    case AggFunc::kAvg:
      return Mean(values);
    case AggFunc::kMedian:
      return MedianInPlace(&values);
    case AggFunc::kMin:
      return values.empty() ? 0.0
                            : *std::min_element(values.begin(), values.end());
    case AggFunc::kMax:
      return values.empty() ? 0.0
                            : *std::max_element(values.begin(), values.end());
    default:
      return Status::NotSupported(
          std::string(AggFuncName(q.func)) +
          " has no exact single-pass evaluator (supported: sum, count, "
          "count(*), avg, median, min, max); query: " +
          q.ToString());
  }
}

Result<Estimate> SvcAqpEstimate(const CorrespondingSamples& samples,
                                const AggregateQuery& q,
                                const EstimatorOptions& opts) {
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> rows, EvalRows(samples.fresh, q));
  return AqpFromRows(rows, q, samples.ratio, opts);
}

Result<Estimate> SvcCorrEstimate(const Table& stale_view,
                                 const CorrespondingSamples& samples,
                                 const AggregateQuery& q,
                                 const EstimatorOptions& opts) {
  SVC_ASSIGN_OR_RETURN(double exact_stale, ExactAggregate(stale_view, q));
  SVC_ASSIGN_OR_RETURN(std::vector<PairRow> pairs, PairRows(samples, q));
  if (q.func == AggFunc::kMin || q.func == AggFunc::kMax) {
    // Appendix §12.1.1: correct the stale extremum by the largest (resp.
    // smallest) paired row-by-row difference.
    double best = 0;
    bool any = false;
    for (const auto& p : pairs) {
      if (!p.has_fresh || !p.has_stale) continue;
      if (p.fresh.x_null || p.stale.x_null || !p.fresh.pred || !p.stale.pred) {
        continue;
      }
      const double d = p.fresh.x - p.stale.x;
      if (!any || (q.func == AggFunc::kMax ? d > best : d < best)) {
        best = d;
        any = true;
      }
    }
    Estimate e;
    e.value = exact_stale + (any ? best : 0.0);
    e.sample_rows = pairs.size();
    return e;
  }
  return CorrFromPairs(pairs, q, exact_stale, samples.ratio,
                       /*stale_group_exists=*/true, opts);
}

namespace {

/// Buckets table rows by the encoded values of `group_columns`.
struct Buckets {
  std::vector<Row> keys;
  std::vector<std::vector<size_t>> rows;
  FlatKeyMap<size_t> index;
  KeyBuffer kb;

  size_t SlotFor(const Table& t, size_t row, const std::vector<size_t>& gidx) {
    const RowKeyRef key = kb.Encode(t.row(row), gidx);
    auto [slot, inserted] = index.Emplace(key.bytes, key.hash, keys.size());
    if (inserted) {
      Row gk;
      for (size_t i : gidx) gk.push_back(t.row(row)[i]);
      keys.push_back(std::move(gk));
      rows.emplace_back();
    }
    return *slot;
  }
};

}  // namespace

Result<GroupedResult> ExactAggregateGrouped(
    const Table& view, const std::vector<std::string>& group_columns,
    const AggregateQuery& q) {
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       view.schema().ResolveAll(group_columns));
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> rows, EvalRows(view, q));
  Buckets buckets;
  for (size_t i = 0; i < view.NumRows(); ++i) {
    buckets.rows[buckets.SlotFor(view, i, gidx)].push_back(i);
  }
  GroupedResult out;
  out.group_columns = group_columns;
  out.group_keys = buckets.keys;
  out.index = buckets.index;
  out.estimates.resize(buckets.keys.size());
  for (size_t g = 0; g < buckets.keys.size(); ++g) {
    std::vector<EvalRow> sub;
    sub.reserve(buckets.rows[g].size());
    for (size_t i : buckets.rows[g]) sub.push_back(rows[i]);
    // Exact evaluation: reuse the AQP path with m = 1 (no scaling, zero
    // variance).
    Estimate e = AqpFromRows(sub, q, 1.0, {});
    e.has_ci = false;
    out.estimates[g] = e;
  }
  return out;
}

Result<GroupedResult> SvcAqpEstimateGrouped(
    const CorrespondingSamples& samples,
    const std::vector<std::string>& group_columns, const AggregateQuery& q,
    const EstimatorOptions& opts) {
  const Table& t = samples.fresh;
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       t.schema().ResolveAll(group_columns));
  SVC_ASSIGN_OR_RETURN(std::vector<EvalRow> rows, EvalRows(t, q));
  Buckets buckets;
  for (size_t i = 0; i < t.NumRows(); ++i) {
    buckets.rows[buckets.SlotFor(t, i, gidx)].push_back(i);
  }
  GroupedResult out;
  out.group_columns = group_columns;
  out.group_keys = buckets.keys;
  out.index = buckets.index;
  out.estimates.resize(buckets.keys.size());
  for (size_t g = 0; g < buckets.keys.size(); ++g) {
    std::vector<EvalRow> sub;
    sub.reserve(buckets.rows[g].size());
    for (size_t i : buckets.rows[g]) sub.push_back(rows[i]);
    out.estimates[g] = AqpFromRows(sub, q, samples.ratio, opts);
  }
  return out;
}

Result<GroupedResult> SvcCorrEstimateGrouped(
    const Table& stale_view, const CorrespondingSamples& samples,
    const std::vector<std::string>& group_columns, const AggregateQuery& q,
    const EstimatorOptions& opts) {
  // Exact per-group stale answers.
  SVC_ASSIGN_OR_RETURN(GroupedResult stale_exact,
                       ExactAggregateGrouped(stale_view, group_columns, q));

  // Pair the samples and bucket pairs by group (taken from the fresh side
  // when present, else the stale side).
  SVC_ASSIGN_OR_RETURN(std::vector<PairRow> pairs, PairRows(samples, q));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> fg,
                       samples.fresh.schema().ResolveAll(group_columns));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> sg,
                       samples.stale.schema().ResolveAll(group_columns));

  // Rebuild pair->group assignment. PairRows() ordered pairs as: all fresh
  // rows first (by row index), then stale-only rows.
  std::vector<std::string> pair_group(pairs.size());
  std::vector<Row> pair_group_key(pairs.size());
  {
    size_t slot = 0;
    for (size_t i = 0; i < samples.fresh.NumRows(); ++i, ++slot) {
      pair_group[slot] = EncodeRowKey(samples.fresh.row(i), fg);
      Row gk;
      for (size_t c : fg) gk.push_back(samples.fresh.row(i)[c]);
      pair_group_key[slot] = std::move(gk);
    }
    KeySet fresh_keys;
    fresh_keys.Reserve(samples.fresh.NumRows());
    KeyBuffer kb;
    for (size_t i = 0; i < samples.fresh.NumRows(); ++i) {
      const RowKeyRef key =
          kb.Encode(samples.fresh.row(i), samples.fresh.pk_indices());
      fresh_keys.Insert(key.bytes, key.hash);
    }
    for (size_t i = 0; i < samples.stale.NumRows(); ++i) {
      const RowKeyRef key =
          kb.Encode(samples.stale.row(i), samples.stale.pk_indices());
      if (fresh_keys.Contains(key.bytes, key.hash)) continue;
      pair_group[slot] = EncodeRowKey(samples.stale.row(i), sg);
      Row gk;
      for (size_t c : sg) gk.push_back(samples.stale.row(i)[c]);
      pair_group_key[slot] = std::move(gk);
      ++slot;
    }
  }

  // Union of groups: stale-exact groups plus sampled groups.
  GroupedResult out;
  out.group_columns = group_columns;
  out.group_keys = stale_exact.group_keys;
  out.index = stale_exact.index;
  std::vector<std::vector<PairRow>> group_pairs(out.group_keys.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    auto [slot, inserted] =
        out.index.Emplace(pair_group[p], out.group_keys.size());
    if (inserted) {
      out.group_keys.push_back(pair_group_key[p]);
      group_pairs.emplace_back();
    }
    if (*slot >= group_pairs.size()) {
      group_pairs.resize(out.group_keys.size());
    }
    group_pairs[*slot].push_back(pairs[p]);
  }
  group_pairs.resize(out.group_keys.size());

  out.estimates.resize(out.group_keys.size());
  for (size_t g = 0; g < out.group_keys.size(); ++g) {
    const bool in_stale = g < stale_exact.estimates.size();
    const double exact = in_stale ? stale_exact.estimates[g].value : 0.0;
    out.estimates[g] = CorrFromPairs(group_pairs[g], q, exact, samples.ratio,
                                     in_stale, opts);
  }
  return out;
}

}  // namespace svc
