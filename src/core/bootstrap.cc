#include "core/bootstrap.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"

namespace svc {

std::vector<size_t> ResampleIndices(size_t n, Rng* rng) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) {
    idx[i] = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(n) - 1));
  }
  return idx;
}

double MedianInPlace(std::vector<double>* values) {
  if (values->empty()) return 0.0;
  auto& v = *values;
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double med = v[mid];
  if (v.size() % 2 == 0) {
    const double lo = *std::max_element(v.begin(), v.begin() + mid);
    med = (med + lo) / 2.0;
  }
  return med;
}

double PercentileInPlace(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  auto& v = *values;
  const double pos = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(pos));
  std::nth_element(v.begin(), v.begin() + lo, v.end());
  const double a = v[lo];
  if (lo + 1 >= v.size()) return a;
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0) return a;
  const double b = *std::min_element(v.begin() + lo + 1, v.end());
  return a + frac * (b - a);
}

std::pair<double, double> BootstrapPercentileInterval(
    const std::function<double(Rng*)>& resample_stat, int iterations,
    uint64_t seed, double confidence, int num_threads) {
  if (iterations <= 0) return {0.0, 0.0};
  // Replicate i draws from its own stream seeded by (seed, i): a pure
  // function of the base seed and the replicate id, never of which thread
  // ran it or what ran before it — so stats[i], and the interval, are the
  // same at any thread count. The per-replicate seed advances by the
  // splitmix64 golden gamma rather than XOR-ing the id in: seed ^ i maps
  // adjacent base seeds to permutations of the same replicate-seed set
  // (43 ^ i == 42 ^ (i ^ 1)), which an order-invariant percentile cannot
  // tell apart.
  constexpr uint64_t kReplicateGamma = 0x9e3779b97f4a7c15ULL;
  const size_t n = static_cast<size_t>(iterations);
  std::vector<double> stats(n);
  const size_t chunks = DeterministicChunks(n, /*min_per_chunk=*/16);
  ParallelFor(num_threads, chunks, [&](size_t c) {
    auto [begin, end] = ChunkBounds(n, chunks, c);
    for (size_t i = begin; i < end; ++i) {
      Rng rng(seed + (static_cast<uint64_t>(i) + 1) * kReplicateGamma);
      stats[i] = resample_stat(&rng);
    }
  });
  const double alpha = (1.0 - confidence) / 2.0;
  std::vector<double> copy = stats;
  const double lo = PercentileInPlace(&copy, alpha);
  copy = stats;
  const double hi = PercentileInPlace(&copy, 1.0 - alpha);
  return {lo, hi};
}

}  // namespace svc
