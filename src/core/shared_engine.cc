#include "core/shared_engine.h"

namespace svc {

SharedEngine::SharedEngine(Database db)
    : SharedEngine(SvcEngine(std::move(db))) {}

SharedEngine::SharedEngine(SvcEngine engine, uint64_t start_epoch)
    : head_(std::make_shared<const EngineSnapshot>(start_epoch,
                                                   std::move(engine))) {}

SnapshotPtr SharedEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return head_;
}

Status SharedEngine::Commit(const std::function<Status(SvcEngine*)>& fn) {
  return Commit(fn, nullptr);
}

Status SharedEngine::Commit(
    const std::function<Status(SvcEngine*)>& fn,
    const std::function<Status(uint64_t next_epoch)>& pre_publish) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  // Fork the head. Readers keep their snapshots; the fork shares all table
  // storage copy-on-write, so only what `fn` touches is copied.
  SnapshotPtr head = Snapshot();
  auto next = std::make_shared<EngineSnapshot>(head->epoch + 1, head->engine);
  SVC_RETURN_IF_ERROR(fn(&next->engine));
  // Write-ahead point: the record for `next` must be durable before any
  // reader can observe the new epoch.
  if (pre_publish != nullptr) SVC_RETURN_IF_ERROR(pre_publish(next->epoch));
  std::lock_guard<std::mutex> lock(head_mu_);
  head_ = std::move(next);
  return Status::OK();
}

Status SharedEngine::CreateTable(const std::string& name, Table table) {
  return Commit([&](SvcEngine* e) {
    return e->db()->CreateTable(name, std::move(table));
  });
}

Status SharedEngine::CreateView(const std::string& name, PlanPtr definition,
                                std::vector<std::string> sampling_key) {
  return Commit([&](SvcEngine* e) {
    return e->CreateView(name, std::move(definition), std::move(sampling_key));
  });
}

Status SharedEngine::InsertRecord(const std::string& relation, Row row) {
  return Commit([&](SvcEngine* e) {
    return e->InsertRecord(relation, std::move(row));
  });
}

Status SharedEngine::DeleteRecord(const std::string& relation, Row row) {
  return Commit([&](SvcEngine* e) {
    return e->DeleteRecord(relation, std::move(row));
  });
}

Status SharedEngine::IngestDeltas(DeltaSet&& deltas) {
  return Commit([&](SvcEngine* e) {
    return e->IngestDeltas(std::move(deltas));
  });
}

Status SharedEngine::Refresh() {
  // The in-place body: Commit's fork already provides the transactional
  // discard-on-error, so MaintainAll's own fork-and-swap would only copy
  // the engine a second time.
  return Commit([](SvcEngine* e) { return e->MaintainAllInPlace(); });
}

}  // namespace svc
