#include "core/shared_engine.h"

#include <chrono>

namespace svc {

SharedEngine::SharedEngine(Database db)
    : SharedEngine(SvcEngine(std::move(db))) {}

SharedEngine::SharedEngine(SvcEngine engine, uint64_t start_epoch)
    : head_(std::make_shared<const EngineSnapshot>(start_epoch,
                                                   std::move(engine))) {}

SharedEngine::~SharedEngine() { StopMaintenance(); }

SnapshotPtr SharedEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(head_mu_);
  return head_;
}

Status SharedEngine::Commit(const std::function<Status(SvcEngine*)>& fn) {
  return Commit(fn, nullptr);
}

Status SharedEngine::Commit(
    const std::function<Status(SvcEngine*)>& fn,
    const std::function<Status(uint64_t next_epoch)>& pre_publish) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  // Fork the head. Readers keep their snapshots; the fork shares all table
  // storage copy-on-write, so only what `fn` touches is copied.
  SnapshotPtr head = Snapshot();
  auto next = std::make_shared<EngineSnapshot>(head->epoch + 1, head->engine);
  SVC_RETURN_IF_ERROR(fn(&next->engine));
  // Write-ahead point: the record for `next` must be durable before any
  // reader can observe the new epoch.
  if (pre_publish != nullptr) SVC_RETURN_IF_ERROR(pre_publish(next->epoch));
  std::lock_guard<std::mutex> lock(head_mu_);
  head_ = std::move(next);
  return Status::OK();
}

Status SharedEngine::CreateTable(const std::string& name, Table table) {
  return Commit([&](SvcEngine* e) {
    return e->db()->CreateTable(name, std::move(table));
  });
}

Status SharedEngine::CreateView(const std::string& name, PlanPtr definition,
                                std::vector<std::string> sampling_key) {
  return Commit([&](SvcEngine* e) {
    return e->CreateView(name, std::move(definition), std::move(sampling_key));
  });
}

Status SharedEngine::InsertRecord(const std::string& relation, Row row) {
  return Commit([&](SvcEngine* e) {
    return e->InsertRecord(relation, std::move(row));
  });
}

Status SharedEngine::DeleteRecord(const std::string& relation, Row row) {
  return Commit([&](SvcEngine* e) {
    return e->DeleteRecord(relation, std::move(row));
  });
}

Status SharedEngine::IngestDeltas(DeltaSet&& deltas) {
  return Commit([&](SvcEngine* e) {
    return e->IngestDeltas(std::move(deltas));
  });
}

Status SharedEngine::Refresh() {
  // The in-place body: Commit's fork already provides the transactional
  // discard-on-error, so MaintainAll's own fork-and-swap would only copy
  // the engine a second time.
  return Commit([](SvcEngine* e) { return e->MaintainAllInPlace(); });
}

Status SharedEngine::SetMaintenancePolicy(const MaintenancePolicyConfig& cfg) {
  return Commit([&](SvcEngine* e) {
    e->set_maintenance_policy(cfg);
    return Status::OK();
  });
}

void SharedEngine::StartMaintenance(std::function<Status()> refresh_fn) {
  std::lock_guard<std::mutex> lock(maint_mu_);
  if (maint_thread_.joinable()) return;  // already running
  if (refresh_fn) maint_refresh_ = std::move(refresh_fn);
  maint_stop_ = false;
  maint_thread_ = std::thread([this] { MaintenanceLoop(); });
}

void SharedEngine::StopMaintenance() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
    // Move the handle out so a second StopMaintenance (e.g. an explicit
    // quiesce followed by the destructor) is a clean no-op.
    t = std::move(maint_thread_);
  }
  maint_cv_.notify_all();
  t.join();
}

Result<bool> SharedEngine::MaintenanceTick(uint64_t elapsed_ms) {
  SnapshotPtr head = Snapshot();
  const MaintenancePolicyConfig cfg = head->engine.maintenance_policy();
  if (cfg.mode == MaintenancePolicyConfig::Mode::kOff) return false;
  maint_ticks_.fetch_add(1, std::memory_order_relaxed);
  SVC_ASSIGN_OR_RETURN(std::vector<ViewMaintenanceScore> scores,
                       ScoreViews(head->engine, cfg, elapsed_ms));
  uint64_t warms = 0;
  for (const ViewMaintenanceScore& s : scores) {
    if (s.action == MaintenanceAction::kWarm) ++warms;
  }
  if (warms > 0) maint_warms_.fetch_add(warms, std::memory_order_relaxed);
  if (!AnyRefresh(scores)) return false;
  // One maintenance commit freshens every view (pending deltas are
  // engine-global), so views sharing base relations batch naturally.
  SVC_RETURN_IF_ERROR(maint_refresh_ ? maint_refresh_() : Refresh());
  maint_refreshes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SharedEngine::MaintenanceLoop() {
  auto last_refresh = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(maint_mu_);
  while (!maint_stop_) {
    const MaintenancePolicyConfig cfg = maintenance_policy();
    const uint64_t wait_ms = cfg.tick_ms > 0 ? cfg.tick_ms : 50;
    maint_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                       [&] { return maint_stop_; });
    if (maint_stop_) break;
    lock.unlock();
    const auto now = std::chrono::steady_clock::now();
    const uint64_t elapsed_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now -
                                                              last_refresh)
            .count());
    // The scheduler must outlive transient failures (e.g. a refresh racing
    // a conflicting DDL): a failed tick is dropped, the next one re-scores
    // fresh state. Determinism is unaffected — the tick only chooses *when*
    // the deterministic maintenance commit runs.
    Result<bool> refreshed = MaintenanceTick(elapsed_ms);
    if (refreshed.ok() && refreshed.value()) last_refresh = now;
    lock.lock();
  }
}

MaintenanceStats SharedEngine::maintenance_stats() const {
  MaintenanceStats s;
  s.ticks = maint_ticks_.load(std::memory_order_relaxed);
  s.warms = maint_warms_.load(std::memory_order_relaxed);
  s.refreshes = maint_refreshes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace svc
