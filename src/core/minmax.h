#ifndef SVC_CORE_MINMAX_H_
#define SVC_CORE_MINMAX_H_

#include "common/status.h"
#include "core/estimator.h"

namespace svc {

/// Result of the min/max correction estimator (Appendix §12.1.1): a point
/// estimate plus a Cantelli bound on the probability that a more extreme
/// element exists in the unsampled portion of the view — a weaker but
/// honest guarantee, since extrema cannot be bootstrap-bounded.
struct MinMaxEstimate {
  double value = 0.0;
  /// Upper bound on P(an element beyond `value` exists), from Cantelli's
  /// inequality: P(X ≥ µ + ε) ≤ σ² / (σ² + ε²).
  double tail_probability = 1.0;
  size_t sample_rows = 0;
};

/// max query: (1) compute row-by-row differences over corresponding keys,
/// (2) add the largest difference to the stale view's exact max, (3) bound
/// the chance of a larger unseen element with Cantelli's inequality
/// evaluated on the clean sample's value distribution.
Result<MinMaxEstimate> SvcMaxEstimate(const Table& stale_view,
                                      const CorrespondingSamples& samples,
                                      const AggregateQuery& q);

/// min counterpart (mirror bound P(X ≤ µ − ε) ≤ σ²/(σ² + ε²)).
Result<MinMaxEstimate> SvcMinEstimate(const Table& stale_view,
                                      const CorrespondingSamples& samples,
                                      const AggregateQuery& q);

}  // namespace svc

#endif  // SVC_CORE_MINMAX_H_
