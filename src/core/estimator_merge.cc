#include "core/estimator_merge.h"

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "relational/value.h"

namespace svc {

namespace {

/// A reference to one row of one part.
struct RowRef {
  size_t part = 0;
  size_t row = 0;
};

/// Stable-sorts every row of `tables` by the *values* at `key_indices`
/// (Value's total order) and rebuilds them into one table carrying `pk`
/// (empty pk = keyless append). Value order — not encoded-key bytes — is
/// the canonical order because it coincides with the natural row order of
/// an unsharded view whose rows were produced in increasing key order, so
/// merged answers stay bit-identical to the unsharded engine's (byte order
/// of the little-endian int encoding diverges from numeric order at 256).
/// Rows with equal keys keep their per-part order (each sampling key is
/// owned by exactly one shard, so this preserves within-key locality).
Result<Table> SortedUnion(const std::vector<const Table*>& tables,
                          const std::vector<size_t>& key_indices,
                          const std::vector<std::string>& pk) {
  std::vector<RowRef> refs;
  size_t total = 0;
  for (const Table* t : tables) total += t->NumRows();
  refs.reserve(total);
  for (size_t p = 0; p < tables.size(); ++p) {
    const Table* t = tables[p];
    for (size_t i = 0; i < t->NumRows(); ++i) {
      refs.push_back({p, i});
    }
  }
  auto key_less = [&](const RowRef& a, const RowRef& b) {
    const Row& ra = tables[a.part]->row(a.row);
    const Row& rb = tables[b.part]->row(b.row);
    for (size_t i : key_indices) {
      if (ra[i] < rb[i]) return true;
      if (rb[i] < ra[i]) return false;
    }
    return false;
  };
  std::stable_sort(refs.begin(), refs.end(), key_less);
  Table out(tables[0]->schema());
  if (!pk.empty()) SVC_RETURN_IF_ERROR(out.SetPrimaryKey(pk));
  for (const RowRef& r : refs) {
    if (pk.empty()) {
      out.AppendUnchecked(tables[r.part]->row(r.row));
    } else {
      SVC_RETURN_IF_ERROR(out.Insert(tables[r.part]->row(r.row)));
    }
  }
  return out;
}

}  // namespace

Result<CorrespondingSamples> MergeCorrespondingSamples(
    const std::vector<std::shared_ptr<const CorrespondingSamples>>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("no shard samples to merge");
  }
  const CorrespondingSamples& first = *parts[0];
  for (const auto& p : parts) {
    if (p == nullptr) {
      return Status::InvalidArgument("null shard sample in merge");
    }
    if (p->ratio != first.ratio || p->family != first.family ||
        p->key_columns != first.key_columns) {
      return Status::InvalidArgument(
          "shard samples disagree on sampling parameters; they must come "
          "from one fan-out");
    }
  }
  CorrespondingSamples merged;
  merged.ratio = first.ratio;
  merged.family = first.family;
  merged.key_columns = first.key_columns;
  auto merge_side = [&](auto side_of) -> Result<Table> {
    std::vector<const Table*> tables;
    tables.reserve(parts.size());
    for (const auto& p : parts) tables.push_back(side_of(*p));
    SVC_ASSIGN_OR_RETURN(std::vector<size_t> key_indices,
                         tables[0]->schema().ResolveAll(first.key_columns));
    return SortedUnion(tables, key_indices, tables[0]->PrimaryKeyNames());
  };
  SVC_ASSIGN_OR_RETURN(
      merged.stale,
      merge_side([](const CorrespondingSamples& s) { return &s.stale; }));
  SVC_ASSIGN_OR_RETURN(
      merged.fresh,
      merge_side([](const CorrespondingSamples& s) { return &s.fresh; }));
  return merged;
}

Result<Table> MergeShardTables(
    const std::vector<std::shared_ptr<const Table>>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("no shard tables to merge");
  }
  std::vector<const Table*> tables;
  tables.reserve(parts.size());
  for (const auto& p : parts) {
    if (p == nullptr) return Status::InvalidArgument("null shard table");
    tables.push_back(p.get());
  }
  std::vector<size_t> key_indices = tables[0]->pk_indices();
  if (key_indices.empty()) {
    key_indices.resize(tables[0]->schema().NumColumns());
    for (size_t i = 0; i < key_indices.size(); ++i) key_indices[i] = i;
  }
  return SortedUnion(tables, key_indices, tables[0]->PrimaryKeyNames());
}

}  // namespace svc
