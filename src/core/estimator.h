#ifndef SVC_CORE_ESTIMATOR_H_
#define SVC_CORE_ESTIMATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "relational/algebra.h"
#include "relational/table.h"
#include "sample/cleaner.h"

namespace svc {

/// An aggregate query per §5.1 of the paper:
///
///     SELECT f(attr) FROM View WHERE cond(*)
///
/// Group-by is modeled as part of the condition (footnote 1); the grouped
/// helpers below evaluate one such query per group in a single pass.
struct AggregateQuery {
  AggFunc func = AggFunc::kCountStar;  ///< sum/count(*)/count/avg/median/...
  ExprPtr attr;        ///< aggregation attribute expression; null for count(*)
  ExprPtr predicate;   ///< cond(*); null keeps every row

  static AggregateQuery Count(ExprPtr predicate = nullptr) {
    return {AggFunc::kCountStar, nullptr, std::move(predicate)};
  }
  static AggregateQuery Sum(ExprPtr attr, ExprPtr predicate = nullptr) {
    return {AggFunc::kSum, std::move(attr), std::move(predicate)};
  }
  static AggregateQuery Avg(ExprPtr attr, ExprPtr predicate = nullptr) {
    return {AggFunc::kAvg, std::move(attr), std::move(predicate)};
  }
  static AggregateQuery Median(ExprPtr attr, ExprPtr predicate = nullptr) {
    return {AggFunc::kMedian, std::move(attr), std::move(predicate)};
  }

  /// Renders the query for error messages and logs, e.g.
  /// "sum(duration) WHERE videoId = 3" or "count(*)".
  std::string ToString() const;
};

/// A point estimate with a confidence interval. For estimators without an
/// analytic CI (median) the interval comes from the statistical bootstrap;
/// `has_ci` is false when no interval is available at all.
struct Estimate {
  double value = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
  double confidence = 0.95;
  bool has_ci = false;
  /// Rows of the (clean) sample the estimate consumed.
  size_t sample_rows = 0;

  /// Half-width of the confidence interval.
  double HalfWidth() const { return (ci_high - ci_low) / 2.0; }
  /// True iff `truth` lies inside the interval.
  bool Covers(double truth) const {
    return has_ci && truth >= ci_low && truth <= ci_high;
  }
};

/// Estimation knobs shared by the scalar and grouped entry points.
struct EstimatorOptions {
  double confidence = 0.95;        ///< CI level (1.96 at 95%, 2.576 at 99%)
  int bootstrap_iterations = 200;    ///< resamples for bootstrap CIs
  uint64_t bootstrap_seed = 0xb00ce; ///< deterministic bootstrap
  /// Threads for the bootstrap's independent replicates (1 = sequential,
  /// 0 = all hardware threads). Intervals are bit-identical at any setting
  /// — each replicate has its own seed-derived RNG stream.
  int num_threads = 1;
};

/// Evaluates `q` exactly over a full table (used for the stale baseline,
/// oracle answers, and the full-view term of SVC+CORR).
Result<double> ExactAggregate(const Table& view, const AggregateQuery& q);

/// SVC+AQP (§5.1): the direct estimate s·q(Ŝ') from the clean sample, with
/// a CLT confidence interval for sum/count/avg (§5.2.1; Horvitz–Thompson
/// variance under the Bernoulli hash-sampling design) and a bootstrap
/// interval for median.
Result<Estimate> SvcAqpEstimate(const CorrespondingSamples& samples,
                                const AggregateQuery& q,
                                const EstimatorOptions& opts = {});

/// SVC+CORR (§5.1): estimates the staleness correction c from the
/// corresponding samples via the correspondence-subtract operator −̇
/// (Definition 4) and applies it to the exact stale answer:
/// q(S') ≈ q(S) + ĉ. `stale_view` is the full stale view.
Result<Estimate> SvcCorrEstimate(const Table& stale_view,
                                 const CorrespondingSamples& samples,
                                 const AggregateQuery& q,
                                 const EstimatorOptions& opts = {});

// ---- Grouped variants ------------------------------------------------------

/// Results of evaluating the same aggregate once per group.
struct GroupedResult {
  std::vector<std::string> group_columns;
  std::vector<Row> group_keys;        ///< one entry per group
  std::vector<Estimate> estimates;    ///< parallel to group_keys
  FlatKeyMap<size_t> index;           ///< encoded key -> slot

  /// Finds the estimate for an encoded group key; nullptr if the group was
  /// not observed.
  const Estimate* Find(std::string_view encoded_key) const {
    const size_t* slot = index.Find(encoded_key);
    return slot == nullptr ? nullptr : &estimates[*slot];
  }
};

/// Exact per-group evaluation over a full table.
Result<GroupedResult> ExactAggregateGrouped(
    const Table& view, const std::vector<std::string>& group_columns,
    const AggregateQuery& q);

/// Per-group SVC+AQP. Groups absent from the clean sample are absent from
/// the result (their estimate is zero rows of evidence).
Result<GroupedResult> SvcAqpEstimateGrouped(
    const CorrespondingSamples& samples,
    const std::vector<std::string>& group_columns, const AggregateQuery& q,
    const EstimatorOptions& opts = {});

/// Per-group SVC+CORR: the exact stale per-group answers corrected by
/// per-group sampled corrections. Groups seen in neither the stale view
/// nor the samples are absent.
Result<GroupedResult> SvcCorrEstimateGrouped(
    const Table& stale_view, const CorrespondingSamples& samples,
    const std::vector<std::string>& group_columns, const AggregateQuery& q,
    const EstimatorOptions& opts = {});

/// z-value for a two-sided normal interval at `confidence` (e.g. 0.95 ->
/// 1.96). Supports the 0.8–0.999 range via a rational approximation.
double NormalQuantile(double confidence);

}  // namespace svc

#endif  // SVC_CORE_ESTIMATOR_H_
