#ifndef SVC_CORE_SAMPLE_CACHE_H_
#define SVC_CORE_SAMPLE_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "common/hash.h"
#include "sample/cleaner.h"
#include "view/delta.h"

namespace svc {

/// Serving counters for one view, aggregated over every (ratio, family)
/// cache entry. Cumulative across engine forks: a fork copies the numbers
/// and keeps counting, so a SharedEngine's head carries the totals forward
/// through commits.
struct ViewCacheStats {
  uint64_t hits = 0;       ///< queries answered from a valid cached sample
  uint64_t misses = 0;     ///< queries that had to (re)materialize samples
  uint64_t full_cleans = 0;         ///< misses served by a full re-clean
  uint64_t incremental_advances = 0;  ///< misses served by delta-scoped
                                      ///< advance of a cached sample
};

/// Memo of cleaned corresponding samples for one engine state, keyed by
/// (view, ratio, family). An entry is valid only for the exact engine
/// version it was built against: the stored view table (by shared-pointer
/// identity — any maintenance installs a different object) and the pending
/// queue (by DeltaSet::version()). Between those two checks every input of
/// the cleaning pipeline is pinned, so a hit can hand out the samples
/// without re-deriving anything.
///
/// Thread-safety: entries live in per-key slots with their own mutex, so
/// concurrent readers of one engine snapshot racing on the same (view,
/// ratio, family) serialize on the slot — exactly one performs the
/// cleaning run, the rest hit — while queries on different keys proceed in
/// parallel. SvcEngine forks never share a SampleCache object (two forks
/// can reach equal delta versions with different contents); a fork deep-
/// copies the slots' entries, which is cheap because the samples themselves
/// sit behind shared_ptr.
class SampleCache {
 public:
  struct Key {
    std::string view;
    double ratio = 0.0;
    HashFamily family = HashFamily::kFnv1a;

    bool operator<(const Key& o) const {
      return std::tie(view, ratio, family) <
             std::tie(o.view, o.ratio, o.family);
    }
  };

  struct Entry {
    std::shared_ptr<const CorrespondingSamples> samples;  ///< null = empty
    std::shared_ptr<const Table> view_table;  ///< stored view at build time
    uint64_t delta_version = 0;
    DeltaWatermark watermark;  ///< queue position the samples reflect
  };

  /// One cached entry plus the lock serializing its population.
  struct Slot {
    std::mutex mu;
    Entry entry;
    /// LRU stamp (see kMaxSlots); written under the cache mutex.
    uint64_t last_used = 0;
  };

  /// Slot-count bound: (view, ratio, family) is user-controlled — a client
  /// sweeping SVC ratios would otherwise grow the slot table (and the
  /// per-fork CopyFrom walk) without limit, each stale entry pinning two
  /// sample tables plus the pre-maintenance view table. Past the bound the
  /// least-recently-used *idle* slot is dropped — a slot whose mutex is
  /// held (a reader mid-population) is never evicted, preserving the
  /// one-cleaning-run guarantee for every key that stays within the bound;
  /// readers holding an evicted slot's shared_ptr finish safely, the entry
  /// just stops being cached. A workload cycling through more than
  /// kMaxSlots keys degrades gracefully to cold cleaning per query.
  static constexpr size_t kMaxSlots = 64;

  SampleCache() = default;
  SampleCache(const SampleCache&) = delete;
  SampleCache& operator=(const SampleCache&) = delete;

  /// The slot for `key`, created empty if absent. The caller locks
  /// `slot->mu`, validates `entry` against the current engine state, and
  /// rebuilds it under the lock on a miss.
  std::shared_ptr<Slot> SlotFor(const Key& key);

  /// Replaces this cache's contents with a snapshot of `other`'s entries
  /// and counters (used by the engine fork constructor; `other` may be
  /// serving concurrent readers, so each slot is read under its lock).
  void CopyFrom(const SampleCache& other);

  // Counter updates (per view; internally synchronized).
  void RecordHit(const std::string& view);
  void RecordFullClean(const std::string& view);
  void RecordAdvance(const std::string& view);

  /// Point-in-time copy of the per-view counters.
  std::map<std::string, ViewCacheStats> StatsSnapshot() const;

 private:
  mutable std::mutex mu_;  // guards slots_ map shape, stamps, and stats_
  std::map<Key, std::shared_ptr<Slot>> slots_;
  std::map<std::string, ViewCacheStats> stats_;
  uint64_t use_counter_ = 0;  // LRU clock for kMaxSlots eviction
};

}  // namespace svc

#endif  // SVC_CORE_SAMPLE_CACHE_H_
