#ifndef SVC_CORE_POLICY_H_
#define SVC_CORE_POLICY_H_

#include "common/status.h"
#include "core/estimator.h"

namespace svc {

/// Which estimator to use for a query (§5.1).
enum class EstimatorMode { kAqp, kCorr };

/// Diagnostics behind a policy decision.
struct PolicyDecision {
  EstimatorMode mode = EstimatorMode::kCorr;
  double var_stale = 0.0;   ///< estimated σ²_S of the per-row terms
  double cov = 0.0;         ///< estimated cov(S, S') over corresponding keys
};

/// The break-even rule of §5.2.2: the correction has lower variance than
/// the direct estimate iff σ²_S ≤ 2·cov(S, S'). Both moments are estimated
/// from the corresponding samples' per-row trans terms (missing keys
/// contribute zero). Applies to sum/count/avg queries; other aggregates
/// default to CORR when staleness is light.
Result<PolicyDecision> ChooseEstimator(const CorrespondingSamples& samples,
                                       const AggregateQuery& q);

}  // namespace svc

#endif  // SVC_CORE_POLICY_H_
