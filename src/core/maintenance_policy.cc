#include "core/maintenance_policy.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/svc.h"

namespace svc {

const char* MaintenanceModeName(MaintenancePolicyConfig::Mode mode) {
  return mode == MaintenancePolicyConfig::Mode::kAuto ? "auto" : "off";
}

std::string DescribeMaintenancePolicy(const MaintenancePolicyConfig& cfg) {
  char num[40];
  std::string out = std::string("mode=") + MaintenanceModeName(cfg.mode);
  std::snprintf(num, sizeof(num), "%.6g", cfg.budget);
  out += std::string(" budget=") + num;
  out += " sla_ms=" + std::to_string(cfg.sla_ms);
  // Overrides appear only when present, keeping the no-override description
  // (and every golden transcript recorded before they existed) unchanged.
  if (!cfg.overrides.empty()) {
    out += " overrides:";
    for (const auto& [view, ov] : cfg.overrides) {
      out += " " + view + "(";
      std::string sep;
      if (ov.budget) {
        std::snprintf(num, sizeof(num), "%.6g", *ov.budget);
        out += "budget=" + std::string(num);
        sep = " ";
      }
      if (ov.sla_ms) {
        out += sep + "sla_ms=" + std::to_string(*ov.sla_ms);
        sep = " ";
      }
      if (ov.ratio) {
        std::snprintf(num, sizeof(num), "%.6g", *ov.ratio);
        out += sep + "ratio=" + std::string(num);
      }
      out += ")";
    }
  }
  return out;
}

MaintenancePolicyConfig EffectiveFor(const MaintenancePolicyConfig& cfg,
                                     const std::string& view) {
  MaintenancePolicyConfig eff = cfg;
  eff.overrides.clear();
  auto it = cfg.overrides.find(view);
  if (it != cfg.overrides.end()) {
    if (it->second.budget) eff.budget = *it->second.budget;
    if (it->second.sla_ms) eff.sla_ms = *it->second.sla_ms;
    if (it->second.ratio) eff.ratio = *it->second.ratio;
  }
  return eff;
}

const char* MaintenanceActionName(MaintenanceAction action) {
  switch (action) {
    case MaintenanceAction::kNone:
      return "none";
    case MaintenanceAction::kWarm:
      return "warm";
    case MaintenanceAction::kRefresh:
      return "refresh";
  }
  return "none";
}

ViewMaintenanceScore ScoreOneView(std::string view, uint64_t pending_rows,
                                  uint64_t view_rows, const Estimate* probe,
                                  const MaintenancePolicyConfig& cfg,
                                  uint64_t elapsed_ms) {
  ViewMaintenanceScore s;
  s.view = std::move(view);
  s.pending_rows = pending_rows;
  // A fresh view needs nothing, however long ago the last refresh was: the
  // SLA bounds *staleness age*, and a view with no pending deltas is not
  // stale.
  if (pending_rows == 0) return s;
  const double pending = static_cast<double>(pending_rows);
  const double rows = static_cast<double>(std::max<uint64_t>(1, view_rows));
  s.staleness = pending / (pending + rows);
  if (probe != nullptr && probe->has_ci && cfg.budget > 0.0) {
    const double denom = std::max(1.0, std::abs(probe->value));
    const double rel_half_width = probe->HalfWidth() / denom;
    s.error = rel_half_width / cfg.budget;
  }
  if (cfg.sla_ms > 0) {
    s.sla = static_cast<double>(elapsed_ms) / static_cast<double>(cfg.sla_ms);
  }
  s.score = s.staleness + s.error + s.sla;
  s.action =
      s.score >= 1.0 ? MaintenanceAction::kRefresh : MaintenanceAction::kWarm;
  return s;
}

Result<std::vector<ViewMaintenanceScore>> ScoreViews(
    const SvcEngine& engine, const MaintenancePolicyConfig& cfg,
    uint64_t elapsed_ms) {
  std::vector<ViewMaintenanceScore> out;
  for (const std::string& name : engine.ViewNames()) {
    // Per-view budget/SLA/ratio overrides apply here, at scoring time:
    // the scheduler itself stays one thread on one global tick.
    const MaintenancePolicyConfig eff = EffectiveFor(cfg, name);
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, engine.GetView(name));
    uint64_t pending_rows = 0;
    for (const std::string& rel : view->base_relations()) {
      pending_rows += engine.pending().InsertRows(rel);
      pending_rows += engine.pending().DeleteRows(rel);
    }
    if (pending_rows == 0) {
      out.push_back(ScoreOneView(name, 0, 0, nullptr, eff, elapsed_ms));
      continue;
    }
    SVC_ASSIGN_OR_RETURN(const Table* stored, engine.db().GetTable(name));
    // The probe: an auto-mode COUNT(*) estimate at the policy's ratio. It
    // runs through CleanSampleCached, so the sample the next real query
    // needs is cleaned (or incrementally advanced) right here — scoring IS
    // the re-clean/advance arm of the policy. A probe failure (estimator
    // shapes the moment estimates cannot handle) degrades to
    // staleness + SLA scoring.
    SvcQueryOptions opts;
    opts.ratio = eff.ratio;
    opts.auto_mode = true;
    Result<SvcAnswer> probe = engine.Query(name, AggregateQuery::Count(), opts);
    const Estimate* est = probe.ok() ? &probe.value().estimate : nullptr;
    out.push_back(
        ScoreOneView(name, pending_rows, stored->NumRows(), est, eff,
                     elapsed_ms));
  }
  return out;
}

bool AnyRefresh(const std::vector<ViewMaintenanceScore>& scores) {
  for (const ViewMaintenanceScore& s : scores) {
    if (s.action == MaintenanceAction::kRefresh) return true;
  }
  return false;
}

}  // namespace svc
