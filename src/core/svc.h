#ifndef SVC_CORE_SVC_H_
#define SVC_CORE_SVC_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/estimator.h"
#include "core/maintenance_policy.h"
#include "core/policy.h"
#include "core/sample_cache.h"
#include "relational/database.h"
#include "sample/cleaner.h"
#include "view/delta.h"
#include "view/maintenance.h"
#include "view/view.h"

namespace svc {

/// Options for SvcEngine::Query.
struct SvcQueryOptions {
  /// Sampling ratio m for the cleaned sample.
  double ratio = 0.1;
  /// Hash family for η.
  HashFamily family = HashFamily::kFnv1a;
  /// Estimator choice; when `auto_mode` is set the §5.2.2 break-even rule
  /// picks between AQP and CORR per query.
  EstimatorMode mode = EstimatorMode::kCorr;
  bool auto_mode = false;
  EstimatorOptions estimator;
  /// Executor parallelism for the cleaning plans. The estimator's
  /// bootstrap has its own independent knob (`estimator.num_threads`) so
  /// an explicit sequential bootstrap is never silently overridden.
  /// Answers are bit-identical at any thread count of either.
  ExecOptions exec;
};

/// The answer to an SVC query: the estimate plus which estimator produced
/// it (useful when auto_mode is on).
struct SvcAnswer {
  Estimate estimate;
  EstimatorMode mode_used = EstimatorMode::kCorr;
};

/// The grouped analog of SvcAnswer: one estimate per observed group.
struct SvcGroupedAnswer {
  GroupedResult result;
  EstimatorMode mode_used = EstimatorMode::kCorr;
};

/// How CleanSampleCached satisfied one request. ShardedEngine's fan-out
/// collapses its shards' outcomes into one logical serving event per query
/// (any full clean dominates, else any advance, else a pure hit), so SHOW
/// STATS counters stay shard-count-invariant.
enum class CacheOutcome : uint8_t { kHit, kAdvance, kFullClean };

/// The top-level facade implementing the paper's workflow (§3.2):
///
///   1. create materialized views over base relations,
///   2. ingest deltas (the views become stale; base tables stay at the
///      old state until maintenance commits),
///   3. between maintenance periods, answer aggregate queries with bounded
///      approximations by cleaning a sample of the stale view,
///   4. periodically run full incremental maintenance and commit.
///
/// Thin orchestration over the library modules; benchmarks that need
/// fine-grained timing call the module APIs directly.
class SvcEngine {
 public:
  /// Takes ownership of the database holding the base relations.
  explicit SvcEngine(Database db) : db_(std::move(db)) {}

  /// Copying forks the engine state: the database copy shares table
  /// storage copy-on-write (see Database), views share their immutable
  /// plan trees, and the pending delta queue shares its sealed chunks
  /// (only rows queued since the previous fork are copied, O(new rows) —
  /// see DeltaSet). SharedEngine uses this to publish immutable snapshots;
  /// MaintainAll uses it to commit atomically.
  SvcEngine(const SvcEngine& other);
  SvcEngine& operator=(const SvcEngine& other);
  SvcEngine(SvcEngine&&) = default;
  SvcEngine& operator=(SvcEngine&&) = default;

  Database* db() { return &db_; }
  const Database& db() const { return db_; }

  /// Default executor parallelism for engine-driven plan executions
  /// (maintenance, fresh-view computation). Query-time parallelism comes
  /// from SvcQueryOptions::exec.
  void set_exec_options(ExecOptions exec) { exec_options_ = exec; }
  const ExecOptions& exec_options() const { return exec_options_; }

  /// Creates and materializes a view. See MaterializedView::Create.
  Status CreateView(const std::string& name, PlanPtr definition,
                    std::vector<std::string> sampling_key = {});

  /// Looks up view metadata (errors list the known views).
  Result<const MaterializedView*> GetView(const std::string& name) const;

  /// Cheap existence probe (no error-message construction).
  bool HasView(const std::string& name) const {
    return views_.count(name) > 0;
  }

  /// Names of all registered views.
  std::vector<std::string> ViewNames() const;

  // ---- Delta ingestion -----------------------------------------------------
  Status InsertRecord(const std::string& relation, Row row);
  Status DeleteRecord(const std::string& relation, Row row);
  Status UpdateRecord(const std::string& relation, Row old_row, Row new_row);
  /// Merges a whole batch of deltas.
  Status IngestDeltas(DeltaSet&& deltas);

  /// Deltas accumulated since the last MaintainAll.
  const DeltaSet& pending() const { return pending_; }
  bool IsStale() const { return !pending_.empty(); }

  /// Overwrites the pending queue's mutation counter. Only for checkpoint
  /// restore (storage/serde re-pairs the decoded queue with its persisted
  /// counter); never call this on a live engine.
  void RestorePendingVersion(uint64_t v) { pending_.RestoreVersion(v); }

  /// Rebuilds base relation `relation` — and its pending delta queues —
  /// keeping only rows for which `keep` returns true, preserving row
  /// order. Used by ShardedEngine when a relation becomes hash-partitioned:
  /// each shard drops the rows it does not own. Must run before any view
  /// reads the relation (existing view contents are not rewritten).
  Status RepartitionRelation(const std::string& relation,
                             const std::function<bool(const Row&)>& keep);

  // ---- Maintenance ---------------------------------------------------------
  /// Full (incremental where possible) maintenance of every view, then
  /// commits the pending deltas into the base relations. The commit is
  /// transactional: on any error the engine (views, base tables, and the
  /// pending delta queue) is left exactly as it was — queued deltas are
  /// never dropped by a failed maintenance run.
  Status MaintainAll();

  /// The non-transactional body of MaintainAll: on error the engine may be
  /// left with half-applied maintenance. Only for callers that already run
  /// on a disposable fork which is discarded on error (SharedEngine::Commit
  /// publishes nothing when this fails), where MaintainAll's protective
  /// fork-and-swap would just fork the engine a second time.
  Status MaintainAllInPlace();

  /// Computes the up-to-date contents of one view without applying
  /// anything (oracle for accuracy evaluation).
  Result<Table> ComputeFreshView(const std::string& name) const;

  // ---- Sampling & estimation -----------------------------------------------
  /// Cleans a sample of the named stale view (Problem 1).
  Result<CorrespondingSamples> CleanSample(
      const std::string& name, const CleanOptions& opts,
      PushdownReport* report = nullptr) const;

  /// The cleaned-sample cache (§3.2's "clean once, query many" serving
  /// discipline): Query/QueryGrouped memoize the corresponding samples per
  /// (view, ratio, family) and revalidate against the engine version, so
  /// repeated queries between mutations pay only the estimator, and the
  /// first query after an ingest advances the cached sample incrementally
  /// when AdvanceCleanedSamples' gates allow. Answers are bit-identical
  /// with the cache on or off (enforced by tests/test_differential.cc).
  void set_sample_cache_enabled(bool enabled) {
    sample_cache_enabled_ = enabled;
  }
  bool sample_cache_enabled() const { return sample_cache_enabled_; }

  /// Per-view serving counters (hits/misses/cleans). Counters accumulate
  /// across forks — a SharedEngine's published snapshots carry them
  /// forward — and reset only with a fresh engine.
  std::map<std::string, ViewCacheStats> CacheStats() const {
    return sample_cache_->StatsSnapshot();
  }

  /// The memoized corresponding samples for a query against `name`,
  /// populated (or advanced, or revalidated) through the cache. This is
  /// the serving hot path behind Query/QueryGrouped; it is safe to call
  /// from any number of threads on a const engine (snapshot readers).
  /// `outcome`, when non-null, reports how the request was satisfied (a
  /// cache-disabled engine always reports kFullClean).
  Result<std::shared_ptr<const CorrespondingSamples>> CleanSampleCached(
      const std::string& name, const CleanOptions& opts,
      CacheOutcome* outcome = nullptr) const;

  /// The engine's maintenance policy (SET MAINTENANCE POLICY). Engine
  /// state: forks copy it and checkpoints persist it. The engine itself
  /// never acts on it — SharedEngine/ShardedEngine own the scheduler
  /// thread that reads it (core/maintenance_policy.h).
  void set_maintenance_policy(const MaintenancePolicyConfig& cfg) {
    maintenance_policy_ = cfg;
  }
  const MaintenancePolicyConfig& maintenance_policy() const {
    return maintenance_policy_;
  }

  /// Answers an aggregate query on the named view with a bounded
  /// approximation reflecting the pending deltas (Problem 2).
  Result<SvcAnswer> Query(const std::string& name, const AggregateQuery& q,
                          const SvcQueryOptions& opts = {}) const;

  /// Per-group variant of Query: evaluates the same aggregate once per
  /// `group_columns` value (footnote 1 of §5.1 models GROUP BY as one query
  /// per group). Draws the corresponding samples once and shares them
  /// across every group's estimate.
  Result<SvcGroupedAnswer> QueryGrouped(
      const std::string& name, const std::vector<std::string>& group_columns,
      const AggregateQuery& q, const SvcQueryOptions& opts = {}) const;

  /// The (stale) exact answer, for comparison.
  Result<double> QueryStale(const std::string& name,
                            const AggregateQuery& q) const;

 private:
  /// Shared prologue of Query / QueryGrouped: draws the corresponding
  /// samples for `name` (through the cache) and resolves the estimator
  /// mode (running the §5.2.2 break-even rule when `opts.auto_mode` is
  /// set).
  Result<std::shared_ptr<const CorrespondingSamples>> PrepareSvcQuery(
      const std::string& name, const AggregateQuery& q,
      const SvcQueryOptions& opts, EstimatorMode* mode_used) const;

  Database db_;
  std::map<std::string, MaterializedView> views_;
  DeltaSet pending_;
  ExecOptions exec_options_;
  MaintenancePolicyConfig maintenance_policy_;
  /// Behind shared_ptr so the engine stays movable (the cache holds
  /// mutexes); forks never share the pointee — the fork constructor makes
  /// a fresh cache and copies the entries (see SampleCache::CopyFrom).
  std::shared_ptr<SampleCache> sample_cache_ =
      std::make_shared<SampleCache>();
  bool sample_cache_enabled_ = true;
};

}  // namespace svc

#endif  // SVC_CORE_SVC_H_
