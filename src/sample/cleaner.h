#ifndef SVC_SAMPLE_CLEANER_H_
#define SVC_SAMPLE_CLEANER_H_

#include <memory>
#include <string>

#include "common/hash.h"
#include "common/status.h"
#include "relational/database.h"
#include "relational/executor.h"
#include "sample/pushdown.h"
#include "view/delta.h"
#include "view/maintenance.h"
#include "view/view.h"

namespace svc {

/// Options controlling sample materialization and cleaning.
struct CleanOptions {
  CleanOptions() = default;
  CleanOptions(double ratio_in, HashFamily family_in, ExecOptions exec_in = {})
      : ratio(ratio_in), family(family_in), exec(exec_in) {}

  /// Sampling ratio m ∈ (0, 1].
  double ratio = 0.1;
  /// Hash family used by η.
  HashFamily family = HashFamily::kFnv1a;
  /// Executor options (thread count) for running the cleaning plans. The
  /// samples drawn are identical at any thread count.
  ExecOptions exec;
};

/// A pair of corresponding samples (Property 1): Ŝ is a uniform sample of
/// the stale view, Ŝ' of the up-to-date view, drawn with the same
/// deterministic hash so their primary keys correspond: superfluous keys
/// leave, missing keys enter at rate m, and surviving keys are preserved.
/// Both tables carry the view's stored schema and primary key.
struct CorrespondingSamples {
  Table stale;   ///< Ŝ — sample of the stale view
  Table fresh;   ///< Ŝ' — sample of the up-to-date view
  double ratio = 0.1;
  HashFamily family = HashFamily::kFnv1a;
  /// The sampling-key column names (stored-schema references) the hash was
  /// applied to; consumers such as the outlier merge re-derive key
  /// membership from these.
  std::vector<std::string> key_columns;
};

/// Materializes the dirty sample Ŝ = η_{sampling_key, m}(S) from the stored
/// view table.
Result<Table> MaterializeStaleSample(const MaterializedView& view,
                                     const Database& db,
                                     const CleanOptions& opts);

/// Solves Problem 1 (Stale Sample View Cleaning): derives the cleaning
/// expression C from the maintenance strategy M by splicing η onto the
/// merge join (Figure 3) and pushing it down the change-table branch, then
/// executes C to produce the clean sample Ŝ'. The deltas must already be
/// registered in `db`.
///
/// Returns both corresponding samples. `report` (optional) records how far
/// η pushed — views whose definitions block the push-down (the paper's V21
/// and V22) clean more slowly but still correctly.
Result<CorrespondingSamples> CleanViewSample(const MaterializedView& view,
                                             const DeltaSet& deltas,
                                             const Database& db,
                                             const CleanOptions& opts,
                                             PushdownReport* report = nullptr);

/// Builds (but does not execute) the cleaning expression C for inspection
/// and benchmarking. kNoOp maintenance yields the trivial η(Scan(view)).
Result<PlanPtr> BuildCleaningPlan(const MaterializedView& view,
                                  const DeltaSet& deltas, const Database& db,
                                  const CleanOptions& opts,
                                  PushdownReport* report = nullptr);

/// Key-set variant of cleaning, used by the outlier-index push-up
/// (Definition 5): instead of a hash sample, materializes exactly the
/// up-to-date view rows whose sampling-key value is in `keys` (encoded with
/// EncodeRowKey over the sampling-key columns). The same push-down
/// machinery applies, so only the affected keys' rows are computed.
Result<Table> CleanViewByKeys(const MaterializedView& view,
                              const DeltaSet& deltas, const Database& db,
                              std::shared_ptr<const KeySet> keys,
                              PushdownReport* report = nullptr,
                              ExecOptions exec = {});

/// The stale view rows whose sampling-key value is in `keys`.
Result<Table> StaleViewRowsByKeys(const MaterializedView& view,
                                  const Database& db,
                                  std::shared_ptr<const KeySet> keys,
                                  ExecOptions exec = {});

/// Incremental sample maintenance: advances `base` — corresponding samples
/// cleaned when the pending queue stood at `mark` — to the full current
/// `deltas` by cleaning only the rows that arrived after `mark`, instead of
/// re-running the whole cleaning pipeline.
///
/// The advanced samples are **bit-identical** (row values and row order) to
/// what CleanViewSample would produce cold, which the serving cache depends
/// on: estimates drawn from an advanced sample match the cold path to the
/// last bit. That guarantee is only provable for a restricted shape, so the
/// advance is gated and returns null (OK status) whenever any of these
/// fails — the caller must then fall back to a full re-clean:
///
///   * `opts` matches the ratio/family `base` was drawn with,
///   * the view is an aggregate view whose pre-aggregation subtree is
///     σ/Π/inner-⋈ over single scans (no self-joins of the hot relation),
///   * the pending queue is insert-only for the view's base relations, and
///     exactly one of them gained rows since `mark`,
///   * `mark` still describes a prefix of the queue (it predates no
///     maintenance commit).
///
/// Under those conditions new groups enter the change table strictly after
/// all previously queued groups and no group ever leaves, so splicing the
/// recomputed rows of the affected sampled keys (via the key-set cleaning
/// plan over the full queue) into `base` reproduces the cold output
/// exactly. When no newly arrived row lands in the sample, `base` itself is
/// returned unchanged.
Result<std::shared_ptr<const CorrespondingSamples>> AdvanceCleanedSamples(
    const MaterializedView& view,
    std::shared_ptr<const CorrespondingSamples> base,
    const DeltaWatermark& mark, const DeltaSet& deltas, const Database& db,
    const CleanOptions& opts);

}  // namespace svc

#endif  // SVC_SAMPLE_CLEANER_H_
