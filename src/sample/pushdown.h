#ifndef SVC_SAMPLE_PUSHDOWN_H_
#define SVC_SAMPLE_PUSHDOWN_H_

#include <functional>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"

namespace svc {

/// Where the push-down rewriter placed (or stopped) sampling operators.
struct PushdownReport {
  /// Number of η operators sitting directly above base-relation scans
  /// (fully pushed; the scan itself is the only work above the sample).
  int at_scan = 0;
  /// Number of η operators stopped above a non-scan operator.
  int blocked = 0;
  /// One line per blocked site explaining why (mirrors the paper's
  /// discussion of V21/V22).
  std::vector<std::string> blocked_reasons;

  bool FullyPushed() const { return blocked == 0; }
};

/// Rewrites η_{attrs, m}(plan) by pushing the sampling operator down the
/// expression tree as far as the rules of Definition 3 allow:
///
///   * σ, η       — push through
///   * Π          — push through iff every sampled attribute survives as a
///                  pure column reference
///   * γ          — push through iff every sampled attribute is a group-by
///                  column
///   * ∪, ∩, −    — push through to both children (positional mapping)
///   * ⋈          — push to both sides when the sampled attributes are
///                  equi-join keys (valid for inner and outer joins); push
///                  to one side of an inner join when they all come from
///                  that side (subsumes the paper's foreign-key rule);
///                  blocked otherwise
///   * scan       — stop; η lands directly above the leaf
///
/// By Theorem 1 the rewritten plan materializes exactly the same sample as
/// applying η at the root. `attrs` are references valid in `plan`'s output
/// schema. Returns the rewritten tree; `report` (optional) records where η
/// landed.
Result<PlanPtr> PushDownHashFilter(const PlanNode& plan,
                                   const std::vector<std::string>& attrs,
                                   double ratio, HashFamily family,
                                   const Database& db,
                                   PushdownReport* report = nullptr);

/// Constructs the filter node placed by the push-down: given a child plan
/// and the attribute references valid at that level, returns the filter
/// applied to the child. The push-down rules are valid for any
/// deterministic filter keyed on the attributes' values (η is the hashing
/// instance; the outlier index push-up uses an explicit key-set instance).
using FilterFactory =
    std::function<PlanPtr(PlanPtr, const std::vector<std::string>&)>;

/// Generic form of the push-down used by both η and key-set filters.
Result<PlanPtr> PushDownFilter(const PlanNode& plan,
                               const std::vector<std::string>& attrs,
                               const FilterFactory& factory,
                               const Database& db,
                               PushdownReport* report = nullptr);

}  // namespace svc

#endif  // SVC_SAMPLE_PUSHDOWN_H_
