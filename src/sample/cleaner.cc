#include "sample/cleaner.h"

#include "relational/executor.h"
#include "relational/keys.h"

namespace svc {

namespace {

/// Maps the view's sampling key into the change-table output space
/// ("__ct.g<j>" references). For aggregate views stored group column i maps
/// to g<i>; for SPJ views stored pk position p maps to the j-th group
/// column of the per-key change table.
Result<std::vector<std::string>> SamplingKeyInChangeTable(
    const MaterializedView& view, const Database& db) {
  std::vector<std::string> out;
  if (view.view_class() == ViewClass::kAggregate) {
    for (const auto& k : view.sampling_key()) {
      size_t pos = 0;
      while (view.stored_cols()[pos].name != k) ++pos;
      out.push_back("__ct.g" + std::to_string(pos));
    }
    return out;
  }
  // SPJ: the change table groups by the derived pk in def_pk() order.
  SVC_ASSIGN_OR_RETURN(Schema def_schema,
                       ComputeSchema(*view.definition(), db));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> pk_pos,
                       def_schema.ResolveAll(view.def_pk()));
  for (const auto& k : view.sampling_key()) {
    size_t stored_pos = 0;
    while (view.stored_cols()[stored_pos].name != k) ++stored_pos;
    bool found = false;
    for (size_t j = 0; j < pk_pos.size(); ++j) {
      if (pk_pos[j] == stored_pos) {
        out.push_back("__ct.g" + std::to_string(j));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "sampling key column '" + k +
          "' of an SPJ view must be part of the view's primary key");
    }
  }
  return out;
}

}  // namespace

Result<Table> MaterializeStaleSample(const MaterializedView& view,
                                     const Database& db,
                                     const CleanOptions& opts) {
  PlanPtr plan = PlanNode::HashFilter(PlanNode::Scan(view.name()),
                                      view.sampling_key(), opts.ratio,
                                      opts.family);
  SVC_ASSIGN_OR_RETURN(Table sample, ExecutePlan(*plan, db, opts.exec));
  SVC_RETURN_IF_ERROR(sample.SetPrimaryKey(view.stored_pk()));
  return sample;
}

namespace {

/// Shared skeleton for η and key-set cleaning plans: splices the filter
/// onto both branches of the merge join (Figure 3) or pushes it into the
/// recompute expression.
Result<PlanPtr> BuildFilteredCleaningPlan(const MaterializedView& view,
                                          const DeltaSet& deltas,
                                          const Database& db,
                                          const FilterFactory& factory,
                                          PushdownReport* report) {
  SVC_ASSIGN_OR_RETURN(MaintenancePlan m,
                       BuildMaintenancePlan(view, deltas, db));
  switch (m.kind) {
    case MaintenanceKind::kNoOp:
      // Nothing stale: C degenerates to the filter over the view itself.
      return factory(PlanNode::Scan(view.name()), view.sampling_key());
    case MaintenanceKind::kRecompute: {
      // C = pushdown(η(recompute)). The recompute plan's output schema is
      // the stored schema, so the stored sampling key applies directly.
      return PushDownFilter(*m.plan, view.sampling_key(), factory, db,
                            report);
    }
    case MaintenanceKind::kChangeTable: {
      // Figure 3: the filter lands above the stale-view scan on the left
      // branch of the merge join and pushes down the change-table branch.
      PlanPtr view_branch =
          factory(m.merge_join->child(0), view.sampling_key());
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> ct_attrs,
                           SamplingKeyInChangeTable(view, db));
      SVC_ASSIGN_OR_RETURN(
          PlanPtr ct_branch,
          PushDownFilter(*m.merge_join->child(1), ct_attrs, factory, db,
                         report));
      m.merge_join->set_child(0, std::move(view_branch));
      m.merge_join->set_child(1, std::move(ct_branch));
      return m.plan;
    }
  }
  return Status::Internal("unreachable maintenance kind");
}

}  // namespace

Result<PlanPtr> BuildCleaningPlan(const MaterializedView& view,
                                  const DeltaSet& deltas, const Database& db,
                                  const CleanOptions& opts,
                                  PushdownReport* report) {
  FilterFactory factory = [&opts](PlanPtr child,
                                  const std::vector<std::string>& attrs) {
    return PlanNode::HashFilter(std::move(child), attrs, opts.ratio,
                                opts.family);
  };
  return BuildFilteredCleaningPlan(view, deltas, db, factory, report);
}

Result<Table> CleanViewByKeys(const MaterializedView& view,
                              const DeltaSet& deltas, const Database& db,
                              std::shared_ptr<const KeySet> keys,
                              PushdownReport* report, ExecOptions exec) {
  FilterFactory factory = [&keys](PlanPtr child,
                                  const std::vector<std::string>& attrs) {
    return PlanNode::KeySetFilter(std::move(child), attrs, keys);
  };
  SVC_ASSIGN_OR_RETURN(
      PlanPtr c, BuildFilteredCleaningPlan(view, deltas, db, factory, report));
  SVC_ASSIGN_OR_RETURN(Table fresh, ExecutePlan(*c, db, exec));
  SVC_RETURN_IF_ERROR(fresh.SetPrimaryKey(view.stored_pk()));
  return fresh;
}

Result<Table> StaleViewRowsByKeys(const MaterializedView& view,
                                  const Database& db,
                                  std::shared_ptr<const KeySet> keys,
                                  ExecOptions exec) {
  PlanPtr plan = PlanNode::KeySetFilter(PlanNode::Scan(view.name()),
                                        view.sampling_key(), std::move(keys));
  SVC_ASSIGN_OR_RETURN(Table out, ExecutePlan(*plan, db, exec));
  SVC_RETURN_IF_ERROR(out.SetPrimaryKey(view.stored_pk()));
  return out;
}

Result<CorrespondingSamples> CleanViewSample(const MaterializedView& view,
                                             const DeltaSet& deltas,
                                             const Database& db,
                                             const CleanOptions& opts,
                                             PushdownReport* report) {
  CorrespondingSamples out;
  out.ratio = opts.ratio;
  out.family = opts.family;
  out.key_columns = view.sampling_key();
  SVC_ASSIGN_OR_RETURN(out.stale, MaterializeStaleSample(view, db, opts));
  SVC_ASSIGN_OR_RETURN(PlanPtr c,
                       BuildCleaningPlan(view, deltas, db, opts, report));
  SVC_ASSIGN_OR_RETURN(out.fresh, ExecutePlan(*c, db, opts.exec));
  SVC_RETURN_IF_ERROR(out.fresh.SetPrimaryKey(view.stored_pk()));
  return out;
}

}  // namespace svc
