#include "sample/cleaner.h"

#include "common/flat_map.h"
#include "relational/executor.h"
#include "relational/keys.h"
#include "relational/row_key.h"

namespace svc {

namespace {

/// Maps the view's sampling key into the change-table output space
/// ("__ct.g<j>" references). For aggregate views stored group column i maps
/// to g<i>; for SPJ views stored pk position p maps to the j-th group
/// column of the per-key change table.
Result<std::vector<std::string>> SamplingKeyInChangeTable(
    const MaterializedView& view, const Database& db) {
  std::vector<std::string> out;
  if (view.view_class() == ViewClass::kAggregate) {
    for (const auto& k : view.sampling_key()) {
      size_t pos = 0;
      while (view.stored_cols()[pos].name != k) ++pos;
      out.push_back("__ct.g" + std::to_string(pos));
    }
    return out;
  }
  // SPJ: the change table groups by the derived pk in def_pk() order.
  SVC_ASSIGN_OR_RETURN(Schema def_schema,
                       ComputeSchema(*view.definition(), db));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> pk_pos,
                       def_schema.ResolveAll(view.def_pk()));
  for (const auto& k : view.sampling_key()) {
    size_t stored_pos = 0;
    while (view.stored_cols()[stored_pos].name != k) ++stored_pos;
    bool found = false;
    for (size_t j = 0; j < pk_pos.size(); ++j) {
      if (pk_pos[j] == stored_pos) {
        out.push_back("__ct.g" + std::to_string(j));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          "sampling key column '" + k +
          "' of an SPJ view must be part of the view's primary key");
    }
  }
  return out;
}

}  // namespace

Result<Table> MaterializeStaleSample(const MaterializedView& view,
                                     const Database& db,
                                     const CleanOptions& opts) {
  PlanPtr plan = PlanNode::HashFilter(PlanNode::Scan(view.name()),
                                      view.sampling_key(), opts.ratio,
                                      opts.family);
  SVC_ASSIGN_OR_RETURN(Table sample, ExecutePlan(*plan, db, opts.exec));
  SVC_RETURN_IF_ERROR(sample.SetPrimaryKey(view.stored_pk()));
  return sample;
}

namespace {

/// Shared skeleton for η and key-set cleaning plans: splices the filter
/// onto both branches of the merge join (Figure 3) or pushes it into the
/// recompute expression.
Result<PlanPtr> BuildFilteredCleaningPlan(const MaterializedView& view,
                                          const DeltaSet& deltas,
                                          const Database& db,
                                          const FilterFactory& factory,
                                          PushdownReport* report) {
  SVC_ASSIGN_OR_RETURN(MaintenancePlan m,
                       BuildMaintenancePlan(view, deltas, db));
  switch (m.kind) {
    case MaintenanceKind::kNoOp:
      // Nothing stale: C degenerates to the filter over the view itself.
      return factory(PlanNode::Scan(view.name()), view.sampling_key());
    case MaintenanceKind::kRecompute: {
      // C = pushdown(η(recompute)). The recompute plan's output schema is
      // the stored schema, so the stored sampling key applies directly.
      return PushDownFilter(*m.plan, view.sampling_key(), factory, db,
                            report);
    }
    case MaintenanceKind::kChangeTable: {
      // Figure 3: the filter lands above the stale-view scan on the left
      // branch of the merge join and pushes down the change-table branch.
      PlanPtr view_branch =
          factory(m.merge_join->child(0), view.sampling_key());
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> ct_attrs,
                           SamplingKeyInChangeTable(view, db));
      SVC_ASSIGN_OR_RETURN(
          PlanPtr ct_branch,
          PushDownFilter(*m.merge_join->child(1), ct_attrs, factory, db,
                         report));
      m.merge_join->set_child(0, std::move(view_branch));
      m.merge_join->set_child(1, std::move(ct_branch));
      return m.plan;
    }
  }
  return Status::Internal("unreachable maintenance kind");
}

}  // namespace

Result<PlanPtr> BuildCleaningPlan(const MaterializedView& view,
                                  const DeltaSet& deltas, const Database& db,
                                  const CleanOptions& opts,
                                  PushdownReport* report) {
  FilterFactory factory = [&opts](PlanPtr child,
                                  const std::vector<std::string>& attrs) {
    return PlanNode::HashFilter(std::move(child), attrs, opts.ratio,
                                opts.family);
  };
  return BuildFilteredCleaningPlan(view, deltas, db, factory, report);
}

Result<Table> CleanViewByKeys(const MaterializedView& view,
                              const DeltaSet& deltas, const Database& db,
                              std::shared_ptr<const KeySet> keys,
                              PushdownReport* report, ExecOptions exec) {
  FilterFactory factory = [&keys](PlanPtr child,
                                  const std::vector<std::string>& attrs) {
    return PlanNode::KeySetFilter(std::move(child), attrs, keys);
  };
  SVC_ASSIGN_OR_RETURN(
      PlanPtr c, BuildFilteredCleaningPlan(view, deltas, db, factory, report));
  SVC_ASSIGN_OR_RETURN(Table fresh, ExecutePlan(*c, db, exec));
  SVC_RETURN_IF_ERROR(fresh.SetPrimaryKey(view.stored_pk()));
  return fresh;
}

Result<Table> StaleViewRowsByKeys(const MaterializedView& view,
                                  const Database& db,
                                  std::shared_ptr<const KeySet> keys,
                                  ExecOptions exec) {
  PlanPtr plan = PlanNode::KeySetFilter(PlanNode::Scan(view.name()),
                                        view.sampling_key(), std::move(keys));
  SVC_ASSIGN_OR_RETURN(Table out, ExecutePlan(*plan, db, exec));
  SVC_RETURN_IF_ERROR(out.SetPrimaryKey(view.stored_pk()));
  return out;
}

Result<CorrespondingSamples> CleanViewSample(const MaterializedView& view,
                                             const DeltaSet& deltas,
                                             const Database& db,
                                             const CleanOptions& opts,
                                             PushdownReport* report) {
  CorrespondingSamples out;
  out.ratio = opts.ratio;
  out.family = opts.family;
  out.key_columns = view.sampling_key();
  SVC_ASSIGN_OR_RETURN(out.stale, MaterializeStaleSample(view, db, opts));
  SVC_ASSIGN_OR_RETURN(PlanPtr c,
                       BuildCleaningPlan(view, deltas, db, opts, report));
  SVC_ASSIGN_OR_RETURN(out.fresh, ExecutePlan(*c, db, opts.exec));
  SVC_RETURN_IF_ERROR(out.fresh.SetPrimaryKey(view.stored_pk()));
  return out;
}

namespace {

/// True iff `node` admits the order-preserving advance: only σ/Π/inner-⋈
/// over scans, with `rel` scanned at most `*budget` times (decremented per
/// scan; a self-join of the hot relation would fan its delta rows into
/// multiple join terms whose interleaving the stitch cannot reproduce).
bool AdvanceableSubtree(const PlanNode& node, const std::string& rel,
                        int* budget) {
  switch (node.kind()) {
    case PlanKind::kScan:
      if (node.table_name() == rel && --*budget < 0) return false;
      return true;
    case PlanKind::kSelect:
    case PlanKind::kProject:
      return AdvanceableSubtree(*node.child(0), rel, budget);
    case PlanKind::kJoin:
      return node.join_type() == JoinType::kInner &&
             AdvanceableSubtree(*node.child(0), rel, budget) &&
             AdvanceableSubtree(*node.child(1), rel, budget);
    default:
      // Aggregates, set operations, and filters below the top aggregate
      // take the generic-diff path whose change-table order the stitch
      // cannot mirror.
      return false;
  }
}

}  // namespace

Result<std::shared_ptr<const CorrespondingSamples>> AdvanceCleanedSamples(
    const MaterializedView& view,
    std::shared_ptr<const CorrespondingSamples> base,
    const DeltaWatermark& mark, const DeltaSet& deltas, const Database& db,
    const CleanOptions& opts) {
  const std::shared_ptr<const CorrespondingSamples> reject;  // fall back
  if (base == nullptr || opts.ratio != base->ratio ||
      opts.family != base->family) {
    return reject;
  }

  // Per-relation delta movement since the sample was cleaned. Deletes are
  // out of scope entirely: they can evict groups (reopening slots in the
  // change-table order) and interleave insert/delete scan sites.
  const auto marked = [](const std::map<std::string, size_t>& m,
                         const std::string& rel) {
    auto it = m.find(rel);
    return it == m.end() ? size_t{0} : it->second;
  };
  std::string grew;  // the one relation with new rows
  for (const std::string& rel : view.base_relations()) {
    if (deltas.DeleteRows(rel) > 0) return reject;
    const size_t now = deltas.InsertRows(rel);
    const size_t then = marked(mark.insert_rows, rel);
    if (now < then || marked(mark.delete_rows, rel) > 0) {
      return reject;  // stale watermark (a maintenance commit intervened)
    }
    if (now == then) continue;
    if (!grew.empty()) return reject;  // more than one relation grew
    grew = rel;
  }
  if (grew.empty()) {
    // Version moved but none of this view's relations did (deltas for
    // other views' relations): the samples are exact as-is.
    return base;
  }

  if (view.view_class() != ViewClass::kAggregate) return reject;
  // augmented = Project(rename, Aggregate(child, ...)); the advance
  // reasons about the aggregate's input subtree.
  const PlanNode& agg = *view.augmented_plan()->child(0);
  int budget = 1;
  if (!AdvanceableSubtree(*agg.child(0), grew, &budget)) return reject;

  // The rows that arrived after the mark, registered over a scratch
  // snapshot of the catalog so the delta-scoped probe scans only them.
  auto slice = deltas.SliceSince(mark);
  if (!slice.ok()) return reject;  // watermark raced a commit: fall back
  Database scratch = db;
  SVC_RETURN_IF_ERROR(slice.value().Register(&scratch));
  int site_counter = 0;
  SVC_ASSIGN_OR_RETURN(
      PlanPtr probe,
      DeriveDeltaStream(*agg.child(0), slice.value(), scratch,
                        &site_counter));
  if (probe == nullptr) return base;  // nothing under this view moved
  SVC_ASSIGN_OR_RETURN(Table moved, ExecutePlan(*probe, scratch, opts.exec));

  // Affected sampling keys that land in the sample. The probe's output is
  // the aggregate child's space, where sampling_key_def() resolves; the
  // key bytes equal the stored-space encoding η hashes (group values pass
  // through the aggregate unchanged).
  SVC_ASSIGN_OR_RETURN(
      std::vector<size_t> key_idx,
      moved.schema().ResolveAll(view.sampling_key_def()));
  auto affected = std::make_shared<KeySet>();
  {
    KeyBuffer kb;
    for (const Row& r : moved.rows()) {
      const RowKeyRef key = kb.Encode(r, key_idx);
      if (!HashInSample(key.bytes, opts.ratio, opts.family)) continue;
      affected->Insert(key.bytes, key.hash);
    }
  }
  if (affected->empty()) return base;  // no new row is visible to η

  // Recompute exactly the affected keys' up-to-date rows over the *full*
  // queue — per affected group this aggregates the same delta rows in the
  // same order as the cold cleaning plan, so the values are bit-identical.
  SVC_ASSIGN_OR_RETURN(
      Table repaired,
      CleanViewByKeys(view, deltas, db, affected, nullptr, opts.exec));

  // Stitch: replace affected rows in place, then append the rows of groups
  // the new deltas created. Cold-path order is reproduced because, with an
  // insert-only queue, existing groups keep their first-contribution slot
  // and new groups enter strictly after every previously queued group.
  SVC_ASSIGN_OR_RETURN(
      std::vector<size_t> stored_key_idx,
      base->fresh.schema().ResolveAll(view.sampling_key()));
  Table fresh(base->fresh.schema());
  std::vector<bool> used(repaired.NumRows(), false);
  KeyBuffer kb;
  for (size_t i = 0; i < base->fresh.NumRows(); ++i) {
    const Row& r = base->fresh.row(i);
    const RowKeyRef key = kb.Encode(r, stored_key_idx);
    if (!affected->Contains(key.bytes, key.hash)) {
      fresh.AppendUnchecked(r);
      continue;
    }
    auto at = repaired.FindByKeyOf(r);
    if (!at.ok()) return reject;  // group vanished: not insert-only after all
    used[*at] = true;
    fresh.AppendUnchecked(repaired.row(*at));
  }
  for (size_t i = 0; i < repaired.NumRows(); ++i) {
    if (!used[i]) fresh.AppendUnchecked(repaired.row(i));
  }
  SVC_RETURN_IF_ERROR(fresh.SetPrimaryKey(view.stored_pk()));

  auto out = std::make_shared<CorrespondingSamples>();
  out->stale = base->stale;
  out->fresh = std::move(fresh);
  out->ratio = base->ratio;
  out->family = base->family;
  out->key_columns = base->key_columns;
  return std::shared_ptr<const CorrespondingSamples>(std::move(out));
}

}  // namespace svc
