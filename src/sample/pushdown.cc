#include "sample/pushdown.h"

#include <optional>

namespace svc {

namespace {

struct Rewriter {
  const Database& db;
  const FilterFactory& factory;
  PushdownReport* report;

  PlanPtr Stop(PlanPtr node, const std::vector<std::string>& attrs,
               const std::string& reason) {
    if (report) {
      ++report->blocked;
      report->blocked_reasons.push_back(reason);
    }
    return factory(std::move(node), attrs);
  }

  Result<PlanPtr> Push(const PlanNode& node,
                       const std::vector<std::string>& attrs) {
    switch (node.kind()) {
      case PlanKind::kScan: {
        if (report) ++report->at_scan;
        return factory(node.Clone(), attrs);
      }
      case PlanKind::kSelect: {
        SVC_ASSIGN_OR_RETURN(PlanPtr c, Push(*node.child(0), attrs));
        return PlanNode::Select(std::move(c), node.predicate()->Clone());
      }
      case PlanKind::kHashFilter: {
        // Two independent deterministic filters commute.
        SVC_ASSIGN_OR_RETURN(PlanPtr c, Push(*node.child(0), attrs));
        PlanPtr copy = node.Clone();
        copy->set_child(0, std::move(c));
        return copy;
      }
      case PlanKind::kProject: {
        SVC_ASSIGN_OR_RETURN(Schema child_schema,
                             ComputeSchema(*node.child(0), db));
        std::vector<std::string> mapped;
        for (const auto& a : attrs) {
          std::optional<std::string> hit;
          for (const auto& item : node.project_items()) {
            if (item.FullName() != a && item.alias != a) continue;
            if (item.expr->kind() == ExprKind::kColumn) {
              hit = item.expr->column_ref();
            }
            break;
          }
          if (!hit.has_value()) {
            return Stop(node.Clone(), attrs,
                        "projection does not expose sampling attribute '" +
                            a + "' as a pure column reference");
          }
          mapped.push_back(*hit);
        }
        (void)child_schema;
        SVC_ASSIGN_OR_RETURN(PlanPtr c, Push(*node.child(0), mapped));
        std::vector<ProjectItem> items;
        for (const auto& it : node.project_items()) {
          items.push_back({it.alias, it.expr->Clone(), it.out_qualifier});
        }
        return PlanNode::Project(std::move(c), std::move(items));
      }
      case PlanKind::kAggregate: {
        SVC_ASSIGN_OR_RETURN(Schema out_schema, ComputeSchema(node, db));
        std::vector<std::string> mapped;
        for (const auto& a : attrs) {
          SVC_ASSIGN_OR_RETURN(size_t pos, out_schema.Resolve(a));
          if (pos >= node.group_by().size()) {
            return Stop(node.Clone(), attrs,
                        "sampling attribute '" + a +
                            "' is not a group-by column of the aggregate");
          }
          mapped.push_back(node.group_by()[pos]);
        }
        SVC_ASSIGN_OR_RETURN(PlanPtr c, Push(*node.child(0), mapped));
        std::vector<AggItem> aggs;
        for (const auto& ag : node.aggregates()) {
          aggs.push_back({ag.func, ag.input ? ag.input->Clone() : nullptr,
                          ag.alias});
        }
        return PlanNode::Aggregate(std::move(c), node.group_by(),
                                   std::move(aggs));
      }
      case PlanKind::kUnion:
      case PlanKind::kIntersect:
      case PlanKind::kDifference: {
        // Output schema equals the left schema; map attributes to the right
        // child positionally.
        SVC_ASSIGN_OR_RETURN(Schema ls, ComputeSchema(*node.child(0), db));
        SVC_ASSIGN_OR_RETURN(Schema rs, ComputeSchema(*node.child(1), db));
        std::vector<std::string> rattrs;
        for (const auto& a : attrs) {
          SVC_ASSIGN_OR_RETURN(size_t pos, ls.Resolve(a));
          rattrs.push_back(rs.column(pos).FullName());
        }
        SVC_ASSIGN_OR_RETURN(PlanPtr l, Push(*node.child(0), attrs));
        SVC_ASSIGN_OR_RETURN(PlanPtr r, Push(*node.child(1), rattrs));
        switch (node.kind()) {
          case PlanKind::kUnion:
            return PlanNode::Union(std::move(l), std::move(r));
          case PlanKind::kIntersect:
            return PlanNode::Intersect(std::move(l), std::move(r));
          default:
            return PlanNode::Difference(std::move(l), std::move(r));
        }
      }
      case PlanKind::kJoin:
        return PushJoin(node, attrs);
    }
    return Status::Internal("unreachable plan kind");
  }

  Result<PlanPtr> PushJoin(const PlanNode& node,
                           const std::vector<std::string>& attrs) {
    SVC_ASSIGN_OR_RETURN(Schema ls, ComputeSchema(*node.child(0), db));
    SVC_ASSIGN_OR_RETURN(Schema rs, ComputeSchema(*node.child(1), db));
    const Schema out = Schema::Concat(ls, rs);
    const size_t nl = ls.NumColumns();

    // Resolve join-key pairs to output positions once.
    struct KeyPair {
      size_t left_pos;   // position in `out`
      size_t right_pos;  // position in `out`
      std::string left_ref;
      std::string right_ref;
    };
    std::vector<KeyPair> pairs;
    for (const auto& k : node.join_keys()) {
      SVC_ASSIGN_OR_RETURN(size_t lp, ls.Resolve(k.left));
      SVC_ASSIGN_OR_RETURN(size_t rp, rs.Resolve(k.right));
      pairs.push_back({lp, nl + rp, k.left, k.right});
    }

    // Classify each sampled attribute.
    bool all_left = true, all_right = true, all_keys = true;
    std::vector<std::string> left_attrs, right_attrs;
    std::vector<std::string> key_left, key_right;
    for (const auto& a : attrs) {
      SVC_ASSIGN_OR_RETURN(size_t pos, out.Resolve(a));
      if (pos < nl) {
        left_attrs.push_back(ls.column(pos).FullName());
        all_right = false;
      } else {
        right_attrs.push_back(rs.column(pos - nl).FullName());
        all_left = false;
      }
      bool is_key = false;
      for (const auto& p : pairs) {
        if (pos == p.left_pos || pos == p.right_pos) {
          key_left.push_back(p.left_ref);
          key_right.push_back(p.right_ref);
          is_key = true;
          break;
        }
      }
      all_keys = all_keys && is_key;
    }

    auto rebuild = [&](PlanPtr l, PlanPtr r) {
      return PlanNode::Join(
          std::move(l), std::move(r), node.join_type(), node.join_keys(),
          node.join_residual() ? node.join_residual()->Clone() : nullptr,
          node.fk_right());
    };

    if (all_keys && !attrs.empty() && node.join_type() == JoinType::kInner) {
      // Equality-join special case: the sampled attributes are join keys,
      // so filtering both inputs by the same hash keeps matched pairs
      // consistently. (Outer joins are excluded: a null-padded side would
      // hash NULL at the root but the pushed filter would hash the key.)
      SVC_ASSIGN_OR_RETURN(PlanPtr l, Push(*node.child(0), key_left));
      SVC_ASSIGN_OR_RETURN(PlanPtr r, Push(*node.child(1), key_right));
      return rebuild(std::move(l), std::move(r));
    }
    if (node.join_type() == JoinType::kInner && all_left) {
      // One-sided push: each output row's sampled attributes come from its
      // left constituent, so pre-filtering the left input removes exactly
      // the rows η would remove (this subsumes the paper's foreign-key
      // rule, where the right side is a dimension table).
      SVC_ASSIGN_OR_RETURN(PlanPtr l, Push(*node.child(0), left_attrs));
      return rebuild(std::move(l), node.child(1)->Clone());
    }
    if (node.join_type() == JoinType::kInner && all_right) {
      SVC_ASSIGN_OR_RETURN(PlanPtr r, Push(*node.child(1), right_attrs));
      return rebuild(node.child(0)->Clone(), std::move(r));
    }
    return Stop(node.Clone(), attrs,
                "join blocks push-down: sampling attributes span both "
                "sides and are not the equi-join keys");
  }
};

}  // namespace

Result<PlanPtr> PushDownFilter(const PlanNode& plan,
                               const std::vector<std::string>& attrs,
                               const FilterFactory& factory,
                               const Database& db, PushdownReport* report) {
  Rewriter rw{db, factory, report};
  return rw.Push(plan, attrs);
}

Result<PlanPtr> PushDownHashFilter(const PlanNode& plan,
                                   const std::vector<std::string>& attrs,
                                   double ratio, HashFamily family,
                                   const Database& db,
                                   PushdownReport* report) {
  FilterFactory factory = [ratio, family](
                              PlanPtr child,
                              const std::vector<std::string>& a) {
    return PlanNode::HashFilter(std::move(child), a, ratio, family);
  };
  return PushDownFilter(plan, attrs, factory, db, report);
}

}  // namespace svc
