#include "relational/executor.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/flat_map.h"
#include "relational/row_key.h"

namespace svc {

namespace {

/// Returns true if any of the row's `indices` is NULL (such join keys never
/// match).
bool AnyNull(const Row& row, const std::vector<size_t>& indices) {
  for (size_t i : indices) {
    if (row[i].is_null()) return true;
  }
  return false;
}

/// Counts the rows whose `indices` are all non-NULL — the exact number of
/// entries a join build or probe side contributes, so hash tables can be
/// reserved without overshooting on NULL-key rows.
size_t CountKeyedRows(const std::vector<Row>& rows,
                      const std::vector<size_t>& indices) {
  size_t n = 0;
  for (const Row& r : rows) {
    if (!AnyNull(r, indices)) ++n;
  }
  return n;
}

constexpr uint32_t kNoRow = UINT32_MAX;

/// A hash-join build index: encoded key -> head of an intrusive chain of
/// row positions (`prev` links rows sharing a key, newest first). Flat
/// open-addressing storage; one KeyBuffer reused across all rows.
struct JoinIndex {
  FlatKeyMap<uint32_t> heads;
  std::vector<uint32_t> prev;

  void Build(const std::vector<Row>& rows, const std::vector<size_t>& idx) {
    if (rows.size() >= kNoRow) {
      // A build side at the uint32 limit would wrap chain links (and row
      // kNoRow-1 would alias the sentinel): fail loudly, never corrupt.
      std::fprintf(stderr, "JoinIndex: build side exceeds 2^32-1 rows\n");
      std::abort();
    }
    heads.Reserve(CountKeyedRows(rows, idx));
    prev.assign(rows.size(), kNoRow);
    KeyBuffer kb;
    for (size_t i = 0; i < rows.size(); ++i) {
      RowKeyRef key;
      if (!kb.EncodeIfNonNull(rows[i], idx, &key)) continue;
      auto [head, inserted] =
          heads.Emplace(key.bytes, key.hash, static_cast<uint32_t>(i));
      if (!inserted) {
        prev[i] = *head;
        *head = static_cast<uint32_t>(i);
      }
    }
  }

  /// First matching row position for `key`, or kNoRow.
  uint32_t Head(const RowKeyRef& key) const {
    const uint32_t* head = heads.Find(key.bytes, key.hash);
    return head == nullptr ? kNoRow : *head;
  }
};

/// Shared setup for the inner-join paths (materializing ExecJoin and the
/// fused aggregate-over-join): resolved key columns for both children,
/// build-side selection (the smaller input builds), and the built hash
/// index. Keeping this in one place guarantees the fused path joins
/// exactly like the unfused one.
struct InnerJoin {
  const ExecTable* left = nullptr;
  const ExecTable* right = nullptr;
  std::vector<size_t> lidx, ridx;
  bool build_on_left = false;
  JoinIndex index;

  const ExecTable& build_side() const { return build_on_left ? *left : *right; }
  const ExecTable& probe_side() const { return build_on_left ? *right : *left; }
  const std::vector<size_t>& bidx() const { return build_on_left ? lidx : ridx; }
  const std::vector<size_t>& pidx() const { return build_on_left ? ridx : lidx; }

  static Result<InnerJoin> Prepare(const PlanNode& plan, const ExecTable& l,
                                   const ExecTable& r) {
    InnerJoin j;
    j.left = &l;
    j.right = &r;
    std::vector<std::string> lrefs, rrefs;
    for (const auto& k : plan.join_keys()) {
      lrefs.push_back(k.left);
      rrefs.push_back(k.right);
    }
    SVC_ASSIGN_OR_RETURN(j.lidx, l.schema().ResolveAll(lrefs));
    SVC_ASSIGN_OR_RETURN(j.ridx, r.schema().ResolveAll(rrefs));
    j.build_on_left = l.NumRows() < r.NumRows();
    j.index.Build(j.build_side().rows(), j.bidx());
    return j;
  }
};

/// Accumulator for one aggregate over one group.
struct AggState {
  int64_t count = 0;         // non-null inputs (or rows for count(*))
  int64_t isum = 0;          // integer sum
  double dsum = 0.0;         // double sum
  bool int_input = true;     // all inputs so far were ints
  Value min_v;               // running min (NULL = none)
  Value max_v;               // running max (NULL = none)
  std::vector<double> values;  // for median
  KeySet distinct;             // for count_distinct (flat, collision-safe)
};

/// Appends `row`'s values to `out` by copy.
void AppendValues(Row* out, const Row& row) {
  out->insert(out->end(), row.begin(), row.end());
}

/// Bound aggregate inputs for one Aggregate node. Column-reference inputs
/// (the overwhelmingly common case) are read by position, skipping the
/// virtual Eval and its Value copy per row.
struct AggSpec {
  const std::vector<AggItem>* aggs = nullptr;
  std::vector<ExprPtr> inputs;
  std::vector<ptrdiff_t> input_col;  ///< bound column position, or -1
  bool all_columns = true;  ///< no aggregate needs a full-row expression

  static Result<AggSpec> Prepare(const PlanNode& plan,
                                 const Schema& in_schema) {
    AggSpec spec;
    spec.aggs = &plan.aggregates();
    const auto& aggs = *spec.aggs;
    spec.inputs.resize(aggs.size());
    spec.input_col.assign(aggs.size(), -1);
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].input) {
        spec.inputs[a] = aggs[a].input->Clone();
        SVC_RETURN_IF_ERROR(spec.inputs[a]->Bind(in_schema));
        if (spec.inputs[a]->kind() == ExprKind::kColumn) {
          spec.input_col[a] =
              static_cast<ptrdiff_t>(spec.inputs[a]->bound_column_index());
        } else {
          spec.all_columns = false;
        }
      } else if (aggs[a].func != AggFunc::kCountStar) {
        return Status::InvalidArgument(
            "aggregate " + std::string(AggFuncName(aggs[a].func)) +
            " requires an input expression");
      }
    }
    return spec;
  }

  /// Output schema: group columns then aggregates.
  Schema OutputSchema(const Schema& in_schema,
                      const std::vector<size_t>& gidx) const {
    Schema out;
    for (size_t i : gidx) out.AddColumn(in_schema.column(i));
    for (size_t a = 0; a < aggs->size(); ++a) {
      ValueType t = ValueType::kInt;
      switch ((*aggs)[a].func) {
        case AggFunc::kAvg:
        case AggFunc::kMedian: t = ValueType::kDouble; break;
        case AggFunc::kSum:
        case AggFunc::kMin:
        case AggFunc::kMax:
          t = inputs[a] ? inputs[a]->result_type() : ValueType::kInt;
          break;
        default: t = ValueType::kInt; break;
      }
      out.AddColumn({"", (*aggs)[a].alias, t});
    }
    return out;
  }
};

/// Folds one non-null input value into an accumulator. `vb` is the shared
/// scratch buffer for count-distinct encodings.
void Accumulate(AggState* s, AggFunc func, const Value& v, KeyBuffer* vb) {
  switch (func) {
    case AggFunc::kSum:
      ++s->count;
      if (v.type() == ValueType::kInt && s->int_input) {
        s->isum += v.AsInt();
      } else {
        if (s->int_input) {
          s->dsum += static_cast<double>(s->isum);
          s->int_input = false;
        }
        s->dsum += v.ToDouble();
      }
      break;
    case AggFunc::kCount:
      ++s->count;
      break;
    case AggFunc::kAvg:
      ++s->count;
      s->dsum += v.ToDouble();
      break;
    case AggFunc::kMin:
      if (s->min_v.is_null() || v < s->min_v) s->min_v = v;
      break;
    case AggFunc::kMax:
      if (s->max_v.is_null() || s->max_v < v) s->max_v = v;
      break;
    case AggFunc::kMedian:
      s->values.push_back(v.ToDouble());
      break;
    case AggFunc::kCountDistinct: {
      const RowKeyRef enc = vb->EncodeValue(v);
      s->distinct.Insert(enc.bytes, enc.hash);
      break;
    }
    case AggFunc::kCountStar:
      break;
  }
}

/// Accumulates one materialized row into the group's `naggs` states.
void AccumulateRow(const Row& r, const AggSpec& spec, AggState* st,
                   KeyBuffer* vb) {
  const auto& aggs = *spec.aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].func == AggFunc::kCountStar) {
      ++st[a].count;
      continue;
    }
    Value computed;
    if (spec.input_col[a] < 0) computed = spec.inputs[a]->Eval(r);
    const Value& v = spec.input_col[a] >= 0 ? r[spec.input_col[a]] : computed;
    if (v.is_null()) continue;
    Accumulate(&st[a], aggs[a].func, v, vb);
  }
}

/// The finalized output value of one accumulator.
Value FinalizeAgg(AggState* s, AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      if (s->count == 0) return Value::Null();
      if (s->int_input) return Value::Int(s->isum);
      return Value::Double(s->dsum);
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Value::Int(s->count);
    case AggFunc::kAvg:
      return s->count == 0
                 ? Value::Null()
                 : Value::Double(s->dsum / static_cast<double>(s->count));
    case AggFunc::kMin:
      return s->min_v;
    case AggFunc::kMax:
      return s->max_v;
    case AggFunc::kMedian: {
      if (s->values.empty()) return Value::Null();
      auto& v = s->values;
      const size_t mid = v.size() / 2;
      std::nth_element(v.begin(), v.begin() + mid, v.end());
      double med = v[mid];
      if (v.size() % 2 == 0) {
        const double lo = *std::max_element(v.begin(), v.begin() + mid);
        med = (med + lo) / 2.0;
      }
      return Value::Double(med);
    }
    case AggFunc::kCountDistinct:
      return Value::Int(static_cast<int64_t>(s->distinct.size()));
  }
  return Value::Null();
}

/// Hash-grouping state shared by the plain and the fused (join→aggregate)
/// paths: encoded group key -> slot, group-key rows, and a flat state
/// array with `naggs` accumulators per group.
struct GroupTable {
  explicit GroupTable(size_t naggs_in) : naggs(naggs_in) {}

  /// Returns the state block for `key`, creating the group (with the row
  /// produced by `fill`) on first sight.
  template <typename KeyFill>
  AggState* Slot(const RowKeyRef& key, KeyFill&& fill) {
    if (keys.size() >= UINT32_MAX) {
      // Group slots are uint32; wrap-around would alias existing groups.
      std::fprintf(stderr, "GroupTable: more than 2^32-1 groups\n");
      std::abort();
    }
    auto [slot, inserted] = index.Emplace(key.bytes, key.hash,
                                          static_cast<uint32_t>(keys.size()));
    if (inserted) {
      keys.push_back(fill());
      states.resize(states.size() + naggs);
    }
    return &states[*slot * naggs];
  }

  /// Builds the final output rows: group key columns then finalized
  /// aggregates. Adds the single all-NULL-keyed row for a global aggregate
  /// over empty input.
  std::vector<Row> Finalize(const AggSpec& spec, bool global) {
    if (keys.empty() && global) {
      keys.emplace_back();
      states.resize(naggs);
    }
    const auto& aggs = *spec.aggs;
    std::vector<Row> out;
    out.reserve(keys.size());
    for (size_t g = 0; g < keys.size(); ++g) {
      Row row = std::move(keys[g]);
      row.reserve(row.size() + naggs);
      for (size_t a = 0; a < naggs; ++a) {
        row.push_back(FinalizeAgg(&states[g * naggs + a], aggs[a].func));
      }
      out.push_back(std::move(row));
    }
    return out;
  }

  FlatKeyMap<uint32_t> index;
  std::vector<Row> keys;
  std::vector<AggState> states;
  size_t naggs;
};

}  // namespace

Result<Table> Executor::Execute(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable out, Exec(plan));
  return std::move(out).Materialize();
}

Result<ExecTable> Executor::Exec(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan);
    case PlanKind::kSelect: return ExecSelect(plan);
    case PlanKind::kProject: return ExecProject(plan);
    case PlanKind::kJoin: return ExecJoin(plan);
    case PlanKind::kAggregate: return ExecAggregate(plan);
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: return ExecSetOp(plan);
    case PlanKind::kHashFilter: return ExecHashFilter(plan);
  }
  return Status::Internal("unreachable plan kind");
}

Result<ExecTable> Executor::ExecScan(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(plan.table_name()));
  // Zero-copy: borrow the base table's row store under the scan's alias.
  return ExecTable(t->schema().WithQualifier(plan.alias()), &t->rows());
}

Result<ExecTable> Executor::ExecSelect(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  ExprPtr pred = plan.predicate()->Clone();
  SVC_RETURN_IF_ERROR(pred->Bind(in.schema()));
  std::vector<Row> out;
  if (in.owned()) {
    for (Row& r : in.owned_rows()) {
      if (pred->Eval(r).IsTrue()) out.push_back(std::move(r));
    }
  } else {
    for (const Row& r : in.rows()) {
      if (pred->Eval(r).IsTrue()) out.push_back(r);
    }
  }
  return ExecTable(in.TakeSchema(), std::move(out));
}

Result<ExecTable> Executor::ExecProject(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  Schema out_schema;
  std::vector<ExprPtr> exprs;
  exprs.reserve(plan.project_items().size());
  for (const auto& item : plan.project_items()) {
    ExprPtr e = item.expr->Clone();
    SVC_RETURN_IF_ERROR(e->Bind(in.schema()));
    out_schema.AddColumn({item.out_qualifier, item.alias, e->result_type()});
    exprs.push_back(std::move(e));
  }
  // Pass-through column references copy the value directly instead of
  // paying a virtual Eval (maintenance plans are mostly pass-through
  // projections around a few computed columns).
  std::vector<ptrdiff_t> col_of(exprs.size(), -1);
  for (size_t e = 0; e < exprs.size(); ++e) {
    if (exprs[e]->kind() == ExprKind::kColumn) {
      col_of[e] = static_cast<ptrdiff_t>(exprs[e]->bound_column_index());
    }
  }
  std::vector<Row> out;
  out.reserve(in.NumRows());
  for (const auto& r : in.rows()) {
    Row row;
    row.reserve(exprs.size());
    for (size_t e = 0; e < exprs.size(); ++e) {
      row.push_back(col_of[e] >= 0 ? r[col_of[e]] : exprs[e]->Eval(r));
    }
    out.push_back(std::move(row));
  }
  return ExecTable(std::move(out_schema), std::move(out));
}

Result<ExecTable> Executor::ExecJoin(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*plan.child(1)));

  const Schema out_schema = Schema::Concat(left.schema(), right.schema());
  ExprPtr residual;
  if (plan.join_residual()) {
    residual = plan.join_residual()->Clone();
    SVC_RETURN_IF_ERROR(residual->Bind(out_schema));
  }

  const JoinType jt = plan.join_type();
  std::vector<Row> out;
  KeyBuffer kb;
  const size_t ncols = out_schema.NumColumns();

  // For inner joins, hash-build on the smaller input (delta-side inputs of
  // maintenance plans are often tiny next to the base relation they join)
  // and stream the larger side through a tight probe loop.
  if (jt == JoinType::kInner) {
    SVC_ASSIGN_OR_RETURN(InnerJoin ij, InnerJoin::Prepare(plan, left, right));
    // One output row per probe row is the common case (foreign-key joins
    // match exactly once); larger outputs grow amortized from there.
    out.reserve(ij.probe_side().NumRows());
    for (const Row& p : ij.probe_side().rows()) {
      RowKeyRef key;
      if (!kb.EncodeIfNonNull(p, ij.pidx(), &key)) continue;
      for (uint32_t j = ij.index.Head(key); j != kNoRow; j = ij.index.prev[j]) {
        const Row& b = ij.build_side().row(j);
        Row combined;
        combined.reserve(ncols);
        AppendValues(&combined, ij.build_on_left ? b : p);
        AppendValues(&combined, ij.build_on_left ? p : b);
        if (residual && !residual->Eval(combined).IsTrue()) continue;
        out.push_back(std::move(combined));
      }
    }
    return ExecTable(out_schema, std::move(out));
  }

  // Outer joins: build side is right.
  std::vector<std::string> lrefs, rrefs;
  for (const auto& k : plan.join_keys()) {
    lrefs.push_back(k.left);
    rrefs.push_back(k.right);
  }
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> lidx,
                       left.schema().ResolveAll(lrefs));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> ridx,
                       right.schema().ResolveAll(rrefs));
  JoinIndex build;
  build.Build(right.rows(), ridx);

  std::vector<char> right_matched(right.NumRows(), 0);

  auto emit = [&](const Row* l, const Row* r) {
    Row row;
    row.reserve(out_schema.NumColumns());
    if (l) {
      AppendValues(&row, *l);
    } else {
      row.resize(left.schema().NumColumns());
    }
    if (r) {
      AppendValues(&row, *r);
    } else {
      row.resize(out_schema.NumColumns());
    }
    out.push_back(std::move(row));
  };

  for (size_t i = 0; i < left.NumRows(); ++i) {
    const Row& l = left.row(i);
    bool matched = false;
    RowKeyRef key;
    if (kb.EncodeIfNonNull(l, lidx, &key)) {
      for (uint32_t j = build.Head(key); j != kNoRow; j = build.prev[j]) {
        const Row& r = right.row(j);
        if (residual) {
          Row combined;
          combined.reserve(ncols);
          AppendValues(&combined, l);
          AppendValues(&combined, r);
          if (!residual->Eval(combined).IsTrue()) continue;
          matched = true;
          right_matched[j] = 1;
          out.push_back(std::move(combined));
          continue;
        }
        matched = true;
        right_matched[j] = 1;
        emit(&l, &r);
      }
    }
    if (!matched && (jt == JoinType::kLeft || jt == JoinType::kFull)) {
      emit(&l, nullptr);
    }
  }
  if (jt == JoinType::kRight || jt == JoinType::kFull) {
    for (size_t i = 0; i < right.NumRows(); ++i) {
      if (!right_matched[i]) emit(nullptr, &right.row(i));
    }
  }
  return ExecTable(out_schema, std::move(out));
}

Result<ExecTable> Executor::ExecAggregate(const PlanNode& plan) {
  // Aggregation directly over an inner join runs fused: the probe loop
  // feeds group accumulators without ever materializing the joined rows
  // (one heap row per join output is the single largest cost of the
  // unfused pipeline). Maintenance plans are mostly this shape.
  const PlanNode& child = *plan.child(0);
  if (child.kind() == PlanKind::kJoin &&
      child.join_type() == JoinType::kInner) {
    return ExecAggregateOverJoin(plan, child);
  }

  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(child));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       in.schema().ResolveAll(plan.group_by()));
  SVC_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Prepare(plan, in.schema()));
  Schema out_schema = spec.OutputSchema(in.schema(), gidx);

  GroupTable groups(spec.aggs->size());
  KeyBuffer kb, vb;
  for (const auto& r : in.rows()) {
    const RowKeyRef key = kb.Encode(r, gidx);
    AggState* st = groups.Slot(key, [&] {
      Row gk;
      gk.reserve(gidx.size());
      for (size_t i : gidx) gk.push_back(r[i]);
      return gk;
    });
    AccumulateRow(r, spec, st, &vb);
  }
  return ExecTable(std::move(out_schema),
                   groups.Finalize(spec, /*global=*/gidx.empty()));
}

Result<ExecTable> Executor::ExecAggregateOverJoin(const PlanNode& plan,
                                                  const PlanNode& join) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*join.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*join.child(1)));

  const Schema join_schema = Schema::Concat(left.schema(), right.schema());
  ExprPtr residual;
  if (join.join_residual()) {
    residual = join.join_residual()->Clone();
    SVC_RETURN_IF_ERROR(residual->Bind(join_schema));
  }

  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       join_schema.ResolveAll(plan.group_by()));
  SVC_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Prepare(plan, join_schema));
  Schema out_schema = spec.OutputSchema(join_schema, gidx);

  SVC_ASSIGN_OR_RETURN(InnerJoin ij, InnerJoin::Prepare(join, left, right));
  const size_t lcols = left.schema().NumColumns();
  // Residuals and full-row aggregate expressions need a materialized
  // combined row; one reusable scratch buffer serves every match.
  const bool need_scratch = residual != nullptr || !spec.all_columns;
  Row scratch;

  GroupTable groups(spec.aggs->size());
  const auto& aggs = *spec.aggs;
  KeyBuffer pb, gb, vb;
  for (const Row& p : ij.probe_side().rows()) {
    RowKeyRef pkey;
    if (!pb.EncodeIfNonNull(p, ij.pidx(), &pkey)) continue;
    for (uint32_t j = ij.index.Head(pkey); j != kNoRow; j = ij.index.prev[j]) {
      const Row& b = ij.build_side().row(j);
      const Row& lrow = ij.build_on_left ? b : p;
      const Row& rrow = ij.build_on_left ? p : b;
      // Reads a column of the conceptual combined row without building it.
      auto colv = [&](size_t c) -> const Value& {
        return c < lcols ? lrow[c] : rrow[c - lcols];
      };
      if (need_scratch) {
        scratch.clear();
        scratch.reserve(join_schema.NumColumns());
        AppendValues(&scratch, lrow);
        AppendValues(&scratch, rrow);
        if (residual && !residual->Eval(scratch).IsTrue()) continue;
      }
      const RowKeyRef gkey = gb.EncodeWith(gidx, colv);
      AggState* st = groups.Slot(gkey, [&] {
        Row gk;
        gk.reserve(gidx.size());
        for (size_t i : gidx) gk.push_back(colv(i));
        return gk;
      });
      if (need_scratch) {
        AccumulateRow(scratch, spec, st, &vb);
        continue;
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (aggs[a].func == AggFunc::kCountStar) {
          ++st[a].count;
          continue;
        }
        const Value& v = colv(static_cast<size_t>(spec.input_col[a]));
        if (v.is_null()) continue;
        Accumulate(&st[a], aggs[a].func, v, &vb);
      }
    }
  }
  return ExecTable(std::move(out_schema),
                   groups.Finalize(spec, /*global=*/gidx.empty()));
}

Result<ExecTable> Executor::ExecSetOp(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*plan.child(1)));
  if (left.schema().NumColumns() != right.schema().NumColumns()) {
    return Status::InvalidArgument("set operation arity mismatch");
  }
  std::vector<size_t> all(left.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  KeyBuffer kb;
  auto encode_all = [&](const ExecTable& t) {
    KeySet keys;
    keys.Reserve(t.NumRows());
    for (const auto& r : t.rows()) {
      const RowKeyRef key = kb.Encode(r, all);
      keys.Insert(key.bytes, key.hash);
    }
    return keys;
  };

  std::vector<Row> out;
  KeySet seen;
  // Appends row `i` of `side` (moving when the side's rows are owned) if
  // its already-encoded `key` is new.
  auto emit_if_new = [&](ExecTable& side, size_t i, const RowKeyRef& key) {
    if (!seen.Insert(key.bytes, key.hash)) return;
    if (side.owned()) {
      out.push_back(std::move(side.owned_rows()[i]));
    } else {
      out.push_back(side.row(i));
    }
  };

  switch (plan.kind()) {
    case PlanKind::kUnion: {
      seen.Reserve(left.NumRows() + right.NumRows());
      for (ExecTable* t : {&left, &right}) {
        for (size_t i = 0; i < t->NumRows(); ++i) {
          emit_if_new(*t, i, kb.Encode(t->row(i), all));
        }
      }
      break;
    }
    case PlanKind::kIntersect: {
      const KeySet rkeys = encode_all(right);
      for (size_t i = 0; i < left.NumRows(); ++i) {
        const RowKeyRef key = kb.Encode(left.row(i), all);
        if (rkeys.Contains(key.bytes, key.hash)) emit_if_new(left, i, key);
      }
      break;
    }
    case PlanKind::kDifference: {
      const KeySet rkeys = encode_all(right);
      for (size_t i = 0; i < left.NumRows(); ++i) {
        const RowKeyRef key = kb.Encode(left.row(i), all);
        if (!rkeys.Contains(key.bytes, key.hash)) emit_if_new(left, i, key);
      }
      break;
    }
    default:
      return Status::Internal("not a set op");
  }
  return ExecTable(left.TakeSchema(), std::move(out));
}

Result<ExecTable> Executor::ExecHashFilter(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                       in.schema().ResolveAll(plan.hash_columns()));
  KeyBuffer kb;
  std::vector<Row> out;
  if (plan.key_set()) {
    const KeySet& keys = *plan.key_set();
    for (size_t i = 0; i < in.NumRows(); ++i) {
      const RowKeyRef key = kb.Encode(in.row(i), idx);
      if (!keys.Contains(key.bytes, key.hash)) continue;
      if (in.owned()) {
        out.push_back(std::move(in.owned_rows()[i]));
      } else {
        out.push_back(in.row(i));
      }
    }
    return ExecTable(in.TakeSchema(), std::move(out));
  }
  const double m = plan.hash_ratio();
  if (m >= 1.0) return in;  // η with m = 1 is the identity; pass through
  // η membership hashes with the plan's configured family (sample
  // determinism); only the bytes are needed here, not the table hash.
  for (size_t i = 0; i < in.NumRows(); ++i) {
    const std::string_view bytes = kb.EncodeBytes(in.row(i), idx);
    if (!HashInSample(bytes, m, plan.hash_family())) continue;
    if (in.owned()) {
      out.push_back(std::move(in.owned_rows()[i]));
    } else {
      out.push_back(in.row(i));
    }
  }
  return ExecTable(in.TakeSchema(), std::move(out));
}

}  // namespace svc
