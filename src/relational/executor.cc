#include "relational/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace svc {

namespace {

/// Returns true if any of the row's `indices` is NULL (such join keys never
/// match).
bool AnyNull(const Row& row, const std::vector<size_t>& indices) {
  for (size_t i : indices) {
    if (row[i].is_null()) return true;
  }
  return false;
}

/// Accumulator for one aggregate over one group.
struct AggState {
  int64_t count = 0;         // non-null inputs (or rows for count(*))
  int64_t isum = 0;          // integer sum
  double dsum = 0.0;         // double sum
  bool int_input = true;     // all inputs so far were ints
  Value min_v;               // running min (NULL = none)
  Value max_v;               // running max (NULL = none)
  std::vector<double> values;               // for median
  std::unordered_set<std::string> distinct;  // for count_distinct
};

}  // namespace

Result<Table> Executor::Execute(const PlanNode& plan) {
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan);
    case PlanKind::kSelect: return ExecSelect(plan);
    case PlanKind::kProject: return ExecProject(plan);
    case PlanKind::kJoin: return ExecJoin(plan);
    case PlanKind::kAggregate: return ExecAggregate(plan);
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: return ExecSetOp(plan);
    case PlanKind::kHashFilter: return ExecHashFilter(plan);
  }
  return Status::Internal("unreachable plan kind");
}

Result<Table> Executor::ExecScan(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(plan.table_name()));
  Table out(t->schema().WithQualifier(plan.alias()));
  for (const auto& r : t->rows()) out.AppendUnchecked(r);
  return out;
}

Result<Table> Executor::ExecSelect(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table in, Execute(*plan.child(0)));
  ExprPtr pred = plan.predicate()->Clone();
  SVC_RETURN_IF_ERROR(pred->Bind(in.schema()));
  Table out(in.schema());
  for (const auto& r : in.rows()) {
    if (pred->Eval(r).IsTrue()) out.AppendUnchecked(r);
  }
  return out;
}

Result<Table> Executor::ExecProject(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table in, Execute(*plan.child(0)));
  Schema out_schema;
  std::vector<ExprPtr> exprs;
  exprs.reserve(plan.project_items().size());
  for (const auto& item : plan.project_items()) {
    ExprPtr e = item.expr->Clone();
    SVC_RETURN_IF_ERROR(e->Bind(in.schema()));
    out_schema.AddColumn({item.out_qualifier, item.alias, e->result_type()});
    exprs.push_back(std::move(e));
  }
  Table out(out_schema);
  for (const auto& r : in.rows()) {
    Row row;
    row.reserve(exprs.size());
    for (const auto& e : exprs) row.push_back(e->Eval(r));
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> Executor::ExecJoin(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table left, Execute(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(Table right, Execute(*plan.child(1)));

  std::vector<std::string> lrefs, rrefs;
  for (const auto& k : plan.join_keys()) {
    lrefs.push_back(k.left);
    rrefs.push_back(k.right);
  }
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> lidx,
                       left.schema().ResolveAll(lrefs));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> ridx,
                       right.schema().ResolveAll(rrefs));

  const Schema out_schema = Schema::Concat(left.schema(), right.schema());
  ExprPtr residual;
  if (plan.join_residual()) {
    residual = plan.join_residual()->Clone();
    SVC_RETURN_IF_ERROR(residual->Bind(out_schema));
  }

  const JoinType jt = plan.join_type();

  // For inner joins, hash-build on the smaller input (delta-side inputs of
  // maintenance plans are often tiny next to the base relation they join).
  if (jt == JoinType::kInner && left.NumRows() < right.NumRows()) {
    std::unordered_multimap<std::string, size_t> build;
    build.reserve(left.NumRows() * 2);
    for (size_t i = 0; i < left.NumRows(); ++i) {
      if (AnyNull(left.row(i), lidx)) continue;
      build.emplace(EncodeRowKey(left.row(i), lidx), i);
    }
    Table out(out_schema);
    for (size_t j = 0; j < right.NumRows(); ++j) {
      const Row& r = right.row(j);
      if (AnyNull(r, ridx)) continue;
      const std::string key = EncodeRowKey(r, ridx);
      auto [it, end] = build.equal_range(key);
      for (; it != end; ++it) {
        Row combined = left.row(it->second);
        combined.insert(combined.end(), r.begin(), r.end());
        if (residual && !residual->Eval(combined).IsTrue()) continue;
        out.AppendUnchecked(std::move(combined));
      }
    }
    return out;
  }

  // Build side: right.
  std::unordered_multimap<std::string, size_t> build;
  build.reserve(right.NumRows() * 2);
  for (size_t i = 0; i < right.NumRows(); ++i) {
    if (AnyNull(right.row(i), ridx)) continue;
    build.emplace(EncodeRowKey(right.row(i), ridx), i);
  }

  std::vector<char> right_matched(right.NumRows(), 0);
  Table out(out_schema);

  auto emit = [&](const Row* l, const Row* r) {
    Row row;
    row.reserve(out_schema.NumColumns());
    if (l) {
      row.insert(row.end(), l->begin(), l->end());
    } else {
      row.resize(left.schema().NumColumns());
    }
    if (r) {
      row.insert(row.end(), r->begin(), r->end());
    } else {
      row.resize(out_schema.NumColumns());
    }
    out.AppendUnchecked(std::move(row));
  };

  for (size_t i = 0; i < left.NumRows(); ++i) {
    const Row& l = left.row(i);
    bool matched = false;
    if (!AnyNull(l, lidx)) {
      const std::string key = EncodeRowKey(l, lidx);
      auto [it, end] = build.equal_range(key);
      for (; it != end; ++it) {
        const Row& r = right.row(it->second);
        if (residual) {
          Row combined = l;
          combined.insert(combined.end(), r.begin(), r.end());
          if (!residual->Eval(combined).IsTrue()) continue;
          matched = true;
          right_matched[it->second] = 1;
          out.AppendUnchecked(std::move(combined));
          continue;
        }
        matched = true;
        right_matched[it->second] = 1;
        emit(&l, &r);
      }
    }
    if (!matched && (jt == JoinType::kLeft || jt == JoinType::kFull)) {
      emit(&l, nullptr);
    }
  }
  if (jt == JoinType::kRight || jt == JoinType::kFull) {
    for (size_t i = 0; i < right.NumRows(); ++i) {
      if (!right_matched[i]) emit(nullptr, &right.row(i));
    }
  }
  return out;
}

Result<Table> Executor::ExecAggregate(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table in, Execute(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       in.schema().ResolveAll(plan.group_by()));

  const auto& aggs = plan.aggregates();
  std::vector<ExprPtr> inputs(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].input) {
      inputs[a] = aggs[a].input->Clone();
      SVC_RETURN_IF_ERROR(inputs[a]->Bind(in.schema()));
    } else if (aggs[a].func != AggFunc::kCountStar) {
      return Status::InvalidArgument("aggregate " +
                                     std::string(AggFuncName(aggs[a].func)) +
                                     " requires an input expression");
    }
  }

  // Output schema: group columns then aggregates.
  Schema out_schema;
  for (size_t i : gidx) out_schema.AddColumn(in.schema().column(i));
  for (size_t a = 0; a < aggs.size(); ++a) {
    ValueType t = ValueType::kInt;
    switch (aggs[a].func) {
      case AggFunc::kAvg:
      case AggFunc::kMedian: t = ValueType::kDouble; break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        t = inputs[a] ? inputs[a]->result_type() : ValueType::kInt;
        break;
      default: t = ValueType::kInt; break;
    }
    out_schema.AddColumn({"", aggs[a].alias, t});
  }

  std::unordered_map<std::string, size_t> group_of;
  std::vector<Row> group_keys;
  std::vector<std::vector<AggState>> states;

  for (const auto& r : in.rows()) {
    const std::string key = EncodeRowKey(r, gidx);
    auto [it, inserted] = group_of.emplace(key, group_keys.size());
    if (inserted) {
      Row gk;
      gk.reserve(gidx.size());
      for (size_t i : gidx) gk.push_back(r[i]);
      group_keys.push_back(std::move(gk));
      states.emplace_back(aggs.size());
    }
    auto& st = states[it->second];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& s = st[a];
      if (aggs[a].func == AggFunc::kCountStar) {
        ++s.count;
        continue;
      }
      const Value v = inputs[a]->Eval(r);
      if (v.is_null()) continue;
      switch (aggs[a].func) {
        case AggFunc::kSum:
          ++s.count;
          if (v.type() == ValueType::kInt && s.int_input) {
            s.isum += v.AsInt();
          } else {
            if (s.int_input) {
              s.dsum += static_cast<double>(s.isum);
              s.int_input = false;
            }
            s.dsum += v.ToDouble();
          }
          break;
        case AggFunc::kCount:
          ++s.count;
          break;
        case AggFunc::kAvg:
          ++s.count;
          s.dsum += v.ToDouble();
          break;
        case AggFunc::kMin:
          if (s.min_v.is_null() || v < s.min_v) s.min_v = v;
          break;
        case AggFunc::kMax:
          if (s.max_v.is_null() || s.max_v < v) s.max_v = v;
          break;
        case AggFunc::kMedian:
          s.values.push_back(v.ToDouble());
          break;
        case AggFunc::kCountDistinct: {
          std::string enc;
          v.EncodeTo(&enc);
          s.distinct.insert(std::move(enc));
          break;
        }
        case AggFunc::kCountStar:
          break;
      }
    }
  }

  // Global aggregate over empty input still yields one row.
  if (group_keys.empty() && gidx.empty()) {
    group_keys.emplace_back();
    states.emplace_back(aggs.size());
  }

  Table out(out_schema);
  for (size_t g = 0; g < group_keys.size(); ++g) {
    Row row = group_keys[g];
    for (size_t a = 0; a < aggs.size(); ++a) {
      AggState& s = states[g][a];
      switch (aggs[a].func) {
        case AggFunc::kSum:
          if (s.count == 0) {
            row.push_back(Value::Null());
          } else if (s.int_input) {
            row.push_back(Value::Int(s.isum));
          } else {
            row.push_back(Value::Double(s.dsum));
          }
          break;
        case AggFunc::kCount:
        case AggFunc::kCountStar:
          row.push_back(Value::Int(s.count));
          break;
        case AggFunc::kAvg:
          row.push_back(s.count == 0
                            ? Value::Null()
                            : Value::Double(s.dsum /
                                            static_cast<double>(s.count)));
          break;
        case AggFunc::kMin:
          row.push_back(s.min_v);
          break;
        case AggFunc::kMax:
          row.push_back(s.max_v);
          break;
        case AggFunc::kMedian: {
          if (s.values.empty()) {
            row.push_back(Value::Null());
            break;
          }
          auto& v = s.values;
          const size_t mid = v.size() / 2;
          std::nth_element(v.begin(), v.begin() + mid, v.end());
          double med = v[mid];
          if (v.size() % 2 == 0) {
            const double lo = *std::max_element(v.begin(), v.begin() + mid);
            med = (med + lo) / 2.0;
          }
          row.push_back(Value::Double(med));
          break;
        }
        case AggFunc::kCountDistinct:
          row.push_back(Value::Int(static_cast<int64_t>(s.distinct.size())));
          break;
      }
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> Executor::ExecSetOp(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table left, Execute(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(Table right, Execute(*plan.child(1)));
  if (left.schema().NumColumns() != right.schema().NumColumns()) {
    return Status::InvalidArgument("set operation arity mismatch");
  }
  std::vector<size_t> all(left.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  auto encode_all = [&](const Table& t) {
    std::unordered_set<std::string> keys;
    keys.reserve(t.NumRows() * 2);
    for (const auto& r : t.rows()) keys.insert(EncodeRowKey(r, all));
    return keys;
  };

  Table out(left.schema());
  std::unordered_set<std::string> seen;
  switch (plan.kind()) {
    case PlanKind::kUnion: {
      for (const Table* t : {&left, &right}) {
        for (const auto& r : t->rows()) {
          if (seen.insert(EncodeRowKey(r, all)).second) {
            out.AppendUnchecked(r);
          }
        }
      }
      break;
    }
    case PlanKind::kIntersect: {
      const auto rkeys = encode_all(right);
      for (const auto& r : left.rows()) {
        std::string k = EncodeRowKey(r, all);
        if (rkeys.count(k) && seen.insert(std::move(k)).second) {
          out.AppendUnchecked(r);
        }
      }
      break;
    }
    case PlanKind::kDifference: {
      const auto rkeys = encode_all(right);
      for (const auto& r : left.rows()) {
        std::string k = EncodeRowKey(r, all);
        if (!rkeys.count(k) && seen.insert(std::move(k)).second) {
          out.AppendUnchecked(r);
        }
      }
      break;
    }
    default:
      return Status::Internal("not a set op");
  }
  return out;
}

Result<Table> Executor::ExecHashFilter(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(Table in, Execute(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                       in.schema().ResolveAll(plan.hash_columns()));
  Table out(in.schema());
  if (plan.key_set()) {
    const auto& keys = *plan.key_set();
    for (const auto& r : in.rows()) {
      if (keys.count(EncodeRowKey(r, idx))) out.AppendUnchecked(r);
    }
    return out;
  }
  const double m = plan.hash_ratio();
  if (m >= 1.0) return in;
  for (const auto& r : in.rows()) {
    const std::string key = EncodeRowKey(r, idx);
    if (HashInSample(key, m, plan.hash_family())) {
      out.AppendUnchecked(r);
    }
  }
  return out;
}

}  // namespace svc
