#include "relational/executor.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/flat_map.h"
#include "common/thread_pool.h"
#include "relational/row_key.h"

namespace svc {

namespace {

// Data-parallel decomposition bounds. Chunk counts come from
// DeterministicChunks, which depends only on the input size — never on the
// thread count — so results are reproducible at any parallelism.
constexpr size_t kMinChunkRows = 4096;
constexpr size_t kMaxChunks = 64;
// Hash-radix fan-out for partitioned joins and aggregations: the top
// kRadixBits of the 64-bit key hash pick the shard (FlatKeyMap slots use
// the low bits, so the two are independent).
constexpr int kRadixBits = 4;
constexpr size_t kRadixShards = size_t{1} << kRadixBits;

/// True when `opts` asks for parallelism and the decomposition is
/// non-trivial.
bool RunParallel(const ExecOptions& opts, size_t chunks) {
  return chunks > 1 && ResolveThreads(opts.num_threads) > 1;
}

/// Concatenates per-chunk outputs in chunk order (moving every row), which
/// reproduces the row order of the equivalent sequential loop.
std::vector<Row> ConcatParts(std::vector<std::vector<Row>>* parts) {
  size_t total = 0;
  for (const auto& p : *parts) total += p.size();
  std::vector<Row> out;
  out.reserve(total);
  for (auto& p : *parts) {
    for (Row& r : p) out.push_back(std::move(r));
  }
  return out;
}

/// First non-OK status across chunk workers (chunk order, so the reported
/// error is deterministic).
Status FirstError(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Returns true if any of the row's `indices` is NULL (such join keys never
/// match).
bool AnyNull(const Row& row, const std::vector<size_t>& indices) {
  for (size_t i : indices) {
    if (row[i].is_null()) return true;
  }
  return false;
}

/// Counts the rows whose `indices` are all non-NULL — the exact number of
/// entries a join build or probe side contributes, so hash tables can be
/// reserved without overshooting on NULL-key rows.
size_t CountKeyedRows(const std::vector<Row>& rows,
                      const std::vector<size_t>& indices) {
  size_t n = 0;
  for (const Row& r : rows) {
    if (!AnyNull(r, indices)) ++n;
  }
  return n;
}

constexpr uint32_t kNoRow = UINT32_MAX;

/// A slice of a chunk's key-byte arena (see RadixPartitions).
struct ArenaRef {
  uint32_t off;
  uint32_t len;
};

/// Appends `bytes` to `arena` and returns its slice. Encoded keys are
/// stashed once in the tag phase so the shard phase never re-encodes
/// (key encoding is the dominant per-row cost, docs/PERF.md).
ArenaRef StashKeyBytes(std::string* arena, std::string_view bytes) {
  if (arena->size() + bytes.size() > UINT32_MAX) {
    // A wrapped offset would alias earlier keys; fail loudly (also in
    // Release), matching FlatKeyMap's arena guard.
    std::fprintf(stderr, "RadixPartitions: chunk arena exceeds 4 GiB\n");
    std::abort();
  }
  const ArenaRef ref{static_cast<uint32_t>(arena->size()),
                     static_cast<uint32_t>(bytes.size())};
  arena->append(bytes);
  return ref;
}

/// Radix tag for one input row: key hash, row position, stashed key
/// bytes. Shared by the sharded join build and the plain aggregation
/// (the fused path tags (probe, build) match pairs instead).
struct RowTag {
  uint64_t hash;
  uint32_t row;
  ArenaRef key;
};

/// The shared scaffold of every two-phase hash-radix parallel operator
/// (join build, plain and fused aggregation). The tag phase splits the
/// input into deterministic chunks, and each chunk buckets caller-defined
/// tags by shard (top kRadixBits of the key hash) while stashing encoded
/// key bytes in its chunk arena. The visit phase hands every shard its
/// tags *in chunk order — i.e. global emit order*; that replay rule is
/// what makes per-key chain order and per-group accumulation order
/// bit-identical to the sequential loop at any thread count. Keep it
/// here, in one place.
template <typename Tag>
struct RadixPartitions {
  std::vector<std::vector<std::vector<Tag>>> buckets;  ///< [chunk][shard]
  std::vector<std::string> arenas;                     ///< [chunk] key bytes

  std::string_view KeyBytes(size_t chunk, ArenaRef ref) const {
    return {arenas[chunk].data() + ref.off, ref.len};
  }
};

/// Tag phase: runs tag_chunk(chunk, begin, end, shard_buckets, arena) over
/// every chunk in parallel.
template <typename Tag, typename TagChunkFn>
RadixPartitions<Tag> RadixTagPhase(int num_threads, size_t n, size_t chunks,
                                   TagChunkFn&& tag_chunk) {
  RadixPartitions<Tag> p;
  p.buckets.assign(chunks, std::vector<std::vector<Tag>>(kRadixShards));
  p.arenas.resize(chunks);
  ParallelFor(num_threads, chunks, [&](size_t c) {
    auto [begin, end] = ChunkBounds(n, chunks, c);
    tag_chunk(c, begin, end, &p.buckets[c], &p.arenas[c]);
  });
  return p;
}

/// Visit phase: runs shard_visit(shard, tag_count, for_each) over every
/// shard in parallel, where for_each(fn) replays fn(chunk, tag) for the
/// shard's tags in chunk order.
template <typename Tag, typename ShardVisitFn>
void RadixVisitShards(int num_threads, const RadixPartitions<Tag>& p,
                      ShardVisitFn&& shard_visit) {
  ParallelFor(num_threads, kRadixShards, [&](size_t s) {
    size_t count = 0;
    for (const auto& chunk : p.buckets) count += chunk[s].size();
    auto for_each = [&](auto&& fn) {
      for (size_t c = 0; c < p.buckets.size(); ++c) {
        for (const Tag& t : p.buckets[c][s]) fn(c, t);
      }
    };
    shard_visit(s, count, for_each);
  });
}

/// A hash-join build index: encoded key -> head of an intrusive chain of
/// row positions (`prev` links rows sharing a key, newest first). Flat
/// open-addressing storage, either one table or kRadixShards hash-radix
/// shards built in parallel. Shard assignment and chain order are pure
/// functions of the data, so the sharded and unsharded index answer every
/// probe identically.
struct JoinIndex {
  std::vector<FlatKeyMap<uint32_t>> shards;
  std::vector<uint32_t> prev;
  int shard_bits = 0;

  size_t ShardOf(uint64_t hash) const {
    return shard_bits == 0 ? 0
                           : static_cast<size_t>(hash >> (64 - shard_bits));
  }

  void Build(const std::vector<Row>& rows, const std::vector<size_t>& idx,
             int num_threads) {
    if (rows.size() >= kNoRow) {
      // A build side at the uint32 limit would wrap chain links (and row
      // kNoRow-1 would alias the sentinel): fail loudly, never corrupt.
      std::fprintf(stderr, "JoinIndex: build side exceeds 2^32-1 rows\n");
      std::abort();
    }
    const size_t chunks =
        DeterministicChunks(rows.size(), kMinChunkRows, kMaxChunks);
    if (ResolveThreads(num_threads) > 1 && chunks > 1) {
      BuildSharded(rows, idx, num_threads, chunks);
      return;
    }
    shard_bits = 0;
    shards.assign(1, {});
    FlatKeyMap<uint32_t>& heads = shards[0];
    heads.Reserve(CountKeyedRows(rows, idx));
    prev.assign(rows.size(), kNoRow);
    KeyBuffer kb;
    for (size_t i = 0; i < rows.size(); ++i) {
      RowKeyRef key;
      if (!kb.EncodeIfNonNull(rows[i], idx, &key)) continue;
      auto [head, inserted] =
          heads.Emplace(key.bytes, key.hash, static_cast<uint32_t>(i));
      if (!inserted) {
        prev[i] = *head;
        *head = static_cast<uint32_t>(i);
      }
    }
  }

  /// Two-phase parallel build on the RadixPartitions scaffold: row-range
  /// chunks bucket (hash, row, key bytes) by shard, then each shard
  /// inserts its rows — replayed in global row order — into its own
  /// FlatKeyMap. Each row index lands in exactly one shard, so the `prev`
  /// chain writes are disjoint, and per-key chains come out exactly as the
  /// sequential build makes them.
  void BuildSharded(const std::vector<Row>& rows,
                    const std::vector<size_t>& idx, int num_threads,
                    size_t chunks) {
    shard_bits = kRadixBits;
    shards.assign(kRadixShards, {});
    prev.assign(rows.size(), kNoRow);
    const RadixPartitions<RowTag> parts = RadixTagPhase<RowTag>(
        num_threads, rows.size(), chunks,
        [&](size_t, size_t begin, size_t end,
            std::vector<std::vector<RowTag>>* buckets, std::string* arena) {
          KeyBuffer kb;
          for (size_t i = begin; i < end; ++i) {
            RowKeyRef key;
            if (!kb.EncodeIfNonNull(rows[i], idx, &key)) continue;
            (*buckets)[ShardOf(key.hash)].push_back(
                {key.hash, static_cast<uint32_t>(i),
                 StashKeyBytes(arena, key.bytes)});
          }
        });
    RadixVisitShards(num_threads, parts,
                     [&](size_t s, size_t count, auto&& for_each) {
                       FlatKeyMap<uint32_t>& heads = shards[s];
                       heads.Reserve(count);
                       for_each([&](size_t c, const RowTag& t) {
                         auto [head, inserted] = heads.Emplace(
                             parts.KeyBytes(c, t.key), t.hash, t.row);
                         if (!inserted) {
                           prev[t.row] = *head;
                           *head = t.row;
                         }
                       });
                     });
  }

  /// First matching row position for `key`, or kNoRow.
  uint32_t Head(const RowKeyRef& key) const {
    const uint32_t* head = shards[ShardOf(key.hash)].Find(key.bytes, key.hash);
    return head == nullptr ? kNoRow : *head;
  }
};

/// Shared setup for the inner-join paths (materializing ExecJoin and the
/// fused aggregate-over-join): resolved key columns for both children,
/// build-side selection (the smaller input builds), and the built hash
/// index. Keeping this in one place guarantees the fused path joins
/// exactly like the unfused one.
struct InnerJoin {
  const ExecTable* left = nullptr;
  const ExecTable* right = nullptr;
  std::vector<size_t> lidx, ridx;
  bool build_on_left = false;
  JoinIndex index;

  const ExecTable& build_side() const { return build_on_left ? *left : *right; }
  const ExecTable& probe_side() const { return build_on_left ? *right : *left; }
  const std::vector<size_t>& bidx() const {
    return build_on_left ? lidx : ridx;
  }
  const std::vector<size_t>& pidx() const {
    return build_on_left ? ridx : lidx;
  }

  static Result<InnerJoin> Prepare(const PlanNode& plan, const ExecTable& l,
                                   const ExecTable& r, int num_threads) {
    InnerJoin j;
    j.left = &l;
    j.right = &r;
    std::vector<std::string> lrefs, rrefs;
    for (const auto& k : plan.join_keys()) {
      lrefs.push_back(k.left);
      rrefs.push_back(k.right);
    }
    SVC_ASSIGN_OR_RETURN(j.lidx, l.schema().ResolveAll(lrefs));
    SVC_ASSIGN_OR_RETURN(j.ridx, r.schema().ResolveAll(rrefs));
    j.build_on_left = l.NumRows() < r.NumRows();
    j.index.Build(j.build_side().rows(), j.bidx(), num_threads);
    return j;
  }
};

/// Accumulator for one aggregate over one group.
struct AggState {
  int64_t count = 0;         // non-null inputs (or rows for count(*))
  int64_t isum = 0;          // integer sum
  double dsum = 0.0;         // double sum
  bool int_input = true;     // all inputs so far were ints
  Value min_v;               // running min (NULL = none)
  Value max_v;               // running max (NULL = none)
  std::vector<double> values;  // for median
  KeySet distinct;             // for count_distinct (flat, collision-safe)
};

/// Appends `row`'s values to `out` by copy.
void AppendValues(Row* out, const Row& row) {
  out->insert(out->end(), row.begin(), row.end());
}

/// Bound aggregate inputs for one Aggregate node. Column-reference inputs
/// (the overwhelmingly common case) are read by position, skipping the
/// virtual Eval and its Value copy per row.
struct AggSpec {
  const std::vector<AggItem>* aggs = nullptr;
  std::vector<ExprPtr> inputs;
  std::vector<ptrdiff_t> input_col;  ///< bound column position, or -1
  bool all_columns = true;  ///< no aggregate needs a full-row expression

  static Result<AggSpec> Prepare(const PlanNode& plan,
                                 const Schema& in_schema) {
    AggSpec spec;
    spec.aggs = &plan.aggregates();
    const auto& aggs = *spec.aggs;
    spec.inputs.resize(aggs.size());
    spec.input_col.assign(aggs.size(), -1);
    for (size_t a = 0; a < aggs.size(); ++a) {
      if (aggs[a].input) {
        spec.inputs[a] = aggs[a].input->Clone();
        SVC_RETURN_IF_ERROR(spec.inputs[a]->Bind(in_schema));
        if (spec.inputs[a]->kind() == ExprKind::kColumn) {
          spec.input_col[a] =
              static_cast<ptrdiff_t>(spec.inputs[a]->bound_column_index());
        } else {
          spec.all_columns = false;
        }
      } else if (aggs[a].func != AggFunc::kCountStar) {
        return Status::InvalidArgument(
            "aggregate " + std::string(AggFuncName(aggs[a].func)) +
            " requires an input expression");
      }
    }
    return spec;
  }

  /// Output schema: group columns then aggregates.
  Schema OutputSchema(const Schema& in_schema,
                      const std::vector<size_t>& gidx) const {
    Schema out;
    for (size_t i : gidx) out.AddColumn(in_schema.column(i));
    for (size_t a = 0; a < aggs->size(); ++a) {
      ValueType t = ValueType::kInt;
      switch ((*aggs)[a].func) {
        case AggFunc::kAvg:
        case AggFunc::kMedian: t = ValueType::kDouble; break;
        case AggFunc::kSum:
        case AggFunc::kMin:
        case AggFunc::kMax:
          t = inputs[a] ? inputs[a]->result_type() : ValueType::kInt;
          break;
        default: t = ValueType::kInt; break;
      }
      out.AddColumn({"", (*aggs)[a].alias, t});
    }
    return out;
  }
};

/// Folds one non-null input value into an accumulator. `vb` is the shared
/// scratch buffer for count-distinct encodings.
void Accumulate(AggState* s, AggFunc func, const Value& v, KeyBuffer* vb) {
  switch (func) {
    case AggFunc::kSum:
      ++s->count;
      if (v.type() == ValueType::kInt && s->int_input) {
        s->isum += v.AsInt();
      } else {
        if (s->int_input) {
          s->dsum += static_cast<double>(s->isum);
          s->int_input = false;
        }
        s->dsum += v.ToDouble();
      }
      break;
    case AggFunc::kCount:
      ++s->count;
      break;
    case AggFunc::kAvg:
      ++s->count;
      s->dsum += v.ToDouble();
      break;
    case AggFunc::kMin:
      if (s->min_v.is_null() || v < s->min_v) s->min_v = v;
      break;
    case AggFunc::kMax:
      if (s->max_v.is_null() || s->max_v < v) s->max_v = v;
      break;
    case AggFunc::kMedian:
      s->values.push_back(v.ToDouble());
      break;
    case AggFunc::kCountDistinct: {
      const RowKeyRef enc = vb->EncodeValue(v);
      s->distinct.Insert(enc.bytes, enc.hash);
      break;
    }
    case AggFunc::kCountStar:
      break;
  }
}

/// Accumulates one materialized row into the group's `naggs` states.
void AccumulateRow(const Row& r, const AggSpec& spec, AggState* st,
                   KeyBuffer* vb) {
  const auto& aggs = *spec.aggs;
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].func == AggFunc::kCountStar) {
      ++st[a].count;
      continue;
    }
    Value computed;
    if (spec.input_col[a] < 0) computed = spec.inputs[a]->Eval(r);
    const Value& v = spec.input_col[a] >= 0 ? r[spec.input_col[a]] : computed;
    if (v.is_null()) continue;
    Accumulate(&st[a], aggs[a].func, v, vb);
  }
}

/// The finalized output value of one accumulator.
Value FinalizeAgg(AggState* s, AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      if (s->count == 0) return Value::Null();
      if (s->int_input) return Value::Int(s->isum);
      return Value::Double(s->dsum);
    case AggFunc::kCount:
    case AggFunc::kCountStar:
      return Value::Int(s->count);
    case AggFunc::kAvg:
      return s->count == 0
                 ? Value::Null()
                 : Value::Double(s->dsum / static_cast<double>(s->count));
    case AggFunc::kMin:
      return s->min_v;
    case AggFunc::kMax:
      return s->max_v;
    case AggFunc::kMedian: {
      if (s->values.empty()) return Value::Null();
      auto& v = s->values;
      const size_t mid = v.size() / 2;
      std::nth_element(v.begin(), v.begin() + mid, v.end());
      double med = v[mid];
      if (v.size() % 2 == 0) {
        const double lo = *std::max_element(v.begin(), v.begin() + mid);
        med = (med + lo) / 2.0;
      }
      return Value::Double(med);
    }
    case AggFunc::kCountDistinct:
      return Value::Int(static_cast<int64_t>(s->distinct.size()));
  }
  return Value::Null();
}

/// Hash-grouping state shared by the plain and the fused (join→aggregate)
/// paths: encoded group key -> slot, group-key rows, and a flat state
/// array with `naggs` accumulators per group.
struct GroupTable {
  explicit GroupTable(size_t naggs_in) : naggs(naggs_in) {}

  /// Returns the state block for `key`, creating the group (with the row
  /// produced by `fill`) on first sight.
  template <typename KeyFill>
  AggState* Slot(const RowKeyRef& key, KeyFill&& fill) {
    if (keys.size() >= UINT32_MAX) {
      // Group slots are uint32; wrap-around would alias existing groups.
      std::fprintf(stderr, "GroupTable: more than 2^32-1 groups\n");
      std::abort();
    }
    auto [slot, inserted] = index.Emplace(key.bytes, key.hash,
                                          static_cast<uint32_t>(keys.size()));
    if (inserted) {
      keys.push_back(fill());
      states.resize(states.size() + naggs);
    }
    return &states[*slot * naggs];
  }

  /// Builds the final output rows: group key columns then finalized
  /// aggregates. Adds the single all-NULL-keyed row for a global aggregate
  /// over empty input.
  std::vector<Row> Finalize(const AggSpec& spec, bool global) {
    if (keys.empty() && global) {
      keys.emplace_back();
      states.resize(naggs);
    }
    const auto& aggs = *spec.aggs;
    std::vector<Row> out;
    out.reserve(keys.size());
    for (size_t g = 0; g < keys.size(); ++g) {
      Row row = std::move(keys[g]);
      row.reserve(row.size() + naggs);
      for (size_t a = 0; a < naggs; ++a) {
        row.push_back(FinalizeAgg(&states[g * naggs + a], aggs[a].func));
      }
      out.push_back(std::move(row));
    }
    return out;
  }

  FlatKeyMap<uint32_t> index;
  std::vector<Row> keys;
  std::vector<AggState> states;
  size_t naggs;
};

/// One hash-radix shard of a partitioned aggregation: its groups plus, per
/// group, the global ordinal (input row number or join-match number) of the
/// group's first contribution. Every group lives in exactly one shard and
/// sees its rows in global order, so per-group accumulator state — and any
/// floating-point reduction inside it — is bitwise what the sequential loop
/// produces.
struct AggShard {
  explicit AggShard(size_t naggs) : groups(naggs) {}
  GroupTable groups;
  std::vector<uint64_t> first_ord;  ///< parallel to groups.keys
};

/// Assembles sharded aggregation output in first-encounter order (ordinal
/// sort), matching the sequential path's row order exactly.
std::vector<Row> AssembleAggShards(std::vector<AggShard>* shards,
                                   const AggSpec& spec) {
  struct Ref {
    uint64_t ord;
    uint32_t shard;
    uint32_t slot;
  };
  std::vector<Ref> refs;
  size_t total = 0;
  for (const AggShard& s : *shards) total += s.groups.keys.size();
  refs.reserve(total);
  for (uint32_t s = 0; s < shards->size(); ++s) {
    const AggShard& sh = (*shards)[s];
    for (uint32_t g = 0; g < sh.groups.keys.size(); ++g) {
      refs.push_back({sh.first_ord[g], s, g});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const Ref& a, const Ref& b) { return a.ord < b.ord; });
  const auto& aggs = *spec.aggs;
  const size_t naggs = aggs.size();
  std::vector<Row> out;
  out.reserve(total);
  for (const Ref& ref : refs) {
    AggShard& sh = (*shards)[ref.shard];
    Row row = std::move(sh.groups.keys[ref.slot]);
    row.reserve(row.size() + naggs);
    AggState* st = &sh.groups.states[ref.slot * naggs];
    for (size_t a = 0; a < naggs; ++a) {
      row.push_back(FinalizeAgg(&st[a], aggs[a].func));
    }
    out.push_back(std::move(row));
  }
  return out;
}

size_t RadixShardOf(uint64_t hash) {
  return static_cast<size_t>(hash >> (64 - kRadixBits));
}

}  // namespace

Result<Table> Executor::Execute(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable out, Exec(plan));
  return std::move(out).Materialize();
}

Result<ExecTable> Executor::Exec(const PlanNode& plan) {
  // Cooperative cancellation checkpoint: one relaxed atomic load per
  // operator keeps a deadlined query from starting the next pipeline stage.
  if (opts_.cancel != nullptr) {
    SVC_RETURN_IF_ERROR(opts_.cancel->Check("plan execution"));
  }
  switch (plan.kind()) {
    case PlanKind::kScan: return ExecScan(plan);
    case PlanKind::kSelect: return ExecSelect(plan);
    case PlanKind::kProject: return ExecProject(plan);
    case PlanKind::kJoin: return ExecJoin(plan);
    case PlanKind::kAggregate: return ExecAggregate(plan);
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: return ExecSetOp(plan);
    case PlanKind::kHashFilter: return ExecHashFilter(plan);
  }
  return Status::Internal("unreachable plan kind");
}

Result<ExecTable> Executor::ExecScan(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(const Table* t, db_->GetTable(plan.table_name()));
  // Zero-copy: borrow the base table's row store under the scan's alias.
  return ExecTable(t->schema().WithQualifier(plan.alias()), &t->rows());
}

Result<ExecTable> Executor::ExecSelect(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  const size_t n = in.NumRows();
  // Appends rows of [begin, end) satisfying `pred` to `out`, moving rows
  // out of owned inputs (parallel chunks move disjoint ranges).
  auto filter_range = [&](const ExprPtr& pred, size_t begin, size_t end,
                          std::vector<Row>* out) {
    if (in.owned()) {
      for (size_t i = begin; i < end; ++i) {
        Row& r = in.owned_rows()[i];
        if (pred->Eval(r).IsTrue()) out->push_back(std::move(r));
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        const Row& r = in.row(i);
        if (pred->Eval(r).IsTrue()) out->push_back(r);
      }
    }
  };
  const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
  if (RunParallel(opts_, chunks)) {
    std::vector<std::vector<Row>> parts(chunks);
    std::vector<Status> errs(chunks);
    ParallelFor(opts_.num_threads, chunks, [&](size_t c) {
      if (opts_.cancel != nullptr) {
        errs[c] = opts_.cancel->Check("filter chunk");
        if (!errs[c].ok()) return;
      }
      ExprPtr pred = plan.predicate()->Clone();
      errs[c] = pred->Bind(in.schema());
      if (!errs[c].ok()) return;
      auto [begin, end] = ChunkBounds(n, chunks, c);
      filter_range(pred, begin, end, &parts[c]);
    });
    SVC_RETURN_IF_ERROR(FirstError(errs));
    return ExecTable(in.TakeSchema(), ConcatParts(&parts));
  }
  ExprPtr pred = plan.predicate()->Clone();
  SVC_RETURN_IF_ERROR(pred->Bind(in.schema()));
  std::vector<Row> out;
  filter_range(pred, 0, n, &out);
  return ExecTable(in.TakeSchema(), std::move(out));
}

Result<ExecTable> Executor::ExecProject(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  Schema out_schema;
  std::vector<ExprPtr> exprs;
  exprs.reserve(plan.project_items().size());
  for (const auto& item : plan.project_items()) {
    ExprPtr e = item.expr->Clone();
    SVC_RETURN_IF_ERROR(e->Bind(in.schema()));
    out_schema.AddColumn({item.out_qualifier, item.alias, e->result_type()});
    exprs.push_back(std::move(e));
  }
  // Pass-through column references copy the value directly instead of
  // paying a virtual Eval (maintenance plans are mostly pass-through
  // projections around a few computed columns).
  std::vector<ptrdiff_t> col_of(exprs.size(), -1);
  for (size_t e = 0; e < exprs.size(); ++e) {
    if (exprs[e]->kind() == ExprKind::kColumn) {
      col_of[e] = static_cast<ptrdiff_t>(exprs[e]->bound_column_index());
    }
  }
  const size_t n = in.NumRows();
  auto project_range = [&](const std::vector<ExprPtr>& ex, size_t begin,
                           size_t end, std::vector<Row>* out) {
    out->reserve(out->size() + (end - begin));
    for (size_t i = begin; i < end; ++i) {
      const Row& r = in.row(i);
      Row row;
      row.reserve(ex.size());
      for (size_t e = 0; e < ex.size(); ++e) {
        row.push_back(col_of[e] >= 0 ? r[col_of[e]] : ex[e]->Eval(r));
      }
      out->push_back(std::move(row));
    }
  };
  const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
  if (RunParallel(opts_, chunks)) {
    std::vector<std::vector<Row>> parts(chunks);
    std::vector<Status> errs(chunks);
    ParallelFor(opts_.num_threads, chunks, [&](size_t c) {
      if (opts_.cancel != nullptr) {
        errs[c] = opts_.cancel->Check("project chunk");
        if (!errs[c].ok()) return;
      }
      // Pass-through column items are read by position and never
      // evaluated, so only computed expressions need a per-chunk clone.
      std::vector<ExprPtr> cexprs(exprs.size());
      for (size_t e = 0; e < exprs.size(); ++e) {
        if (col_of[e] >= 0) continue;
        cexprs[e] = plan.project_items()[e].expr->Clone();
        errs[c] = cexprs[e]->Bind(in.schema());
        if (!errs[c].ok()) return;
      }
      auto [begin, end] = ChunkBounds(n, chunks, c);
      project_range(cexprs, begin, end, &parts[c]);
    });
    SVC_RETURN_IF_ERROR(FirstError(errs));
    return ExecTable(std::move(out_schema), ConcatParts(&parts));
  }
  std::vector<Row> out;
  project_range(exprs, 0, n, &out);
  return ExecTable(std::move(out_schema), std::move(out));
}

Result<ExecTable> Executor::ExecJoin(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*plan.child(1)));

  const Schema out_schema = Schema::Concat(left.schema(), right.schema());
  ExprPtr residual;
  if (plan.join_residual()) {
    residual = plan.join_residual()->Clone();
    SVC_RETURN_IF_ERROR(residual->Bind(out_schema));
  }

  const JoinType jt = plan.join_type();
  std::vector<Row> out;
  KeyBuffer kb;
  const size_t ncols = out_schema.NumColumns();

  // For inner joins, hash-build on the smaller input (delta-side inputs of
  // maintenance plans are often tiny next to the base relation they join)
  // and stream the larger side through a tight probe loop — in parallel
  // over probe-row chunks when enabled (per-chunk outputs concatenate in
  // chunk order, reproducing the sequential row order).
  if (jt == JoinType::kInner) {
    SVC_ASSIGN_OR_RETURN(InnerJoin ij, InnerJoin::Prepare(plan, left, right,
                                                          opts_.num_threads));
    const size_t n = ij.probe_side().NumRows();
    auto probe_range = [&](const ExprPtr& res, size_t begin, size_t end,
                           std::vector<Row>* pout) {
      KeyBuffer pb;
      for (size_t i = begin; i < end; ++i) {
        const Row& p = ij.probe_side().row(i);
        RowKeyRef key;
        if (!pb.EncodeIfNonNull(p, ij.pidx(), &key)) continue;
        for (uint32_t j = ij.index.Head(key); j != kNoRow;
             j = ij.index.prev[j]) {
          const Row& b = ij.build_side().row(j);
          Row combined;
          combined.reserve(ncols);
          AppendValues(&combined, ij.build_on_left ? b : p);
          AppendValues(&combined, ij.build_on_left ? p : b);
          if (res && !res->Eval(combined).IsTrue()) continue;
          pout->push_back(std::move(combined));
        }
      }
    };
    const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
    if (RunParallel(opts_, chunks)) {
      std::vector<std::vector<Row>> parts(chunks);
      std::vector<Status> errs(chunks);
      ParallelFor(opts_.num_threads, chunks, [&](size_t c) {
        if (opts_.cancel != nullptr) {
          errs[c] = opts_.cancel->Check("join probe chunk");
          if (!errs[c].ok()) return;
        }
        ExprPtr res;
        if (plan.join_residual()) {
          res = plan.join_residual()->Clone();
          errs[c] = res->Bind(out_schema);
          if (!errs[c].ok()) return;
        }
        auto [begin, end] = ChunkBounds(n, chunks, c);
        parts[c].reserve(end - begin);
        probe_range(res, begin, end, &parts[c]);
      });
      SVC_RETURN_IF_ERROR(FirstError(errs));
      return ExecTable(out_schema, ConcatParts(&parts));
    }
    // One output row per probe row is the common case (foreign-key joins
    // match exactly once); larger outputs grow amortized from there.
    out.reserve(n);
    probe_range(residual, 0, n, &out);
    return ExecTable(out_schema, std::move(out));
  }

  // Outer joins: build side is right.
  std::vector<std::string> lrefs, rrefs;
  for (const auto& k : plan.join_keys()) {
    lrefs.push_back(k.left);
    rrefs.push_back(k.right);
  }
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> lidx,
                       left.schema().ResolveAll(lrefs));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> ridx,
                       right.schema().ResolveAll(rrefs));
  JoinIndex build;
  build.Build(right.rows(), ridx, /*num_threads=*/1);

  std::vector<char> right_matched(right.NumRows(), 0);

  auto emit = [&](const Row* l, const Row* r) {
    Row row;
    row.reserve(out_schema.NumColumns());
    if (l) {
      AppendValues(&row, *l);
    } else {
      row.resize(left.schema().NumColumns());
    }
    if (r) {
      AppendValues(&row, *r);
    } else {
      row.resize(out_schema.NumColumns());
    }
    out.push_back(std::move(row));
  };

  for (size_t i = 0; i < left.NumRows(); ++i) {
    const Row& l = left.row(i);
    bool matched = false;
    RowKeyRef key;
    if (kb.EncodeIfNonNull(l, lidx, &key)) {
      for (uint32_t j = build.Head(key); j != kNoRow; j = build.prev[j]) {
        const Row& r = right.row(j);
        if (residual) {
          Row combined;
          combined.reserve(ncols);
          AppendValues(&combined, l);
          AppendValues(&combined, r);
          if (!residual->Eval(combined).IsTrue()) continue;
          matched = true;
          right_matched[j] = 1;
          out.push_back(std::move(combined));
          continue;
        }
        matched = true;
        right_matched[j] = 1;
        emit(&l, &r);
      }
    }
    if (!matched && (jt == JoinType::kLeft || jt == JoinType::kFull)) {
      emit(&l, nullptr);
    }
  }
  if (jt == JoinType::kRight || jt == JoinType::kFull) {
    for (size_t i = 0; i < right.NumRows(); ++i) {
      if (!right_matched[i]) emit(nullptr, &right.row(i));
    }
  }
  return ExecTable(out_schema, std::move(out));
}

Result<ExecTable> Executor::ExecAggregate(const PlanNode& plan) {
  // Aggregation directly over an inner join runs fused: the probe loop
  // feeds group accumulators without ever materializing the joined rows
  // (one heap row per join output is the single largest cost of the
  // unfused pipeline). Maintenance plans are mostly this shape.
  const PlanNode& child = *plan.child(0);
  if (child.kind() == PlanKind::kJoin &&
      child.join_type() == JoinType::kInner) {
    return ExecAggregateOverJoin(plan, child);
  }

  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(child));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       in.schema().ResolveAll(plan.group_by()));
  SVC_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Prepare(plan, in.schema()));
  Schema out_schema = spec.OutputSchema(in.schema(), gidx);

  const size_t n = in.NumRows();
  const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
  // Parallel path: partition rows by group-key hash radix, one accumulator
  // table per shard. A global aggregate (no group columns) is a single
  // group — inherently one sequential reduction under bit-reproducibility,
  // so it stays on the sequential path.
  if (RunParallel(opts_, chunks) && !gidx.empty() && n < UINT32_MAX) {
    const RadixPartitions<RowTag> parts = RadixTagPhase<RowTag>(
        opts_.num_threads, n, chunks,
        [&](size_t, size_t begin, size_t end,
            std::vector<std::vector<RowTag>>* buckets, std::string* arena) {
          KeyBuffer kb;
          for (size_t i = begin; i < end; ++i) {
            const RowKeyRef key = kb.Encode(in.row(i), gidx);
            (*buckets)[RadixShardOf(key.hash)].push_back(
                {key.hash, static_cast<uint32_t>(i),
                 StashKeyBytes(arena, key.bytes)});
          }
        });
    std::vector<AggShard> shards;
    shards.reserve(kRadixShards);
    for (size_t s = 0; s < kRadixShards; ++s) {
      shards.emplace_back(spec.aggs->size());
    }
    std::vector<Status> errs(kRadixShards);
    RadixVisitShards(
        opts_.num_threads, parts, [&](size_t s, size_t, auto&& for_each) {
          auto spec_or = AggSpec::Prepare(plan, in.schema());
          if (!spec_or.ok()) {
            errs[s] = spec_or.status();
            return;
          }
          const AggSpec cspec = std::move(spec_or).value();
          AggShard& shard = shards[s];
          KeyBuffer vb;
          for_each([&](size_t c, const RowTag& t) {
            const Row& r = in.row(t.row);
            const RowKeyRef key = {parts.KeyBytes(c, t.key), t.hash};
            AggState* st = shard.groups.Slot(key, [&] {
              shard.first_ord.push_back(t.row);
              Row gk;
              gk.reserve(gidx.size());
              for (size_t i : gidx) gk.push_back(r[i]);
              return gk;
            });
            AccumulateRow(r, cspec, st, &vb);
          });
        });
    SVC_RETURN_IF_ERROR(FirstError(errs));
    return ExecTable(std::move(out_schema), AssembleAggShards(&shards, spec));
  }

  GroupTable groups(spec.aggs->size());
  KeyBuffer kb, vb;
  for (const auto& r : in.rows()) {
    const RowKeyRef key = kb.Encode(r, gidx);
    AggState* st = groups.Slot(key, [&] {
      Row gk;
      gk.reserve(gidx.size());
      for (size_t i : gidx) gk.push_back(r[i]);
      return gk;
    });
    AccumulateRow(r, spec, st, &vb);
  }
  return ExecTable(std::move(out_schema),
                   groups.Finalize(spec, /*global=*/gidx.empty()));
}

Result<ExecTable> Executor::ExecAggregateOverJoin(const PlanNode& plan,
                                                  const PlanNode& join) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*join.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*join.child(1)));

  const Schema join_schema = Schema::Concat(left.schema(), right.schema());
  ExprPtr residual;
  if (join.join_residual()) {
    residual = join.join_residual()->Clone();
    SVC_RETURN_IF_ERROR(residual->Bind(join_schema));
  }

  SVC_ASSIGN_OR_RETURN(std::vector<size_t> gidx,
                       join_schema.ResolveAll(plan.group_by()));
  SVC_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Prepare(plan, join_schema));
  Schema out_schema = spec.OutputSchema(join_schema, gidx);

  SVC_ASSIGN_OR_RETURN(
      InnerJoin ij, InnerJoin::Prepare(join, left, right, opts_.num_threads));
  const size_t lcols = left.schema().NumColumns();

  const size_t n = ij.probe_side().NumRows();
  const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
  // Parallel fused path: probe-row chunks join and bucket surviving
  // matches by group-key hash radix; each shard then accumulates its
  // matches in global match order into its own group table. As in
  // ExecAggregate, every group's accumulator sees exactly the sequential
  // order of contributions, so results are bit-identical at any thread
  // count; first-match ordinals restore the sequential group order.
  if (RunParallel(opts_, chunks) && !gidx.empty() &&
      ij.build_side().NumRows() < UINT32_MAX && n < UINT32_MAX) {
    struct MatchTag {
      uint64_t hash;   ///< group-key hash
      uint32_t probe;  ///< probe-side row
      uint32_t build;  ///< build-side row
      uint32_t ord;    ///< match ordinal within the chunk
      ArenaRef key;    ///< encoded group-key bytes
    };
    std::vector<uint64_t> chunk_matches(chunks, 0);
    std::vector<Status> errs(chunks);
    const RadixPartitions<MatchTag> parts = RadixTagPhase<MatchTag>(
        opts_.num_threads, n, chunks,
        [&](size_t c, size_t begin, size_t end,
            std::vector<std::vector<MatchTag>>* buckets,
            std::string* arena) {
          ExprPtr res;
          if (join.join_residual()) {
            res = join.join_residual()->Clone();
            errs[c] = res->Bind(join_schema);
            if (!errs[c].ok()) return;
          }
          KeyBuffer pb, gb;
          Row combined;
          uint32_t ord = 0;
          for (size_t i = begin; i < end; ++i) {
            const Row& p = ij.probe_side().row(i);
            RowKeyRef pkey;
            if (!pb.EncodeIfNonNull(p, ij.pidx(), &pkey)) continue;
            for (uint32_t j = ij.index.Head(pkey); j != kNoRow;
                 j = ij.index.prev[j]) {
              const Row& b = ij.build_side().row(j);
              const Row& lrow = ij.build_on_left ? b : p;
              const Row& rrow = ij.build_on_left ? p : b;
              if (res) {
                combined.clear();
                combined.reserve(join_schema.NumColumns());
                AppendValues(&combined, lrow);
                AppendValues(&combined, rrow);
                if (!res->Eval(combined).IsTrue()) continue;
              }
              auto colv = [&](size_t col) -> const Value& {
                return col < lcols ? lrow[col] : rrow[col - lcols];
              };
              const RowKeyRef gkey = gb.EncodeWith(gidx, colv);
              if (ord == UINT32_MAX) {
                // A wrapped ordinal would silently scramble group order;
                // fail loudly like the other 2^32 guards.
                std::fprintf(
                    stderr,
                    "ExecAggregateOverJoin: 2^32-1 matches in one chunk\n");
                std::abort();
              }
              (*buckets)[RadixShardOf(gkey.hash)].push_back(
                  {gkey.hash, static_cast<uint32_t>(i), j, ord++,
                   StashKeyBytes(arena, gkey.bytes)});
            }
          }
          chunk_matches[c] = ord;
        });
    SVC_RETURN_IF_ERROR(FirstError(errs));
    std::vector<uint64_t> ord_offset(chunks, 0);
    for (size_t c = 1; c < chunks; ++c) {
      ord_offset[c] = ord_offset[c - 1] + chunk_matches[c - 1];
    }
    std::vector<AggShard> shards;
    shards.reserve(kRadixShards);
    for (size_t s = 0; s < kRadixShards; ++s) {
      shards.emplace_back(spec.aggs->size());
    }
    std::vector<Status> serrs(kRadixShards);
    RadixVisitShards(
        opts_.num_threads, parts, [&](size_t s, size_t, auto&& for_each) {
          auto spec_or = AggSpec::Prepare(plan, join_schema);
          if (!spec_or.ok()) {
            serrs[s] = spec_or.status();
            return;
          }
          const AggSpec cspec = std::move(spec_or).value();
          const auto& caggs = *cspec.aggs;
          AggShard& shard = shards[s];
          KeyBuffer vb;
          Row scratch;
          for_each([&](size_t c, const MatchTag& t) {
            const Row& p = ij.probe_side().row(t.probe);
            const Row& b = ij.build_side().row(t.build);
            const Row& lrow = ij.build_on_left ? b : p;
            const Row& rrow = ij.build_on_left ? p : b;
            auto colv = [&](size_t col) -> const Value& {
              return col < lcols ? lrow[col] : rrow[col - lcols];
            };
            const RowKeyRef gkey = {parts.KeyBytes(c, t.key), t.hash};
            AggState* st = shard.groups.Slot(gkey, [&] {
              shard.first_ord.push_back(ord_offset[c] + t.ord);
              Row gk;
              gk.reserve(gidx.size());
              for (size_t i : gidx) gk.push_back(colv(i));
              return gk;
            });
            if (!cspec.all_columns) {
              scratch.clear();
              scratch.reserve(join_schema.NumColumns());
              AppendValues(&scratch, lrow);
              AppendValues(&scratch, rrow);
              AccumulateRow(scratch, cspec, st, &vb);
              return;
            }
            for (size_t a = 0; a < caggs.size(); ++a) {
              if (caggs[a].func == AggFunc::kCountStar) {
                ++st[a].count;
                continue;
              }
              const Value& v = colv(static_cast<size_t>(cspec.input_col[a]));
              if (v.is_null()) continue;
              Accumulate(&st[a], caggs[a].func, v, &vb);
            }
          });
        });
    SVC_RETURN_IF_ERROR(FirstError(serrs));
    return ExecTable(std::move(out_schema), AssembleAggShards(&shards, spec));
  }

  // Residuals and full-row aggregate expressions need a materialized
  // combined row; one reusable scratch buffer serves every match.
  const bool need_scratch = residual != nullptr || !spec.all_columns;
  Row scratch;

  GroupTable groups(spec.aggs->size());
  const auto& aggs = *spec.aggs;
  KeyBuffer pb, gb, vb;
  for (const Row& p : ij.probe_side().rows()) {
    RowKeyRef pkey;
    if (!pb.EncodeIfNonNull(p, ij.pidx(), &pkey)) continue;
    for (uint32_t j = ij.index.Head(pkey); j != kNoRow; j = ij.index.prev[j]) {
      const Row& b = ij.build_side().row(j);
      const Row& lrow = ij.build_on_left ? b : p;
      const Row& rrow = ij.build_on_left ? p : b;
      // Reads a column of the conceptual combined row without building it.
      auto colv = [&](size_t c) -> const Value& {
        return c < lcols ? lrow[c] : rrow[c - lcols];
      };
      if (need_scratch) {
        scratch.clear();
        scratch.reserve(join_schema.NumColumns());
        AppendValues(&scratch, lrow);
        AppendValues(&scratch, rrow);
        if (residual && !residual->Eval(scratch).IsTrue()) continue;
      }
      const RowKeyRef gkey = gb.EncodeWith(gidx, colv);
      AggState* st = groups.Slot(gkey, [&] {
        Row gk;
        gk.reserve(gidx.size());
        for (size_t i : gidx) gk.push_back(colv(i));
        return gk;
      });
      if (need_scratch) {
        AccumulateRow(scratch, spec, st, &vb);
        continue;
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (aggs[a].func == AggFunc::kCountStar) {
          ++st[a].count;
          continue;
        }
        const Value& v = colv(static_cast<size_t>(spec.input_col[a]));
        if (v.is_null()) continue;
        Accumulate(&st[a], aggs[a].func, v, &vb);
      }
    }
  }
  return ExecTable(std::move(out_schema),
                   groups.Finalize(spec, /*global=*/gidx.empty()));
}

Result<ExecTable> Executor::ExecSetOp(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable left, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(ExecTable right, Exec(*plan.child(1)));
  if (left.schema().NumColumns() != right.schema().NumColumns()) {
    return Status::InvalidArgument("set operation arity mismatch");
  }
  std::vector<size_t> all(left.schema().NumColumns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;

  KeyBuffer kb;
  auto encode_all = [&](const ExecTable& t) {
    KeySet keys;
    keys.Reserve(t.NumRows());
    for (const auto& r : t.rows()) {
      const RowKeyRef key = kb.Encode(r, all);
      keys.Insert(key.bytes, key.hash);
    }
    return keys;
  };

  std::vector<Row> out;
  KeySet seen;
  // Appends row `i` of `side` (moving when the side's rows are owned) if
  // its already-encoded `key` is new.
  auto emit_if_new = [&](ExecTable& side, size_t i, const RowKeyRef& key) {
    if (!seen.Insert(key.bytes, key.hash)) return;
    if (side.owned()) {
      out.push_back(std::move(side.owned_rows()[i]));
    } else {
      out.push_back(side.row(i));
    }
  };

  switch (plan.kind()) {
    case PlanKind::kUnion: {
      seen.Reserve(left.NumRows() + right.NumRows());
      for (ExecTable* t : {&left, &right}) {
        for (size_t i = 0; i < t->NumRows(); ++i) {
          emit_if_new(*t, i, kb.Encode(t->row(i), all));
        }
      }
      break;
    }
    case PlanKind::kIntersect: {
      const KeySet rkeys = encode_all(right);
      for (size_t i = 0; i < left.NumRows(); ++i) {
        const RowKeyRef key = kb.Encode(left.row(i), all);
        if (rkeys.Contains(key.bytes, key.hash)) emit_if_new(left, i, key);
      }
      break;
    }
    case PlanKind::kDifference: {
      const KeySet rkeys = encode_all(right);
      for (size_t i = 0; i < left.NumRows(); ++i) {
        const RowKeyRef key = kb.Encode(left.row(i), all);
        if (!rkeys.Contains(key.bytes, key.hash)) emit_if_new(left, i, key);
      }
      break;
    }
    default:
      return Status::Internal("not a set op");
  }
  return ExecTable(left.TakeSchema(), std::move(out));
}

Result<ExecTable> Executor::ExecHashFilter(const PlanNode& plan) {
  SVC_ASSIGN_OR_RETURN(ExecTable in, Exec(*plan.child(0)));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                       in.schema().ResolveAll(plan.hash_columns()));
  const size_t n = in.NumRows();
  const double m = plan.hash_ratio();
  if (plan.key_set() == nullptr && m >= 1.0) {
    return in;  // η with m = 1 is the identity; pass through
  }
  // Membership for row i: key-set containment, or η hash membership with
  // the plan's configured family (sample determinism; only the bytes are
  // needed there, not the table hash).
  auto keep_range = [&](size_t begin, size_t end, std::vector<Row>* out) {
    KeyBuffer kb;
    for (size_t i = begin; i < end; ++i) {
      if (plan.key_set() != nullptr) {
        const RowKeyRef key = kb.Encode(in.row(i), idx);
        if (!plan.key_set()->Contains(key.bytes, key.hash)) continue;
      } else {
        const std::string_view bytes = kb.EncodeBytes(in.row(i), idx);
        if (!HashInSample(bytes, m, plan.hash_family())) continue;
      }
      if (in.owned()) {
        out->push_back(std::move(in.owned_rows()[i]));
      } else {
        out->push_back(in.row(i));
      }
    }
  };
  const size_t chunks = DeterministicChunks(n, kMinChunkRows, kMaxChunks);
  if (RunParallel(opts_, chunks)) {
    std::vector<std::vector<Row>> parts(chunks);
    ParallelFor(opts_.num_threads, chunks, [&](size_t c) {
      auto [begin, end] = ChunkBounds(n, chunks, c);
      keep_range(begin, end, &parts[c]);
    });
    return ExecTable(in.TakeSchema(), ConcatParts(&parts));
  }
  std::vector<Row> out;
  keep_range(0, n, &out);
  return ExecTable(in.TakeSchema(), std::move(out));
}

}  // namespace svc
