#ifndef SVC_RELATIONAL_DATABASE_H_
#define SVC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace svc {

/// Catalog of named base relations (and, for SVC, registered delta
/// relations and materialized views — they are all just tables).
///
/// Tables are held behind shared_ptr so a Database copy is a *snapshot*:
/// it shares every table's storage with the original (O(#tables) pointer
/// copies, no row copies). Mutation is copy-on-write — GetMutableTable
/// clones a table the first time it is touched while still shared with a
/// snapshot, so readers of old snapshots never observe writer mutations.
/// This is what lets SharedEngine (core/shared_engine.h) publish immutable
/// engine versions to concurrent readers cheaply.
class Database {
 public:
  Database() = default;
  /// Snapshot copy: shares all table storage with `other` (copy-on-write
  /// on the next mutation of either side).
  Database(const Database&) = default;
  Database& operator=(const Database&) = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers `table` under `name`; fails with AlreadyExists on collision.
  Status CreateTable(const std::string& name, Table table);

  /// Registers or replaces.
  void PutTable(const std::string& name, Table table);

  /// Registers or replaces `name` with a table whose storage stays shared
  /// with the caller (no row copies). Used by DeltaSet to register sealed
  /// delta chunks; the caller must not mutate the table while it is
  /// registered (GetMutableTable would clone it anyway — the caller's
  /// reference keeps it shared).
  void PutTableShared(const std::string& name,
                      std::shared_ptr<const Table> table);

  /// Looks up a table; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;

  /// The shared handle registered under `name` (null if absent). The
  /// pointer identity doubles as a cheap version key: any mutation through
  /// GetMutableTable or PutTable installs a different object, so caches can
  /// validate an entry by comparing handles.
  std::shared_ptr<const Table> GetTableShared(const std::string& name) const;

  /// Mutable lookup; NotFound if absent. If the table's storage is shared
  /// with a snapshot copy of this Database, it is cloned first (the
  /// snapshot keeps the old version).
  Result<Table*> GetMutableTable(const std::string& name);

  /// True iff `name` is registered.
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Removes a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// Names of all registered tables (sorted).
  std::vector<std::string> TableNames() const;

 private:
  // Held as shared_ptr<const Table>: every handle handed to snapshots or
  // caches is read-only; GetMutableTable casts away const only when this
  // catalog holds the sole reference (tables are never const-constructed,
  // so the cast is well-defined).
  std::map<std::string, std::shared_ptr<const Table>> tables_;
};

}  // namespace svc

#endif  // SVC_RELATIONAL_DATABASE_H_
