#ifndef SVC_RELATIONAL_DATABASE_H_
#define SVC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace svc {

/// Catalog of named base relations (and, for SVC, registered delta
/// relations and materialized views — they are all just tables).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Registers `table` under `name`; fails with AlreadyExists on collision.
  Status CreateTable(const std::string& name, Table table);

  /// Registers or replaces.
  void PutTable(const std::string& name, Table table);

  /// Looks up a table; NotFound if absent.
  Result<const Table*> GetTable(const std::string& name) const;

  /// Mutable lookup; NotFound if absent.
  Result<Table*> GetMutableTable(const std::string& name);

  /// True iff `name` is registered.
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Removes a table; NotFound if absent.
  Status DropTable(const std::string& name);

  /// Names of all registered tables (sorted).
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace svc

#endif  // SVC_RELATIONAL_DATABASE_H_
