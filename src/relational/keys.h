#ifndef SVC_RELATIONAL_KEYS_H_
#define SVC_RELATIONAL_KEYS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"

namespace svc {

/// Derives the primary key of every node of `plan` bottom-up following the
/// paper's Definition 2 (Primary Key Generation):
///
///   * Scan        — the base relation's declared primary key
///   * σ (Select)  — the child's key
///   * Π (Project) — the child's key; every key column must survive the
///                   projection as a bare column reference (possibly
///                   renamed), otherwise derivation fails
///   * ⋈ (Join)    — the tuple (concatenation) of both children's keys
///   * γ (Aggregate) — the group-by attributes
///   * ∪ (Union)   — the union of both children's key attribute sets
///   * ∩ (Intersect) — the intersection of both children's key sets
///   * − (Difference) — the left child's key
///   * η (HashFilter) — the child's key (it is a filter)
///
/// Each node's `derived_pk` is set to the key's column references *in that
/// node's output schema*, and the root key is returned. Fails with
/// InvalidArgument when a base relation lacks a declared key or a
/// projection drops part of the key.
Result<std::vector<std::string>> DerivePrimaryKeys(PlanNode* plan,
                                                   const Database& db);

/// The paper's fallback for keyless base relations: rebuilds `*table` with
/// an extra integer column `col_name` holding an increasing sequence, and
/// declares it the primary key.
Status AddSequencePrimaryKey(Table* table, const std::string& col_name);

}  // namespace svc

#endif  // SVC_RELATIONAL_KEYS_H_
