#ifndef SVC_RELATIONAL_TABLE_H_
#define SVC_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/status.h"
#include "relational/row_key.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace svc {

/// An in-memory relation: a schema plus a row store, optionally with a
/// declared primary key maintained as a flat open-addressing hash index
/// (common/flat_map.h). Base relations always carry a primary key (the
/// paper assumes one and adds a sequence column otherwise); intermediate
/// results produced by the executor may not.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  /// Bulk constructor used by the executor: adopts a row vector without
  /// per-row checks (copy at the call site to materialize borrowed rows).
  static Table FromRows(Schema schema, std::vector<Row> rows) {
    Table t(std::move(schema));
    t.rows_ = std::move(rows);
    return t;
  }

  /// The relation's schema.
  const Schema& schema() const { return schema_; }

  /// Number of rows.
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Row access by position.
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Declares `key_columns` (by reference name) as the primary key and
  /// builds the index. Fails with InvalidArgument if existing rows violate
  /// uniqueness or a column is unknown.
  Status SetPrimaryKey(const std::vector<std::string>& key_columns);

  /// True iff a primary key is declared.
  bool HasPrimaryKey() const { return !pk_indices_.empty(); }
  /// Positions of the primary-key columns.
  const std::vector<size_t>& pk_indices() const { return pk_indices_; }
  /// Reference names of the primary-key columns.
  std::vector<std::string> PrimaryKeyNames() const;

  /// Appends a row without any key check (bulk load of intermediates).
  void AppendUnchecked(Row row);

  /// Inserts a row; with a primary key declared, rejects duplicates with
  /// AlreadyExists. Arity must match the schema.
  Status Insert(Row row);

  /// Inserts, or replaces the existing row with the same key. Returns true
  /// if a row was replaced. Requires a primary key.
  Result<bool> Upsert(Row row);

  /// Deletes the row matching the encoded key of `key_row` (a full row whose
  /// key columns are read). Returns true if a row was deleted. Requires a
  /// primary key.
  Result<bool> DeleteByKeyOf(const Row& key_row);

  /// Looks up a row index by the encoded key of `key_row`. Returns NotFound
  /// if absent. Requires a primary key.
  Result<size_t> FindByKeyOf(const Row& key_row) const;

  /// Looks up by pre-encoded key bytes.
  Result<size_t> FindByEncodedKey(std::string_view key) const;

  /// Looks up by an encoded key with its hash already computed.
  Result<size_t> FindByKeyRef(const RowKeyRef& key) const;

  /// Encoded primary key of row `i`. Requires a primary key.
  std::string EncodedKey(size_t i) const {
    return EncodeRowKey(rows_[i], pk_indices_);
  }

  /// Removes all rows (keeps schema and key declaration).
  void Clear();

  /// Renders up to `max_rows` rows for debugging.
  std::string ToString(size_t max_rows = 20) const;

 private:
  Status CheckArity(const Row& row) const;

  Schema schema_;
  std::vector<Row> rows_;
  std::vector<size_t> pk_indices_;
  FlatKeyMap<size_t> pk_index_;  // encoded key -> row position
};

}  // namespace svc

#endif  // SVC_RELATIONAL_TABLE_H_
