#ifndef SVC_RELATIONAL_SCHEMA_H_
#define SVC_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace svc {

/// One output column of a relation: an optional table qualifier (alias of
/// the relation it came from), a name, and a type.
struct Column {
  std::string qualifier;  ///< originating relation alias; "" if none
  std::string name;       ///< column name (unique per qualifier)
  ValueType type = ValueType::kNull;

  /// "qualifier.name" or just "name" when unqualified.
  std::string FullName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }
};

/// Ordered list of output columns of a relation. Column lookup accepts
/// either a bare name (must be unambiguous) or a qualified "alias.name".
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : cols_(std::move(columns)) {}

  /// Number of columns.
  size_t NumColumns() const { return cols_.size(); }
  /// Column metadata by position.
  const Column& column(size_t i) const { return cols_[i]; }
  /// All columns.
  const std::vector<Column>& columns() const { return cols_; }

  /// Appends a column.
  void AddColumn(Column col) { cols_.push_back(std::move(col)); }

  /// Resolves `ref` — "name" or "qualifier.name" — to a column index.
  /// Returns NotFound if no column matches and InvalidArgument if a bare
  /// name is ambiguous across qualifiers.
  Result<size_t> Resolve(const std::string& ref) const;

  /// Resolve() for several references at once.
  Result<std::vector<size_t>> ResolveAll(
      const std::vector<std::string>& refs) const;

  /// True iff some column matches `ref` unambiguously.
  bool Contains(const std::string& ref) const { return Resolve(ref).ok(); }

  /// Returns a copy of this schema with every column's qualifier replaced
  /// by `alias` (used when a relation is scanned under an alias).
  Schema WithQualifier(const std::string& alias) const;

  /// Concatenation (used by joins). Column name collisions are allowed as
  /// long as qualifiers disambiguate.
  static Schema Concat(const Schema& left, const Schema& right);

  /// "(" + comma-separated FullName:type + ")".
  std::string ToString() const;

  bool operator==(const Schema& o) const;

 private:
  std::vector<Column> cols_;
};

}  // namespace svc

#endif  // SVC_RELATIONAL_SCHEMA_H_
