#ifndef SVC_RELATIONAL_ROW_KEY_H_
#define SVC_RELATIONAL_ROW_KEY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/flat_map.h"
#include "relational/value.h"

namespace svc {

/// A non-owning reference to an encoded row key: the canonical key bytes
/// (Value::EncodeTo over the key columns) plus their 64-bit hash, computed
/// once and reused across every table the key probes. The bytes live in the
/// KeyBuffer that produced the ref and are valid until its next Encode.
struct RowKeyRef {
  std::string_view bytes;
  uint64_t hash = 0;
};

/// A reusable encoding buffer for row keys. Operators allocate one
/// KeyBuffer per loop, not one std::string per row: encoding reuses the
/// same heap block, so steady-state key encoding is allocation-free.
class KeyBuffer {
 public:
  /// Encodes row[indices] and returns the bytes with their hash.
  RowKeyRef Encode(const Row& row, const std::vector<size_t>& indices) {
    EncodeBytes(row, indices);
    return {buf_, KeyHash(buf_)};
  }

  /// Encodes row[indices] and returns just the bytes (for callers that hash
  /// with a different family, e.g. η sampling membership).
  std::string_view EncodeBytes(const Row& row,
                               const std::vector<size_t>& indices) {
    buf_.clear();
    for (size_t i : indices) row[i].EncodeTo(&buf_);
    return buf_;
  }

  /// Encodes row[indices] unless one of the key values is NULL (NULL join
  /// keys never match, so callers skip such rows). Returns false without
  /// producing a key in that case. Single pass: the NULL check and the
  /// encode share one read of each value.
  bool EncodeIfNonNull(const Row& row, const std::vector<size_t>& indices,
                       RowKeyRef* out) {
    buf_.clear();
    for (size_t i : indices) {
      if (row[i].is_null()) return false;
      row[i].EncodeTo(&buf_);
    }
    *out = {buf_, KeyHash(buf_)};
    return true;
  }

  /// Encodes the values `value_at(i)` for each index in `indices`. Lets
  /// fused operators (e.g. aggregate-over-join) key groups without first
  /// materializing a combined row.
  template <typename Fn>
  RowKeyRef EncodeWith(const std::vector<size_t>& indices, Fn&& value_at) {
    buf_.clear();
    for (size_t i : indices) value_at(i).EncodeTo(&buf_);
    return {buf_, KeyHash(buf_)};
  }

  /// Encodes a single value (count-distinct tracking).
  RowKeyRef EncodeValue(const Value& v) {
    buf_.clear();
    v.EncodeTo(&buf_);
    return {buf_, KeyHash(buf_)};
  }

  /// The bytes of the last encode.
  std::string_view bytes() const { return buf_; }

 private:
  std::string buf_;
};

}  // namespace svc

#endif  // SVC_RELATIONAL_ROW_KEY_H_
