#include "relational/value.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace svc {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

bool Value::operator==(const Value& o) const {
  const ValueType a = type(), b = o.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return a == b;
  }
  if (IsNumeric() && o.IsNumeric()) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      return AsInt() == o.AsInt();
    }
    return ToDouble() == o.ToDouble();
  }
  if (a != b) return false;
  return AsString() == o.AsString();
}

bool Value::operator<(const Value& o) const {
  const ValueType a = type(), b = o.type();
  if (a == ValueType::kNull) return b != ValueType::kNull;
  if (b == ValueType::kNull) return false;
  if (IsNumeric() && o.IsNumeric()) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      return AsInt() < o.AsInt();
    }
    return ToDouble() < o.ToDouble();
  }
  if (IsNumeric() != o.IsNumeric()) return IsNumeric();  // numerics first
  return AsString() < o.AsString();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString: return AsString();
  }
  return "?";
}

void Value::EncodeTo(std::string* out) const {
  // Tags: N = null, I = integer (also integral doubles), D = fractional
  // double, S = string. Integral doubles share the int encoding so a key
  // that flows through an arithmetic projection (becoming a double) still
  // hashes identically — the η operator depends on this.
  switch (type()) {
    case ValueType::kNull:
      out->push_back('N');
      return;
    case ValueType::kInt: {
      out->push_back('I');
      const int64_t v = AsInt();
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case ValueType::kDouble: {
      const double d = AsDouble();
      if (std::nearbyint(d) == d && std::abs(d) < 9.0e18) {
        out->push_back('I');
        const int64_t v = static_cast<int64_t>(d);
        out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      } else {
        out->push_back('D');
        out->append(reinterpret_cast<const char*>(&d), sizeof(d));
      }
      return;
    }
    case ValueType::kString: {
      out->push_back('S');
      const uint32_t n = static_cast<uint32_t>(AsString().size());
      out->append(reinterpret_cast<const char*>(&n), sizeof(n));
      out->append(AsString());
      return;
    }
  }
}

std::string EncodeRowKey(const Row& row, const std::vector<size_t>& indices) {
  std::string key;
  key.reserve(indices.size() * 10);
  for (size_t i : indices) {
    row[i].EncodeTo(&key);
  }
  return key;
}

}  // namespace svc
