#ifndef SVC_RELATIONAL_EXECUTOR_H_
#define SVC_RELATIONAL_EXECUTOR_H_

#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/table.h"

namespace svc {

/// Execution knobs threaded from the engine facade down to every operator.
struct ExecOptions {
  /// Worker threads data-parallel operators may use: 1 = fully sequential,
  /// 0 = all hardware threads. Any setting produces bit-identical results:
  /// operators decompose their input into chunks whose count depends only
  /// on the input size (common/thread_pool.h), so partial results merge in
  /// the same order no matter how many threads ran them.
  int num_threads = 1;
  /// Cooperative cancellation (request deadlines): when set, every operator
  /// polls it on entry and the chunked loops poll it per chunk, failing
  /// with DeadlineExceeded instead of finishing work nobody is waiting
  /// for. Null (the default) costs nothing. Borrowed — the caller keeps
  /// the token alive for the duration of the plan.
  const CancelToken* cancel = nullptr;
};

/// An intermediate operator result: a schema plus rows that are either
/// owned by this object or borrowed from a base table in the catalog.
/// Scans borrow (zero-copy); every other operator owns its output. Owned
/// rows may be moved into the next operator's output instead of copied.
class ExecTable {
 public:
  /// Owned rows.
  ExecTable(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  /// Borrowed rows (`rows` must outlive this object; in practice the
  /// database outlives the executor).
  ExecTable(Schema schema, const std::vector<Row>* rows)
      : schema_(std::move(schema)), borrowed_(rows) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const {
    return borrowed_ != nullptr ? *borrowed_ : rows_;
  }
  size_t NumRows() const { return rows().size(); }
  const Row& row(size_t i) const { return rows()[i]; }

  bool owned() const { return borrowed_ == nullptr; }
  /// Mutable access for row moves. Requires owned().
  std::vector<Row>& owned_rows() { return rows_; }
  /// Releases the schema (leaves this object in a moved-from state).
  Schema TakeSchema() { return std::move(schema_); }

  /// Converts into a materialized Table: moves the rows when owned, copies
  /// them when borrowed.
  Table Materialize() && {
    if (owned()) return Table::FromRows(std::move(schema_), std::move(rows_));
    return Table::FromRows(std::move(schema_), std::vector<Row>(*borrowed_));
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  const std::vector<Row>* borrowed_ = nullptr;
};

/// Evaluates relational-algebra trees against a Database, materializing the
/// result as a Table. Equi-joins run as hash joins (build on the right,
/// probe from the left), aggregation as hash aggregation, and set
/// operations via encoded-row hash sets. NULL join keys never match (SQL
/// semantics); outer joins pad the non-matching side with NULLs.
///
/// Hot-path design: scans return borrowed views of base tables (no row
/// copies), row-filtering operators move rows they own, and every hash
/// probe goes through a reusable KeyBuffer into flat open-addressing
/// tables (common/flat_map.h) — the steady state allocates only for output
/// rows, never for keys.
///
/// The executor is deterministic: the same plan over the same data produces
/// the same multiset of rows, which the deterministic sampling operator η
/// (PlanKind::kHashFilter) relies on.
///
/// With ExecOptions::num_threads > 1 the hot operators run partitioned:
/// select/project/η over contiguous row-range chunks, the inner-join build
/// into hash-radix shards probed in parallel, and aggregation partitioned
/// by group-key hash radix — every group lives in one shard and
/// accumulates its rows in global input order (NOT per-chunk partials
/// merged at the end, whose floating-point merge order would depend on
/// the decomposition), with first-contribution ordinals restoring the
/// sequential group order. Partitioning is a pure function of the input
/// size, so every thread count — including 1 — yields bit-identical
/// output, row order included.
class Executor {
 public:
  /// The database must outlive the executor.
  explicit Executor(const Database* db, ExecOptions opts = {})
      : db_(db), opts_(opts) {}

  /// Runs `plan` to completion and returns the materialized result.
  Result<Table> Execute(const PlanNode& plan);

 private:
  Result<ExecTable> Exec(const PlanNode& plan);
  Result<ExecTable> ExecScan(const PlanNode& plan);
  Result<ExecTable> ExecSelect(const PlanNode& plan);
  Result<ExecTable> ExecProject(const PlanNode& plan);
  Result<ExecTable> ExecJoin(const PlanNode& plan);
  Result<ExecTable> ExecAggregate(const PlanNode& plan);
  /// Fused γ(⋈): probes the join build index and feeds group accumulators
  /// directly, never materializing the joined rows.
  Result<ExecTable> ExecAggregateOverJoin(const PlanNode& plan,
                                          const PlanNode& join);
  Result<ExecTable> ExecSetOp(const PlanNode& plan);
  Result<ExecTable> ExecHashFilter(const PlanNode& plan);

  const Database* db_;
  ExecOptions opts_;
};

/// Convenience wrapper: one-shot execution.
inline Result<Table> ExecutePlan(const PlanNode& plan, const Database& db,
                                 ExecOptions opts = {}) {
  Executor exec(&db, opts);
  return exec.Execute(plan);
}

}  // namespace svc

#endif  // SVC_RELATIONAL_EXECUTOR_H_
