#ifndef SVC_RELATIONAL_EXECUTOR_H_
#define SVC_RELATIONAL_EXECUTOR_H_

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/database.h"
#include "relational/table.h"

namespace svc {

/// Evaluates relational-algebra trees against a Database, materializing the
/// result as a Table. Equi-joins run as hash joins (build on the right,
/// probe from the left), aggregation as hash aggregation, and set
/// operations via encoded-row hash sets. NULL join keys never match (SQL
/// semantics); outer joins pad the non-matching side with NULLs.
///
/// The executor is deterministic: the same plan over the same data produces
/// the same multiset of rows, which the deterministic sampling operator η
/// (PlanKind::kHashFilter) relies on.
class Executor {
 public:
  /// The database must outlive the executor.
  explicit Executor(const Database* db) : db_(db) {}

  /// Runs `plan` to completion and returns the materialized result.
  Result<Table> Execute(const PlanNode& plan);

 private:
  Result<Table> ExecScan(const PlanNode& plan);
  Result<Table> ExecSelect(const PlanNode& plan);
  Result<Table> ExecProject(const PlanNode& plan);
  Result<Table> ExecJoin(const PlanNode& plan);
  Result<Table> ExecAggregate(const PlanNode& plan);
  Result<Table> ExecSetOp(const PlanNode& plan);
  Result<Table> ExecHashFilter(const PlanNode& plan);

  const Database* db_;
};

/// Convenience wrapper: one-shot execution.
inline Result<Table> ExecutePlan(const PlanNode& plan, const Database& db) {
  Executor exec(&db);
  return exec.Execute(plan);
}

}  // namespace svc

#endif  // SVC_RELATIONAL_EXECUTOR_H_
