#include "relational/schema.h"

namespace svc {

Result<size_t> Schema::Resolve(const std::string& ref) const {
  const size_t dot = ref.find('.');
  if (dot != std::string::npos) {
    const std::string qual = ref.substr(0, dot);
    const std::string name = ref.substr(dot + 1);
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (cols_[i].qualifier == qual && cols_[i].name == name) return i;
    }
    // Fall through: maybe the column's *name* literally contains a dot
    // (e.g. it was materialized from a qualified projection).
  }
  std::optional<size_t> found;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == ref || cols_[i].FullName() == ref) {
      if (found.has_value() && cols_[*found].name == cols_[i].name &&
          cols_[*found].qualifier != cols_[i].qualifier) {
        return Status::InvalidArgument("ambiguous column reference: " + ref);
      }
      if (!found.has_value()) found = i;
    }
  }
  if (!found.has_value()) {
    return Status::NotFound("no such column: " + ref + " in " + ToString());
  }
  return *found;
}

Result<std::vector<size_t>> Schema::ResolveAll(
    const std::vector<std::string>& refs) const {
  std::vector<size_t> out;
  out.reserve(refs.size());
  for (const auto& r : refs) {
    SVC_ASSIGN_OR_RETURN(size_t idx, Resolve(r));
    out.push_back(idx);
  }
  return out;
}

Schema Schema::WithQualifier(const std::string& alias) const {
  Schema s = *this;
  for (auto& c : s.cols_) c.qualifier = alias;
  return s;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  Schema s = left;
  for (const auto& c : right.cols_) s.cols_.push_back(c);
  return s;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].FullName();
    out += ":";
    out += ValueTypeName(cols_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::operator==(const Schema& o) const {
  if (cols_.size() != o.cols_.size()) return false;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name != o.cols_[i].name ||
        cols_[i].qualifier != o.cols_[i].qualifier ||
        cols_[i].type != o.cols_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace svc
