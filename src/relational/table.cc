#include "relational/table.h"

#include <sstream>

namespace svc {

Status Table::SetPrimaryKey(const std::vector<std::string>& key_columns) {
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                       schema_.ResolveAll(key_columns));
  pk_indices_ = std::move(idx);
  pk_index_.Clear();
  pk_index_.Reserve(rows_.size());
  KeyBuffer kb;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const RowKeyRef key = kb.Encode(rows_[i], pk_indices_);
    auto [slot, inserted] = pk_index_.Emplace(key.bytes, key.hash, i);
    if (!inserted) {
      pk_indices_.clear();
      pk_index_.Clear();
      return Status::InvalidArgument(
          "primary key violated by existing rows at index " +
          std::to_string(i));
    }
  }
  return Status::OK();
}

std::vector<std::string> Table::PrimaryKeyNames() const {
  std::vector<std::string> names;
  names.reserve(pk_indices_.size());
  for (size_t i : pk_indices_) names.push_back(schema_.column(i).FullName());
  return names;
}

void Table::AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

Status Table::CheckArity(const Row& row) const {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.NumColumns()));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  SVC_RETURN_IF_ERROR(CheckArity(row));
  if (HasPrimaryKey()) {
    KeyBuffer kb;
    const RowKeyRef key = kb.Encode(row, pk_indices_);
    auto [slot, inserted] = pk_index_.Emplace(key.bytes, key.hash,
                                              rows_.size());
    if (!inserted) {
      return Status::ConstraintViolation("duplicate primary key");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<bool> Table::Upsert(Row row) {
  SVC_RETURN_IF_ERROR(CheckArity(row));
  if (!HasPrimaryKey()) {
    return Status::InvalidArgument("Upsert requires a primary key");
  }
  KeyBuffer kb;
  const RowKeyRef key = kb.Encode(row, pk_indices_);
  auto [slot, inserted] = pk_index_.Emplace(key.bytes, key.hash, rows_.size());
  if (!inserted) {
    rows_[*slot] = std::move(row);
    return true;
  }
  rows_.push_back(std::move(row));
  return false;
}

Result<bool> Table::DeleteByKeyOf(const Row& key_row) {
  if (!HasPrimaryKey()) {
    return Status::InvalidArgument("DeleteByKeyOf requires a primary key");
  }
  KeyBuffer kb;
  const RowKeyRef key = kb.Encode(key_row, pk_indices_);
  const size_t* found = pk_index_.Find(key.bytes, key.hash);
  if (found == nullptr) return false;
  const size_t victim = *found;
  const size_t last = rows_.size() - 1;
  pk_index_.Erase(key.bytes, key.hash);
  if (victim != last) {
    // Swap-remove; re-point the moved row's index entry.
    rows_[victim] = std::move(rows_[last]);
    const RowKeyRef moved = kb.Encode(rows_[victim], pk_indices_);
    *pk_index_.Find(moved.bytes, moved.hash) = victim;
  }
  rows_.pop_back();
  return true;
}

Result<size_t> Table::FindByKeyOf(const Row& key_row) const {
  if (!HasPrimaryKey()) {
    return Status::InvalidArgument("FindByKeyOf requires a primary key");
  }
  KeyBuffer kb;
  return FindByKeyRef(kb.Encode(key_row, pk_indices_));
}

Result<size_t> Table::FindByEncodedKey(std::string_view key) const {
  return FindByKeyRef({key, KeyHash(key)});
}

Result<size_t> Table::FindByKeyRef(const RowKeyRef& key) const {
  const size_t* found = pk_index_.Find(key.bytes, key.hash);
  if (found == nullptr) return Status::NotFound("key not present");
  return *found;
}

void Table::Clear() {
  rows_.clear();
  pk_index_.Clear();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " [" << rows_.size() << " rows]\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    os << "  ";
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      if (j) os << " | ";
      os << rows_[i][j].ToString();
    }
    os << "\n";
  }
  if (rows_.size() > max_rows) os << "  ... (" << rows_.size() << " total)\n";
  return os.str();
}

}  // namespace svc
