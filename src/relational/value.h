#ifndef SVC_RELATIONAL_VALUE_H_
#define SVC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace svc {

/// Column / value types supported by the engine.
enum class ValueType {
  kNull = 0,
  kInt,     ///< 64-bit signed integer (also used for booleans and dates)
  kDouble,  ///< IEEE double
  kString,  ///< byte string
};

/// Returns "null" / "int" / "double" / "string".
const char* ValueTypeName(ValueType t);

/// A dynamically typed SQL value. Values are small and freely copyable.
/// Comparisons across int and double coerce numerically; comparisons or
/// arithmetic involving NULL yield NULL (three-valued logic is applied by
/// the expression evaluator).
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}
  /// Integer value.
  static Value Int(int64_t v) { return Value(v); }
  /// Double value.
  static Value Double(double v) { return Value(v); }
  /// String value.
  static Value String(std::string v) { return Value(std::move(v)); }
  /// Boolean encoded as int 0/1.
  static Value Bool(bool b) { return Value(static_cast<int64_t>(b ? 1 : 0)); }
  /// NULL value.
  static Value Null() { return Value(); }

  /// Type tag of this value.
  ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }

  /// Integer payload. Requires type() == kInt.
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  /// Double payload. Requires type() == kDouble.
  double AsDouble() const { return std::get<double>(v_); }
  /// String payload. Requires type() == kString.
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int or double rendered as double. Requires a numeric
  /// type (use IsNumeric() first).
  double ToDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
  }

  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// True iff the value is a non-null "true" boolean (non-zero int).
  bool IsTrue() const { return type() == ValueType::kInt && AsInt() != 0; }

  /// Structural equality with numeric coercion (1 == 1.0). NULL equals NULL
  /// here (used for grouping / set semantics); SQL's NULL-propagating
  /// equality lives in the expression evaluator.
  bool operator==(const Value& o) const;
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order for sorting: NULL < numerics (coerced) < strings.
  bool operator<(const Value& o) const;

  /// Renders for display ("NULL", "42", "3.14", "abc").
  std::string ToString() const;

  /// Appends a canonical, type-tagged, prefix-free encoding of this value to
  /// `out`. Equal values (including int/double numeric equality on integral
  /// doubles) produce equal encodings, so the encoding can key hash tables,
  /// primary-key indexes, and — crucially — the deterministic sampling
  /// operator η.
  void EncodeTo(std::string* out) const;

 private:
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// A tuple of values. Rows do not own schema information; the enclosing
/// Table / plan node carries the Schema.
using Row = std::vector<Value>;

/// Encodes the projection of `row` onto `indices` as a canonical key string.
std::string EncodeRowKey(const Row& row, const std::vector<size_t>& indices);

}  // namespace svc

#endif  // SVC_RELATIONAL_VALUE_H_
