#include "relational/algebra.h"

#include <sstream>

#include "relational/database.h"

namespace svc {

ProjectItem PassThroughItem(const Column& column) {
  return {column.name, Expr::Col(column.FullName()), column.qualifier};
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "sum";
    case AggFunc::kCount: return "count";
    case AggFunc::kCountStar: return "count(*)";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kMedian: return "median";
    case AggFunc::kCountDistinct: return "count_distinct";
  }
  return "?";
}

PlanPtr PlanNode::Scan(std::string table, std::string alias) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kScan;
  n->alias_ = alias.empty() ? table : std::move(alias);
  n->table_name_ = std::move(table);
  return n;
}

PlanPtr PlanNode::Select(PlanPtr child, ExprPtr predicate) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kSelect;
  n->children_.push_back(std::move(child));
  n->predicate_ = std::move(predicate);
  return n;
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<ProjectItem> items) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kProject;
  n->children_.push_back(std::move(child));
  n->items_ = std::move(items);
  return n;
}

PlanPtr PlanNode::Join(PlanPtr left, PlanPtr right, JoinType type,
                       std::vector<JoinKeyPair> keys, ExprPtr residual,
                       bool fk_right) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kJoin;
  n->children_.push_back(std::move(left));
  n->children_.push_back(std::move(right));
  n->join_type_ = type;
  n->join_keys_ = std::move(keys);
  n->predicate_ = std::move(residual);
  n->fk_right_ = fk_right;
  return n;
}

PlanPtr PlanNode::Aggregate(PlanPtr child, std::vector<std::string> group_by,
                            std::vector<AggItem> aggs) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kAggregate;
  n->children_.push_back(std::move(child));
  n->group_by_ = std::move(group_by);
  n->aggs_ = std::move(aggs);
  return n;
}

PlanPtr PlanNode::Union(PlanPtr left, PlanPtr right) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kUnion;
  n->children_.push_back(std::move(left));
  n->children_.push_back(std::move(right));
  return n;
}

PlanPtr PlanNode::Intersect(PlanPtr left, PlanPtr right) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kIntersect;
  n->children_.push_back(std::move(left));
  n->children_.push_back(std::move(right));
  return n;
}

PlanPtr PlanNode::Difference(PlanPtr left, PlanPtr right) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kDifference;
  n->children_.push_back(std::move(left));
  n->children_.push_back(std::move(right));
  return n;
}

PlanPtr PlanNode::HashFilter(PlanPtr child, std::vector<std::string> cols,
                             double ratio, HashFamily family) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kHashFilter;
  n->children_.push_back(std::move(child));
  n->hash_cols_ = std::move(cols);
  n->hash_ratio_ = ratio;
  n->hash_family_ = family;
  return n;
}

PlanPtr PlanNode::KeySetFilter(PlanPtr child, std::vector<std::string> cols,
                               std::shared_ptr<const KeySet> keys) {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = PlanKind::kHashFilter;
  n->children_.push_back(std::move(child));
  n->hash_cols_ = std::move(cols);
  n->key_set_ = std::move(keys);
  return n;
}

PlanPtr PlanNode::Clone() const {
  auto n = PlanPtr(new PlanNode());
  n->kind_ = kind_;
  n->table_name_ = table_name_;
  n->alias_ = alias_;
  if (predicate_) n->predicate_ = predicate_->Clone();
  n->items_.reserve(items_.size());
  for (const auto& it : items_) {
    n->items_.push_back({it.alias, it.expr->Clone(), it.out_qualifier});
  }
  n->join_type_ = join_type_;
  n->join_keys_ = join_keys_;
  n->fk_right_ = fk_right_;
  n->group_by_ = group_by_;
  n->aggs_.reserve(aggs_.size());
  for (const auto& a : aggs_) {
    n->aggs_.push_back({a.func, a.input ? a.input->Clone() : nullptr,
                        a.alias});
  }
  n->hash_cols_ = hash_cols_;
  n->hash_ratio_ = hash_ratio_;
  n->hash_family_ = hash_family_;
  n->key_set_ = key_set_;
  n->derived_pk_ = derived_pk_;
  n->children_.reserve(children_.size());
  for (const auto& c : children_) n->children_.push_back(c->Clone());
  return n;
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  const std::string pad(indent * 2, ' ');
  os << pad;
  switch (kind_) {
    case PlanKind::kScan:
      os << "Scan(" << table_name_;
      if (alias_ != table_name_) os << " AS " << alias_;
      os << ")";
      break;
    case PlanKind::kSelect:
      os << "Select[" << predicate_->ToString() << "]";
      break;
    case PlanKind::kProject: {
      os << "Project[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) os << ", ";
        os << items_[i].alias << " := " << items_[i].expr->ToString();
      }
      os << "]";
      break;
    }
    case PlanKind::kJoin: {
      const char* t = join_type_ == JoinType::kInner  ? "Inner"
                      : join_type_ == JoinType::kLeft ? "Left"
                      : join_type_ == JoinType::kRight ? "Right"
                                                       : "Full";
      os << t << "Join[";
      for (size_t i = 0; i < join_keys_.size(); ++i) {
        if (i) os << " AND ";
        os << join_keys_[i].left << " = " << join_keys_[i].right;
      }
      if (predicate_) os << " | " << predicate_->ToString();
      if (fk_right_) os << " | fk";
      os << "]";
      break;
    }
    case PlanKind::kAggregate: {
      os << "Aggregate[group by: ";
      for (size_t i = 0; i < group_by_.size(); ++i) {
        if (i) os << ", ";
        os << group_by_[i];
      }
      os << " | ";
      for (size_t i = 0; i < aggs_.size(); ++i) {
        if (i) os << ", ";
        os << aggs_[i].alias << " := " << AggFuncName(aggs_[i].func);
        if (aggs_[i].input) os << "(" << aggs_[i].input->ToString() << ")";
      }
      os << "]";
      break;
    }
    case PlanKind::kUnion: os << "Union"; break;
    case PlanKind::kIntersect: os << "Intersect"; break;
    case PlanKind::kDifference: os << "Difference"; break;
    case PlanKind::kHashFilter: {
      if (key_set_) {
        os << "KeySetFilter[" << key_set_->size() << " keys](";
        for (size_t i = 0; i < hash_cols_.size(); ++i) {
          if (i) os << ", ";
          os << hash_cols_[i];
        }
        os << ")";
        break;
      }
      os << "HashFilter[eta(";
      for (size_t i = 0; i < hash_cols_.size(); ++i) {
        if (i) os << ", ";
        os << hash_cols_[i];
      }
      os << "), m=" << hash_ratio_ << ", " << HashFamilyName(hash_family_)
         << "]";
      break;
    }
  }
  if (!derived_pk_.empty()) {
    os << " pk={";
    for (size_t i = 0; i < derived_pk_.size(); ++i) {
      if (i) os << ", ";
      os << derived_pk_[i];
    }
    os << "}";
  }
  os << "\n";
  for (const auto& c : children_) os << c->ToString(indent + 1);
  return os.str();
}

Result<Schema> ComputeSchema(const PlanNode& plan, const Database& db) {
  switch (plan.kind()) {
    case PlanKind::kScan: {
      SVC_ASSIGN_OR_RETURN(const Table* t, db.GetTable(plan.table_name()));
      return t->schema().WithQualifier(plan.alias());
    }
    case PlanKind::kSelect:
    case PlanKind::kHashFilter:
      return ComputeSchema(*plan.child(0), db);
    case PlanKind::kProject: {
      SVC_ASSIGN_OR_RETURN(Schema in, ComputeSchema(*plan.child(0), db));
      Schema out;
      for (const auto& item : plan.project_items()) {
        ExprPtr e = item.expr->Clone();
        SVC_RETURN_IF_ERROR(e->Bind(in));
        out.AddColumn({item.out_qualifier, item.alias, e->result_type()});
      }
      return out;
    }
    case PlanKind::kJoin: {
      SVC_ASSIGN_OR_RETURN(Schema l, ComputeSchema(*plan.child(0), db));
      SVC_ASSIGN_OR_RETURN(Schema r, ComputeSchema(*plan.child(1), db));
      return Schema::Concat(l, r);
    }
    case PlanKind::kAggregate: {
      SVC_ASSIGN_OR_RETURN(Schema in, ComputeSchema(*plan.child(0), db));
      Schema out;
      for (const auto& g : plan.group_by()) {
        SVC_ASSIGN_OR_RETURN(size_t idx, in.Resolve(g));
        Column c = in.column(idx);
        out.AddColumn(c);
      }
      for (const auto& a : plan.aggregates()) {
        ValueType t = ValueType::kInt;
        if (a.func == AggFunc::kAvg || a.func == AggFunc::kMedian) {
          t = ValueType::kDouble;
        } else if (a.func == AggFunc::kSum || a.func == AggFunc::kMin ||
                   a.func == AggFunc::kMax) {
          if (a.input) {
            ExprPtr e = a.input->Clone();
            SVC_RETURN_IF_ERROR(e->Bind(in));
            t = e->result_type();
          }
        }
        out.AddColumn({"", a.alias, t});
      }
      return out;
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: {
      SVC_ASSIGN_OR_RETURN(Schema l, ComputeSchema(*plan.child(0), db));
      SVC_ASSIGN_OR_RETURN(Schema r, ComputeSchema(*plan.child(1), db));
      if (l.NumColumns() != r.NumColumns()) {
        return Status::InvalidArgument(
            "set operation arity mismatch: " + l.ToString() + " vs " +
            r.ToString());
      }
      return l;
    }
  }
  return Status::Internal("unreachable plan kind");
}

}  // namespace svc
