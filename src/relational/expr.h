#ifndef SVC_RELATIONAL_EXPR_H_
#define SVC_RELATIONAL_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace svc {

class Expr;
/// Shared ownership of expression nodes; trees are deep-cloned before any
/// structural rewrite so sharing is safe.
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind { kColumn, kLiteral, kUnary, kBinary, kFunc, kParam };

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

/// A scalar expression over the columns of one relation: column references,
/// literals, arithmetic, comparisons, boolean logic (three-valued with
/// NULL), and a small function library (abs, round, floor, substr, strlen,
/// coalesce, if, least, greatest, concat). Expressions are built with the
/// factory functions below, bound to a Schema (resolving column references
/// to positions), and then evaluated per row.
class Expr {
 public:
  // ---- Factories ----------------------------------------------------------
  /// Column reference by "name" or "alias.name".
  static ExprPtr Col(std::string ref);
  /// Literal value.
  static ExprPtr Lit(Value v);
  /// Integer literal.
  static ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
  /// Double literal.
  static ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
  /// String literal.
  static ExprPtr LitString(std::string v) {
    return Lit(Value::String(std::move(v)));
  }
  static ExprPtr Unary(UnaryOp op, ExprPtr e);
  static ExprPtr Binary(BinaryOp op, ExprPtr l, ExprPtr r);
  /// Function call; see class comment for the supported library.
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args);
  /// `?` parameter placeholder number `index` (0-based, in statement text
  /// order). Placeholders only appear in prepared statements; they must be
  /// substituted with literals (BindStatementParams) before Bind/Eval.
  static ExprPtr Param(size_t index);

  // Convenience combinators.
  static ExprPtr Add(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kAdd, std::move(l), std::move(r));
  }
  static ExprPtr Sub(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kSub, std::move(l), std::move(r));
  }
  static ExprPtr Mul(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kMul, std::move(l), std::move(r));
  }
  static ExprPtr Div(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kDiv, std::move(l), std::move(r));
  }
  static ExprPtr Eq(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kEq, std::move(l), std::move(r));
  }
  static ExprPtr Ne(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kNe, std::move(l), std::move(r));
  }
  static ExprPtr Lt(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kLt, std::move(l), std::move(r));
  }
  static ExprPtr Le(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kLe, std::move(l), std::move(r));
  }
  static ExprPtr Gt(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kGt, std::move(l), std::move(r));
  }
  static ExprPtr Ge(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kGe, std::move(l), std::move(r));
  }
  static ExprPtr And(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kAnd, std::move(l), std::move(r));
  }
  static ExprPtr Or(ExprPtr l, ExprPtr r) {
    return Binary(BinaryOp::kOr, std::move(l), std::move(r));
  }
  static ExprPtr Not(ExprPtr e) { return Unary(UnaryOp::kNot, std::move(e)); }
  /// coalesce(e, 0) — the NULL-as-zero convention the change-table merge
  /// projection relies on.
  static ExprPtr CoalesceZero(ExprPtr e);

  // ---- Introspection ------------------------------------------------------
  ExprKind kind() const { return kind_; }
  /// For kColumn: the (possibly qualified) reference text.
  const std::string& column_ref() const { return name_; }
  /// For kLiteral: the value.
  const Value& literal() const { return literal_; }
  /// For kFunc: the lowercase function name.
  const std::string& func_name() const { return name_; }
  UnaryOp unary_op() const { return uop_; }
  BinaryOp binary_op() const { return bop_; }
  /// For kParam: the 0-based placeholder index.
  size_t param_index() const { return param_index_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Collects every column reference text in the tree into `out`.
  void CollectColumnRefs(std::set<std::string>* out) const;

  /// Deep copy (unbound).
  ExprPtr Clone() const;

  /// Resolves column references against `schema` and infers the result
  /// type. Must be called before Eval.
  Status Bind(const Schema& schema);

  /// Result type; valid after a successful Bind.
  ValueType result_type() const { return result_type_; }

  /// For a bound kColumn: the resolved position in the bound schema. The
  /// executor uses this to read column values by reference instead of
  /// paying a virtual Eval and a Value copy per row.
  size_t bound_column_index() const { return column_index_; }

  /// Evaluates against a row of the bound schema. NULL-propagating:
  /// arithmetic or comparison with a NULL operand yields NULL; AND/OR use
  /// SQL three-valued logic.
  Value Eval(const Row& row) const;

  /// Human-readable rendering (for plan explain output).
  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string name_;          // column ref or function name
  Value literal_;             // kLiteral
  UnaryOp uop_ = UnaryOp::kNot;
  BinaryOp bop_ = BinaryOp::kAdd;
  std::vector<ExprPtr> children_;

  size_t param_index_ = 0;  // kParam

  // Bind state.
  size_t column_index_ = 0;
  bool bound_ = false;
  ValueType result_type_ = ValueType::kNull;
};

/// Renders a BinaryOp as its SQL token ("+", "<=", "AND", ...).
const char* BinaryOpName(BinaryOp op);

}  // namespace svc

#endif  // SVC_RELATIONAL_EXPR_H_
