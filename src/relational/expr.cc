#include "relational/expr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace svc {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool IsArith(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kSub ||
         op == BinaryOp::kMul || op == BinaryOp::kDiv || op == BinaryOp::kMod;
}

bool IsCompare(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

}  // namespace

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::Col(std::string ref) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(ref);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr c) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->uop_ = op;
  e->children_.push_back(std::move(c));
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr l, ExprPtr r) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->bop_ = op;
  e->children_.push_back(std::move(l));
  e->children_.push_back(std::move(r));
  return e;
}

ExprPtr Expr::Func(std::string name, std::vector<ExprPtr> args) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kFunc;
  e->name_ = Lower(std::move(name));
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Param(size_t index) {
  auto e = ExprPtr(new Expr());
  e->kind_ = ExprKind::kParam;
  e->param_index_ = index;
  return e;
}

ExprPtr Expr::CoalesceZero(ExprPtr e) {
  return Func("coalesce", {std::move(e), LitInt(0)});
}

void Expr::CollectColumnRefs(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) out->insert(name_);
  for (const auto& c : children_) c->CollectColumnRefs(out);
}

ExprPtr Expr::Clone() const {
  auto e = ExprPtr(new Expr());
  e->kind_ = kind_;
  e->name_ = name_;
  e->literal_ = literal_;
  e->uop_ = uop_;
  e->bop_ = bop_;
  e->param_index_ = param_index_;
  e->children_.reserve(children_.size());
  for (const auto& c : children_) e->children_.push_back(c->Clone());
  return e;
}

Status Expr::Bind(const Schema& schema) {
  for (auto& c : children_) SVC_RETURN_IF_ERROR(c->Bind(schema));
  switch (kind_) {
    case ExprKind::kColumn: {
      SVC_ASSIGN_OR_RETURN(column_index_, schema.Resolve(name_));
      result_type_ = schema.column(column_index_).type;
      break;
    }
    case ExprKind::kLiteral:
      result_type_ = literal_.type();
      break;
    case ExprKind::kParam:
      return Status::InvalidArgument(
          "unbound parameter ?" + std::to_string(param_index_ + 1) +
          " (prepared statements must be executed with bound values)");
    case ExprKind::kUnary:
      switch (uop_) {
        case UnaryOp::kNot:
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          result_type_ = ValueType::kInt;
          break;
        case UnaryOp::kNeg:
          result_type_ = children_[0]->result_type_;
          break;
      }
      break;
    case ExprKind::kBinary: {
      const ValueType lt = children_[0]->result_type_;
      const ValueType rt = children_[1]->result_type_;
      if (IsArith(bop_)) {
        if (bop_ == BinaryOp::kDiv) {
          result_type_ = ValueType::kDouble;
        } else if (lt == ValueType::kDouble || rt == ValueType::kDouble) {
          result_type_ = ValueType::kDouble;
        } else {
          result_type_ = ValueType::kInt;
        }
      } else {
        result_type_ = ValueType::kInt;  // comparisons and logic -> bool
      }
      break;
    }
    case ExprKind::kFunc: {
      const size_t n = children_.size();
      auto arity = [&](size_t want) -> Status {
        if (n != want) {
          return Status::InvalidArgument("function " + name_ + " expects " +
                                         std::to_string(want) + " args");
        }
        return Status::OK();
      };
      if (name_ == "abs" || name_ == "round" || name_ == "floor" ||
          name_ == "ceil") {
        SVC_RETURN_IF_ERROR(arity(1));
        result_type_ = name_ == "abs" ? children_[0]->result_type_
                                      : ValueType::kInt;
        if (name_ == "abs" && result_type_ == ValueType::kNull) {
          result_type_ = ValueType::kDouble;
        }
      } else if (name_ == "substr") {
        SVC_RETURN_IF_ERROR(arity(3));
        result_type_ = ValueType::kString;
      } else if (name_ == "strlen") {
        SVC_RETURN_IF_ERROR(arity(1));
        result_type_ = ValueType::kInt;
      } else if (name_ == "concat") {
        if (n < 1) return Status::InvalidArgument("concat expects >= 1 args");
        result_type_ = ValueType::kString;
      } else if (name_ == "coalesce") {
        if (n < 1) {
          return Status::InvalidArgument("coalesce expects >= 1 args");
        }
        result_type_ = ValueType::kNull;
        for (const auto& c : children_) {
          if (c->result_type_ != ValueType::kNull) {
            result_type_ = c->result_type_;
            break;
          }
        }
      } else if (name_ == "if") {
        SVC_RETURN_IF_ERROR(arity(3));
        result_type_ = children_[1]->result_type_;
      } else if (name_ == "least" || name_ == "greatest") {
        SVC_RETURN_IF_ERROR(arity(2));
        result_type_ = children_[0]->result_type_;
      } else {
        return Status::NotSupported("unknown function: " + name_);
      }
      break;
    }
  }
  bound_ = true;
  return Status::OK();
}

Value Expr::Eval(const Row& row) const {
  assert(bound_);
  switch (kind_) {
    case ExprKind::kColumn:
      return row[column_index_];
    case ExprKind::kLiteral:
      return literal_;
    case ExprKind::kParam:
      return Value::Null();  // unreachable: Bind rejects unbound params
    case ExprKind::kUnary: {
      const Value v = children_[0]->Eval(row);
      switch (uop_) {
        case UnaryOp::kNot:
          if (v.is_null()) return Value::Null();
          return Value::Bool(!v.IsTrue());
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.type() == ValueType::kInt) return Value::Int(-v.AsInt());
          return Value::Double(-v.ToDouble());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Value::Null();
    }
    case ExprKind::kBinary: {
      if (bop_ == BinaryOp::kAnd || bop_ == BinaryOp::kOr) {
        // SQL three-valued logic with short-circuiting.
        const Value l = children_[0]->Eval(row);
        if (bop_ == BinaryOp::kAnd) {
          if (!l.is_null() && !l.IsTrue()) return Value::Bool(false);
          const Value r = children_[1]->Eval(row);
          if (!r.is_null() && !r.IsTrue()) return Value::Bool(false);
          if (l.is_null() || r.is_null()) return Value::Null();
          return Value::Bool(true);
        }
        if (!l.is_null() && l.IsTrue()) return Value::Bool(true);
        const Value r = children_[1]->Eval(row);
        if (!r.is_null() && r.IsTrue()) return Value::Bool(true);
        if (l.is_null() || r.is_null()) return Value::Null();
        return Value::Bool(false);
      }
      const Value l = children_[0]->Eval(row);
      const Value r = children_[1]->Eval(row);
      if (l.is_null() || r.is_null()) return Value::Null();
      if (IsArith(bop_)) {
        if (bop_ == BinaryOp::kDiv) {
          const double d = r.ToDouble();
          if (d == 0.0) return Value::Null();
          return Value::Double(l.ToDouble() / d);
        }
        if (bop_ == BinaryOp::kMod) {
          const int64_t d = r.AsInt();
          if (d == 0) return Value::Null();
          return Value::Int(l.AsInt() % d);
        }
        if (l.type() == ValueType::kInt && r.type() == ValueType::kInt) {
          const int64_t a = l.AsInt(), b = r.AsInt();
          switch (bop_) {
            case BinaryOp::kAdd: return Value::Int(a + b);
            case BinaryOp::kSub: return Value::Int(a - b);
            case BinaryOp::kMul: return Value::Int(a * b);
            default: break;
          }
        }
        const double a = l.ToDouble(), b = r.ToDouble();
        switch (bop_) {
          case BinaryOp::kAdd: return Value::Double(a + b);
          case BinaryOp::kSub: return Value::Double(a - b);
          case BinaryOp::kMul: return Value::Double(a * b);
          default: break;
        }
        return Value::Null();
      }
      if (IsCompare(bop_)) {
        switch (bop_) {
          case BinaryOp::kEq: return Value::Bool(l == r);
          case BinaryOp::kNe: return Value::Bool(!(l == r));
          case BinaryOp::kLt: return Value::Bool(l < r);
          case BinaryOp::kLe: return Value::Bool(!(r < l));
          case BinaryOp::kGt: return Value::Bool(r < l);
          case BinaryOp::kGe: return Value::Bool(!(l < r));
          default: break;
        }
      }
      return Value::Null();
    }
    case ExprKind::kFunc: {
      if (name_ == "coalesce") {
        for (const auto& c : children_) {
          Value v = c->Eval(row);
          if (!v.is_null()) return v;
        }
        return Value::Null();
      }
      if (name_ == "if") {
        const Value c = children_[0]->Eval(row);
        return (!c.is_null() && c.IsTrue()) ? children_[1]->Eval(row)
                                            : children_[2]->Eval(row);
      }
      std::vector<Value> args;
      args.reserve(children_.size());
      for (const auto& c : children_) args.push_back(c->Eval(row));
      for (const auto& a : args) {
        if (a.is_null()) return Value::Null();
      }
      if (name_ == "abs") {
        if (args[0].type() == ValueType::kInt) {
          return Value::Int(std::abs(args[0].AsInt()));
        }
        return Value::Double(std::fabs(args[0].ToDouble()));
      }
      if (name_ == "round") {
        return Value::Int(static_cast<int64_t>(std::llround(
            args[0].ToDouble())));
      }
      if (name_ == "floor") {
        return Value::Int(static_cast<int64_t>(std::floor(
            args[0].ToDouble())));
      }
      if (name_ == "ceil") {
        return Value::Int(static_cast<int64_t>(std::ceil(
            args[0].ToDouble())));
      }
      if (name_ == "substr") {
        const std::string& s = args[0].AsString();
        int64_t start = args[1].AsInt();  // 1-based, SQL style
        int64_t len = args[2].AsInt();
        if (start < 1) start = 1;
        if (static_cast<size_t>(start) > s.size() || len <= 0) {
          return Value::String("");
        }
        return Value::String(
            s.substr(static_cast<size_t>(start - 1),
                     static_cast<size_t>(len)));
      }
      if (name_ == "strlen") {
        return Value::Int(static_cast<int64_t>(args[0].AsString().size()));
      }
      if (name_ == "concat") {
        std::string out;
        for (const auto& a : args) out += a.ToString();
        return Value::String(std::move(out));
      }
      if (name_ == "least") {
        return args[0] < args[1] ? args[0] : args[1];
      }
      if (name_ == "greatest") {
        return args[0] < args[1] ? args[1] : args[0];
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return name_;
    case ExprKind::kLiteral:
      return literal_.type() == ValueType::kString
                 ? "'" + literal_.ToString() + "'"
                 : literal_.ToString();
    case ExprKind::kParam:
      return "?";
    case ExprKind::kUnary:
      switch (uop_) {
        case UnaryOp::kNot: return "NOT (" + children_[0]->ToString() + ")";
        case UnaryOp::kNeg: return "-(" + children_[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children_[0]->ToString() + ") IS NULL";
        case UnaryOp::kIsNotNull:
          return "(" + children_[0]->ToString() + ") IS NOT NULL";
      }
      return "?";
    case ExprKind::kBinary:
      return "(" + children_[0]->ToString() + " " + BinaryOpName(bop_) + " " +
             children_[1]->ToString() + ")";
    case ExprKind::kFunc: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out += ", ";
        out += children_[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace svc
