#ifndef SVC_RELATIONAL_ALGEBRA_H_
#define SVC_RELATIONAL_ALGEBRA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/hash.h"
#include "common/status.h"
#include "relational/expr.h"
#include "relational/schema.h"

namespace svc {

class Database;

/// Operators of the paper's view-definition language (§3.1): Select σ,
/// generalized Project Π, Join ⋈ (inner and outer), Aggregation γ, Union,
/// Intersection, Difference — plus the sampling operator η (kHashFilter)
/// from §4.4 that SVC splices into maintenance plans.
enum class PlanKind {
  kScan,
  kSelect,
  kProject,
  kJoin,
  kAggregate,
  kUnion,
  kIntersect,
  kDifference,
  kHashFilter,
};

enum class JoinType { kInner, kLeft, kRight, kFull };

/// Aggregate functions supported by γ. kCountStar counts rows; all others
/// skip NULL inputs. kMedian and kPercentile are the paper's "cannot be
/// expressed as a sample mean" class (bootstrap-bounded).
enum class AggFunc {
  kSum,
  kCount,      ///< count of non-null values of the input expression
  kCountStar,  ///< count(1)
  kAvg,
  kMin,
  kMax,
  kMedian,
  kCountDistinct,
};

/// Returns "sum" / "count" / ... for display.
const char* AggFuncName(AggFunc f);

/// One generalized-projection output: `alias` := `expr`. `out_qualifier`
/// optionally carries a relation qualifier into the output column so that
/// rewrites (e.g. the signed-delta derivation) can pass columns through a
/// projection without losing their qualified names.
struct ProjectItem {
  std::string alias;
  ExprPtr expr;
  std::string out_qualifier;

  /// The output column's full reference name.
  std::string FullName() const {
    return out_qualifier.empty() ? alias : out_qualifier + "." + alias;
  }
};

/// A pass-through projection item for `column` (keeps qualifier and name).
ProjectItem PassThroughItem(const Column& column);

/// One aggregate output: `alias` := func(input). `input` is null for
/// count(*).
struct AggItem {
  AggFunc func = AggFunc::kCountStar;
  ExprPtr input;  // may be null for kCountStar
  std::string alias;
};

/// One equi-join key pair: left column ref = right column ref.
struct JoinKeyPair {
  std::string left;
  std::string right;
};

class PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// A node of a relational-algebra expression tree. Trees are immutable by
/// convention: rewriters (hash push-down, maintenance-strategy builders)
/// Clone() before editing. `derived_pk` is filled in by
/// DerivePrimaryKeys() (Definition 2) and names the attribute set that
/// uniquely identifies each output row.
class PlanNode {
 public:
  // ---- Factories ----------------------------------------------------------
  /// Scan of catalog table `table`, exposed under `alias` (defaults to the
  /// table name).
  static PlanPtr Scan(std::string table, std::string alias = "");
  /// σ_predicate(child).
  static PlanPtr Select(PlanPtr child, ExprPtr predicate);
  /// Generalized projection Π_items(child).
  static PlanPtr Project(PlanPtr child, std::vector<ProjectItem> items);
  /// Equi-join on `keys` with optional residual predicate. `fk_right`
  /// declares that the right side is a dimension relation whose primary key
  /// equals the right join keys (at most one match per left row) — the
  /// foreign-key special case of the push-down rules.
  static PlanPtr Join(PlanPtr left, PlanPtr right, JoinType type,
                      std::vector<JoinKeyPair> keys, ExprPtr residual = nullptr,
                      bool fk_right = false);
  /// γ_{aggs, group_by}(child).
  static PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                           std::vector<AggItem> aggs);
  /// Set union / intersection / difference (set semantics; schemas must be
  /// position-compatible).
  static PlanPtr Union(PlanPtr left, PlanPtr right);
  static PlanPtr Intersect(PlanPtr left, PlanPtr right);
  static PlanPtr Difference(PlanPtr left, PlanPtr right);
  /// The sampling operator η_{cols, ratio}: keeps rows whose deterministic
  /// hash of `cols` lands below `ratio` (§4.4).
  static PlanPtr HashFilter(PlanPtr child, std::vector<std::string> cols,
                            double ratio, HashFamily family);
  /// A deterministic key-membership filter: keeps rows whose encoded `cols`
  /// value is in `keys`. Obeys the same push-down rules as η; used by the
  /// outlier-index push-up (Definition 5) to materialize exactly the view
  /// rows affected by indexed records.
  static PlanPtr KeySetFilter(PlanPtr child, std::vector<std::string> cols,
                              std::shared_ptr<const KeySet> keys);

  // ---- Introspection ------------------------------------------------------
  PlanKind kind() const { return kind_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  PlanPtr child(size_t i) const { return children_[i]; }
  /// Replaces child `i` (used by rewriters on cloned trees).
  void set_child(size_t i, PlanPtr c) { children_[i] = std::move(c); }

  const std::string& table_name() const { return table_name_; }
  const std::string& alias() const { return alias_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjectItem>& project_items() const { return items_; }
  JoinType join_type() const { return join_type_; }
  const std::vector<JoinKeyPair>& join_keys() const { return join_keys_; }
  const ExprPtr& join_residual() const { return predicate_; }
  bool fk_right() const { return fk_right_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggregates() const { return aggs_; }
  const std::vector<std::string>& hash_columns() const { return hash_cols_; }
  double hash_ratio() const { return hash_ratio_; }
  HashFamily hash_family() const { return hash_family_; }
  /// Non-null when this filter node is a key-set filter rather than η.
  const std::shared_ptr<const KeySet>& key_set() const { return key_set_; }

  /// Primary key attribute names derived by DerivePrimaryKeys (empty until
  /// derived, or underivable for this node).
  const std::vector<std::string>& derived_pk() const { return derived_pk_; }
  void set_derived_pk(std::vector<std::string> pk) {
    derived_pk_ = std::move(pk);
  }

  /// Deep copy of the tree (expressions cloned too).
  PlanPtr Clone() const;

  /// Multi-line indented rendering of the tree.
  std::string ToString(int indent = 0) const;

 private:
  PlanNode() = default;

  PlanKind kind_ = PlanKind::kScan;
  std::vector<PlanPtr> children_;

  std::string table_name_;
  std::string alias_;
  ExprPtr predicate_;  // select predicate or join residual
  std::vector<ProjectItem> items_;
  JoinType join_type_ = JoinType::kInner;
  std::vector<JoinKeyPair> join_keys_;
  bool fk_right_ = false;
  std::vector<std::string> group_by_;
  std::vector<AggItem> aggs_;
  std::vector<std::string> hash_cols_;
  double hash_ratio_ = 1.0;
  HashFamily hash_family_ = HashFamily::kFnv1a;
  std::shared_ptr<const KeySet> key_set_;

  std::vector<std::string> derived_pk_;
};

/// Computes the output schema of `plan` against `db` without executing it.
Result<Schema> ComputeSchema(const PlanNode& plan, const Database& db);

}  // namespace svc

#endif  // SVC_RELATIONAL_ALGEBRA_H_
