#include "relational/keys.h"

#include <algorithm>
#include <set>

namespace svc {

namespace {

Result<std::vector<std::string>> Derive(PlanNode* plan, const Database& db);

/// Maps a set of key references valid in `child_schema` to the
/// corresponding output positions of a set-operation node, whose output
/// schema equals the left child's schema positionally.
Result<std::vector<size_t>> KeyPositions(
    const std::vector<std::string>& key, const Schema& schema) {
  return schema.ResolveAll(key);
}

Result<std::vector<std::string>> DeriveSetOp(PlanNode* plan,
                                             const Database& db) {
  SVC_ASSIGN_OR_RETURN(std::vector<std::string> lk,
                       Derive(plan->child(0).get(), db));
  SVC_ASSIGN_OR_RETURN(std::vector<std::string> rk,
                       Derive(plan->child(1).get(), db));
  SVC_ASSIGN_OR_RETURN(Schema ls, ComputeSchema(*plan->child(0), db));
  SVC_ASSIGN_OR_RETURN(Schema rs, ComputeSchema(*plan->child(1), db));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> lpos, KeyPositions(lk, ls));
  SVC_ASSIGN_OR_RETURN(std::vector<size_t> rpos, KeyPositions(rk, rs));

  std::set<size_t> lset(lpos.begin(), lpos.end());
  std::set<size_t> rset(rpos.begin(), rpos.end());
  std::set<size_t> out_positions;
  switch (plan->kind()) {
    case PlanKind::kUnion:
      std::set_union(lset.begin(), lset.end(), rset.begin(), rset.end(),
                     std::inserter(out_positions, out_positions.begin()));
      break;
    case PlanKind::kIntersect:
      std::set_intersection(
          lset.begin(), lset.end(), rset.begin(), rset.end(),
          std::inserter(out_positions, out_positions.begin()));
      if (out_positions.empty()) {
        return Status::InvalidArgument(
            "intersection of primary keys is empty; no derivable key");
      }
      break;
    case PlanKind::kDifference:
      out_positions = lset;
      break;
    default:
      return Status::Internal("not a set op");
  }
  // Output schema of a set op is the left schema; name keys by it.
  std::vector<std::string> out;
  for (size_t p : out_positions) out.push_back(ls.column(p).FullName());
  return out;
}

Result<std::vector<std::string>> Derive(PlanNode* plan, const Database& db) {
  std::vector<std::string> pk;
  switch (plan->kind()) {
    case PlanKind::kScan: {
      SVC_ASSIGN_OR_RETURN(const Table* t, db.GetTable(plan->table_name()));
      if (!t->HasPrimaryKey()) {
        return Status::InvalidArgument(
            "base relation '" + plan->table_name() +
            "' has no primary key; add one (e.g. AddSequencePrimaryKey)");
      }
      for (size_t i : t->pk_indices()) {
        pk.push_back(plan->alias() + "." + t->schema().column(i).name);
      }
      break;
    }
    case PlanKind::kSelect:
    case PlanKind::kHashFilter: {
      SVC_ASSIGN_OR_RETURN(pk, Derive(plan->child(0).get(), db));
      break;
    }
    case PlanKind::kProject: {
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> child_pk,
                           Derive(plan->child(0).get(), db));
      SVC_ASSIGN_OR_RETURN(Schema child_schema,
                           ComputeSchema(*plan->child(0), db));
      SVC_ASSIGN_OR_RETURN(std::vector<size_t> key_pos,
                           child_schema.ResolveAll(child_pk));
      for (size_t kp : key_pos) {
        bool found = false;
        for (const auto& item : plan->project_items()) {
          if (item.expr->kind() != ExprKind::kColumn) continue;
          auto r = child_schema.Resolve(item.expr->column_ref());
          if (r.ok() && *r == kp) {
            pk.push_back(item.FullName());
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "projection drops primary key column '" +
              child_schema.column(kp).FullName() +
              "'; the key must be preserved (Definition 2)");
        }
      }
      break;
    }
    case PlanKind::kJoin: {
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> lk,
                           Derive(plan->child(0).get(), db));
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> rk,
                           Derive(plan->child(1).get(), db));
      pk = std::move(lk);
      for (auto& k : rk) pk.push_back(std::move(k));
      break;
    }
    case PlanKind::kAggregate: {
      // Derive children first so inner nodes get annotated.
      SVC_RETURN_IF_ERROR(Derive(plan->child(0).get(), db).status());
      if (plan->group_by().empty()) {
        return Status::InvalidArgument(
            "global aggregate has no group-by key; no derivable primary key");
      }
      // The key is the group-by attributes, named as they appear in the
      // aggregate's own output schema.
      SVC_ASSIGN_OR_RETURN(Schema out_schema, ComputeSchema(*plan, db));
      for (size_t i = 0; i < plan->group_by().size(); ++i) {
        pk.push_back(out_schema.column(i).FullName());
      }
      break;
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: {
      SVC_ASSIGN_OR_RETURN(pk, DeriveSetOp(plan, db));
      break;
    }
  }
  plan->set_derived_pk(pk);
  return pk;
}

}  // namespace

Result<std::vector<std::string>> DerivePrimaryKeys(PlanNode* plan,
                                                   const Database& db) {
  return Derive(plan, db);
}

Status AddSequencePrimaryKey(Table* table, const std::string& col_name) {
  if (table->schema().Contains(col_name)) {
    return Status::AlreadyExists("column already exists: " + col_name);
  }
  Schema schema = table->schema();
  schema.AddColumn({"", col_name, ValueType::kInt});
  Table rebuilt(schema);
  int64_t seq = 0;
  for (const auto& r : table->rows()) {
    Row row = r;
    row.push_back(Value::Int(seq++));
    rebuilt.AppendUnchecked(std::move(row));
  }
  SVC_RETURN_IF_ERROR(rebuilt.SetPrimaryKey({col_name}));
  *table = std::move(rebuilt);
  return Status::OK();
}

}  // namespace svc
