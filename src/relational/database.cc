#include "relational/database.h"

namespace svc {

Status Database::CreateTable(const std::string& name, Table table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[name] = std::make_unique<Table>(std::move(table));
  return Status::OK();
}

void Database::PutTable(const std::string& name, Table table) {
  tables_[name] = std::make_unique<Table>(std::move(table));
}

namespace {

/// "no such table: X (known tables: a b c)"; internal delta tables
/// ("__ins_*" / "__del_*") are elided from the listing.
std::string NoSuchTable(
    const std::string& name,
    const std::map<std::string, std::unique_ptr<Table>>& tables) {
  std::string msg = "no such table: " + name;
  std::string known;
  for (const auto& [k, v] : tables) {
    if (k.rfind("__", 0) == 0) continue;
    known += " " + k;
  }
  if (known.empty()) {
    msg += " (no tables have been created)";
  } else {
    msg += " (known tables:" + known + ")";
  }
  return msg;
}

}  // namespace

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(NoSuchTable(name, tables_));
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(NoSuchTable(name, tables_));
  }
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  if (!tables_.erase(name)) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

}  // namespace svc
