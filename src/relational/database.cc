#include "relational/database.h"

#include <atomic>

namespace svc {

Status Database::CreateTable(const std::string& name, Table table) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  tables_[name] = std::make_shared<Table>(std::move(table));
  return Status::OK();
}

void Database::PutTable(const std::string& name, Table table) {
  // make_shared<Table> (not <const Table>): the stored object must not be
  // const-constructed, or GetMutableTable's const_cast would be UB.
  tables_[name] = std::make_shared<Table>(std::move(table));
}

void Database::PutTableShared(const std::string& name,
                              std::shared_ptr<const Table> table) {
  tables_[name] = std::move(table);
}

namespace {

/// "no such table: X (known tables: a b c)"; internal delta tables
/// ("__ins_*" / "__del_*") are elided from the listing.
std::string NoSuchTable(
    const std::string& name,
    const std::map<std::string, std::shared_ptr<const Table>>& tables) {
  std::string msg = "no such table: " + name;
  std::string known;
  for (const auto& [k, v] : tables) {
    if (k.rfind("__", 0) == 0) continue;
    known += " " + k;
  }
  if (known.empty()) {
    msg += " (no tables have been created)";
  } else {
    msg += " (known tables:" + known + ")";
  }
  return msg;
}

}  // namespace

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::UnknownRelation(NoSuchTable(name, tables_));
  }
  return it->second.get();
}

std::shared_ptr<const Table> Database::GetTableShared(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

Result<Table*> Database::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::UnknownRelation(NoSuchTable(name, tables_));
  }
  if (it->second.use_count() > 1) {
    // Copy-on-write: this table is shared with a snapshot copy of the
    // catalog (or a cache holding its handle); clone before handing out
    // mutable access so the sharer keeps reading the old version.
    it->second = std::make_shared<Table>(*it->second);
  } else {
    // use_count() alone is not enough to mutate in place (the reason
    // shared_ptr::unique() was deprecated): if the last other reference
    // was just released by a concurrent reader thread, the relaxed count
    // load gives no happens-before edge with that reader's prior reads.
    // The reader's release-decrement on the count plus this acquire fence
    // (after observing 1) supplies it.
    std::atomic_thread_fence(std::memory_order_acquire);
  }
  // Sole owner: the object was never const-constructed, so shedding the
  // const qualifier of the catalog's read-only handle is well-defined.
  return const_cast<Table*>(it->second.get());
}

Status Database::DropTable(const std::string& name) {
  if (!tables_.erase(name)) {
    return Status::UnknownRelation("no such table: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  return names;
}

}  // namespace svc
