#ifndef SVC_SERVER_SERVER_H_
#define SVC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"
#include "sql/session.h"

namespace svc {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Worker threads executing statements (requests from different
  /// connections run in parallel; per connection, strictly in order).
  int workers = 4;
  /// Admission control: requests queued + executing across all
  /// connections. Excess requests are answered immediately with an
  /// Overloaded error frame instead of queueing without bound.
  uint32_t max_inflight = 64;
  /// Frames larger than this are a protocol error (connection dropped).
  /// Responses that would exceed it are answered with an OutOfRange error
  /// frame instead of an undecodable oversized frame.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// A response write that makes no progress for this long (the peer
  /// stopped reading) marks the connection dead instead of wedging the
  /// writing thread.
  int send_timeout_ms = 5000;
  /// Reported in the Hello reply.
  std::string server_name = "svc_served";
  /// Graceful degradation: instead of rejecting every request past
  /// max_inflight, admit up to `degrade_max_inflight` extra requests in
  /// *degraded* mode — WITH SVC queries run at
  /// `ratio * degrade_ratio_scale` (same estimator, wider CI) and their
  /// results carry the wire-visible degraded flag; any other statement in
  /// degraded admission is still answered Overloaded (only sampling-based
  /// reads have a cheaper correct mode to degrade to).
  bool degrade = false;
  /// Absolute in-flight ceiling in degrade mode (0 = 4 * max_inflight).
  uint32_t degrade_max_inflight = 0;
  /// Sampling-ratio multiplier for degraded WITH SVC queries, in (0, 1).
  double degrade_ratio_scale = 0.5;
};

/// Monotonic server-wide counters (also served over the wire as the Stats
/// frame). `statements_parsed` vs `prepared_executes` is the observable
/// proof that prepared statements skip the parser.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests = 0;           ///< frames admitted for execution
  uint64_t statements_parsed = 0;  ///< ParseStatement calls (Query + Prepare)
  uint64_t prepared_executes = 0;  ///< Execute frames served from the AST cache
  uint64_t overload_rejections = 0;
  uint64_t protocol_errors = 0;
  uint64_t degraded_admissions = 0;  ///< requests admitted past max_inflight
  uint64_t idem_replays = 0;     ///< retried requests answered from the journal
  uint64_t deadline_exceeded = 0;  ///< requests failed by their deadline
  uint64_t net_faults_injected = 0;  ///< SVC_NET_FAULT damage events inflicted
};

/// The svc network server: accepts TCP connections speaking the framed
/// protocol (server/protocol.h), multiplexes them onto a worker pool, and
/// runs every statement through a per-connection shared-mode SqlSession —
/// so each read executes on one immutable SharedEngine snapshot and each
/// write is one serialized commit, exactly like concurrent in-process
/// sessions (transcripts are bit-identical to `svc_shell --shared`).
///
/// Structure: one IO thread owns the listen socket and every connection's
/// read side (poll + non-blocking reads + frame extraction); `workers`
/// threads execute admitted requests. Per connection at most one request
/// executes at a time and responses are written in request order, so
/// pipelined clients get answers in the order they asked. Responses are
/// written by the worker (or, for overload/protocol errors, the IO thread)
/// under a per-connection write lock.
///
/// Prepared statements live per connection: Prepare parses once and caches
/// the AST; Execute deep-clones the cached Statement with literals bound
/// (sql/params.h) and never touches the parser.
class SvcServer {
 public:
  /// Serves the given shared engine.
  SvcServer(ServerOptions opts, std::shared_ptr<SharedEngine> engine);
  /// Serves a durable engine: statements run with durable-session
  /// semantics (every write WAL-logged before publishing).
  SvcServer(ServerOptions opts, std::shared_ptr<DurableEngine> durable);
  /// Serves a sharded engine: statements run with sharded-session
  /// semantics (scatter-gather reads, shard-routed writes).
  SvcServer(ServerOptions opts, std::shared_ptr<ShardedEngine> sharded);
  /// Stops and joins all threads.
  ~SvcServer();

  SvcServer(const SvcServer&) = delete;
  SvcServer& operator=(const SvcServer&) = delete;

  /// Binds, listens, and starts the IO + worker threads.
  Status Start();

  /// Graceful shutdown: stops accepting, closes connections, joins
  /// threads. Idempotent.
  void Stop();

  /// The bound port (after Start); useful with ServerOptions::port == 0.
  uint16_t port() const { return port_; }

  /// Snapshot of the server counters.
  ServerStats stats() const;

  /// The counters as the wire Stats frame reports them.
  std::map<std::string, uint64_t> StatsMap() const;

 private:
  /// One admitted request: the frame plus its admission context (degraded
  /// requests run WITH SVC at a reduced ratio; the admission timestamp
  /// anchors the request's deadline, so queue time counts against it).
  struct PendingReq {
    Frame frame;
    bool degraded = false;
    std::chrono::steady_clock::time_point admitted;
  };

  struct Conn {
    int fd = -1;
    std::string inbuf;  // IO thread only
    // Requests decoded but not yet executing; guarded by SvcServer::mu_.
    std::deque<PendingReq> pending;
    bool busy = false;      // a worker is executing; guarded by mu_
    bool closing = false;   // no more reads; reap when drained (mu_)
    bool hello_done = false;           // executing thread only
    uint64_t negotiated_version = 0;   // executing thread only
    std::mutex write_mu;               // serializes response writes
    std::unique_ptr<SqlSession> session;
    std::map<uint64_t, Statement> prepared;  // executing thread only
    uint64_t next_stmt_id = 1;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  EngineHandle MakeHandle() const;

  void IoLoop();
  void WorkerLoop();

  /// Reads everything available from `conn`, extracts frames, and either
  /// admits them (pending queue / ready list) or answers overload &
  /// protocol errors inline. Called by the IO thread.
  void DrainReadable(const ConnPtr& conn);

  /// The response to `request` (everything except transport errors).
  Frame HandleRequest(Conn* conn, const PendingReq& request);

  /// Executes a Query/Execute statement under the request's v2 metadata:
  /// deadline enforcement (cooperative cancellation), idempotency dedup
  /// (replay the journaled response for a retried (token, seq)), and
  /// degraded-admission ratio scaling. `run` parses/binds and validates;
  /// it is only invoked when the request must actually execute.
  Frame ExecuteWithMeta(Conn* conn, const PendingReq& request,
                        const RequestMeta& meta,
                        const std::function<Result<SqlResult>()>& run);

  Frame ErrorFrame(uint32_t request_id, const Status& status) const;
  void WriteFrame(Conn* conn, const Frame& frame);
  void WakeIo();

  ServerOptions opts_;
  std::shared_ptr<SharedEngine> shared_;
  std::shared_ptr<DurableEngine> durable_;
  std::shared_ptr<ShardedEngine> sharded_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::map<int, ConnPtr> conns_;       // keyed by fd; IO thread + reaping
  std::deque<ConnPtr> ready_;          // conns whose next request may run
  uint32_t inflight_ = 0;              // admitted, not yet answered
  ServerStats stats_;

  /// Idempotency dedup journal, keyed by client token. One entry per token
  /// (clients are synchronous: only their *latest* request is ever
  /// retried). A live entry caches the full response frame so a retry
  /// replays it byte-identically; an entry recovered from the durable
  /// engine's marks has no frame — a retry of it gets a synthesized "write
  /// already applied" Ok (the write committed; the response died with the
  /// old process).
  struct IdemEntry {
    uint64_t seq = 0;
    bool has_frame = false;
    FrameTag tag = FrameTag::kOk;
    std::string body;
  };
  mutable std::mutex idem_mu_;
  std::map<std::string, IdemEntry> idem_journal_;

  std::thread io_thread_;
  std::vector<std::thread> worker_threads_;
};

}  // namespace svc

#endif  // SVC_SERVER_SERVER_H_
