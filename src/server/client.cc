#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "storage/serde.h"

namespace svc {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<SvcClient>> SvcClient::Connect(
    const ClientOptions& opts) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address: " + opts.host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s =
        Errno("connect " + opts.host + ":" + std::to_string(opts.port));
    close(fd);
    return s;
  }
  auto client = std::unique_ptr<SvcClient>(new SvcClient());
  client->fd_ = fd;

  Frame hello;
  hello.tag = FrameTag::kHello;
  HelloRequest req;
  req.client_name = opts.client_name;
  EncodeHelloRequest(req, &hello.body);
  SVC_ASSIGN_OR_RETURN(Frame reply, client->RoundTrip(hello));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kHelloOk) {
    return Status::Protocol("expected HelloOk, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  SVC_ASSIGN_OR_RETURN(HelloReply ok, DecodeHelloReply(reply.body));
  if (ok.version < kProtocolVersionMin || ok.version > kProtocolVersionMax) {
    return Status::Protocol("server negotiated unsupported version " +
                            std::to_string(ok.version));
  }
  client->version_ = ok.version;
  return client;
}

SvcClient::~SvcClient() {
  if (fd_ >= 0) close(fd_);
}

Status SvcClient::SendFrame(const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  if (wire.size() - kFrameHeaderBytes > kDefaultMaxFrameBytes) {
    // The server would treat an oversized frame as unrecoverable and drop
    // the connection; fail the request locally instead.
    return Status::OutOfRange(
        "request frame of " +
        std::to_string(wire.size() - kFrameHeaderBytes) +
        " bytes exceeds the " + std::to_string(kDefaultMaxFrameBytes) +
        "-byte frame limit");
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<Frame> SvcClient::ReadFrame() {
  char buf[65536];
  while (true) {
    SVC_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                         TryDecodeFrame(&inbuf_, kDefaultMaxFrameBytes));
    if (frame.has_value()) return std::move(*frame);
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::Protocol("server closed the connection");
    return Errno("recv");
  }
}

Result<Frame> SvcClient::RoundTrip(const Frame& frame) {
  Frame request = frame;
  if (request.request_id == 0) request.request_id = next_request_id_++;
  SVC_RETURN_IF_ERROR(SendFrame(request));
  while (true) {
    SVC_ASSIGN_OR_RETURN(Frame reply, ReadFrame());
    // Transport-level errors (bad CRC on *our* frames) come back with
    // request id 0; everything else must match what we asked.
    if (reply.request_id == request.request_id || reply.request_id == 0) {
      return reply;
    }
    // A stale response from an abandoned pipelined request: skip it.
  }
}

Result<SqlResult> SvcClient::AsResult(const Frame& frame) {
  if (frame.tag == FrameTag::kError) return DecodeErrorBody(frame.body);
  return DecodeSqlResultBody(frame.tag, frame.body);
}

Result<SqlResult> SvcClient::Execute(const std::string& sql) {
  Frame frame;
  frame.tag = FrameTag::kQuery;
  PutStr(&frame.body, sql);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  return AsResult(reply);
}

Result<SvcClient::Prepared> SvcClient::Prepare(const std::string& sql) {
  Frame frame;
  frame.tag = FrameTag::kPrepare;
  PutStr(&frame.body, sql);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kPrepared) {
    return Status::Protocol("expected Prepared, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  SVC_ASSIGN_OR_RETURN(PreparedReply prepared, DecodePreparedBody(reply.body));
  Prepared out;
  out.id = prepared.stmt_id;
  out.num_params = prepared.num_params;
  return out;
}

Result<SqlResult> SvcClient::ExecutePrepared(const Prepared& stmt,
                                             const std::vector<Value>& params) {
  Frame frame;
  frame.tag = FrameTag::kExecute;
  EncodeExecuteBody(stmt.id, params, &frame.body);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  return AsResult(reply);
}

Status SvcClient::ClosePrepared(const Prepared& stmt) {
  Frame frame;
  frame.tag = FrameTag::kClose;
  PutU64(&frame.body, stmt.id);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  return Status::OK();
}

Result<std::map<std::string, uint64_t>> SvcClient::ServerStats() {
  Frame frame;
  frame.tag = FrameTag::kStatsReq;
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kStats) {
    return Status::Protocol("expected Stats, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  return DecodeStatsBody(reply.body);
}

Status SvcClient::Shutdown() {
  Frame frame;
  frame.tag = FrameTag::kClose;
  PutU64(&frame.body, 0);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  return Status::OK();
}

}  // namespace svc
