#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "storage/serde.h"

namespace svc {

namespace {

/// Transport failures are kUnavailable: the request said nothing about the
/// statement, so an idempotent re-send is safe (IsRetryableStatus).
Status NetErrno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

/// Connects with a bounded timeout (non-blocking connect + poll), then
/// restores blocking mode — the send/recv paths bound themselves.
Result<int> DialTimeout(const ClientOptions& opts) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return NetErrno("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts.port);
  if (inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address: " + opts.host);
  }
  const std::string peer = opts.host + ":" + std::to_string(opts.port);
  const int flags = fcntl(fd, F_GETFL, 0);
  if (opts.connect_timeout_ms > 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    rc = poll(&pfd, 1, opts.connect_timeout_ms);
    if (rc <= 0) {
      close(fd);
      return Status::Unavailable("connect " + peer + " timed out after " +
                                 std::to_string(opts.connect_timeout_ms) +
                                 " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close(fd);
      errno = err;
      return NetErrno("connect " + peer);
    }
  } else if (rc < 0) {
    const Status s = NetErrno("connect " + peer);
    close(fd);
    return s;
  }
  if (opts.connect_timeout_ms > 0) fcntl(fd, F_SETFL, flags);
  return fd;
}

}  // namespace

Result<std::unique_ptr<SvcClient>> SvcClient::Connect(
    const ClientOptions& opts) {
  auto client = std::unique_ptr<SvcClient>(new SvcClient());
  client->opts_ = opts;
  client->rng_ = Rng(opts.backoff_seed);
  // The idempotency token must name this client uniquely within the
  // server's journal: across processes (pid) and across the clients inside
  // one (a process-wide counter).
  static std::atomic<uint64_t> instance{0};
  client->idem_token_ = opts.client_name + "#" +
                        std::to_string(static_cast<uint64_t>(getpid())) + "." +
                        std::to_string(instance.fetch_add(1));
  SVC_RETURN_IF_ERROR(client->EnsureConnected());
  return client;
}

SvcClient::~SvcClient() { Drop(); }

void SvcClient::Drop() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  inbuf_.clear();
}

Status SvcClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  SVC_ASSIGN_OR_RETURN(int fd, DialTimeout(opts_));
  fd_ = fd;
  inbuf_.clear();

  Frame hello;
  hello.tag = FrameTag::kHello;
  HelloRequest req;
  req.client_name = opts_.client_name;
  EncodeHelloRequest(req, &hello.body);
  hello.request_id = next_request_id_++;
  Status sent = SendFrame(hello);
  Result<Frame> reply = sent.ok() ? ReadFrame() : Result<Frame>(sent);
  if (!reply.ok()) {
    Drop();
    return reply.status();
  }
  if (reply->tag == FrameTag::kError) {
    const Status s = DecodeErrorBody(reply->body);
    Drop();
    return s;
  }
  if (reply->tag != FrameTag::kHelloOk) {
    Drop();
    return Status::Protocol("expected HelloOk, got frame tag " +
                            std::to_string(static_cast<int>(reply->tag)));
  }
  Result<HelloReply> ok = DecodeHelloReply(reply->body);
  if (!ok.ok()) {
    Drop();
    return ok.status();
  }
  if (ok->version < kProtocolVersionMin || ok->version > kProtocolVersionMax) {
    Drop();
    return Status::Protocol("server negotiated unsupported version " +
                            std::to_string(ok->version));
  }
  version_ = ok->version;
  ++generation_;
  if (generation_ > 1) ++reconnects_;
  return Status::OK();
}

Status SvcClient::SendFrame(const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  if (wire.size() - kFrameHeaderBytes > kDefaultMaxFrameBytes) {
    // The server would treat an oversized frame as unrecoverable and drop
    // the connection; fail the request locally instead.
    return Status::OutOfRange(
        "request frame of " +
        std::to_string(wire.size() - kFrameHeaderBytes) +
        " bytes exceeds the " + std::to_string(kDefaultMaxFrameBytes) +
        "-byte frame limit");
  }
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return NetErrno("send");
  }
  return Status::OK();
}

Result<Frame> SvcClient::ReadFrame() {
  using Clock = std::chrono::steady_clock;
  const bool bounded = opts_.recv_timeout_ms > 0;
  const Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(opts_.recv_timeout_ms);
  char buf[65536];
  while (true) {
    SVC_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                         TryDecodeFrame(&inbuf_, kDefaultMaxFrameBytes));
    if (frame.has_value()) return std::move(*frame);
    if (bounded) {
      // Bounded wait: a stalled peer (dead air, half a frame) fails the
      // request with kUnavailable instead of wedging the caller forever.
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(give_up - Clock::now()).count();
      if (remaining <= 0) {
        return Status::Unavailable(
            "no response within " + std::to_string(opts_.recv_timeout_ms) +
            " ms (server stalled or response lost)");
      }
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int rc = poll(&pfd, 1, static_cast<int>(remaining));
      if (rc < 0 && errno != EINTR) return NetErrno("poll");
      if (rc <= 0) continue;  // timeout slice or EINTR: re-check the budget
    }
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n == 0) return Status::Unavailable("server closed the connection");
    return NetErrno("recv");
  }
}

Result<Frame> SvcClient::RoundTrip(const Frame& frame) {
  SVC_RETURN_IF_ERROR(EnsureConnected());
  Frame request = frame;
  if (request.request_id == 0) request.request_id = next_request_id_++;
  Status sent = SendFrame(request);
  if (!sent.ok()) {
    Drop();
    return sent;
  }
  while (true) {
    Result<Frame> reply = ReadFrame();
    if (!reply.ok()) {
      Drop();
      return reply;
    }
    // Transport-level errors (bad CRC on *our* frames) come back with
    // request id 0; everything else must match what we asked.
    if (reply->request_id == request.request_id || reply->request_id == 0) {
      return reply;
    }
    // A stale response from an abandoned pipelined request: skip it.
  }
}

void SvcClient::SleepBackoff(int attempt) {
  int64_t base = opts_.backoff_initial_ms;
  for (int i = 1; i < attempt && base < opts_.backoff_max_ms; ++i) base *= 2;
  base = std::max<int64_t>(1, std::min<int64_t>(base, opts_.backoff_max_ms));
  // Uniform jitter in [base/2, base] keeps synchronized retry storms from
  // re-colliding while staying deterministic per backoff_seed.
  const int64_t sleep_ms = rng_.UniformInt(base - base / 2, base);
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

Result<Frame> SvcClient::CallWithRetry(
    const std::function<Result<Frame>()>& make_frame, bool idempotent) {
  int attempt = 0;
  while (true) {
    Status failure = EnsureConnected();
    if (failure.ok()) {
      Result<Frame> made = make_frame();
      if (!made.ok()) {
        // e.g. a re-prepare failing with a SQL error: not retryable.
        failure = made.status();
      } else {
        Result<Frame> reply = RoundTrip(*made);
        if (!reply.ok()) {
          failure = reply.status();  // transport; RoundTrip already dropped
        } else if (reply->tag == FrameTag::kError) {
          const Status decoded = DecodeErrorBody(reply->body);
          if (!IsRetryableStatus(decoded.code())) return reply;
          failure = decoded;  // e.g. Overloaded: connection is fine, retry
        } else {
          return reply;
        }
      }
    }
    if (!idempotent || !IsRetryableStatus(failure.code()) ||
        attempt >= opts_.max_retries) {
      return failure;
    }
    ++attempt;
    ++retries_;
    SleepBackoff(attempt);
  }
}

RequestMeta SvcClient::NextMeta() {
  RequestMeta meta;
  meta.deadline_ms = opts_.deadline_ms;
  if (opts_.max_retries > 0) {
    meta.idem_token = idem_token_;
    meta.idem_seq = ++idem_seq_;
  }
  return meta;
}

Result<SqlResult> SvcClient::AsResult(const Frame& frame) {
  if (frame.tag == FrameTag::kError) return DecodeErrorBody(frame.body);
  return DecodeSqlResultBody(frame.tag, frame.body);
}

Result<SqlResult> SvcClient::Execute(const std::string& sql) {
  SVC_RETURN_IF_ERROR(EnsureConnected());  // fixes version_ for the meta
  // The meta is fixed once: every retry re-sends the same (token, seq), so
  // the server's journal recognizes it as the same logical request.
  const RequestMeta meta = NextMeta();
  const bool idempotent = version_ >= 2 && !meta.idem_token.empty();
  auto make = [&]() -> Result<Frame> {
    Frame frame;
    frame.tag = FrameTag::kQuery;
    PutStr(&frame.body, sql);
    if (version_ >= 2) AppendRequestMeta(meta, &frame.body);
    return frame;
  };
  SVC_ASSIGN_OR_RETURN(Frame reply, CallWithRetry(make, idempotent));
  return AsResult(reply);
}

Result<PreparedReply> SvcClient::PrepareOnServer(const std::string& sql) {
  Frame frame;
  frame.tag = FrameTag::kPrepare;
  PutStr(&frame.body, sql);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kPrepared) {
    return Status::Protocol("expected Prepared, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  return DecodePreparedBody(reply.body);
}

Result<SvcClient::Prepared> SvcClient::Prepare(const std::string& sql) {
  // Preparing mutates no engine state, so a transport retry is always
  // safe (worst case the server holds an orphan statement it will drop
  // with the connection).
  auto make = [&]() -> Result<Frame> {
    Frame frame;
    frame.tag = FrameTag::kPrepare;
    PutStr(&frame.body, sql);
    return frame;
  };
  SVC_ASSIGN_OR_RETURN(Frame reply,
                       CallWithRetry(make, opts_.max_retries > 0));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kPrepared) {
    return Status::Protocol("expected Prepared, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  SVC_ASSIGN_OR_RETURN(PreparedReply prepared, DecodePreparedBody(reply.body));
  Prepared out;
  out.id = next_client_stmt_id_++;
  out.num_params = prepared.num_params;
  prepared_[out.id] =
      PreparedEntry{sql, prepared.stmt_id, generation_};
  return out;
}

Result<SqlResult> SvcClient::ExecutePrepared(const Prepared& stmt,
                                             const std::vector<Value>& params) {
  if (prepared_.find(stmt.id) == prepared_.end()) {
    return Status::NotFound("no prepared statement #" +
                            std::to_string(stmt.id));
  }
  SVC_RETURN_IF_ERROR(EnsureConnected());
  const RequestMeta meta = NextMeta();
  const bool idempotent = version_ >= 2 && !meta.idem_token.empty();
  auto make = [&]() -> Result<Frame> {
    PreparedEntry& entry = prepared_[stmt.id];
    if (entry.generation != generation_) {
      // The server lost its statement cache with the old connection:
      // re-prepare from the retained SQL before re-sending.
      SVC_ASSIGN_OR_RETURN(PreparedReply srv, PrepareOnServer(entry.sql));
      entry.server_id = srv.stmt_id;
      entry.generation = generation_;
    }
    Frame frame;
    frame.tag = FrameTag::kExecute;
    EncodeExecuteBody(entry.server_id, params, &frame.body);
    if (version_ >= 2) AppendRequestMeta(meta, &frame.body);
    return frame;
  };
  SVC_ASSIGN_OR_RETURN(Frame reply, CallWithRetry(make, idempotent));
  return AsResult(reply);
}

Status SvcClient::ClosePrepared(const Prepared& stmt) {
  auto it = prepared_.find(stmt.id);
  if (it == prepared_.end()) {
    return Status::NotFound("no prepared statement #" +
                            std::to_string(stmt.id));
  }
  const uint64_t server_id = it->second.server_id;
  const bool live = it->second.generation == generation_ && fd_ >= 0;
  prepared_.erase(it);
  // After a reconnect the server already dropped it with the connection.
  if (!live) return Status::OK();
  Frame frame;
  frame.tag = FrameTag::kClose;
  PutU64(&frame.body, server_id);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  return Status::OK();
}

Result<std::map<std::string, uint64_t>> SvcClient::ServerStats() {
  Frame frame;
  frame.tag = FrameTag::kStatsReq;
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  if (reply.tag != FrameTag::kStats) {
    return Status::Protocol("expected Stats, got frame tag " +
                            std::to_string(static_cast<int>(reply.tag)));
  }
  return DecodeStatsBody(reply.body);
}

Status SvcClient::Shutdown() {
  Frame frame;
  frame.tag = FrameTag::kClose;
  PutU64(&frame.body, 0);
  SVC_ASSIGN_OR_RETURN(Frame reply, RoundTrip(frame));
  if (reply.tag == FrameTag::kError) return DecodeErrorBody(reply.body);
  return Status::OK();
}

}  // namespace svc
