#ifndef SVC_SERVER_CLIENT_H_
#define SVC_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "server/protocol.h"
#include "sql/session.h"

namespace svc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reported to the server in the Hello frame.
  std::string client_name = "svc_client";
  /// A connect not completing within this window fails with kUnavailable
  /// (0 = the OS default, which can be minutes).
  int connect_timeout_ms = 5000;
  /// A response not arriving within this window fails the request with
  /// kUnavailable and drops the connection, instead of blocking the caller
  /// forever on a stalled peer (0 = wait forever).
  int recv_timeout_ms = 10000;
  /// Automatic retry: on a *retryable* failure (transport death, recv
  /// timeout, server overload — see IsRetryableStatus) the client redials
  /// with exponential backoff and re-sends the request, at most this many
  /// times after the first attempt (0 = fail fast). Statements are only
  /// retried against a v2 server, where the per-request idempotency
  /// (token, seq) guarantees a retried write commits exactly once and a
  /// retried read replays the same bytes.
  int max_retries = 0;
  /// Exponential backoff between retries: attempt k sleeps a uniformly
  /// jittered duration in [b/2, b] where b = min(initial << (k-1), max).
  int backoff_initial_ms = 10;
  int backoff_max_ms = 500;
  /// Seed for the jitter stream — deterministic, so a test's retry
  /// schedule is reproducible.
  uint64_t backoff_seed = 1;
  /// Server-side deadline attached to every statement (v2 only; 0 = none):
  /// the server answers kDeadlineExceeded instead of finishing late.
  uint32_t deadline_ms = 0;
};

/// A blocking client for the svc wire protocol (server/protocol.h). It
/// implements SqlExecutor, so anything that drives a SqlSession — the
/// Shell above all — can run over a socket instead, and because result
/// tables travel through the bit-exact storage/serde codec, a remote
/// transcript is byte-identical to a local one.
///
/// Robustness: every receive is bounded by `recv_timeout_ms`, transport
/// failures surface as kUnavailable (never a hang), and with
/// `max_retries > 0` the client transparently reconnects (exponential
/// backoff + deterministic jitter) and re-sends the failed request under
/// the same idempotency (token, seq) — the server's dedup journal makes
/// the retry exact-once even when the original response was lost in
/// flight. Prepared statements survive a reconnect: the client keeps the
/// SQL text and lazily re-prepares on the new connection.
///
/// Not thread-safe: one SvcClient per thread (connections are cheap; the
/// server multiplexes). Requests are synchronous — each call sends one
/// frame and waits for the response with the matching request id.
class SvcClient : public SqlExecutor {
 public:
  /// Connects and performs the Hello version handshake.
  static Result<std::unique_ptr<SvcClient>> Connect(const ClientOptions& opts);

  ~SvcClient() override;
  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  /// Executes one SQL statement on the server (Query frame).
  Result<SqlResult> Execute(const std::string& sql) override;

  /// A prepared statement handle. The id is *client-side*: it stays valid
  /// across reconnects (the client re-prepares under the covers).
  struct Prepared {
    uint64_t id = 0;
    uint32_t num_params = 0;
  };

  /// Parses `sql` once on the server; the returned handle executes with
  /// per-call `?` parameter values and never re-parses.
  Result<Prepared> Prepare(const std::string& sql);

  /// Executes a prepared statement with `params` bound in text order.
  Result<SqlResult> ExecutePrepared(const Prepared& stmt,
                                    const std::vector<Value>& params);

  /// Frees a prepared statement (client registry + server side).
  Status ClosePrepared(const Prepared& stmt);

  /// The server's monotonic counters (Stats frame).
  Result<std::map<std::string, uint64_t>> ServerStats();

  /// Asks the server to close this connection (Close frame, id 0).
  Status Shutdown();

  /// Protocol version negotiated at Connect (or the latest reconnect).
  uint32_t negotiated_version() const { return version_; }

  /// Number of times a request was re-sent after a retryable failure.
  uint64_t retries() const { return retries_; }
  /// Number of times the transport was re-established after Connect.
  uint64_t reconnects() const { return reconnects_; }

  /// Sends a raw frame and returns the raw response — the protocol tests'
  /// hook for malformed and pipelined traffic. Single attempt: transport
  /// failures surface directly (the connection is dropped and will be
  /// redialed by the next request).
  Result<Frame> RoundTrip(const Frame& frame);

 private:
  struct PreparedEntry {
    std::string sql;
    uint64_t server_id = 0;
    uint64_t generation = 0;  ///< connection generation it was prepared on
  };

  SvcClient() = default;

  /// Dials + Hello-handshakes if the connection is down. No-op when up.
  Status EnsureConnected();
  /// Closes the socket (next request redials) and discards buffered bytes.
  void Drop();
  /// Sleeps the jittered exponential backoff for retry attempt `attempt`
  /// (1-based).
  void SleepBackoff(int attempt);

  /// The retry loop: per attempt, ensures the connection is up, builds the
  /// frame via `make_frame` (re-run each attempt so it can re-prepare on a
  /// fresh connection), and round-trips it. Retries only retryable
  /// failures, only when `idempotent`, at most opts_.max_retries times.
  Result<Frame> CallWithRetry(const std::function<Result<Frame>()>& make_frame,
                              bool idempotent);

  /// Fills a RequestMeta for the next statement: the session deadline and,
  /// when retries are enabled, this client's token with a fresh sequence
  /// number. Only meaningful against a v2 server.
  RequestMeta NextMeta();

  /// Single-attempt server Prepare (used by Prepare and by the lazy
  /// re-prepare after a reconnect).
  Result<PreparedReply> PrepareOnServer(const std::string& sql);

  Status SendFrame(const Frame& frame);
  Result<Frame> ReadFrame();
  /// Decodes a response frame into a SqlResult (Error frames become the
  /// transported Status).
  static Result<SqlResult> AsResult(const Frame& frame);

  ClientOptions opts_;
  int fd_ = -1;
  uint32_t version_ = 0;
  uint32_t next_request_id_ = 1;
  std::string inbuf_;

  Rng rng_;  ///< backoff jitter (seeded from opts_.backoff_seed)
  std::string idem_token_;
  uint64_t idem_seq_ = 0;
  uint64_t generation_ = 0;  ///< bumped per successful (re)connect
  uint64_t retries_ = 0;
  uint64_t reconnects_ = 0;

  std::map<uint64_t, PreparedEntry> prepared_;
  uint64_t next_client_stmt_id_ = 1;
};

}  // namespace svc

#endif  // SVC_SERVER_CLIENT_H_
