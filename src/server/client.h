#ifndef SVC_SERVER_CLIENT_H_
#define SVC_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"
#include "sql/session.h"

namespace svc {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Reported to the server in the Hello frame.
  std::string client_name = "svc_client";
};

/// A blocking client for the svc wire protocol (server/protocol.h). It
/// implements SqlExecutor, so anything that drives a SqlSession — the
/// Shell above all — can run over a socket instead, and because result
/// tables travel through the bit-exact storage/serde codec, a remote
/// transcript is byte-identical to a local one.
///
/// Not thread-safe: one SvcClient per thread (connections are cheap; the
/// server multiplexes). Requests are synchronous — each call sends one
/// frame and waits for the response with the matching request id.
class SvcClient : public SqlExecutor {
 public:
  /// Connects and performs the Hello version handshake.
  static Result<std::unique_ptr<SvcClient>> Connect(const ClientOptions& opts);

  ~SvcClient() override;
  SvcClient(const SvcClient&) = delete;
  SvcClient& operator=(const SvcClient&) = delete;

  /// Executes one SQL statement on the server (Query frame).
  Result<SqlResult> Execute(const std::string& sql) override;

  /// A server-side prepared statement handle.
  struct Prepared {
    uint64_t id = 0;
    uint32_t num_params = 0;
  };

  /// Parses `sql` once on the server; the returned handle executes with
  /// per-call `?` parameter values and never re-parses.
  Result<Prepared> Prepare(const std::string& sql);

  /// Executes a prepared statement with `params` bound in text order.
  Result<SqlResult> ExecutePrepared(const Prepared& stmt,
                                    const std::vector<Value>& params);

  /// Frees a server-side prepared statement.
  Status ClosePrepared(const Prepared& stmt);

  /// The server's monotonic counters (Stats frame).
  Result<std::map<std::string, uint64_t>> ServerStats();

  /// Asks the server to close this connection (Close frame, id 0).
  Status Shutdown();

  /// Protocol version negotiated at Connect.
  uint32_t negotiated_version() const { return version_; }

  /// Sends a raw frame and returns the raw response — the protocol tests'
  /// hook for malformed and pipelined traffic.
  Result<Frame> RoundTrip(const Frame& frame);

 private:
  SvcClient() = default;

  Status SendFrame(const Frame& frame);
  Result<Frame> ReadFrame();
  /// Decodes a response frame into a SqlResult (Error frames become the
  /// transported Status).
  static Result<SqlResult> AsResult(const Frame& frame);

  int fd_ = -1;
  uint32_t version_ = 0;
  uint32_t next_request_id_ = 1;
  std::string inbuf_;
};

}  // namespace svc

#endif  // SVC_SERVER_CLIENT_H_
