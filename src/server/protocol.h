#ifndef SVC_SERVER_PROTOCOL_H_
#define SVC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/session.h"

namespace svc {

/// The svc wire protocol (see docs/PROTOCOL.md for the normative grammar).
///
/// Every message is one frame, reusing the WAL's framing convention
/// (storage/wal.h) so torn and corrupt input is detected the same way:
///
///   [u32 len][u32 crc32(payload)][payload]        (little-endian)
///   payload = [u8 tag][u32 request_id][body]
///
/// `len` counts payload bytes only. `request_id` is chosen by the client
/// and echoed verbatim in the response, so clients may pipeline many
/// requests on one connection and match answers by id. Body fields use the
/// storage/serde primitives (PutU32/PutStr/EncodeTable/...), which makes
/// transmitted tables bit-exact: a remote shell renders the same transcript
/// as a local one.
///
/// Versioning: the client opens with Hello carrying the highest protocol
/// version it speaks; the server replies with the negotiated version
/// min(client, server) or an Error frame if there is no overlap. Frames
/// with unknown tags inside a negotiated session produce an Error response
/// (not a disconnect), so minor additions stay backward compatible.

/// Protocol versions this build can speak.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 1;

/// Frames larger than this are rejected (and the connection dropped, since
/// framing can no longer be trusted).
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u * 1024u * 1024u;

/// Frame header bytes on the wire: len + crc.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Payload overhead: tag + request id.
inline constexpr size_t kPayloadHeaderBytes = 5;

enum class FrameTag : uint8_t {
  // Client -> server.
  kHello = 0x01,    ///< u32 max_version, str client_name
  kQuery = 0x02,    ///< str sql (one statement)
  kPrepare = 0x03,  ///< str sql (one statement, `?` placeholders allowed)
  kExecute = 0x05,  ///< u64 stmt_id, u32 n, n x Value
  kClose = 0x06,    ///< u64 stmt_id (0 = close the connection)
  kStatsReq = 0x0B, ///< empty body; server counters
  // Server -> client.
  kHelloOk = 0x81,    ///< u32 version, str server_name
  kPrepared = 0x84,   ///< u64 stmt_id, u32 num_params
  kOk = 0x87,         ///< str message (DDL / DML summary)
  kResultSet = 0x88,  ///< str message, Table
  kEstimate = 0x89,   ///< str message, u8 mode, Table
  kError = 0x8A,      ///< u8 wire code, str message
  kStats = 0x8B,      ///< u32 n, n x (str name, u64 value)
};

/// One decoded frame: tag + request id + raw body bytes.
struct Frame {
  FrameTag tag = FrameTag::kError;
  uint32_t request_id = 0;
  std::string body;
};

// ---- Framing ---------------------------------------------------------------

/// Appends the full wire encoding of `frame` to `out`.
void EncodeFrame(const Frame& frame, std::string* out);

/// Attempts to extract one frame from the front of `buf`. Returns:
///   * a Frame (consumed from `buf`) when one is complete,
///   * nullopt when more bytes are needed,
///   * Protocol error when the stream is unrecoverable (oversized frame or
///     CRC mismatch) — the connection must be dropped.
Result<std::optional<Frame>> TryDecodeFrame(std::string* buf,
                                            uint32_t max_frame_bytes);

// ---- Status <-> wire error codes -------------------------------------------

/// Stable one-byte wire encodings of StatusCode (do not renumber; new codes
/// get new numbers). Unknown incoming codes decode as kInternal.
uint8_t WireCodeOf(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

// ---- Body codecs -----------------------------------------------------------

struct HelloRequest {
  uint32_t max_version = kProtocolVersionMax;
  std::string client_name;
};

struct HelloReply {
  uint32_t version = 0;
  std::string server_name;
};

void EncodeHelloRequest(const HelloRequest& hello, std::string* out);
Result<HelloRequest> DecodeHelloRequest(const std::string& body);

void EncodeHelloReply(const HelloReply& hello, std::string* out);
Result<HelloReply> DecodeHelloReply(const std::string& body);

/// kError body: the transported Status (code + message).
void EncodeErrorBody(const Status& status, std::string* out);
/// The Status transported by an Error body. A malformed body, or one
/// carrying an OK code (an Error frame never means success), decodes to a
/// Protocol error instead.
Status DecodeErrorBody(const std::string& body);

/// Picks the response tag for `result` (kOk / kResultSet / kEstimate) and
/// encodes the matching body.
FrameTag EncodeSqlResultBody(const SqlResult& result, std::string* out);
Result<SqlResult> DecodeSqlResultBody(FrameTag tag, const std::string& body);

/// kExecute body: statement id + bound parameter values.
void EncodeExecuteBody(uint64_t stmt_id, const std::vector<Value>& params,
                       std::string* out);
struct ExecuteRequest {
  uint64_t stmt_id = 0;
  std::vector<Value> params;
};
Result<ExecuteRequest> DecodeExecuteBody(const std::string& body);

/// kPrepared body: statement id + placeholder count.
void EncodePreparedBody(uint64_t stmt_id, uint32_t num_params,
                        std::string* out);
struct PreparedReply {
  uint64_t stmt_id = 0;
  uint32_t num_params = 0;
};
Result<PreparedReply> DecodePreparedBody(const std::string& body);

/// kStats body: named server counters (order-insensitive; clients must
/// ignore names they do not know — new counters are a compatible change).
void EncodeStatsBody(const std::map<std::string, uint64_t>& stats,
                     std::string* out);
Result<std::map<std::string, uint64_t>> DecodeStatsBody(
    const std::string& body);

}  // namespace svc

#endif  // SVC_SERVER_PROTOCOL_H_
