#ifndef SVC_SERVER_PROTOCOL_H_
#define SVC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/session.h"

namespace svc {

/// The svc wire protocol (see docs/PROTOCOL.md for the normative grammar).
///
/// Every message is one frame, reusing the WAL's framing convention
/// (storage/wal.h) so torn and corrupt input is detected the same way:
///
///   [u32 len][u32 crc32(payload)][payload]        (little-endian)
///   payload = [u8 tag][u32 request_id][body]
///
/// `len` counts payload bytes only. `request_id` is chosen by the client
/// and echoed verbatim in the response, so clients may pipeline many
/// requests on one connection and match answers by id. Body fields use the
/// storage/serde primitives (PutU32/PutStr/EncodeTable/...), which makes
/// transmitted tables bit-exact: a remote shell renders the same transcript
/// as a local one.
///
/// Versioning: the client opens with Hello carrying the highest protocol
/// version it speaks; the server replies with the negotiated version
/// min(client, server) or an Error frame if there is no overlap. Frames
/// with unknown tags inside a negotiated session produce an Error response
/// (not a disconnect), so minor additions stay backward compatible.
///
/// Version 2 (docs/PROTOCOL.md "Protocol v2") appends *trailing* fields to
/// existing bodies — request metadata (deadline_ms + idempotency token) on
/// Query/Execute, a degraded flag on Estimate — so a v1 decoder, which
/// stops reading where v1 ended, still decodes every v2 frame, and a v2
/// decoder treats absent trailing bytes as the v1 defaults. Nothing about
/// the framing or the existing fields changed.

/// Protocol versions this build can speak.
inline constexpr uint32_t kProtocolVersionMin = 1;
inline constexpr uint32_t kProtocolVersionMax = 2;

/// Frames larger than this are rejected (and the connection dropped, since
/// framing can no longer be trusted).
inline constexpr uint32_t kDefaultMaxFrameBytes = 16u * 1024u * 1024u;

/// Frame header bytes on the wire: len + crc.
inline constexpr size_t kFrameHeaderBytes = 8;
/// Payload overhead: tag + request id.
inline constexpr size_t kPayloadHeaderBytes = 5;

enum class FrameTag : uint8_t {
  // Client -> server. v2 appends [u32 deadline_ms, str idem_token,
  // u64 idem_seq] to Query and Execute bodies (absent = no deadline, no
  // idempotency).
  kHello = 0x01,    ///< u32 max_version, str client_name
  kQuery = 0x02,    ///< str sql (one statement) [, v2 request meta]
  kPrepare = 0x03,  ///< str sql (one statement, `?` placeholders allowed)
  kExecute = 0x05,  ///< u64 stmt_id, u32 n, n x Value [, v2 request meta]
  kClose = 0x06,    ///< u64 stmt_id (0 = close the connection)
  kStatsReq = 0x0B, ///< empty body; server counters
  // Server -> client.
  kHelloOk = 0x81,    ///< u32 version, str server_name
  kPrepared = 0x84,   ///< u64 stmt_id, u32 num_params
  kOk = 0x87,         ///< str message (DDL / DML summary)
  kResultSet = 0x88,  ///< str message, Table
  kEstimate = 0x89,   ///< str message, u8 mode, Table [, v2 u8 degraded]
  kError = 0x8A,      ///< u8 wire code, str message
  kStats = 0x8B,      ///< u32 n, n x (str name, u64 value)
};

/// One decoded frame: tag + request id + raw body bytes.
struct Frame {
  FrameTag tag = FrameTag::kError;
  uint32_t request_id = 0;
  std::string body;
};

// ---- Framing ---------------------------------------------------------------

/// Appends the full wire encoding of `frame` to `out`.
void EncodeFrame(const Frame& frame, std::string* out);

/// Attempts to extract one frame from the front of `buf`. Returns:
///   * a Frame (consumed from `buf`) when one is complete,
///   * nullopt when more bytes are needed,
///   * Protocol error when the stream is unrecoverable (oversized frame or
///     CRC mismatch) — the connection must be dropped.
Result<std::optional<Frame>> TryDecodeFrame(std::string* buf,
                                            uint32_t max_frame_bytes);

// ---- Status <-> wire error codes -------------------------------------------

/// Stable one-byte wire encodings of StatusCode (do not renumber; new codes
/// get new numbers). Unknown incoming codes decode as kInternal.
uint8_t WireCodeOf(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

/// True for error classes a client may retry without changing the request:
/// the failure says nothing about the statement itself (transport died, or
/// admission control shed load), so re-sending an *idempotent* request is
/// safe. Everything else — SQL errors, protocol violations,
/// kDeadlineExceeded (the time budget is spent) — must not be retried.
/// This is the normative table in docs/PROTOCOL.md ("Retryability").
bool IsRetryableStatus(StatusCode code);

// ---- Body codecs -----------------------------------------------------------

struct HelloRequest {
  uint32_t max_version = kProtocolVersionMax;
  std::string client_name;
};

struct HelloReply {
  uint32_t version = 0;
  std::string server_name;
};

void EncodeHelloRequest(const HelloRequest& hello, std::string* out);
Result<HelloRequest> DecodeHelloRequest(const std::string& body);

void EncodeHelloReply(const HelloReply& hello, std::string* out);
Result<HelloReply> DecodeHelloReply(const std::string& body);

/// v2 request metadata, carried as trailing fields on Query and Execute
/// bodies. All-defaults means "absent" and encodes to nothing at all, so a
/// v2 client talking to a v1 server (negotiated version 1) simply never
/// appends it.
struct RequestMeta {
  /// Server-side deadline: the request fails with kDeadlineExceeded once
  /// this many milliseconds elapse after admission (0 = no deadline).
  uint32_t deadline_ms = 0;
  /// Per-session idempotency token ("" = none). Together with `idem_seq`
  /// it names one logical request: a retry re-sends the same (token, seq),
  /// and the server replays the recorded response instead of re-executing
  /// — a retried write commits exactly once.
  std::string idem_token;
  uint64_t idem_seq = 0;

  bool empty() const {
    return deadline_ms == 0 && idem_token.empty() && idem_seq == 0;
  }
};

/// Appends the v2 trailing request meta (no-op when meta.empty()).
void AppendRequestMeta(const RequestMeta& meta, std::string* out);
/// Reads trailing request meta from wherever `r` stands; absent trailing
/// bytes (a v1 peer) decode as the all-defaults meta. Fails only on a
/// torn trailer.
Result<RequestMeta> DecodeRequestMetaTail(ByteReader* r);

/// kError body: the transported Status (code + message).
void EncodeErrorBody(const Status& status, std::string* out);
/// The Status transported by an Error body. A malformed body, or one
/// carrying an OK code (an Error frame never means success), decodes to a
/// Protocol error instead.
Status DecodeErrorBody(const std::string& body);

/// Picks the response tag for `result` (kOk / kResultSet / kEstimate) and
/// encodes the matching body.
FrameTag EncodeSqlResultBody(const SqlResult& result, std::string* out);
Result<SqlResult> DecodeSqlResultBody(FrameTag tag, const std::string& body);

/// kExecute body: statement id + bound parameter values.
void EncodeExecuteBody(uint64_t stmt_id, const std::vector<Value>& params,
                       std::string* out);
struct ExecuteRequest {
  uint64_t stmt_id = 0;
  std::vector<Value> params;
};
Result<ExecuteRequest> DecodeExecuteBody(const std::string& body);
/// Reader form: leaves `r` standing after the v1 fields, so a caller can
/// then pick up the v2 trailing RequestMeta with DecodeRequestMetaTail.
Result<ExecuteRequest> DecodeExecuteBody(ByteReader* r);

/// kPrepared body: statement id + placeholder count.
void EncodePreparedBody(uint64_t stmt_id, uint32_t num_params,
                        std::string* out);
struct PreparedReply {
  uint64_t stmt_id = 0;
  uint32_t num_params = 0;
};
Result<PreparedReply> DecodePreparedBody(const std::string& body);

/// kStats body: named server counters (order-insensitive; clients must
/// ignore names they do not know — new counters are a compatible change).
void EncodeStatsBody(const std::map<std::string, uint64_t>& stats,
                     std::string* out);
Result<std::map<std::string, uint64_t>> DecodeStatsBody(
    const std::string& body);

}  // namespace svc

#endif  // SVC_SERVER_PROTOCOL_H_
