#include "server/protocol.h"

#include <utility>

#include "storage/serde.h"

namespace svc {

namespace {

/// Explicit little-endian, matching PutU32 (storage/serde.cc), so frame
/// headers decode identically on any host byte order.
uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (size_t i = 0; i < sizeof(v); ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(frame.tag));
  PutU32(&payload, frame.request_id);
  payload += frame.body;
  PutU32(out, static_cast<uint32_t>(payload.size()));
  PutU32(out, Crc32(payload));
  *out += payload;
}

Result<std::optional<Frame>> TryDecodeFrame(std::string* buf,
                                            uint32_t max_frame_bytes) {
  if (buf->size() < kFrameHeaderBytes) return std::optional<Frame>();
  const uint32_t len = ReadU32(buf->data());
  // An oversized or impossibly short length means the stream is not at a
  // frame boundary (or the peer is hostile): framing is lost for good.
  if (len > max_frame_bytes) {
    return Status::Protocol("frame of " + std::to_string(len) +
                            " bytes exceeds the " +
                            std::to_string(max_frame_bytes) + "-byte limit");
  }
  if (len < kPayloadHeaderBytes) {
    return Status::Protocol("frame payload of " + std::to_string(len) +
                            " bytes is shorter than the tag + request id");
  }
  if (buf->size() < kFrameHeaderBytes + len) return std::optional<Frame>();
  const uint32_t want_crc = ReadU32(buf->data() + 4);
  const std::string_view payload(buf->data() + kFrameHeaderBytes, len);
  if (Crc32(payload) != want_crc) {
    return Status::Protocol("frame CRC mismatch");
  }
  Frame frame;
  frame.tag = static_cast<FrameTag>(static_cast<uint8_t>(payload[0]));
  frame.request_id = ReadU32(payload.data() + 1);
  frame.body.assign(payload.data() + kPayloadHeaderBytes,
                    len - kPayloadHeaderBytes);
  buf->erase(0, kFrameHeaderBytes + len);
  return std::optional<Frame>(std::move(frame));
}

uint8_t WireCodeOf(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kNotFound: return 2;
    case StatusCode::kAlreadyExists: return 3;
    case StatusCode::kNotSupported: return 4;
    case StatusCode::kOutOfRange: return 5;
    case StatusCode::kInternal: return 6;
    case StatusCode::kParseError: return 7;
    case StatusCode::kUnknownRelation: return 8;
    case StatusCode::kConstraintViolation: return 9;
    case StatusCode::kOverloaded: return 10;
    case StatusCode::kProtocol: return 11;
    case StatusCode::kUnavailable: return 12;
    case StatusCode::kDeadlineExceeded: return 13;
  }
  return 6;  // unreachable; decode as kInternal
}

StatusCode StatusCodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kAlreadyExists;
    case 4: return StatusCode::kNotSupported;
    case 5: return StatusCode::kOutOfRange;
    case 6: return StatusCode::kInternal;
    case 7: return StatusCode::kParseError;
    case 8: return StatusCode::kUnknownRelation;
    case 9: return StatusCode::kConstraintViolation;
    case 10: return StatusCode::kOverloaded;
    case 11: return StatusCode::kProtocol;
    case 12: return StatusCode::kUnavailable;
    case 13: return StatusCode::kDeadlineExceeded;
    default:
      // A newer peer's code this build does not know: keep the message,
      // degrade the class.
      return StatusCode::kInternal;
  }
}

bool IsRetryableStatus(StatusCode code) {
  // kUnavailable: the transport died — the request may never have reached
  // the server, and if it did, idempotency dedup makes the re-send safe.
  // kOverloaded: admission control shed the request before any execution.
  return code == StatusCode::kUnavailable || code == StatusCode::kOverloaded;
}

void EncodeHelloRequest(const HelloRequest& hello, std::string* out) {
  PutU32(out, hello.max_version);
  PutStr(out, hello.client_name);
}

Result<HelloRequest> DecodeHelloRequest(const std::string& body) {
  ByteReader r(body);
  HelloRequest hello;
  SVC_ASSIGN_OR_RETURN(hello.max_version, r.U32());
  SVC_ASSIGN_OR_RETURN(hello.client_name, r.Str());
  return hello;
}

void EncodeHelloReply(const HelloReply& hello, std::string* out) {
  PutU32(out, hello.version);
  PutStr(out, hello.server_name);
}

Result<HelloReply> DecodeHelloReply(const std::string& body) {
  ByteReader r(body);
  HelloReply hello;
  SVC_ASSIGN_OR_RETURN(hello.version, r.U32());
  SVC_ASSIGN_OR_RETURN(hello.server_name, r.Str());
  return hello;
}

void AppendRequestMeta(const RequestMeta& meta, std::string* out) {
  if (meta.empty()) return;
  PutU32(out, meta.deadline_ms);
  PutStr(out, meta.idem_token);
  PutU64(out, meta.idem_seq);
}

Result<RequestMeta> DecodeRequestMetaTail(ByteReader* r) {
  RequestMeta meta;
  if (r->AtEnd()) return meta;  // v1 body (or empty meta): defaults
  SVC_ASSIGN_OR_RETURN(meta.deadline_ms, r->U32());
  SVC_ASSIGN_OR_RETURN(meta.idem_token, r->Str());
  SVC_ASSIGN_OR_RETURN(meta.idem_seq, r->U64());
  return meta;
}

void EncodeErrorBody(const Status& status, std::string* out) {
  PutU8(out, WireCodeOf(status.code()));
  PutStr(out, status.message());
}

Status DecodeErrorBody(const std::string& body) {
  ByteReader r(body);
  const Result<uint8_t> wire = r.U8();
  if (!wire.ok()) return Status::Protocol("malformed Error body");
  Result<std::string> msg = r.Str();
  if (!msg.ok()) return Status::Protocol("malformed Error body");
  const StatusCode code = StatusCodeFromWire(*wire);
  if (code == StatusCode::kOk) {
    return Status::Protocol("Error frame carried an OK status");
  }
  return Status(code, std::move(*msg));
}

FrameTag EncodeSqlResultBody(const SqlResult& result, std::string* out) {
  PutStr(out, result.message);
  switch (result.kind) {
    case SqlResultKind::kOk:
      return FrameTag::kOk;
    case SqlResultKind::kRows:
      EncodeTable(result.rows, out);
      return FrameTag::kResultSet;
    case SqlResultKind::kEstimate:
      PutU8(out, result.mode_used == EstimatorMode::kAqp ? 0 : 1);
      EncodeTable(result.rows, out);
      // v2 trailing degraded flag. Encoded unconditionally: v1 decoders
      // stop after the table and never see it.
      PutU8(out, result.degraded ? 1 : 0);
      return FrameTag::kEstimate;
  }
  return FrameTag::kOk;  // unreachable
}

Result<SqlResult> DecodeSqlResultBody(FrameTag tag, const std::string& body) {
  ByteReader r(body);
  SqlResult result;
  SVC_ASSIGN_OR_RETURN(result.message, r.Str());
  switch (tag) {
    case FrameTag::kOk:
      result.kind = SqlResultKind::kOk;
      return result;
    case FrameTag::kResultSet: {
      result.kind = SqlResultKind::kRows;
      SVC_ASSIGN_OR_RETURN(result.rows, DecodeTable(&r));
      return result;
    }
    case FrameTag::kEstimate: {
      result.kind = SqlResultKind::kEstimate;
      SVC_ASSIGN_OR_RETURN(uint8_t mode, r.U8());
      result.mode_used = mode == 0 ? EstimatorMode::kAqp : EstimatorMode::kCorr;
      SVC_ASSIGN_OR_RETURN(result.rows, DecodeTable(&r));
      if (!r.AtEnd()) {  // v2 trailing degraded flag (absent from v1 peers)
        SVC_ASSIGN_OR_RETURN(uint8_t degraded, r.U8());
        result.degraded = degraded != 0;
      }
      return result;
    }
    default:
      return Status::Protocol("frame tag " +
                              std::to_string(static_cast<int>(tag)) +
                              " does not carry a SqlResult");
  }
}

void EncodeExecuteBody(uint64_t stmt_id, const std::vector<Value>& params,
                       std::string* out) {
  PutU64(out, stmt_id);
  PutU32(out, static_cast<uint32_t>(params.size()));
  for (const Value& v : params) EncodeValue(v, out);
}

Result<ExecuteRequest> DecodeExecuteBody(ByteReader* r) {
  ExecuteRequest req;
  SVC_ASSIGN_OR_RETURN(req.stmt_id, r->U64());
  SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  req.params.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    req.params.push_back(std::move(v));
  }
  return req;
}

Result<ExecuteRequest> DecodeExecuteBody(const std::string& body) {
  ByteReader r(body);
  return DecodeExecuteBody(&r);
}

void EncodePreparedBody(uint64_t stmt_id, uint32_t num_params,
                        std::string* out) {
  PutU64(out, stmt_id);
  PutU32(out, num_params);
}

Result<PreparedReply> DecodePreparedBody(const std::string& body) {
  ByteReader r(body);
  PreparedReply reply;
  SVC_ASSIGN_OR_RETURN(reply.stmt_id, r.U64());
  SVC_ASSIGN_OR_RETURN(reply.num_params, r.U32());
  return reply;
}

void EncodeStatsBody(const std::map<std::string, uint64_t>& stats,
                     std::string* out) {
  PutU32(out, static_cast<uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    PutStr(out, name);
    PutU64(out, value);
  }
}

Result<std::map<std::string, uint64_t>> DecodeStatsBody(
    const std::string& body) {
  ByteReader r(body);
  SVC_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  std::map<std::string, uint64_t> stats;
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string name, r.Str());
    SVC_ASSIGN_OR_RETURN(uint64_t value, r.U64());
    stats[std::move(name)] = value;
  }
  return stats;
}

}  // namespace svc
