#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/cancel.h"
#include "sql/params.h"
#include "sql/parser.h"
#include "storage/fault.h"
#include "storage/serde.h"

namespace svc {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Blocking send of the whole buffer (the fd is non-blocking, so wait on
/// EAGAIN with short polls). Returns false when the peer is gone, the
/// server is stopping, or no byte could be sent for `timeout_ms` — a peer
/// that stopped reading must not wedge the calling thread forever.
bool SendAll(int fd, const char* data, size_t len,
             const std::atomic<bool>& stopping, int timeout_ms) {
  size_t sent = 0;
  int stalled_ms = 0;
  while (sent < len) {
    if (stopping.load()) return false;
    const ssize_t n = send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      stalled_ms = 0;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stalled_ms >= timeout_ms) return false;
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int step = std::min(200, timeout_ms - stalled_ms);
      (void)poll(&pfd, 1, step);
      stalled_ms += step;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// A degraded admission may only run statements that *have* a cheaper
/// correct mode: WITH SVC selects, which degrade to a reduced sampling
/// ratio (same estimator, wider CI). Everything else is shed exactly as if
/// admission had rejected it — a degraded answer must never be a
/// wrong-mode answer.
Status CheckDegradable(bool degraded, const Statement& stmt) {
  if (!degraded ||
      (stmt.kind == Statement::Kind::kSelect && stmt.svc.present)) {
    return Status::OK();
  }
  return Status::Overloaded(
      "server is shedding load: only WITH SVC queries are admitted in "
      "degraded mode; retry later");
}

}  // namespace

SvcServer::SvcServer(ServerOptions opts, std::shared_ptr<SharedEngine> engine)
    : opts_(std::move(opts)), shared_(std::move(engine)) {}

SvcServer::SvcServer(ServerOptions opts, std::shared_ptr<DurableEngine> durable)
    : opts_(std::move(opts)),
      shared_(durable->shared()),
      durable_(std::move(durable)) {}

SvcServer::SvcServer(ServerOptions opts, std::shared_ptr<ShardedEngine> sharded)
    : opts_(std::move(opts)), sharded_(std::move(sharded)) {}

SvcServer::~SvcServer() { Stop(); }

EngineHandle SvcServer::MakeHandle() const {
  if (sharded_ != nullptr) return EngineHandle::Sharded(sharded_);
  return durable_ != nullptr ? EngineHandle::Durable(durable_)
                             : EngineHandle::Shared(shared_);
}

Status SvcServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + opts_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return Errno("bind " + opts_.host + ":" + std::to_string(opts_.port));
  }
  if (listen(listen_fd_, 128) < 0) return Errno("listen");
  SVC_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (pipe(wake_pipe_) < 0) return Errno("pipe");
  SVC_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[0]));
  SVC_RETURN_IF_ERROR(SetNonBlocking(wake_pipe_[1]));

  // Seed the idempotency journal with what the durable engine recovered: a
  // client retrying a write across a server crash must be told "already
  // applied", not commit it twice. Recovered entries carry no cached
  // response frame (it died with the old process).
  if (durable_ != nullptr) {
    std::lock_guard<std::mutex> lock(idem_mu_);
    for (const auto& [token, seq] : durable_->IdemMarks()) {
      IdemEntry& e = idem_journal_[token];
      e.seq = std::max(e.seq, seq);
    }
  }

  started_ = true;
  stopping_.store(false);
  io_thread_ = std::thread([this] { IoLoop(); });
  const int n_workers = opts_.workers < 1 ? 1 : opts_.workers;
  worker_threads_.reserve(n_workers);
  for (int i = 0; i < n_workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void SvcServer::Stop() {
  if (!started_) return;
  stopping_.store(true);
  WakeIo();
  work_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  for (std::thread& t : worker_threads_) {
    work_cv_.notify_all();
    if (t.joinable()) t.join();
  }
  worker_threads_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [fd, conn] : conns_) close(conn->fd);
    conns_.clear();
    ready_.clear();
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  started_ = false;
}

void SvcServer::WakeIo() {
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    ssize_t ignored = write(wake_pipe_[1], &b, 1);
    (void)ignored;
  }
}

ServerStats SvcServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, uint64_t> SvcServer::StatsMap() const {
  const ServerStats s = stats();
  return {
      {"connections_accepted", s.connections_accepted},
      {"requests", s.requests},
      {"statements_parsed", s.statements_parsed},
      {"prepared_executes", s.prepared_executes},
      {"overload_rejections", s.overload_rejections},
      {"protocol_errors", s.protocol_errors},
      {"degraded_admissions", s.degraded_admissions},
      {"idem_replays", s.idem_replays},
      {"deadline_exceeded", s.deadline_exceeded},
      {"net_faults_injected", s.net_faults_injected},
  };
}

Frame SvcServer::ErrorFrame(uint32_t request_id, const Status& status) const {
  Frame frame;
  frame.tag = FrameTag::kError;
  frame.request_id = request_id;
  EncodeErrorBody(status, &frame.body);
  return frame;
}

void SvcServer::WriteFrame(Conn* conn, const Frame& frame) {
  std::string wire;
  EncodeFrame(frame, &wire);
  const size_t payload_bytes = wire.size() - kFrameHeaderBytes;
  if (payload_bytes > opts_.max_frame_bytes) {
    // The peer would reject this as an unrecoverable oversized frame and
    // drop the connection with a misleading framing error; answer with a
    // decodable error instead.
    wire.clear();
    EncodeFrame(
        ErrorFrame(frame.request_id,
                   Status::OutOfRange(
                       "result frame of " + std::to_string(payload_bytes) +
                       " bytes exceeds the " +
                       std::to_string(opts_.max_frame_bytes) +
                       "-byte frame limit; narrow the query")),
        &wire);
  }
  // Deterministic network damage (SVC_NET_FAULT, storage/fault.h): each
  // site mangles exactly one response the way a real network or peer
  // failure would — the server itself keeps serving, and a retrying client
  // must converge to the same transcript as a fault-free run.
  FaultInjector& net = FaultInjector::Net();
  if (net.armed()) {
    const auto hit = [&](const char* site) {
      if (!net.ShouldTrigger(site)) return false;
      // One line per injected fault so harnesses (scripts/check.sh
      // --chaos) can assert the damage actually happened.
      std::fprintf(stderr, "[net-fault] injected %s (request %u)\n", site,
                   frame.request_id);
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.net_faults_injected;
      return true;
    };
    const auto abandon = [&](size_t prefix_bytes) {
      if (prefix_bytes > 0) {
        std::lock_guard<std::mutex> lock(conn->write_mu);
        SendAll(conn->fd, wire.data(), std::min(prefix_bytes, wire.size()),
                stopping_, opts_.send_timeout_ms);
      }
      shutdown(conn->fd, SHUT_RDWR);
      std::lock_guard<std::mutex> lock(mu_);
      conn->closing = true;
    };
    if (hit("conn.stall")) {
      // Swallow the response but keep the connection open: the client sees
      // dead air and must bound its recv instead of hanging forever.
      return;
    }
    if (hit("conn.drop_response")) {
      // Close without answering: the client sees EOF mid-request.
      abandon(0);
      return;
    }
    if (hit("conn.close_mid_frame")) {
      // Half the frame, then close: the client's framer holds a torn
      // prefix it must discard when it reconnects.
      abandon(wire.size() / 2);
      return;
    }
    if (hit("send.short_write")) {
      // Tear inside the 8-byte frame header — the worst possible spot.
      abandon(3);
      return;
    }
  }

  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    sent = SendAll(conn->fd, wire.data(), wire.size(), stopping_,
                   opts_.send_timeout_ms);
  }
  if (!sent) {
    // Peer gone (or unresponsive past the timeout): stop reading from it
    // and let the IO thread reap the connection once it drains.
    std::lock_guard<std::mutex> lock(mu_);
    conn->closing = true;
  }
}

void SvcServer::IoLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<ConnPtr> polled;
  while (!stopping_.load()) {
    pfds.clear();
    polled.clear();
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [fd, conn] : conns_) {
        if (conn->closing) continue;
        pfds.push_back({fd, POLLIN, 0});
        polled.push_back(conn);
      }
    }
    if (poll(pfds.data(), pfds.size(), 200) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      while (true) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!SetNonBlocking(fd).ok()) {
          close(fd);
          continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->session = std::make_unique<SqlSession>(MakeHandle());
        std::lock_guard<std::mutex> lock(mu_);
        conns_[fd] = std::move(conn);
        ++stats_.connections_accepted;
      }
    }
    for (size_t i = 2; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        DrainReadable(polled[i - 2]);
      }
    }
    // Reap connections that are closing and fully drained.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& c = *it->second;
      if (c.closing && !c.busy && c.pending.empty()) {
        close(c.fd);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void SvcServer::DrainReadable(const ConnPtr& conn) {
  char buf[65536];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    peer_closed = true;  // orderly shutdown or hard error
    break;
  }
  while (true) {
    auto decoded = TryDecodeFrame(&conn->inbuf, opts_.max_frame_bytes);
    if (!decoded.ok()) {
      // Framing is unrecoverable: report once, stop reading, close after
      // in-flight work drains. Queued-but-unstarted requests are dropped —
      // their responses could not be trusted to be complete either.
      WriteFrame(conn.get(), ErrorFrame(0, decoded.status()));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.protocol_errors;
      inflight_ -= static_cast<uint32_t>(conn->pending.size());
      conn->pending.clear();
      conn->closing = true;
      // If the conn is still queued (no worker claimed it yet), dequeue it
      // too: a worker popping it now would find the emptied pending deque.
      // When a worker *does* hold it, it is not in ready_ — the worker owns
      // its request's in-flight slot and clears busy when it finishes.
      auto queued = std::find(ready_.begin(), ready_.end(), conn);
      if (queued != ready_.end()) {
        ready_.erase(queued);
        conn->busy = false;
      }
      return;
    }
    if (!decoded->has_value()) break;
    Frame frame = std::move(**decoded);
    bool overloaded = false;
    // Past max_inflight, --degrade admits a further window of requests in
    // degraded mode (WITH SVC queries only, at a reduced sampling ratio)
    // instead of shedding them outright.
    const uint32_t hard_cap =
        !opts_.degrade ? opts_.max_inflight
        : opts_.degrade_max_inflight != 0 ? opts_.degrade_max_inflight
                                          : 4 * opts_.max_inflight;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const bool degraded =
          inflight_ >= opts_.max_inflight && inflight_ < hard_cap;
      if (inflight_ >= hard_cap) {
        ++stats_.overload_rejections;
        overloaded = true;
      } else {
        if (degraded) ++stats_.degraded_admissions;
        ++inflight_;
        ++stats_.requests;
        conn->pending.push_back(PendingReq{std::move(frame), degraded,
                                           std::chrono::steady_clock::now()});
        if (!conn->busy) {
          conn->busy = true;
          ready_.push_back(conn);
          work_cv_.notify_one();
        }
      }
    }
    if (overloaded) {
      WriteFrame(conn.get(),
                 ErrorFrame(frame.request_id,
                            Status::Overloaded(
                                "server at max in-flight requests (" +
                                std::to_string(hard_cap) +
                                "); retry later")));
    }
  }
  if (peer_closed) {
    std::lock_guard<std::mutex> lock(mu_);
    conn->closing = true;
  }
}

void SvcServer::WorkerLoop() {
  while (true) {
    ConnPtr conn;
    PendingReq request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stopping_.load() || !ready_.empty(); });
      if (stopping_.load()) return;
      conn = std::move(ready_.front());
      ready_.pop_front();
      // Defensive: never pop an empty queue. A protocol error clears
      // pending (and dequeues the conn, so this should be unreachable).
      if (conn->pending.empty()) {
        conn->busy = false;
        continue;
      }
      request = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    Frame response = HandleRequest(conn.get(), request);
    // Crash-fault site: the request's effects (WAL append included) are
    // fully committed, but the response never leaves the process — the
    // classic "did my write land?" window a retrying client must resolve
    // via its idempotency token after the server restarts.
    FaultInjector::Global().MaybeCrash("server.pre_response");
    // Release the in-flight slot BEFORE the response hits the wire: a
    // client that pipelines its next request the instant it reads this
    // reply must find the slot free, not race the decrement and get a
    // spurious Overloaded.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    WriteFrame(conn.get(), response);
    // Schedule this connection's next pending request (per-connection
    // serial execution preserves response order for pipelined clients —
    // `busy` stays set until after our write above).
    bool poke_io = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!conn->pending.empty() && !stopping_.load()) {
        ready_.push_back(conn);
        work_cv_.notify_one();
      } else {
        conn->busy = false;
        if (conn->closing) poke_io = true;
      }
    }
    if (poke_io) WakeIo();  // let the IO thread reap it
  }
}

Frame SvcServer::HandleRequest(Conn* conn, const PendingReq& pending) {
  const Frame& request = pending.frame;
  const uint32_t id = request.request_id;
  auto fail = [&](const Status& status) { return ErrorFrame(id, status); };
  auto count = [&](uint64_t ServerStats::* field) {
    std::lock_guard<std::mutex> lock(mu_);
    ++(stats_.*field);
  };

  if (!conn->hello_done && request.tag != FrameTag::kHello) {
    count(&ServerStats::protocol_errors);
    return fail(Status::Protocol("expected a Hello frame first"));
  }
  switch (request.tag) {
    case FrameTag::kHello: {
      auto hello = DecodeHelloRequest(request.body);
      if (!hello.ok()) return fail(hello.status());
      if (hello->max_version < kProtocolVersionMin) {
        count(&ServerStats::protocol_errors);
        return fail(Status::Protocol(
            "no common protocol version (client <= " +
            std::to_string(hello->max_version) + ", server >= " +
            std::to_string(kProtocolVersionMin) + ")"));
      }
      conn->negotiated_version =
          std::min(hello->max_version, kProtocolVersionMax);
      conn->hello_done = true;
      Frame reply;
      reply.tag = FrameTag::kHelloOk;
      reply.request_id = id;
      HelloReply body;
      body.version = static_cast<uint32_t>(conn->negotiated_version);
      body.server_name = opts_.server_name;
      EncodeHelloReply(body, &reply.body);
      return reply;
    }
    case FrameTag::kQuery: {
      ByteReader r(request.body);
      auto sql = r.Str();
      if (!sql.ok()) return fail(sql.status());
      auto meta = DecodeRequestMetaTail(&r);
      if (!meta.ok()) return fail(meta.status());
      return ExecuteWithMeta(conn, pending, *meta, [&]() -> Result<SqlResult> {
        count(&ServerStats::statements_parsed);
        auto stmt = ParseStatement(*sql);
        if (!stmt.ok()) return stmt.status();
        if (stmt->num_params > 0) {
          return Status::InvalidArgument(
              "query has ? placeholders; use Prepare/Execute");
        }
        SVC_RETURN_IF_ERROR(CheckDegradable(pending.degraded, *stmt));
        return conn->session->Execute(*stmt);
      });
    }
    case FrameTag::kPrepare: {
      ByteReader r(request.body);
      auto sql = r.Str();
      if (!sql.ok()) return fail(sql.status());
      count(&ServerStats::statements_parsed);
      auto stmt = ParseStatement(*sql);
      if (!stmt.ok()) return fail(stmt.status());
      const uint64_t stmt_id = conn->next_stmt_id++;
      const uint32_t num_params = stmt->num_params;
      conn->prepared.emplace(stmt_id, std::move(*stmt));
      Frame reply;
      reply.tag = FrameTag::kPrepared;
      reply.request_id = id;
      EncodePreparedBody(stmt_id, num_params, &reply.body);
      return reply;
    }
    case FrameTag::kExecute: {
      ByteReader r(request.body);
      auto req = DecodeExecuteBody(&r);
      if (!req.ok()) return fail(req.status());
      auto meta = DecodeRequestMetaTail(&r);
      if (!meta.ok()) return fail(meta.status());
      return ExecuteWithMeta(conn, pending, *meta, [&]() -> Result<SqlResult> {
        auto it = conn->prepared.find(req->stmt_id);
        if (it == conn->prepared.end()) {
          return Status::NotFound("no prepared statement #" +
                                  std::to_string(req->stmt_id));
        }
        auto bound = BindStatementParams(it->second, req->params);
        if (!bound.ok()) return bound.status();
        SVC_RETURN_IF_ERROR(CheckDegradable(pending.degraded, *bound));
        count(&ServerStats::prepared_executes);
        return conn->session->Execute(*bound);
      });
    }
    case FrameTag::kClose: {
      ByteReader r(request.body);
      auto stmt_id = r.U64();
      if (!stmt_id.ok()) return fail(stmt_id.status());
      Frame reply;
      reply.tag = FrameTag::kOk;
      reply.request_id = id;
      if (*stmt_id == 0) {
        std::lock_guard<std::mutex> lock(mu_);
        conn->closing = true;
        PutStr(&reply.body, "goodbye");
        return reply;
      }
      if (conn->prepared.erase(*stmt_id) == 0) {
        return fail(Status::NotFound("no prepared statement #" +
                                     std::to_string(*stmt_id)));
      }
      PutStr(&reply.body, "statement closed");
      return reply;
    }
    case FrameTag::kStatsReq: {
      Frame reply;
      reply.tag = FrameTag::kStats;
      reply.request_id = id;
      EncodeStatsBody(StatsMap(), &reply.body);
      return reply;
    }
    default:
      count(&ServerStats::protocol_errors);
      return fail(Status::Protocol(
          "unknown frame tag " +
          std::to_string(static_cast<int>(request.tag))));
  }
}

Frame SvcServer::ExecuteWithMeta(Conn* conn, const PendingReq& request,
                                 const RequestMeta& meta,
                                 const std::function<Result<SqlResult>()>& run) {
  const uint32_t id = request.frame.request_id;
  auto count = [&](uint64_t ServerStats::* field) {
    std::lock_guard<std::mutex> lock(mu_);
    ++(stats_.*field);
  };

  // Fault site: stretch this request's execution so a deterministic test
  // can make a small deadline expire without real load.
  FaultInjector& net = FaultInjector::Net();
  if (net.armed() && net.ShouldTrigger("exec.delay")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Idempotency dedup: a retried (token, seq) replays the recorded
  // response byte-for-byte instead of re-executing — the write behind it
  // committed exactly once, and even a retried *read* answers identically
  // (no second execution, no counter bumps), so a client transcript is
  // bit-identical whether or not the network misbehaved.
  if (!meta.idem_token.empty()) {
    std::lock_guard<std::mutex> lock(idem_mu_);
    auto it = idem_journal_.find(meta.idem_token);
    if (it != idem_journal_.end() && meta.idem_seq <= it->second.seq) {
      count(&ServerStats::idem_replays);
      if (it->second.has_frame && meta.idem_seq == it->second.seq) {
        Frame replay;
        replay.tag = it->second.tag;
        replay.request_id = id;
        replay.body = it->second.body;
        return replay;
      }
      // The mark survived (WAL / idem sidecar) but its response frame died
      // with the previous process: the effect is durably applied, so
      // acknowledge without re-executing.
      Frame reply;
      reply.tag = FrameTag::kOk;
      reply.request_id = id;
      PutStr(&reply.body, "already applied (idempotent replay)");
      return reply;
    }
  }

  // Deadline: queue wait counts against it (the client's clock started at
  // send). Expired before execution → fail immediately; otherwise thread
  // the remaining budget through the session as a cancellation token the
  // executor polls between chunks.
  CancelToken token;
  if (meta.deadline_ms != 0) {
    const auto waited = std::chrono::steady_clock::now() - request.admitted;
    const uint64_t waited_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(waited).count());
    if (waited_ms >= meta.deadline_ms) {
      count(&ServerStats::deadline_exceeded);
      return ErrorFrame(
          id, Status::DeadlineExceeded(
                  "deadline of " + std::to_string(meta.deadline_ms) +
                  " ms expired after " + std::to_string(waited_ms) +
                  " ms in the admission queue"));
    }
    token = CancelToken::After(meta.deadline_ms - waited_ms);
    conn->session->set_cancel_token(&token);
  }
  if (request.degraded) {
    conn->session->set_degrade_ratio_scale(opts_.degrade_ratio_scale);
  }
  if (!meta.idem_token.empty()) {
    conn->session->set_idempotency(meta.idem_token, meta.idem_seq);
  }

  Result<SqlResult> result = run();

  conn->session->set_cancel_token(nullptr);
  conn->session->set_degrade_ratio_scale(1.0);
  conn->session->set_idempotency("", 0);

  Frame reply;
  reply.request_id = id;
  if (result.ok()) {
    reply.tag = EncodeSqlResultBody(*result, &reply.body);
  } else {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      count(&ServerStats::deadline_exceeded);
    }
    reply = ErrorFrame(id, result.status());
  }

  // Journal the response under the client's token — unless it failed with
  // a *retryable* error (e.g. Overloaded from degraded-mode shedding): the
  // client will re-send the same (token, seq) and genuinely wants a fresh
  // execution then, not a replay of the rejection.
  if (!meta.idem_token.empty() &&
      (result.ok() || !IsRetryableStatus(result.status().code()))) {
    std::lock_guard<std::mutex> lock(idem_mu_);
    IdemEntry& e = idem_journal_[meta.idem_token];
    e.seq = meta.idem_seq;
    e.has_frame = true;
    e.tag = reply.tag;
    e.body = reply.body;
  }
  return reply;
}

}  // namespace svc
