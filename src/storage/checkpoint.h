#ifndef SVC_STORAGE_CHECKPOINT_H_
#define SVC_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/svc.h"

namespace svc {

/// A decoded checkpoint: the engine state published at `epoch`.
struct EngineState {
  uint64_t epoch = 0;
  SvcEngine engine;

  explicit EngineState(SvcEngine e) : engine(std::move(e)) {}
};

/// Serializes one immutable engine snapshot: base tables (bit-exact rows,
/// primary keys), views (definition plan + sampling key + the *stored*
/// table — persisted verbatim rather than re-materialized at recovery,
/// because incrementally-maintained double aggregates are not bitwise
/// reproducible by recomputation), and the pending delta queue. The
/// cleaned-sample cache is deliberately not persisted: it is a cache,
/// rebuilt cold, and answers are bit-identical with it cold or warm.
Status EncodeEngineState(const SvcEngine& engine, uint64_t epoch,
                         std::string* out);
Result<EngineState> DecodeEngineState(std::string_view bytes);

/// File names inside a data directory: "checkpoint-<epoch>.ckpt" paired
/// with "wal-<epoch>.log" holding the records for epochs > <epoch>.
std::string CheckpointFileName(uint64_t epoch);
std::string WalFileName(uint64_t epoch);

/// Writes `state_bytes` as `dir`/checkpoint-<epoch>.ckpt using the
/// standard atomic dance: write to a temp file, fsync it, rename into
/// place, fsync the directory. A crash at any point (fault sites
/// "ckpt.tear", "ckpt.pre_rename", "ckpt.post_rename") leaves either the
/// old checkpoint set or the new file fully in place — never a
/// half-written checkpoint under the real name.
Status WriteCheckpointFile(const std::string& dir, uint64_t epoch,
                           const std::string& state_bytes);

/// Reads and CRC-validates `dir`/checkpoint-<epoch>.ckpt.
Result<std::string> ReadCheckpointFile(const std::string& dir, uint64_t epoch);

/// Epochs of every checkpoint file present in `dir`, descending (newest
/// first).
std::vector<uint64_t> ListCheckpointEpochs(const std::string& dir);

/// Deletes checkpoint/WAL files whose base epoch is older than `keep`
/// (after a successful checkpoint or recovery, earlier files are fully
/// superseded). Also removes a leftover checkpoint temp file.
void RemoveStaleDurableFiles(const std::string& dir, uint64_t keep);

}  // namespace svc

#endif  // SVC_STORAGE_CHECKPOINT_H_
