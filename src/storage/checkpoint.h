#ifndef SVC_STORAGE_CHECKPOINT_H_
#define SVC_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/svc.h"

namespace svc {

/// A decoded checkpoint: the engine state published at `epoch`.
struct EngineState {
  uint64_t epoch = 0;
  SvcEngine engine;

  explicit EngineState(SvcEngine e) : engine(std::move(e)) {}
};

/// Memo of per-table checkpoint encodings keyed by the table's shared_ptr
/// identity. The engine's tables are copy-on-write: a commit that never
/// touched a table republishes the *same* Table object, so its checkpoint
/// bytes — a pure function of the table contents — are reusable verbatim.
/// DurableEngine keeps one cache across checkpoints, making each
/// checkpoint's encoding cost proportional to what actually changed since
/// the previous one. The counters feed DurabilityStats (and the
/// incremental-checkpoint tests).
struct TableEncodeCache {
  struct Entry {
    std::shared_ptr<const Table> table;  ///< identity the bytes were built for
    std::string bytes;
  };
  std::map<std::string, Entry> entries;
  uint64_t tables_encoded = 0;  ///< tables serialized from scratch (this pass)
  uint64_t tables_reused = 0;   ///< tables appended from the cache (this pass)
};

/// Serializes one immutable engine snapshot: base tables (bit-exact rows,
/// primary keys), views (definition plan + sampling key + the *stored*
/// table — persisted verbatim rather than re-materialized at recovery,
/// because incrementally-maintained double aggregates are not bitwise
/// reproducible by recomputation), the pending delta queue, and the
/// maintenance policy. The cleaned-sample cache is deliberately not
/// persisted: it is a cache, rebuilt cold, and answers are bit-identical
/// with it cold or warm.
///
/// `cache`, when non-null, skips re-serializing tables whose shared_ptr
/// identity is unchanged since the cached entry was built (resetting the
/// pass counters and evicting entries for tables that no longer exist).
/// The output bytes are identical with or without the cache.
Status EncodeEngineState(const SvcEngine& engine, uint64_t epoch,
                         std::string* out, TableEncodeCache* cache = nullptr);
Result<EngineState> DecodeEngineState(std::string_view bytes);

/// File names inside a data directory: "checkpoint-<epoch>.ckpt" paired
/// with "wal-<epoch>.log" holding the records for epochs > <epoch>.
std::string CheckpointFileName(uint64_t epoch);
std::string WalFileName(uint64_t epoch);

/// Writes `state_bytes` as `dir`/checkpoint-<epoch>.ckpt using the
/// standard atomic dance: write to a temp file, fsync it, rename into
/// place, fsync the directory. A crash at any point (fault sites
/// "ckpt.tear", "ckpt.pre_rename", "ckpt.post_rename") leaves either the
/// old checkpoint set or the new file fully in place — never a
/// half-written checkpoint under the real name.
Status WriteCheckpointFile(const std::string& dir, uint64_t epoch,
                           const std::string& state_bytes);

/// Reads and CRC-validates `dir`/checkpoint-<epoch>.ckpt.
Result<std::string> ReadCheckpointFile(const std::string& dir, uint64_t epoch);

/// Epochs of every checkpoint file present in `dir`, descending (newest
/// first).
std::vector<uint64_t> ListCheckpointEpochs(const std::string& dir);

/// Deletes checkpoint/WAL files whose base epoch is older than `keep`
/// (after a successful checkpoint or recovery, earlier files are fully
/// superseded). Also removes leftover temp files.
void RemoveStaleDurableFiles(const std::string& dir, uint64_t keep);

/// The idempotency sidecar ("idem.bin"): the latest (token -> seq)
/// idempotency mark per client token, persisted at checkpoint time so WAL
/// rotation never forgets a mark a retrying client may still re-send.
/// Written with the same atomic temp + rename + dir-fsync dance as
/// checkpoints; ReadIdemFile returns an empty map when the file is absent
/// (a directory from before idempotency existed).
std::string IdemFileName();
Status WriteIdemFile(const std::string& dir,
                     const std::map<std::string, uint64_t>& marks);
Result<std::map<std::string, uint64_t>> ReadIdemFile(const std::string& dir);

}  // namespace svc

#endif  // SVC_STORAGE_CHECKPOINT_H_
