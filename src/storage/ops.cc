#include "storage/ops.h"

namespace svc {

DurableOp DurableOp::CreateTableOp(std::string name, const Table& table) {
  DurableOp op;
  op.kind = Kind::kCreateTable;
  op.target = std::move(name);
  op.table = table;
  return op;
}

DurableOp DurableOp::CreateViewOp(std::string name, PlanPtr definition,
                                  std::vector<std::string> sampling_key) {
  DurableOp op;
  op.kind = Kind::kCreateView;
  op.target = std::move(name);
  op.view_def = std::move(definition);
  op.sampling_key = std::move(sampling_key);
  return op;
}

DurableOp DurableOp::InsertOp(std::string relation, std::vector<Row> rows) {
  DurableOp op;
  op.kind = Kind::kInsert;
  op.target = std::move(relation);
  op.rows = std::move(rows);
  return op;
}

DurableOp DurableOp::DeleteOp(std::string relation, std::vector<Row> rows) {
  DurableOp op;
  op.kind = Kind::kDelete;
  op.target = std::move(relation);
  op.rows = std::move(rows);
  return op;
}

DurableOp DurableOp::IngestOp(const DeltaSet& deltas) {
  DurableOp op;
  op.kind = Kind::kIngest;
  for (const std::string& rel : deltas.TouchedRelations()) {
    if (deltas.InsertRows(rel) > 0) {
      std::vector<Row> rows;
      rows.reserve(deltas.InsertRows(rel));
      deltas.ForEachInsert(rel, [&](const Row& r) { rows.push_back(r); });
      op.ingest_inserts.emplace_back(rel, std::move(rows));
    }
    if (deltas.DeleteRows(rel) > 0) {
      std::vector<Row> rows;
      rows.reserve(deltas.DeleteRows(rel));
      deltas.ForEachDelete(rel, [&](const Row& r) { rows.push_back(r); });
      op.ingest_deletes.emplace_back(rel, std::move(rows));
    }
  }
  return op;
}

DurableOp DurableOp::RefreshOp() {
  DurableOp op;
  op.kind = Kind::kRefresh;
  return op;
}

DurableOp DurableOp::SetPolicyOp(const MaintenancePolicyConfig& cfg) {
  DurableOp op;
  op.kind = Kind::kSetPolicy;
  op.policy = cfg;
  return op;
}

void EncodeMaintenancePolicy(const MaintenancePolicyConfig& cfg,
                             std::string* out) {
  PutU8(out, static_cast<uint8_t>(cfg.mode));
  PutF64(out, cfg.budget);
  PutU64(out, cfg.sla_ms);
  PutU64(out, cfg.tick_ms);
  PutF64(out, cfg.ratio);
  // Per-view overrides: a count, then (view, presence-bitmapped fields).
  // Always encoded — unlike the wire protocol, these bytes live inside
  // concatenated WAL records, so "trailing optional" would be ambiguous.
  PutU32(out, static_cast<uint32_t>(cfg.overrides.size()));
  for (const auto& [view, ov] : cfg.overrides) {
    PutStr(out, view);
    uint8_t bits = 0;
    if (ov.budget) bits |= 1;
    if (ov.sla_ms) bits |= 2;
    if (ov.ratio) bits |= 4;
    PutU8(out, bits);
    if (ov.budget) PutF64(out, *ov.budget);
    if (ov.sla_ms) PutU64(out, *ov.sla_ms);
    if (ov.ratio) PutF64(out, *ov.ratio);
  }
}

Result<MaintenancePolicyConfig> DecodeMaintenancePolicy(ByteReader* r) {
  MaintenancePolicyConfig cfg;
  SVC_ASSIGN_OR_RETURN(uint8_t mode, r->U8());
  if (mode > static_cast<uint8_t>(MaintenancePolicyConfig::Mode::kAuto)) {
    return Status::InvalidArgument("bad maintenance mode tag " +
                                   std::to_string(mode));
  }
  cfg.mode = static_cast<MaintenancePolicyConfig::Mode>(mode);
  SVC_ASSIGN_OR_RETURN(cfg.budget, r->F64());
  SVC_ASSIGN_OR_RETURN(cfg.sla_ms, r->U64());
  SVC_ASSIGN_OR_RETURN(cfg.tick_ms, r->U64());
  SVC_ASSIGN_OR_RETURN(cfg.ratio, r->F64());
  SVC_ASSIGN_OR_RETURN(uint32_t n_overrides, r->U32());
  for (uint32_t i = 0; i < n_overrides; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string view, r->Str());
    SVC_ASSIGN_OR_RETURN(uint8_t bits, r->U8());
    if (bits & ~uint8_t{7}) {
      return Status::InvalidArgument("bad policy override bitmap " +
                                     std::to_string(bits));
    }
    ViewPolicyOverride ov;
    if (bits & 1) {
      SVC_ASSIGN_OR_RETURN(double v, r->F64());
      ov.budget = v;
    }
    if (bits & 2) {
      SVC_ASSIGN_OR_RETURN(uint64_t v, r->U64());
      ov.sla_ms = v;
    }
    if (bits & 4) {
      SVC_ASSIGN_OR_RETURN(double v, r->F64());
      ov.ratio = v;
    }
    cfg.overrides[std::move(view)] = ov;
  }
  return cfg;
}

namespace {

void EncodeRowBatch(const std::vector<Row>& rows, std::string* out) {
  PutU64(out, rows.size());
  for (const Row& r : rows) EncodeRow(r, out);
}

Result<std::vector<Row>> DecodeRowBatch(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint64_t n, r->U64());
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

using RelBatches = std::vector<std::pair<std::string, std::vector<Row>>>;

void EncodeRelBatches(const RelBatches& batches, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batches.size()));
  for (const auto& [rel, rows] : batches) {
    PutStr(out, rel);
    EncodeRowBatch(rows, out);
  }
}

Result<RelBatches> DecodeRelBatches(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  RelBatches batches;
  batches.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string rel, r->Str());
    SVC_ASSIGN_OR_RETURN(std::vector<Row> rows, DecodeRowBatch(r));
    batches.emplace_back(std::move(rel), std::move(rows));
  }
  return batches;
}

}  // namespace

Status EncodeDurableOp(const DurableOp& op, std::string* out) {
  PutU8(out, static_cast<uint8_t>(op.kind));
  switch (op.kind) {
    case DurableOp::Kind::kCreateTable:
      PutStr(out, op.target);
      EncodeTable(op.table, out);
      return Status::OK();
    case DurableOp::Kind::kCreateView:
      PutStr(out, op.target);
      SVC_RETURN_IF_ERROR(EncodePlan(*op.view_def, out));
      PutU32(out, static_cast<uint32_t>(op.sampling_key.size()));
      for (const std::string& k : op.sampling_key) PutStr(out, k);
      return Status::OK();
    case DurableOp::Kind::kInsert:
    case DurableOp::Kind::kDelete:
      PutStr(out, op.target);
      EncodeRowBatch(op.rows, out);
      return Status::OK();
    case DurableOp::Kind::kIngest:
      EncodeRelBatches(op.ingest_inserts, out);
      EncodeRelBatches(op.ingest_deletes, out);
      return Status::OK();
    case DurableOp::Kind::kRefresh:
      return Status::OK();
    case DurableOp::Kind::kSetPolicy:
      EncodeMaintenancePolicy(op.policy, out);
      return Status::OK();
  }
  return Status::Internal("unhandled durable op kind");
}

Result<DurableOp> DecodeDurableOp(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  DurableOp op;
  switch (static_cast<DurableOp::Kind>(tag)) {
    case DurableOp::Kind::kCreateTable: {
      op.kind = DurableOp::Kind::kCreateTable;
      SVC_ASSIGN_OR_RETURN(op.target, r->Str());
      SVC_ASSIGN_OR_RETURN(op.table, DecodeTable(r));
      return op;
    }
    case DurableOp::Kind::kCreateView: {
      op.kind = DurableOp::Kind::kCreateView;
      SVC_ASSIGN_OR_RETURN(op.target, r->Str());
      SVC_ASSIGN_OR_RETURN(op.view_def, DecodePlan(r));
      SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      op.sampling_key.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SVC_ASSIGN_OR_RETURN(std::string k, r->Str());
        op.sampling_key.push_back(std::move(k));
      }
      return op;
    }
    case DurableOp::Kind::kInsert:
    case DurableOp::Kind::kDelete: {
      op.kind = static_cast<DurableOp::Kind>(tag);
      SVC_ASSIGN_OR_RETURN(op.target, r->Str());
      SVC_ASSIGN_OR_RETURN(op.rows, DecodeRowBatch(r));
      return op;
    }
    case DurableOp::Kind::kIngest: {
      op.kind = DurableOp::Kind::kIngest;
      SVC_ASSIGN_OR_RETURN(op.ingest_inserts, DecodeRelBatches(r));
      SVC_ASSIGN_OR_RETURN(op.ingest_deletes, DecodeRelBatches(r));
      return op;
    }
    case DurableOp::Kind::kRefresh:
      op.kind = DurableOp::Kind::kRefresh;
      return op;
    case DurableOp::Kind::kSetPolicy: {
      op.kind = DurableOp::Kind::kSetPolicy;
      SVC_ASSIGN_OR_RETURN(op.policy, DecodeMaintenancePolicy(r));
      return op;
    }
  }
  return Status::InvalidArgument("bad durable op tag " + std::to_string(tag));
}

Status ApplyDurableOp(const DurableOp& op, SvcEngine* engine) {
  switch (op.kind) {
    case DurableOp::Kind::kCreateTable:
      return engine->db()->CreateTable(op.target, op.table);
    case DurableOp::Kind::kCreateView:
      return engine->CreateView(op.target, op.view_def->Clone(),
                                op.sampling_key);
    case DurableOp::Kind::kInsert:
      for (const Row& row : op.rows) {
        SVC_RETURN_IF_ERROR(engine->InsertRecord(op.target, row));
      }
      return Status::OK();
    case DurableOp::Kind::kDelete:
      for (const Row& row : op.rows) {
        SVC_RETURN_IF_ERROR(engine->DeleteRecord(op.target, row));
      }
      return Status::OK();
    case DurableOp::Kind::kIngest: {
      DeltaSet batch;
      for (const auto& [rel, rows] : op.ingest_inserts) {
        for (const Row& row : rows) {
          SVC_RETURN_IF_ERROR(batch.AddInsert(*engine->db(), rel, row));
        }
      }
      for (const auto& [rel, rows] : op.ingest_deletes) {
        for (const Row& row : rows) {
          SVC_RETURN_IF_ERROR(batch.AddDelete(*engine->db(), rel, row));
        }
      }
      return engine->IngestDeltas(std::move(batch));
    }
    case DurableOp::Kind::kRefresh:
      // Matches SharedEngine::Refresh: the caller's fork (or the recovery
      // engine, discarded wholesale on error) provides the transactional
      // discard, so the in-place body avoids a second engine copy.
      return engine->MaintainAllInPlace();
    case DurableOp::Kind::kSetPolicy:
      engine->set_maintenance_policy(op.policy);
      return Status::OK();
  }
  return Status::Internal("unhandled durable op kind");
}

}  // namespace svc
