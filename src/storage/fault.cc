#include "storage/fault.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

namespace svc {

FaultInjector* FaultInjector::FromEnv(const char* env) {
  auto* inj = new FaultInjector();
  const char* spec = std::getenv(env);
  if (spec != nullptr && spec[0] != '\0') {
    Status st = inj->ArmFromSpec(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "warning: ignoring %s: %s\n", env,
                   st.ToString().c_str());
    }
  }
  return inj;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = FromEnv("SVC_FAULT");
  return *instance;
}

FaultInjector& FaultInjector::Net() {
  static FaultInjector* instance = FromEnv("SVC_NET_FAULT");
  return *instance;
}

void FaultInjector::Arm(const std::string& site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  site_ = site;
  nth_ = nth == 0 ? 1 : nth;
  hits_.clear();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  site_.clear();
  nth_ = 0;
  hits_.clear();
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::string site = spec;
  uint64_t nth = 1;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    site = spec.substr(0, colon);
    const std::string count = spec.substr(colon + 1);
    char* end = nullptr;
    nth = std::strtoull(count.c_str(), &end, 10);
    if (end == count.c_str() || *end != '\0' || nth == 0) {
      return Status::InvalidArgument("bad fault spec '" + spec +
                                     "'; expected site or site:nth");
    }
  }
  if (site.empty()) {
    return Status::InvalidArgument("empty fault site in spec '" + spec + "'");
  }
  Arm(site, nth);
  return Status::OK();
}

bool FaultInjector::armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !site_.empty();
}

bool FaultInjector::ShouldTrigger(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (site_.empty() || site_ != site) return false;
  return ++hits_[site_] == nth_;
}

void FaultInjector::MaybeCrash(const char* site) {
  if (ShouldTrigger(site)) CrashNow(site);
}

void FaultInjector::CrashNow(const char* site) {
  std::fprintf(stderr, "[fault] injected crash at %s\n", site);
  // _exit: no destructor runs, no stream flushes — the process dies as
  // abruptly as a power cut, leaving only the bytes already written.
  _exit(kCrashExitCode);
}

}  // namespace svc
