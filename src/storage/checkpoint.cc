#include "storage/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "storage/fault.h"
#include "storage/ops.h"
#include "storage/serde.h"

namespace svc {

namespace {

constexpr char kMagic[4] = {'S', 'V', 'C', 'K'};
// v2 appended the pending DeltaSet's mutation counter (SHOW STATS's
// delta_version) to the delta section; v3 appends the maintenance-policy
// section (SET MAINTENANCE POLICY is engine state and must survive a
// checkpointed recovery); v4 widened that section with per-view policy
// overrides. Older versions are rejected with a clean NotSupported instead
// of misreading the stream.
constexpr uint32_t kVersion = 4;
constexpr char kTempName[] = "ckpt.tmp";
constexpr char kIdemName[] = "idem.bin";
constexpr char kIdemTempName[] = "idem.tmp";

/// Appends `name`'s table encoding, reusing `cache`'s bytes when the
/// shared_ptr identity matches (the bytes are a pure function of the table
/// contents, and the identity pins the contents).
void EncodeTableCached(const std::string& name,
                       std::shared_ptr<const Table> table, std::string* out,
                       TableEncodeCache* cache) {
  if (cache == nullptr) {
    EncodeTable(*table, out);
    return;
  }
  auto it = cache->entries.find(name);
  if (it != cache->entries.end() && it->second.table == table) {
    out->append(it->second.bytes);
    ++cache->tables_reused;
    return;
  }
  std::string bytes;
  EncodeTable(*table, &bytes);
  out->append(bytes);
  cache->entries[name] = TableEncodeCache::Entry{std::move(table),
                                                 std::move(bytes)};
  ++cache->tables_encoded;
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("checkpoint write");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

/// fsync on the directory so the rename itself is durable.
Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open dir " + dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir " + dir);
  return Status::OK();
}

}  // namespace

Status EncodeEngineState(const SvcEngine& engine, uint64_t epoch,
                         std::string* out, TableEncodeCache* cache) {
  if (cache != nullptr) {
    cache->tables_encoded = 0;
    cache->tables_reused = 0;
  }
  out->append(kMagic, sizeof(kMagic));
  PutU32(out, kVersion);
  PutU64(out, epoch);

  // Base tables: everything in the catalog that is neither a registered
  // delta table ("__"-prefixed, including "@<k>" chunks) nor a view's
  // stored table (those are encoded with their view below).
  std::vector<std::string> base_names;
  for (const std::string& name : engine.db().TableNames()) {
    if (name.rfind("__", 0) == 0) continue;
    if (engine.HasView(name)) continue;
    base_names.push_back(name);
  }
  PutU32(out, static_cast<uint32_t>(base_names.size()));
  for (const std::string& name : base_names) {
    PutStr(out, name);
    EncodeTableCached(name, engine.db().GetTableShared(name), out, cache);
  }

  // Views: definition plan + sampling key + the stored table verbatim.
  const std::vector<std::string> view_names = engine.ViewNames();
  PutU32(out, static_cast<uint32_t>(view_names.size()));
  for (const std::string& name : view_names) {
    SVC_ASSIGN_OR_RETURN(const MaterializedView* view, engine.GetView(name));
    PutStr(out, name);
    SVC_RETURN_IF_ERROR(EncodePlan(*view->definition(), out));
    PutU32(out, static_cast<uint32_t>(view->sampling_key().size()));
    for (const std::string& k : view->sampling_key()) PutStr(out, k);
    EncodeTableCached(name, engine.db().GetTableShared(name), out, cache);
  }

  if (cache != nullptr) {
    // Drop entries for tables that left the catalog (or were renamed): a
    // dropped table's entry would otherwise pin its storage forever.
    for (auto it = cache->entries.begin(); it != cache->entries.end();) {
      const bool live = std::find(base_names.begin(), base_names.end(),
                                  it->first) != base_names.end() ||
                        std::find(view_names.begin(), view_names.end(),
                                  it->first) != view_names.end();
      it = live ? std::next(it) : cache->entries.erase(it);
    }
  }

  EncodeDeltaSet(engine.pending(), out);
  EncodeMaintenancePolicy(engine.maintenance_policy(), out);
  return Status::OK();
}

Result<EngineState> DecodeEngineState(std::string_view bytes) {
  ByteReader r(bytes);
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  ByteReader body(bytes.substr(sizeof(kMagic)));
  SVC_ASSIGN_OR_RETURN(uint32_t version, body.U32());
  if (version != kVersion) {
    return Status::NotSupported("checkpoint format version " +
                                std::to_string(version) + " (expected " +
                                std::to_string(kVersion) + ")");
  }
  SVC_ASSIGN_OR_RETURN(uint64_t epoch, body.U64());

  Database db;
  SVC_ASSIGN_OR_RETURN(uint32_t n_base, body.U32());
  for (uint32_t i = 0; i < n_base; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string name, body.Str());
    SVC_ASSIGN_OR_RETURN(Table table, DecodeTable(&body));
    SVC_RETURN_IF_ERROR(db.CreateTable(name, std::move(table)));
  }

  EngineState state{SvcEngine(std::move(db))};
  state.epoch = epoch;

  SVC_ASSIGN_OR_RETURN(uint32_t n_views, body.U32());
  for (uint32_t i = 0; i < n_views; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string name, body.Str());
    SVC_ASSIGN_OR_RETURN(PlanPtr def, DecodePlan(&body));
    SVC_ASSIGN_OR_RETURN(uint32_t n_key, body.U32());
    std::vector<std::string> sampling_key;
    sampling_key.reserve(n_key);
    for (uint32_t k = 0; k < n_key; ++k) {
      SVC_ASSIGN_OR_RETURN(std::string s, body.Str());
      sampling_key.push_back(std::move(s));
    }
    SVC_ASSIGN_OR_RETURN(Table stored, DecodeTable(&body));
    // CreateView rebuilds the view metadata (stored schema, derived pk,
    // maintenance plan) deterministically from the definition, then the
    // materialized result is replaced with the checkpointed table — the
    // incrementally-maintained bytes, not a recomputation (double
    // aggregates maintained incrementally are not bitwise equal to a
    // recompute, and recovery must be bit-exact).
    SVC_RETURN_IF_ERROR(
        state.engine.CreateView(name, std::move(def), std::move(sampling_key)));
    state.engine.db()->PutTable(name, std::move(stored));
  }

  SVC_ASSIGN_OR_RETURN(DeltaSet pending,
                       DecodeDeltaSet(&body, *state.engine.db()));
  // Re-pair the engine with the persisted mutation counter *after*
  // ingesting (ingestion bumps the live counter) — and even when the queue
  // is empty: the counter outlives REFRESH, so a freshly-maintained
  // engine's version is nonzero with nothing pending.
  const uint64_t delta_version = pending.version();
  if (!pending.empty()) {
    SVC_RETURN_IF_ERROR(state.engine.IngestDeltas(std::move(pending)));
  }
  state.engine.RestorePendingVersion(delta_version);
  SVC_ASSIGN_OR_RETURN(MaintenancePolicyConfig policy,
                       DecodeMaintenancePolicy(&body));
  state.engine.set_maintenance_policy(policy);
  if (!body.AtEnd()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(body.remaining()) +
        " trailing byte(s)");
  }
  return state;
}

std::string CheckpointFileName(uint64_t epoch) {
  return "checkpoint-" + std::to_string(epoch) + ".ckpt";
}

std::string WalFileName(uint64_t epoch) {
  return "wal-" + std::to_string(epoch) + ".log";
}

Status WriteCheckpointFile(const std::string& dir, uint64_t epoch,
                           const std::string& state_bytes) {
  FaultInjector& fault = FaultInjector::Global();
  const std::string tmp_path = dir + "/" + kTempName;
  const std::string final_path = dir + "/" + CheckpointFileName(epoch);

  // One CRC-framed record, same frame format as the WAL.
  std::string frame;
  frame.reserve(8 + state_bytes.size());
  PutU32(&frame, static_cast<uint32_t>(state_bytes.size()));
  PutU32(&frame, Crc32(state_bytes));
  frame += state_bytes;

  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp_path);
  if (fault.ShouldTrigger("ckpt.tear")) {
    // Crash mid-checkpoint: half the frame reaches the temp file. The
    // real checkpoint name never appears, so recovery falls back to the
    // previous checkpoint + WAL.
    (void)WriteAll(fd, frame.data(), frame.size() / 2);
    (void)::fsync(fd);
    fault.CrashNow("ckpt.tear");
  }
  Status write_st = WriteAll(fd, frame.data(), frame.size());
  if (write_st.ok() && ::fsync(fd) != 0) write_st = Errno("fsync " + tmp_path);
  ::close(fd);
  if (!write_st.ok()) {
    (void)::unlink(tmp_path.c_str());
    return write_st;
  }

  fault.MaybeCrash("ckpt.pre_rename");
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename " + tmp_path + " -> " + final_path);
  }
  SVC_RETURN_IF_ERROR(SyncDir(dir));
  fault.MaybeCrash("ckpt.post_rename");
  return Status::OK();
}

Result<std::string> ReadCheckpointFile(const std::string& dir,
                                       uint64_t epoch) {
  const std::string path = dir + "/" + CheckpointFileName(epoch);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < 8) {
    return Status::InvalidArgument("checkpoint " + path + " is truncated (" +
                                   std::to_string(data.size()) + " bytes)");
  }
  ByteReader header(std::string_view(data).substr(0, 8));
  const uint32_t len = header.U32().value();
  const uint32_t crc = header.U32().value();
  if (data.size() - 8 != len) {
    return Status::InvalidArgument(
        "checkpoint " + path + " length mismatch: frame promises " +
        std::to_string(len) + " byte(s), file holds " +
        std::to_string(data.size() - 8));
  }
  const std::string_view payload = std::string_view(data).substr(8);
  const uint32_t actual = Crc32(payload);
  if (actual != crc) {
    return Status::InvalidArgument(
        "checkpoint " + path + " CRC mismatch (stored " + std::to_string(crc) +
        ", computed " + std::to_string(actual) + ")");
  }
  return std::string(payload);
}

std::vector<uint64_t> ListCheckpointEpochs(const std::string& dir) {
  std::vector<uint64_t> epochs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) != 0) continue;
    const size_t dot = name.rfind(".ckpt");
    if (dot == std::string::npos || dot <= 11) continue;
    const std::string digits = name.substr(11, dot - 11);
    char* end = nullptr;
    const uint64_t epoch = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() && *end == '\0') epochs.push_back(epoch);
  }
  std::sort(epochs.rbegin(), epochs.rend());
  return epochs;
}

void RemoveStaleDurableFiles(const std::string& dir, uint64_t keep) {
  std::error_code ec;
  std::filesystem::remove(dir + "/" + kTempName, ec);
  std::filesystem::remove(dir + "/" + kIdemTempName, ec);
  for (uint64_t epoch : ListCheckpointEpochs(dir)) {
    if (epoch >= keep) continue;
    std::filesystem::remove(dir + "/" + CheckpointFileName(epoch), ec);
    std::filesystem::remove(dir + "/" + WalFileName(epoch), ec);
  }
  // A WAL can outlive its checkpoint (e.g. a crash after the checkpoint
  // rename but before rotation): sweep orphaned logs too.
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) != 0) continue;
    const size_t dot = name.rfind(".log");
    if (dot == std::string::npos || dot <= 4) continue;
    const std::string digits = name.substr(4, dot - 4);
    char* end = nullptr;
    const uint64_t epoch = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() && *end == '\0' && epoch < keep) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::string IdemFileName() { return kIdemName; }

Status WriteIdemFile(const std::string& dir,
                     const std::map<std::string, uint64_t>& marks) {
  std::string bytes;
  PutU32(&bytes, static_cast<uint32_t>(marks.size()));
  for (const auto& [token, seq] : marks) {
    PutStr(&bytes, token);
    PutU64(&bytes, seq);
  }
  std::string frame;
  frame.reserve(8 + bytes.size());
  PutU32(&frame, static_cast<uint32_t>(bytes.size()));
  PutU32(&frame, Crc32(bytes));
  frame += bytes;

  const std::string tmp_path = dir + "/" + kIdemTempName;
  const std::string final_path = dir + "/" + kIdemName;
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp_path);
  Status write_st = WriteAll(fd, frame.data(), frame.size());
  if (write_st.ok() && ::fsync(fd) != 0) write_st = Errno("fsync " + tmp_path);
  ::close(fd);
  if (!write_st.ok()) {
    (void)::unlink(tmp_path.c_str());
    return write_st;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Errno("rename " + tmp_path + " -> " + final_path);
  }
  return SyncDir(dir);
}

Result<std::map<std::string, uint64_t>> ReadIdemFile(const std::string& dir) {
  const std::string path = dir + "/" + kIdemName;
  std::ifstream in(path, std::ios::binary);
  std::map<std::string, uint64_t> marks;
  if (!in) return marks;  // absent: no marks persisted yet
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();
  if (data.size() < 8) {
    return Status::InvalidArgument("idem file " + path + " is truncated (" +
                                   std::to_string(data.size()) + " bytes)");
  }
  ByteReader header(std::string_view(data).substr(0, 8));
  const uint32_t len = header.U32().value();
  const uint32_t crc = header.U32().value();
  if (data.size() - 8 != len) {
    return Status::InvalidArgument(
        "idem file " + path + " length mismatch: frame promises " +
        std::to_string(len) + " byte(s), file holds " +
        std::to_string(data.size() - 8));
  }
  const std::string_view payload = std::string_view(data).substr(8);
  if (Crc32(payload) != crc) {
    return Status::InvalidArgument("idem file " + path + " CRC mismatch");
  }
  ByteReader r(payload);
  SVC_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string token, r.Str());
    SVC_ASSIGN_OR_RETURN(uint64_t seq, r.U64());
    marks[std::move(token)] = seq;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("idem file " + path + " has trailing bytes");
  }
  return marks;
}

}  // namespace svc
