#ifndef SVC_STORAGE_SERDE_H_
#define SVC_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/algebra.h"
#include "relational/expr.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"
#include "view/delta.h"

namespace svc {

/// Exact binary serialization for durable state (storage/wal.h and
/// storage/checkpoint.h). This is deliberately a *different* codec from
/// Value::EncodeTo: that encoding is canonical-by-equality (an integral
/// double encodes like the equal int, which is what η and key indexes
/// need) and therefore lossy. Recovery must reconstruct values bit-exactly
/// — the recovered engine's answers are diffed bitwise against a
/// never-crashed replica — so every value here round-trips with its exact
/// type tag and, for doubles, its exact IEEE bit pattern (NaNs and -0.0
/// included). All integers are fixed-width little-endian.

// ---- Primitive writers (append to *out) -----------------------------------
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
/// Raw IEEE-754 bits; round-trips NaN payloads and signed zeros.
void PutF64(std::string* out, double v);
/// u32 length prefix + bytes.
void PutStr(std::string* out, std::string_view v);

/// Bounds-checked sequential reader over an encoded buffer. Every getter
/// fails with InvalidArgument("truncated ...") instead of reading past the
/// end, so a corrupt or torn payload surfaces as a Status, never UB.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int64_t> I64();
  Result<double> F64();
  Result<std::string> Str();

  /// Bytes consumed so far.
  size_t pos() const { return pos_; }
  /// Bytes left.
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) const;

  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected, init/xorout 0xffffffff) —
/// the standard zlib-compatible checksum, implemented locally so the
/// storage layer carries no external dependency.
uint32_t Crc32(std::string_view data);

// ---- Relational serde ------------------------------------------------------
void EncodeValue(const Value& v, std::string* out);
Result<Value> DecodeValue(ByteReader* r);

void EncodeRow(const Row& row, std::string* out);
Result<Row> DecodeRow(ByteReader* r);

void EncodeSchema(const Schema& schema, std::string* out);
Result<Schema> DecodeSchema(ByteReader* r);

/// Schema + primary-key declaration + rows. Decoding revalidates the key
/// (duplicate keys in a tampered file fail decode rather than corrupting
/// the index).
void EncodeTable(const Table& t, std::string* out);
Result<Table> DecodeTable(ByteReader* r);

// ---- Plan / expression serde ----------------------------------------------
void EncodeExpr(const Expr& e, std::string* out);
Result<ExprPtr> DecodeExpr(ByteReader* r);

/// Fails with NotSupported for kHashFilter nodes carrying a runtime
/// KeySetFilter (those hold an in-memory key set and never appear in a
/// durable view definition).
Status EncodePlan(const PlanNode& plan, std::string* out);
Result<PlanPtr> DecodePlan(ByteReader* r);

// ---- Pending-delta serde ---------------------------------------------------
/// Per relation and side, the pending rows in queue order. Chunk
/// boundaries are *not* persisted: the logical row sequence is the durable
/// state (results are chunking-independent by construction; see DeltaSet).
void EncodeDeltaSet(const DeltaSet& deltas, std::string* out);
/// Rebuilds by replaying AddInsert/AddDelete against `db` (schemas come
/// from the base relations, which must already exist).
Result<DeltaSet> DecodeDeltaSet(ByteReader* r, const Database& db);

}  // namespace svc

#endif  // SVC_STORAGE_SERDE_H_
