#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "storage/fault.h"
#include "storage/serde.h"

namespace svc {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// write(2) until the whole buffer is on the descriptor.
Status WriteAll(int fd, const char* data, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Result<WalOptions> ParseFsyncSpec(const std::string& spec) {
  WalOptions opts;
  if (spec == "always") {
    opts.policy = FsyncPolicy::kAlways;
    return opts;
  }
  if (spec == "off") {
    opts.policy = FsyncPolicy::kOff;
    return opts;
  }
  if (spec.rfind("every=", 0) == 0) {
    const std::string n = spec.substr(6);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(n.c_str(), &end, 10);
    if (end != n.c_str() && *end == '\0' && v >= 1) {
      opts.policy = FsyncPolicy::kEveryN;
      opts.interval = static_cast<size_t>(v);
      return opts;
    }
  }
  return Status::InvalidArgument("bad fsync policy '" + spec +
                                 "'; expected always, off, or every=N");
}

Result<WalWriter> WalWriter::Open(const std::string& path, WalOptions opts) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open wal " + path);
  return WalWriter(fd, opts);
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      opts_(other.opts_),
      records_(other.records_),
      bytes_(other.bytes_),
      unsynced_(other.unsynced_),
      poison_(std::move(other.poison_)) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    opts_ = other.opts_;
    records_ = other.records_;
    bytes_ = other.bytes_;
    unsynced_ = other.unsynced_;
    poison_ = std::move(other.poison_);
    other.fd_ = -1;
  }
  return *this;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(std::string_view payload) {
  if (!poison_.empty()) {
    return Status::Internal(
        "wal writer disabled after an unrecoverable append failure (" +
        poison_ + "); refusing further commits");
  }
  FaultInjector& fault = FaultInjector::Global();
  fault.MaybeCrash("wal.append.pre");

  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload.data(), payload.size());

  if (fault.ShouldTrigger("wal.append.torn")) {
    // A torn append: only a prefix of the frame reaches the file before
    // the "power cut". Half the frame always splits inside the payload
    // length or the payload, never on a frame boundary.
    const size_t torn = frame.size() / 2;
    (void)WriteAll(fd_, frame.data(), torn == 0 ? 1 : torn);
    (void)::fsync(fd_);
    fault.CrashNow("wal.append.torn");
  }

  // Where this append begins: on failure the file is rolled back here so
  // the record of a commit reported as failed cannot be replayed by the
  // next recovery (the caller was told it did not happen).
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  Status status = WriteAll(fd_, frame.data(), frame.size());
  if (status.ok()) {
    ++unsynced_;
    const bool sync_now =
        opts_.policy == FsyncPolicy::kAlways ||
        (opts_.policy == FsyncPolicy::kEveryN && unsynced_ >= opts_.interval);
    if (sync_now) status = Sync();
  }
  if (!status.ok()) {
    // Some or all of the frame may be durable even though the caller will
    // see a failed commit. Roll back to the pre-append offset (and make
    // the rollback itself durable); if that fails too, poison the writer.
    if (start >= 0 && ::ftruncate(fd_, start) == 0 && ::fsync(fd_) == 0) {
      unsynced_ = 0;
    } else {
      poison_ = status.ToString();
    }
    return status;
  }
  ++records_;
  bytes_ += frame.size();

  fault.MaybeCrash("wal.append.post");
  return Status::OK();
}

Status WalWriter::Sync() {
  if (::fsync(fd_) != 0) return Errno("wal fsync");
  unsynced_ = 0;
  return Status::OK();
}

Status ReplayWal(const std::string& path,
                 const std::function<Status(std::string_view)>& fn,
                 WalReplayInfo* info) {
  *info = WalReplayInfo{};
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // no log yet — an empty WAL
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  size_t off = 0;
  auto tear = [&](const std::string& what) {
    info->torn_tail = true;
    info->warning = "torn WAL tail in " + path + ": " + what + " at offset " +
                    std::to_string(off) + " (file size " +
                    std::to_string(data.size()) +
                    "); recovering to the last complete record";
  };
  while (off < data.size()) {
    if (data.size() - off < kFrameHeader) {
      tear("incomplete frame header");
      break;
    }
    ByteReader header(std::string_view(data).substr(off, kFrameHeader));
    const uint32_t len = header.U32().value();
    const uint32_t crc = header.U32().value();
    if (data.size() - off - kFrameHeader < len) {
      tear("frame promises " + std::to_string(len) + " payload byte(s), " +
           std::to_string(data.size() - off - kFrameHeader) + " present");
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(off + kFrameHeader, len);
    const uint32_t actual = Crc32(payload);
    if (actual != crc) {
      // A *complete* frame with a bad checksum is corruption, not a torn
      // append (a tear always ends the file early): fail loudly with the
      // exact location instead of silently dropping committed records.
      return Status::InvalidArgument(
          "WAL corruption in " + path + ": CRC mismatch for record " +
          std::to_string(info->records) + " at byte offset " +
          std::to_string(off) + " (stored " + std::to_string(crc) +
          ", computed " + std::to_string(actual) + ")");
    }
    SVC_RETURN_IF_ERROR(fn(payload));
    ++info->records;
    off += kFrameHeader + len;
    info->valid_bytes = off;
  }
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate " + path);
  }
  return Status::OK();
}

}  // namespace svc
