#ifndef SVC_STORAGE_WAL_H_
#define SVC_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace svc {

/// When a WAL append reaches the disk platter.
enum class FsyncPolicy {
  kAlways,  ///< fsync after every record (full durability)
  kEveryN,  ///< fsync every `interval` records (bounded-loss batching)
  kOff,     ///< never fsync; the OS flushes on its own schedule
};

struct WalOptions {
  FsyncPolicy policy = FsyncPolicy::kAlways;
  /// For kEveryN: fsync after every `interval`-th record.
  size_t interval = 8;
};

/// Parses "always", "off", or "every=N" (N >= 1).
Result<WalOptions> ParseFsyncSpec(const std::string& spec);

/// Appender over one log file. Frame format (docs/ARCHITECTURE.md
/// "Durability & recovery"):
///
///   [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// both integers little-endian. Appends go through an unbuffered file
/// descriptor (no stdio layer), so when the fault injector kills the
/// process mid-append the on-disk prefix is exactly the bytes the write
/// call covered — which is what makes the torn-tail recovery path testable
/// with real file states. Crash sites: "wal.append.pre" (before any byte),
/// "wal.append.torn" (half the frame written), "wal.append.post" (frame
/// durable, caller has not yet published).
class WalWriter {
 public:
  /// Opens `path` for appending (created if absent).
  static Result<WalWriter> Open(const std::string& path, WalOptions opts);

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one CRC-framed record and applies the fsync policy. On a
  /// failed write or fsync the file is rolled back to its pre-append
  /// length, so a commit reported as failed can never resurface at
  /// recovery; if even the rollback fails, the writer poisons itself and
  /// refuses all further appends (no commits beats resurrected ones).
  Status Append(std::string_view payload);

  /// Forces an fsync regardless of policy.
  Status Sync();

  /// Records / file bytes appended through this writer.
  uint64_t records() const { return records_; }
  uint64_t bytes() const { return bytes_; }

 private:
  WalWriter(int fd, WalOptions opts) : fd_(fd), opts_(opts) {}

  int fd_ = -1;
  WalOptions opts_;
  uint64_t records_ = 0;
  uint64_t bytes_ = 0;
  size_t unsynced_ = 0;
  /// Non-empty after a failed append could not be rolled back: the log may
  /// hold a record whose commit was reported failed, so appending more
  /// would let recovery resurrect it. Every later Append fails with this.
  std::string poison_;
};

/// What ReplayWal found in the log.
struct WalReplayInfo {
  uint64_t records = 0;      ///< complete, CRC-valid records replayed
  uint64_t valid_bytes = 0;  ///< file offset just past the last good frame
  bool torn_tail = false;    ///< a trailing partial frame was dropped
  std::string warning;       ///< human-readable tear note ("" if clean)
};

/// Replays every complete record of `path` through `fn` in order. A
/// missing file is an empty log. A trailing *incomplete* frame — fewer
/// bytes than the header or the header's payload length promises, i.e. a
/// torn final append — is graceful degradation: replay stops at the last
/// complete frame, `info` describes the tear, and the Status is OK. A
/// *complete* frame whose CRC mismatches is corruption, not a tear, and
/// fails with a diagnostic naming the byte offset. `fn`'s own error aborts
/// the replay.
Status ReplayWal(const std::string& path,
                 const std::function<Status(std::string_view)>& fn,
                 WalReplayInfo* info);

/// Truncates `path` to `size` bytes (used to drop a torn tail for good, so
/// the next append starts on a frame boundary).
Status TruncateFile(const std::string& path, uint64_t size);

}  // namespace svc

#endif  // SVC_STORAGE_WAL_H_
