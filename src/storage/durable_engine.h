#ifndef SVC_STORAGE_DURABLE_ENGINE_H_
#define SVC_STORAGE_DURABLE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "core/shared_engine.h"
#include "storage/checkpoint.h"
#include "storage/ops.h"
#include "storage/wal.h"

namespace svc {

struct DurableOptions {
  /// Directory holding checkpoint-<E>.ckpt / wal-<E>.log (created if
  /// absent).
  std::string data_dir;
  /// Fsync policy for WAL appends.
  WalOptions wal;
  /// Auto-checkpoint after this many logged commits (0 = only explicit
  /// Checkpoint() calls).
  uint64_t checkpoint_every = 0;
};

/// What recovery found at Open.
struct RecoveryReport {
  uint64_t recovered_epoch = 0;    ///< head epoch after replay
  uint64_t checkpoint_epoch = 0;   ///< base checkpoint used (0 = none)
  uint64_t wal_records_replayed = 0;
  bool torn_tail = false;          ///< a torn final record was truncated
  std::string warning;             ///< tear note ("" if clean)
};

/// Durability counters surfaced by SHOW STATS. The WAL counters cover the
/// *current* log segment (appends since Open or the last checkpoint —
/// rotation starts an empty log).
struct DurabilityStats {
  uint64_t wal_records = 0;  ///< records in the current WAL segment
  uint64_t wal_bytes = 0;    ///< file bytes in the current WAL segment
  uint64_t last_checkpoint_epoch = 0;
  uint64_t recovered_epoch = 0;  ///< head epoch recovered at Open
  /// Incremental-checkpoint counters for the *last* checkpoint written:
  /// tables serialized from scratch vs appended verbatim from the encode
  /// cache (unchanged shared_ptr identity). Test/observability only — not
  /// SHOW STATS columns.
  uint64_t checkpoint_tables_encoded = 0;
  uint64_t checkpoint_tables_reused = 0;
};

/// A SharedEngine with a write-ahead log and checkpoints underneath
/// (docs/ARCHITECTURE.md "Durability & recovery").
///
///   * Every logged commit appends one epoch-keyed, CRC-framed WAL record
///     *before* the commit publishes (SharedEngine's pre-publish hook), so
///     a crash can lose at most the unpublished tail — never an epoch a
///     reader could have observed under fsync=always.
///   * Checkpoint() serializes the current immutable snapshot (a CoW
///     traversal — concurrent readers keep their snapshots), writes it
///     atomically (temp + rename + dir fsync), rotates to a fresh WAL and
///     deletes the files it supersedes.
///   * Open() recovers: newest valid checkpoint, then the paired WAL's
///     records in epoch order; a torn final record is truncated with a
///     warning (graceful degradation), a mid-log CRC mismatch is an error.
///
/// Reads are plain SharedEngine reads (shared()->Snapshot()); they never
/// touch this object's mutex or the log.
class DurableEngine {
 public:
  /// Recovers (or initializes) `opts.data_dir` and opens the WAL for
  /// appending. `report`, when non-null, receives what recovery found.
  static Result<std::shared_ptr<DurableEngine>> Open(
      const DurableOptions& opts, RecoveryReport* report = nullptr);

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  /// Quiesces the maintenance thread: its refresh callback captures
  /// `this`, so it must be joined before any member dies.
  ~DurableEngine();

  /// The underlying shared engine (snapshot reads, epoch).
  const std::shared_ptr<SharedEngine>& shared() const { return shared_; }
  uint64_t epoch() const { return shared_->epoch(); }

  /// A client idempotency mark riding one logged commit: (token, seq)
  /// names one logical client request (server/server.cc assigns them from
  /// the wire's v2 request meta). Non-empty marks are appended to the
  /// commit's WAL record and survive checkpoints via the idem sidecar
  /// file, so a server recovering a data_dir still recognizes a write a
  /// client retried across the crash — it commits exactly once.
  struct IdemMark {
    std::string token;
    uint64_t seq;
    // Explicit constructors (not default member initializers): the mark is
    // a default argument of CommitLogged below, and a defaulted member
    // initializer may not be used before the enclosing class is complete.
    IdemMark() : seq(0) {}
    IdemMark(std::string t, uint64_t s) : token(std::move(t)), seq(s) {}
    bool empty() const { return token.empty(); }
  };

  /// Runs one logged commit: `fn` mutates the fork and, on success, fills
  /// `*payload` with the encoded DurableOp describing the mutation. The
  /// record (epoch + payload [+ idem mark]) is appended to the WAL before
  /// the fork publishes. Serialized against other logged commits and
  /// checkpoints.
  Status CommitLogged(
      const std::function<Status(SvcEngine*, std::string* payload)>& fn,
      const IdemMark& idem = IdemMark());

  /// The latest idempotency mark per token: what recovery found (idem
  /// sidecar + WAL records) plus every mark logged since. The serving
  /// layer seeds its dedup journal from this at startup.
  std::map<std::string, uint64_t> IdemMarks() const;

  /// Logs and applies `op` as one commit (the non-SQL write path).
  Status Apply(const DurableOp& op);

  // ---- Convenience writers mirroring SharedEngine's -----------------------
  Status CreateTable(const std::string& name, Table table);
  Status CreateView(const std::string& name, PlanPtr definition,
                    std::vector<std::string> sampling_key = {});
  Status InsertRecord(const std::string& relation, Row row);
  Status DeleteRecord(const std::string& relation, Row row);
  Status IngestDeltas(DeltaSet&& deltas);
  Status Refresh();

  /// Checkpoints the current head snapshot and truncates the log behind
  /// it. Returns the checkpointed epoch.
  Result<uint64_t> Checkpoint();

  /// SET MAINTENANCE POLICY as a logged commit (kSetPolicy): the policy is
  /// engine state, so it replays from the WAL and persists in checkpoints.
  Status SetMaintenancePolicy(const MaintenancePolicyConfig& cfg);

  /// Starts the shared engine's scheduler with a WAL-logged refresh (plus
  /// the "maint.refresh" fault site), so every policy-triggered
  /// maintenance commit is recoverable like an explicit REFRESH.
  void StartMaintenance();
  /// Joins the scheduler thread; call before the clean-exit checkpoint.
  void StopMaintenance() { shared_->StopMaintenance(); }

  DurabilityStats stats() const;

 private:
  DurableEngine(DurableOptions opts, std::shared_ptr<SharedEngine> shared,
                WalWriter wal);

  Status CheckpointLocked();

  DurableOptions opts_;
  std::shared_ptr<SharedEngine> shared_;

  /// Serializes logged commits and checkpoints (so a checkpoint's snapshot
  /// + WAL rotation is atomic w.r.t. concurrent logged commits), and
  /// guards wal_/stats_.
  mutable std::mutex mu_;
  WalWriter wal_;
  DurabilityStats stats_;
  uint64_t commits_since_checkpoint_ = 0;
  /// Latest idempotency mark per token (under mu_): recovered at Open,
  /// extended by marked commits, persisted to the idem sidecar *before*
  /// each checkpoint rotates the WAL the marks were logged in.
  std::map<std::string, uint64_t> idem_marks_;
  /// Per-table encode memo reused across checkpoints (under mu_): a table
  /// whose shared_ptr identity is unchanged since the last checkpoint is
  /// appended verbatim instead of re-serialized.
  TableEncodeCache ckpt_cache_;
};

}  // namespace svc

#endif  // SVC_STORAGE_DURABLE_ENGINE_H_
