#include "storage/serde.h"

#include <cstring>

namespace svc {

namespace {

// Fixed-width little-endian, independent of host byte order.
template <typename T>
void PutLE(std::string* out, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

template <typename T>
T GetLE(const char* p) {
  T v = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU32(std::string* out, uint32_t v) { PutLE<uint32_t>(out, v); }
void PutU64(std::string* out, uint64_t v) { PutLE<uint64_t>(out, v); }
void PutI64(std::string* out, int64_t v) {
  PutLE<uint64_t>(out, static_cast<uint64_t>(v));
}
void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutLE<uint64_t>(out, bits);
}
void PutStr(std::string* out, std::string_view v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  out->append(v.data(), v.size());
}

Status ByteReader::Need(size_t n) const {
  if (remaining() < n) {
    return Status::InvalidArgument(
        "truncated encoding: need " + std::to_string(n) + " byte(s) at " +
        "offset " + std::to_string(pos_) + ", have " +
        std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> ByteReader::U8() {
  SVC_RETURN_IF_ERROR(Need(1));
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::U32() {
  SVC_RETURN_IF_ERROR(Need(4));
  uint32_t v = GetLE<uint32_t>(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::U64() {
  SVC_RETURN_IF_ERROR(Need(8));
  uint64_t v = GetLE<uint64_t>(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::I64() {
  SVC_ASSIGN_OR_RETURN(uint64_t v, U64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::F64() {
  SVC_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::Str() {
  SVC_ASSIGN_OR_RETURN(uint32_t n, U32());
  SVC_RETURN_IF_ERROR(Need(n));
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

uint32_t Crc32(std::string_view data) {
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// ---- Value / Row -----------------------------------------------------------

void EncodeValue(const Value& v, std::string* out) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutI64(out, v.AsInt());
      break;
    case ValueType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutStr(out, v.AsString());
      break;
  }
}

Result<Value> DecodeValue(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      SVC_ASSIGN_OR_RETURN(int64_t v, r->I64());
      return Value::Int(v);
    }
    case ValueType::kDouble: {
      SVC_ASSIGN_OR_RETURN(double v, r->F64());
      return Value::Double(v);
    }
    case ValueType::kString: {
      SVC_ASSIGN_OR_RETURN(std::string v, r->Str());
      return Value::String(std::move(v));
    }
  }
  return Status::InvalidArgument("bad value type tag " + std::to_string(tag));
}

void EncodeRow(const Row& row, std::string* out) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(v, out);
}

Result<Row> DecodeRow(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    row.push_back(std::move(v));
  }
  return row;
}

// ---- Schema / Table --------------------------------------------------------

void EncodeSchema(const Schema& schema, std::string* out) {
  PutU32(out, static_cast<uint32_t>(schema.NumColumns()));
  for (const Column& c : schema.columns()) {
    PutStr(out, c.qualifier);
    PutStr(out, c.name);
    PutU8(out, static_cast<uint8_t>(c.type));
  }
}

Result<Schema> DecodeSchema(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  Schema schema;
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    SVC_ASSIGN_OR_RETURN(c.qualifier, r->Str());
    SVC_ASSIGN_OR_RETURN(c.name, r->Str());
    SVC_ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::InvalidArgument("bad column type tag " +
                                     std::to_string(type));
    }
    c.type = static_cast<ValueType>(type);
    schema.AddColumn(std::move(c));
  }
  return schema;
}

void EncodeTable(const Table& t, std::string* out) {
  EncodeSchema(t.schema(), out);
  const std::vector<std::string> pk = t.PrimaryKeyNames();
  PutU32(out, static_cast<uint32_t>(pk.size()));
  for (const std::string& name : pk) PutStr(out, name);
  PutU64(out, t.NumRows());
  for (const Row& row : t.rows()) EncodeRow(row, out);
}

Result<Table> DecodeTable(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  SVC_ASSIGN_OR_RETURN(uint32_t n_pk, r->U32());
  std::vector<std::string> pk;
  pk.reserve(n_pk);
  for (uint32_t i = 0; i < n_pk; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string name, r->Str());
    pk.push_back(std::move(name));
  }
  const size_t n_cols = schema.NumColumns();
  Table t(std::move(schema));
  SVC_ASSIGN_OR_RETURN(uint64_t n_rows, r->U64());
  for (uint64_t i = 0; i < n_rows; ++i) {
    SVC_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    if (row.size() != n_cols) {
      return Status::InvalidArgument(
          "table row " + std::to_string(i) + " has " +
          std::to_string(row.size()) + " values, schema has " +
          std::to_string(n_cols));
    }
    t.AppendUnchecked(std::move(row));
  }
  if (!pk.empty()) SVC_RETURN_IF_ERROR(t.SetPrimaryKey(pk));
  return t;
}

// ---- Expr ------------------------------------------------------------------

void EncodeExpr(const Expr& e, std::string* out) {
  PutU8(out, static_cast<uint8_t>(e.kind()));
  switch (e.kind()) {
    case ExprKind::kColumn:
      PutStr(out, e.column_ref());
      break;
    case ExprKind::kLiteral:
      EncodeValue(e.literal(), out);
      break;
    case ExprKind::kUnary:
      PutU8(out, static_cast<uint8_t>(e.unary_op()));
      EncodeExpr(*e.children()[0], out);
      break;
    case ExprKind::kBinary:
      PutU8(out, static_cast<uint8_t>(e.binary_op()));
      EncodeExpr(*e.children()[0], out);
      EncodeExpr(*e.children()[1], out);
      break;
    case ExprKind::kFunc:
      PutStr(out, e.func_name());
      PutU32(out, static_cast<uint32_t>(e.children().size()));
      for (const ExprPtr& c : e.children()) EncodeExpr(*c, out);
      break;
    case ExprKind::kParam:
      // Parameter placeholders never reach durable state: sessions refuse
      // to execute statements with unbound params, so encoding one is a
      // logic error upstream. Encode the index anyway to keep the codec
      // total (DecodeExpr rejects the tag).
      PutU64(out, e.param_index());
      break;
  }
}

Result<ExprPtr> DecodeExpr(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<ExprKind>(tag)) {
    case ExprKind::kColumn: {
      SVC_ASSIGN_OR_RETURN(std::string ref, r->Str());
      return Expr::Col(std::move(ref));
    }
    case ExprKind::kLiteral: {
      SVC_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
      return Expr::Lit(std::move(v));
    }
    case ExprKind::kUnary: {
      SVC_ASSIGN_OR_RETURN(uint8_t op, r->U8());
      if (op > static_cast<uint8_t>(UnaryOp::kIsNotNull)) {
        return Status::InvalidArgument("bad unary op tag " +
                                       std::to_string(op));
      }
      SVC_ASSIGN_OR_RETURN(ExprPtr child, DecodeExpr(r));
      return Expr::Unary(static_cast<UnaryOp>(op), std::move(child));
    }
    case ExprKind::kBinary: {
      SVC_ASSIGN_OR_RETURN(uint8_t op, r->U8());
      if (op > static_cast<uint8_t>(BinaryOp::kOr)) {
        return Status::InvalidArgument("bad binary op tag " +
                                       std::to_string(op));
      }
      SVC_ASSIGN_OR_RETURN(ExprPtr left, DecodeExpr(r));
      SVC_ASSIGN_OR_RETURN(ExprPtr right, DecodeExpr(r));
      return Expr::Binary(static_cast<BinaryOp>(op), std::move(left),
                          std::move(right));
    }
    case ExprKind::kFunc: {
      SVC_ASSIGN_OR_RETURN(std::string name, r->Str());
      SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      std::vector<ExprPtr> args;
      args.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        SVC_ASSIGN_OR_RETURN(ExprPtr c, DecodeExpr(r));
        args.push_back(std::move(c));
      }
      return Expr::Func(std::move(name), std::move(args));
    }
    case ExprKind::kParam:
      return Status::InvalidArgument(
          "parameter placeholder in durable expression");
  }
  return Status::InvalidArgument("bad expr kind tag " + std::to_string(tag));
}

// ---- Plan ------------------------------------------------------------------

namespace {

/// An optional expression: presence flag + encoding.
Status EncodeOptExpr(const ExprPtr& e, std::string* out) {
  PutU8(out, e != nullptr ? 1 : 0);
  if (e != nullptr) EncodeExpr(*e, out);
  return Status::OK();
}

Result<ExprPtr> DecodeOptExpr(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint8_t present, r->U8());
  if (present == 0) return ExprPtr();
  return DecodeExpr(r);
}

void EncodeStrVec(const std::vector<std::string>& v, std::string* out) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutStr(out, s);
}

Result<std::vector<std::string>> DecodeStrVec(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
  std::vector<std::string> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SVC_ASSIGN_OR_RETURN(std::string s, r->Str());
    v.push_back(std::move(s));
  }
  return v;
}

}  // namespace

Status EncodePlan(const PlanNode& plan, std::string* out) {
  PutU8(out, static_cast<uint8_t>(plan.kind()));
  switch (plan.kind()) {
    case PlanKind::kScan:
      PutStr(out, plan.table_name());
      PutStr(out, plan.alias());
      return Status::OK();
    case PlanKind::kSelect:
      EncodeExpr(*plan.predicate(), out);
      return EncodePlan(*plan.child(0), out);
    case PlanKind::kProject:
      PutU32(out, static_cast<uint32_t>(plan.project_items().size()));
      for (const ProjectItem& item : plan.project_items()) {
        PutStr(out, item.alias);
        PutStr(out, item.out_qualifier);
        EncodeExpr(*item.expr, out);
      }
      return EncodePlan(*plan.child(0), out);
    case PlanKind::kJoin:
      PutU8(out, static_cast<uint8_t>(plan.join_type()));
      PutU32(out, static_cast<uint32_t>(plan.join_keys().size()));
      for (const JoinKeyPair& k : plan.join_keys()) {
        PutStr(out, k.left);
        PutStr(out, k.right);
      }
      SVC_RETURN_IF_ERROR(EncodeOptExpr(plan.join_residual(), out));
      PutU8(out, plan.fk_right() ? 1 : 0);
      SVC_RETURN_IF_ERROR(EncodePlan(*plan.child(0), out));
      return EncodePlan(*plan.child(1), out);
    case PlanKind::kAggregate:
      EncodeStrVec(plan.group_by(), out);
      PutU32(out, static_cast<uint32_t>(plan.aggregates().size()));
      for (const AggItem& a : plan.aggregates()) {
        PutU8(out, static_cast<uint8_t>(a.func));
        SVC_RETURN_IF_ERROR(EncodeOptExpr(a.input, out));
        PutStr(out, a.alias);
      }
      return EncodePlan(*plan.child(0), out);
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference:
      SVC_RETURN_IF_ERROR(EncodePlan(*plan.child(0), out));
      return EncodePlan(*plan.child(1), out);
    case PlanKind::kHashFilter:
      if (plan.key_set() != nullptr) {
        return Status::NotSupported(
            "key-set filters hold a runtime key set and cannot be "
            "serialized (they never appear in durable view definitions)");
      }
      EncodeStrVec(plan.hash_columns(), out);
      PutF64(out, plan.hash_ratio());
      PutU8(out, static_cast<uint8_t>(plan.hash_family()));
      return EncodePlan(*plan.child(0), out);
  }
  return Status::Internal("unhandled plan kind");
}

Result<PlanPtr> DecodePlan(ByteReader* r) {
  SVC_ASSIGN_OR_RETURN(uint8_t tag, r->U8());
  switch (static_cast<PlanKind>(tag)) {
    case PlanKind::kScan: {
      SVC_ASSIGN_OR_RETURN(std::string table, r->Str());
      SVC_ASSIGN_OR_RETURN(std::string alias, r->Str());
      return PlanNode::Scan(std::move(table), std::move(alias));
    }
    case PlanKind::kSelect: {
      SVC_ASSIGN_OR_RETURN(ExprPtr pred, DecodeExpr(r));
      SVC_ASSIGN_OR_RETURN(PlanPtr child, DecodePlan(r));
      return PlanNode::Select(std::move(child), std::move(pred));
    }
    case PlanKind::kProject: {
      SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      std::vector<ProjectItem> items;
      items.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        ProjectItem item;
        SVC_ASSIGN_OR_RETURN(item.alias, r->Str());
        SVC_ASSIGN_OR_RETURN(item.out_qualifier, r->Str());
        SVC_ASSIGN_OR_RETURN(item.expr, DecodeExpr(r));
        items.push_back(std::move(item));
      }
      SVC_ASSIGN_OR_RETURN(PlanPtr child, DecodePlan(r));
      return PlanNode::Project(std::move(child), std::move(items));
    }
    case PlanKind::kJoin: {
      SVC_ASSIGN_OR_RETURN(uint8_t type, r->U8());
      if (type > static_cast<uint8_t>(JoinType::kFull)) {
        return Status::InvalidArgument("bad join type tag " +
                                       std::to_string(type));
      }
      SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      std::vector<JoinKeyPair> keys;
      keys.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        JoinKeyPair k;
        SVC_ASSIGN_OR_RETURN(k.left, r->Str());
        SVC_ASSIGN_OR_RETURN(k.right, r->Str());
        keys.push_back(std::move(k));
      }
      SVC_ASSIGN_OR_RETURN(ExprPtr residual, DecodeOptExpr(r));
      SVC_ASSIGN_OR_RETURN(uint8_t fk_right, r->U8());
      SVC_ASSIGN_OR_RETURN(PlanPtr left, DecodePlan(r));
      SVC_ASSIGN_OR_RETURN(PlanPtr right, DecodePlan(r));
      return PlanNode::Join(std::move(left), std::move(right),
                            static_cast<JoinType>(type), std::move(keys),
                            std::move(residual), fk_right != 0);
    }
    case PlanKind::kAggregate: {
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> group_by, DecodeStrVec(r));
      SVC_ASSIGN_OR_RETURN(uint32_t n, r->U32());
      std::vector<AggItem> aggs;
      aggs.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        AggItem a;
        SVC_ASSIGN_OR_RETURN(uint8_t func, r->U8());
        if (func > static_cast<uint8_t>(AggFunc::kCountDistinct)) {
          return Status::InvalidArgument("bad aggregate function tag " +
                                         std::to_string(func));
        }
        a.func = static_cast<AggFunc>(func);
        SVC_ASSIGN_OR_RETURN(a.input, DecodeOptExpr(r));
        SVC_ASSIGN_OR_RETURN(a.alias, r->Str());
        aggs.push_back(std::move(a));
      }
      SVC_ASSIGN_OR_RETURN(PlanPtr child, DecodePlan(r));
      return PlanNode::Aggregate(std::move(child), std::move(group_by),
                                 std::move(aggs));
    }
    case PlanKind::kUnion:
    case PlanKind::kIntersect:
    case PlanKind::kDifference: {
      SVC_ASSIGN_OR_RETURN(PlanPtr left, DecodePlan(r));
      SVC_ASSIGN_OR_RETURN(PlanPtr right, DecodePlan(r));
      if (static_cast<PlanKind>(tag) == PlanKind::kUnion) {
        return PlanNode::Union(std::move(left), std::move(right));
      }
      if (static_cast<PlanKind>(tag) == PlanKind::kIntersect) {
        return PlanNode::Intersect(std::move(left), std::move(right));
      }
      return PlanNode::Difference(std::move(left), std::move(right));
    }
    case PlanKind::kHashFilter: {
      SVC_ASSIGN_OR_RETURN(std::vector<std::string> cols, DecodeStrVec(r));
      SVC_ASSIGN_OR_RETURN(double ratio, r->F64());
      SVC_ASSIGN_OR_RETURN(uint8_t family, r->U8());
      if (family > static_cast<uint8_t>(HashFamily::kSha1)) {
        return Status::InvalidArgument("bad hash family tag " +
                                       std::to_string(family));
      }
      SVC_ASSIGN_OR_RETURN(PlanPtr child, DecodePlan(r));
      return PlanNode::HashFilter(std::move(child), std::move(cols), ratio,
                                  static_cast<HashFamily>(family));
    }
  }
  return Status::InvalidArgument("bad plan kind tag " + std::to_string(tag));
}

// ---- DeltaSet --------------------------------------------------------------

void EncodeDeltaSet(const DeltaSet& deltas, std::string* out) {
  auto encode_side = [&](auto rows_of, auto for_each) {
    std::vector<std::string> touched;
    for (const std::string& rel : deltas.TouchedRelations()) {
      if (rows_of(rel) > 0) touched.push_back(rel);
    }
    PutU32(out, static_cast<uint32_t>(touched.size()));
    for (const std::string& rel : touched) {
      PutStr(out, rel);
      PutU64(out, rows_of(rel));
      for_each(rel, [&](const Row& row) { EncodeRow(row, out); });
    }
  };
  encode_side([&](const std::string& rel) { return deltas.InsertRows(rel); },
              [&](const std::string& rel, auto fn) {
                deltas.ForEachInsert(rel, fn);
              });
  encode_side([&](const std::string& rel) { return deltas.DeleteRows(rel); },
              [&](const std::string& rel, auto fn) {
                deltas.ForEachDelete(rel, fn);
              });
  // The mutation counter survives the round trip: SHOW STATS reports it,
  // and the sample cache validates entries against it, so a recovered
  // engine must not restart it from zero.
  PutU64(out, deltas.version());
}

Result<DeltaSet> DecodeDeltaSet(ByteReader* r, const Database& db) {
  DeltaSet out;
  auto decode_side = [&](auto add) -> Status {
    SVC_ASSIGN_OR_RETURN(uint32_t n_rels, r->U32());
    for (uint32_t i = 0; i < n_rels; ++i) {
      SVC_ASSIGN_OR_RETURN(std::string rel, r->Str());
      SVC_ASSIGN_OR_RETURN(uint64_t n_rows, r->U64());
      for (uint64_t j = 0; j < n_rows; ++j) {
        SVC_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
        SVC_RETURN_IF_ERROR(add(rel, std::move(row)));
      }
    }
    return Status::OK();
  };
  SVC_RETURN_IF_ERROR(decode_side([&](const std::string& rel, Row row) {
    return out.AddInsert(db, rel, std::move(row));
  }));
  SVC_RETURN_IF_ERROR(decode_side([&](const std::string& rel, Row row) {
    return out.AddDelete(db, rel, std::move(row));
  }));
  SVC_ASSIGN_OR_RETURN(uint64_t version, r->U64());
  out.RestoreVersion(version);
  return out;
}

}  // namespace svc
