#ifndef SVC_STORAGE_OPS_H_
#define SVC_STORAGE_OPS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/svc.h"
#include "storage/serde.h"

namespace svc {

/// One logical engine mutation, as logged to the WAL and replayed at
/// recovery. Each successful SharedEngine commit maps to exactly one op;
/// replaying ops 1..E against an empty engine (or a checkpoint) lands on
/// the identical epoch-E state — ApplyDurableOp routes every kind through
/// the same SvcEngine entry points the live path used, so recovered
/// answers are bit-identical to a never-crashed replica (asserted by the
/// kill-and-recover harness).
struct DurableOp {
  enum class Kind : uint8_t {
    kCreateTable = 1,  ///< CREATE TABLE (schema + pk, usually zero rows)
    kCreateView = 2,   ///< CREATE MATERIALIZED VIEW (definition plan)
    kInsert = 3,       ///< queue insert deltas for one relation
    kDelete = 4,       ///< queue delete deltas for one relation
    kIngest = 5,       ///< queue a multi-relation delta batch
    kRefresh = 6,      ///< REFRESH: maintenance commit marker
    kSetPolicy = 7,    ///< SET MAINTENANCE POLICY (engine-state config)
  };

  Kind kind = Kind::kRefresh;
  std::string target;  ///< relation / view name (kCreateTable..kDelete)
  Table table;         ///< kCreateTable: schema + pk (+ preloaded rows)
  PlanPtr view_def;    ///< kCreateView
  std::vector<std::string> sampling_key;  ///< kCreateView
  std::vector<Row> rows;                  ///< kInsert / kDelete
  /// kIngest: per-relation row batches in queue order.
  std::vector<std::pair<std::string, std::vector<Row>>> ingest_inserts;
  std::vector<std::pair<std::string, std::vector<Row>>> ingest_deletes;
  MaintenancePolicyConfig policy;  ///< kSetPolicy

  static DurableOp CreateTableOp(std::string name, const Table& table);
  static DurableOp CreateViewOp(std::string name, PlanPtr definition,
                                std::vector<std::string> sampling_key);
  static DurableOp InsertOp(std::string relation, std::vector<Row> rows);
  static DurableOp DeleteOp(std::string relation, std::vector<Row> rows);
  /// Captures `deltas`'s logical row sequence (rows copied).
  static DurableOp IngestOp(const DeltaSet& deltas);
  static DurableOp RefreshOp();
  static DurableOp SetPolicyOp(const MaintenancePolicyConfig& cfg);
};

/// Fixed 5-field policy codec shared by the kSetPolicy op and the
/// checkpoint's policy section (storage/checkpoint.cc).
void EncodeMaintenancePolicy(const MaintenancePolicyConfig& cfg,
                             std::string* out);
Result<MaintenancePolicyConfig> DecodeMaintenancePolicy(ByteReader* r);

/// Fails only for a kCreateView definition that cannot be serialized (see
/// EncodePlan).
Status EncodeDurableOp(const DurableOp& op, std::string* out);
Result<DurableOp> DecodeDurableOp(ByteReader* r);

/// Applies `op` to `engine` through the same entry points the live commit
/// used. REFRESH maps to MaintainAllInPlace — callers run it on a
/// disposable fork or a recovery engine that is rebuilt from scratch on
/// error.
Status ApplyDurableOp(const DurableOp& op, SvcEngine* engine);

}  // namespace svc

#endif  // SVC_STORAGE_OPS_H_
