#include "storage/durable_engine.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "storage/fault.h"
#include "storage/serde.h"

namespace svc {

namespace {

/// Decodes and applies one WAL record (u64 epoch + DurableOp [+ idem
/// mark]) to the recovery engine, checking the epoch chain stays dense.
/// A trailing (token, seq) idempotency mark — appended by marked commits —
/// is collected into `idem_marks` rather than applied.
Status ReplayRecord(std::string_view payload, uint64_t* epoch,
                    SvcEngine* engine, const std::string& path,
                    uint64_t record_index,
                    std::map<std::string, uint64_t>* idem_marks) {
  ByteReader r(payload);
  SVC_ASSIGN_OR_RETURN(uint64_t record_epoch, r.U64());
  if (record_epoch != *epoch + 1) {
    return Status::InvalidArgument(
        "WAL " + path + " record " + std::to_string(record_index) +
        " is for epoch " + std::to_string(record_epoch) + ", expected " +
        std::to_string(*epoch + 1) + " (log does not match its checkpoint)");
  }
  SVC_ASSIGN_OR_RETURN(DurableOp op, DecodeDurableOp(&r));
  if (!r.AtEnd()) {
    SVC_ASSIGN_OR_RETURN(std::string token, r.Str());
    SVC_ASSIGN_OR_RETURN(uint64_t seq, r.U64());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("WAL " + path + " record " +
                                     std::to_string(record_index) + " has " +
                                     std::to_string(r.remaining()) +
                                     " trailing byte(s)");
    }
    uint64_t& have = (*idem_marks)[std::move(token)];
    have = std::max(have, seq);
  }
  SVC_RETURN_IF_ERROR(ApplyDurableOp(op, engine));
  *epoch = record_epoch;
  return Status::OK();
}

}  // namespace

DurableEngine::DurableEngine(DurableOptions opts,
                             std::shared_ptr<SharedEngine> shared,
                             WalWriter wal)
    : opts_(std::move(opts)),
      shared_(std::move(shared)),
      wal_(std::move(wal)) {}

DurableEngine::~DurableEngine() {
  // The scheduler's refresh callback captures `this`; SharedEngine's own
  // destructor would join too late (after our members are gone).
  shared_->StopMaintenance();
}

Result<std::shared_ptr<DurableEngine>> DurableEngine::Open(
    const DurableOptions& opts, RecoveryReport* report) {
  if (opts.data_dir.empty()) {
    return Status::InvalidArgument("DurableOptions.data_dir is required");
  }
  std::error_code ec;
  std::filesystem::create_directories(opts.data_dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir " + opts.data_dir + ": " +
                            ec.message());
  }

  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport{};

  // Newest valid checkpoint wins. An unreadable one (disk corruption) is
  // skipped with a note — an older checkpoint plus nothing is still a
  // consistent, if older, state; failing hard would brick the directory.
  std::optional<EngineState> state;
  for (uint64_t epoch : ListCheckpointEpochs(opts.data_dir)) {
    Result<std::string> bytes = ReadCheckpointFile(opts.data_dir, epoch);
    Result<EngineState> decoded =
        bytes.ok() ? DecodeEngineState(*bytes)
                   : Result<EngineState>(bytes.status());
    if (decoded.ok()) {
      state.emplace(std::move(decoded).value());
      rep->checkpoint_epoch = epoch;
      break;
    }
    if (!rep->warning.empty()) rep->warning += "; ";
    rep->warning += "skipping unreadable checkpoint " + std::to_string(epoch) +
                    ": " + decoded.status().ToString();
  }
  if (!state.has_value()) state.emplace(SvcEngine(Database()));

  // Idempotency marks: the sidecar persisted by the last checkpoint, then
  // the WAL's per-record marks overlaid on top.
  Result<std::map<std::string, uint64_t>> idem_read =
      ReadIdemFile(opts.data_dir);
  SVC_RETURN_IF_ERROR(idem_read.status());
  std::map<std::string, uint64_t> idem_marks = std::move(idem_read).value();

  // Replay the WAL paired with the chosen checkpoint (epochs E+1, E+2, ...
  // in order). A torn final record truncates; a mid-log CRC error aborts.
  uint64_t head_epoch = state->epoch;
  const std::string wal_path =
      opts.data_dir + "/" + WalFileName(state->epoch);
  WalReplayInfo replay;
  SVC_RETURN_IF_ERROR(ReplayWal(
      wal_path,
      [&](std::string_view payload) {
        return ReplayRecord(payload, &head_epoch, &state->engine, wal_path,
                            replay.records, &idem_marks);
      },
      &replay));
  rep->wal_records_replayed = replay.records;
  rep->torn_tail = replay.torn_tail;
  if (replay.torn_tail) {
    if (!rep->warning.empty()) rep->warning += "; ";
    rep->warning += replay.warning;
    // Drop the torn bytes for good so the next append starts on a frame
    // boundary.
    SVC_RETURN_IF_ERROR(TruncateFile(wal_path, replay.valid_bytes));
  }
  rep->recovered_epoch = head_epoch;

  // Earlier checkpoint/WAL pairs (and a stale temp file) are fully
  // superseded by what we just recovered from.
  RemoveStaleDurableFiles(opts.data_dir, rep->checkpoint_epoch);

  SVC_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(wal_path, opts.wal));
  auto shared =
      std::make_shared<SharedEngine>(std::move(state->engine), head_epoch);
  auto engine = std::shared_ptr<DurableEngine>(
      new DurableEngine(opts, std::move(shared), std::move(wal)));
  engine->stats_.recovered_epoch = head_epoch;
  engine->stats_.last_checkpoint_epoch = rep->checkpoint_epoch;
  engine->idem_marks_ = std::move(idem_marks);
  return engine;
}

Status DurableEngine::CommitLogged(
    const std::function<Status(SvcEngine*, std::string* payload)>& fn,
    const IdemMark& idem) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  SVC_RETURN_IF_ERROR(shared_->Commit(
      [&](SvcEngine* e) { return fn(e, &payload); },
      [&](uint64_t next_epoch) {
        std::string record;
        record.reserve(8 + payload.size());
        PutU64(&record, next_epoch);
        record += payload;
        if (!idem.empty()) {
          // Trailing mark: ReplayRecord collects it on recovery, so the
          // dedup journal survives the same crashes the data does.
          PutStr(&record, idem.token);
          PutU64(&record, idem.seq);
        }
        return wal_.Append(record);
      }));
  if (!idem.empty()) {
    uint64_t& have = idem_marks_[idem.token];
    have = std::max(have, idem.seq);
  }
  stats_.wal_records = wal_.records();
  stats_.wal_bytes = wal_.bytes();
  ++commits_since_checkpoint_;
  if (opts_.checkpoint_every > 0 &&
      commits_since_checkpoint_ >= opts_.checkpoint_every) {
    SVC_RETURN_IF_ERROR(CheckpointLocked());
  }
  return Status::OK();
}

Status DurableEngine::Apply(const DurableOp& op) {
  return CommitLogged([&](SvcEngine* e, std::string* payload) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(op, payload));
    return ApplyDurableOp(op, e);
  });
}

Status DurableEngine::CreateTable(const std::string& name, Table table) {
  return Apply(DurableOp::CreateTableOp(name, table));
}

Status DurableEngine::CreateView(const std::string& name, PlanPtr definition,
                                 std::vector<std::string> sampling_key) {
  return Apply(DurableOp::CreateViewOp(name, std::move(definition),
                                       std::move(sampling_key)));
}

Status DurableEngine::InsertRecord(const std::string& relation, Row row) {
  return Apply(DurableOp::InsertOp(relation, {std::move(row)}));
}

Status DurableEngine::DeleteRecord(const std::string& relation, Row row) {
  return Apply(DurableOp::DeleteOp(relation, {std::move(row)}));
}

Status DurableEngine::IngestDeltas(DeltaSet&& deltas) {
  DurableOp op = DurableOp::IngestOp(deltas);
  return CommitLogged([&](SvcEngine* e, std::string* payload) {
    SVC_RETURN_IF_ERROR(EncodeDurableOp(op, payload));
    return e->IngestDeltas(std::move(deltas));
  });
}

Status DurableEngine::Refresh() {
  return Apply(DurableOp::RefreshOp());
}

Status DurableEngine::SetMaintenancePolicy(const MaintenancePolicyConfig& cfg) {
  return Apply(DurableOp::SetPolicyOp(cfg));
}

void DurableEngine::StartMaintenance() {
  shared_->StartMaintenance([this] {
    // Fault-injector crash site: dies before the refresh's WAL record is
    // appended, so recovery lands on the pre-refresh state — the
    // kill-and-recover harness drives this to prove a policy refresh is
    // never half-durable.
    FaultInjector::Global().MaybeCrash("maint.refresh");
    return Refresh();
  });
}

Result<uint64_t> DurableEngine::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  SVC_RETURN_IF_ERROR(CheckpointLocked());
  return stats_.last_checkpoint_epoch;
}

Status DurableEngine::CheckpointLocked() {
  // Persist the idempotency marks *first*: rotation is about to discard
  // the WAL records carrying them, and a crash between the sidecar write
  // and the checkpoint rename only leaves a superset of marks (harmless —
  // dedup is conservative).
  if (!idem_marks_.empty()) {
    SVC_RETURN_IF_ERROR(WriteIdemFile(opts_.data_dir, idem_marks_));
  }
  // The snapshot is immutable and shared copy-on-write — serializing it is
  // a traversal of the live structure, not a stop-the-world copy, and
  // concurrent readers are completely unaffected.
  SnapshotPtr snap = shared_->Snapshot();
  std::string state;
  SVC_RETURN_IF_ERROR(
      EncodeEngineState(snap->engine, snap->epoch, &state, &ckpt_cache_));
  SVC_RETURN_IF_ERROR(WriteCheckpointFile(opts_.data_dir, snap->epoch, state));
  stats_.checkpoint_tables_encoded = ckpt_cache_.tables_encoded;
  stats_.checkpoint_tables_reused = ckpt_cache_.tables_reused;

  // Rotate: start a fresh (empty) WAL named for the new base epoch, then
  // drop everything the checkpoint supersedes. mu_ is held, so no logged
  // commit can slip a record into the old log during the swap.
  const std::string new_wal = opts_.data_dir + "/" + WalFileName(snap->epoch);
  // Truncate an existing file of that name (possible when re-checkpointing
  // at an unchanged epoch: its records are all <= the checkpoint).
  std::error_code ec;
  std::filesystem::remove(new_wal, ec);
  SVC_ASSIGN_OR_RETURN(WalWriter wal, WalWriter::Open(new_wal, opts_.wal));
  wal_ = std::move(wal);
  RemoveStaleDurableFiles(opts_.data_dir, snap->epoch);

  stats_.last_checkpoint_epoch = snap->epoch;
  stats_.wal_records = 0;
  stats_.wal_bytes = 0;
  commits_since_checkpoint_ = 0;
  return Status::OK();
}

DurabilityStats DurableEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::map<std::string, uint64_t> DurableEngine::IdemMarks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idem_marks_;
}

}  // namespace svc
