#ifndef SVC_STORAGE_FAULT_H_
#define SVC_STORAGE_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace svc {

/// Deterministic crash-fault injection for the durability layer. Code on
/// the durable write path declares named *crash sites* (e.g.
/// "wal.append.torn", "ckpt.pre_rename") by calling MaybeCrash /
/// ShouldTrigger at the exact instruction where a real power loss would be
/// most damaging. A test (or the SVC_FAULT environment variable) arms one
/// site for its Nth hit; when the armed hit occurs the process dies via
/// _exit — no destructors, no stream flushes, no atexit handlers — so
/// whatever bytes reached the file system are exactly what recovery sees.
///
/// Disarmed (the default, and the only state in production use), every
/// hook is a counter bump behind one mutex on the serialized write path —
/// no crash can ever trigger.
///
/// The kill-and-recover harness (tests/test_recovery.cc) forks a child,
/// arms the injector there, replays a seeded workload until the crash,
/// then recovers the directory in the parent and diffs answers bit-for-bit
/// against a never-crashed replica.
class FaultInjector {
 public:
  /// The singleton; parses SVC_FAULT ("site" or "site:nth") once on first
  /// access.
  static FaultInjector& Global();

  /// A second, independent instance for *network* faults, parsing
  /// SVC_NET_FAULT the same way. Its sites live in the serving layer
  /// (server/server.cc: "conn.stall", "conn.close_mid_frame",
  /// "conn.drop_response", "send.short_write", "exec.delay") and — unlike
  /// Global()'s crash sites — never kill the process: the triggered code
  /// path inflicts connection-level damage (drops/garbles one response)
  /// and the server keeps serving, which is exactly what a retrying
  /// client must survive. Keeping the streams separate lets one process
  /// arm a crash site and a network site simultaneously without the hit
  /// counters interfering.
  static FaultInjector& Net();

  /// Arms `site` to crash on its `nth` hit (1-based). Replaces any
  /// previous arming and resets hit counters.
  void Arm(const std::string& site, uint64_t nth = 1);

  /// Disarms and resets hit counters.
  void Disarm();

  /// Parses "site" or "site:nth" and arms it.
  Status ArmFromSpec(const std::string& spec);

  bool armed() const;

  /// Records a hit of `site`; returns true iff this hit is the armed one.
  /// Callers that return true must inflict their site-specific partial
  /// damage (e.g. write half a frame) and then call CrashNow.
  bool ShouldTrigger(const char* site);

  /// ShouldTrigger + CrashNow in one step, for sites with no partial
  /// damage to write.
  void MaybeCrash(const char* site);

  /// Immediate process death (_exit, skipping all cleanup), with a one-line
  /// note on stderr naming the site.
  [[noreturn]] void CrashNow(const char* site);

  /// Exit code of an injected crash, distinct from ordinary failures so
  /// harnesses can assert the crash actually fired.
  static constexpr int kCrashExitCode = 87;

 private:
  FaultInjector() = default;

  /// Heap-allocates an injector armed from the given environment variable
  /// (leaked intentionally: singletons outlive _exit-style teardown).
  static FaultInjector* FromEnv(const char* env);

  mutable std::mutex mu_;
  std::string site_;
  uint64_t nth_ = 0;
  std::map<std::string, uint64_t> hits_;
};

}  // namespace svc

#endif  // SVC_STORAGE_FAULT_H_
