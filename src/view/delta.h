#ifndef SVC_VIEW_DELTA_H_
#define SVC_VIEW_DELTA_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/table.h"

namespace svc {

/// The catalog name under which a base relation's pending insertions are
/// registered ("__ins_<relation>").
std::string DeltaInsertName(const std::string& relation);
/// The catalog name for pending deletions ("__del_<relation>").
std::string DeltaDeleteName(const std::string& relation);

/// The paper's delta relations ∂D = {ΔR_1..ΔR_k} ∪ {∇R_1..∇R_k}: for
/// each base relation a set of inserted records and a set of deleted records
/// (an update is modeled as a deletion followed by an insertion). The
/// Database keeps the *pre-update* state until ApplyToBase commits the
/// deltas; maintenance expressions reference both through the catalog.
class DeltaSet {
 public:
  DeltaSet() = default;

  /// Queues `row` for insertion into `relation` (schema from `db`).
  Status AddInsert(const Database& db, const std::string& relation, Row row);

  /// Queues `row` (full record) for deletion from `relation`.
  Status AddDelete(const Database& db, const std::string& relation, Row row);

  /// Queues an update: delete `old_row`, insert `new_row`.
  Status AddUpdate(const Database& db, const std::string& relation,
                   Row old_row, Row new_row);

  /// Moves all of `other`'s pending rows into this set.
  Status Merge(DeltaSet&& other);

  /// True iff no relation has pending changes — i.e. no view is stale.
  bool empty() const;

  /// True iff `relation` has pending inserts or deletes.
  bool Touches(const std::string& relation) const;

  /// True iff `relation` has pending deletes.
  bool HasDeletes(const std::string& relation) const;

  /// Number of pending insert rows across all relations.
  size_t TotalInserts() const;
  /// Number of pending delete rows across all relations.
  size_t TotalDeletes() const;

  /// Relations with pending changes.
  std::vector<std::string> TouchedRelations() const;

  /// Pending insert rows for `relation` (empty table if none).
  const Table* inserts(const std::string& relation) const;
  /// Pending delete rows for `relation` (empty table if none).
  const Table* deletes(const std::string& relation) const;

  /// Registers every delta table into `db` under DeltaInsertName /
  /// DeltaDeleteName so maintenance expressions can scan them. Relations
  /// without pending changes get empty delta tables only if `all_relations`
  /// lists them.
  Status Register(Database* db) const;

  /// Commits the deltas into the base relations of `db` (deletes first,
  /// then inserts, so updates replace in place) and drops the registered
  /// delta tables. The DeltaSet is cleared.
  Status ApplyToBase(Database* db);

 private:
  Result<Table*> DeltaTableFor(const Database& db, const std::string& relation,
                               std::map<std::string, Table>* side);

  std::map<std::string, Table> inserts_;
  std::map<std::string, Table> deletes_;
};

}  // namespace svc

#endif  // SVC_VIEW_DELTA_H_
