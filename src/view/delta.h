#ifndef SVC_VIEW_DELTA_H_
#define SVC_VIEW_DELTA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/table.h"

namespace svc {

/// The catalog name under which a base relation's pending insertions are
/// registered ("__ins_<relation>"). Chunked queues register sealed chunks
/// under DeltaChunkName(base, k) next to this name.
std::string DeltaInsertName(const std::string& relation);
/// The catalog name for pending deletions ("__del_<relation>").
std::string DeltaDeleteName(const std::string& relation);
/// The catalog name of sealed chunk `k` of a delta side ("<base>@<k>").
std::string DeltaChunkName(const std::string& base, size_t chunk);

/// A row-count snapshot of a DeltaSet (per relation and side), used by the
/// sample cache to identify which rows arrived after a sample was cleaned.
/// Counts are totals, so a watermark stays meaningful across engine forks
/// (which reshape chunks but never reorder or drop pending rows).
struct DeltaWatermark {
  std::map<std::string, size_t> insert_rows;
  std::map<std::string, size_t> delete_rows;
};

/// The paper's delta relations ∂D = {ΔR_1..ΔR_k} ∪ {∇R_1..∇R_k}: for
/// each base relation a set of inserted records and a set of deleted records
/// (an update is modeled as a deletion followed by an insertion). The
/// Database keeps the *pre-update* state until ApplyToBase commits the
/// deltas; maintenance expressions reference both through the catalog.
///
/// Storage is copy-on-write: each relation/side holds a list of sealed,
/// immutable chunks behind shared_ptr plus one owned, mutable tail that
/// appends land in. Copying a DeltaSet shares every sealed chunk and seals
/// the source's tail into a new chunk of the copy, so a copy costs
/// O(#chunks + rows since the last copy) instead of O(all queued rows) —
/// this is what makes a SharedEngine ingest commit flat in queue depth.
/// The logical row sequence (chunks in order, then the tail) is identical
/// however the queue is chunked; maintenance and cleaning plans scan the
/// chunks as a union, producing bit-identical results at any chunking.
class DeltaSet {
 public:
  DeltaSet() = default;

  /// Shares all sealed chunks with `other` and seals other's tail rows
  /// (O(#chunks + tail rows)). The copy's registered catalog names differ
  /// from the source's — re-Register into the copied catalog before
  /// building plans against it (SvcEngine's fork constructor does).
  DeltaSet(const DeltaSet& other);
  DeltaSet& operator=(const DeltaSet& other);
  DeltaSet(DeltaSet&&) = default;
  DeltaSet& operator=(DeltaSet&&) = default;

  /// Queues `row` for insertion into `relation` (schema from `db`).
  Status AddInsert(const Database& db, const std::string& relation, Row row);

  /// Queues `row` (full record) for deletion from `relation`.
  Status AddDelete(const Database& db, const std::string& relation, Row row);

  /// Queues an update: delete `old_row`, insert `new_row`.
  Status AddUpdate(const Database& db, const std::string& relation,
                   Row old_row, Row new_row);

  /// Moves all of `other`'s pending rows into this set (appended to the
  /// tails in other's logical order).
  Status Merge(DeltaSet&& other);

  /// True iff no relation has pending changes — i.e. no view is stale.
  bool empty() const;

  /// True iff `relation` has pending inserts or deletes.
  bool Touches(const std::string& relation) const;

  /// True iff `relation` has pending deletes.
  bool HasDeletes(const std::string& relation) const;

  /// Number of pending insert rows for `relation` / across all relations.
  size_t InsertRows(const std::string& relation) const;
  size_t TotalInserts() const;
  /// Number of pending delete rows for `relation` / across all relations.
  size_t DeleteRows(const std::string& relation) const;
  size_t TotalDeletes() const;

  /// Relations with pending changes.
  std::vector<std::string> TouchedRelations() const;

  /// Monotonic mutation counter: bumped by every Add/Merge/ApplyToBase.
  /// Within one engine it uniquely identifies the pending-queue contents,
  /// which is what the cleaned-sample cache keys on. (Two independent
  /// forks can reach the same number with different contents — which is
  /// why forks never share one cache object.)
  uint64_t version() const { return version_; }

  /// Overwrites the mutation counter. Only for checkpoint restore, where
  /// the decoded queue contents and the persisted counter must re-pair —
  /// never call this on a live engine (it would alias cache keys).
  void RestoreVersion(uint64_t v) { version_ = v; }

  /// Rebuilds `relation`'s pending queues keeping only rows for which
  /// `keep` returns true, preserving queue order (both sides collapse to a
  /// fresh zero-chunk tail). Used when a base relation is re-partitioned:
  /// the shard drops queued rows it no longer owns. Bumps version(); a
  /// later Register drops the retired chunk names from the catalog.
  void RetainRows(const std::string& relation,
                  const std::function<bool(const Row&)>& keep);

  /// Current per-relation row counts, for later SliceSince calls.
  DeltaWatermark Watermark() const;

  /// The rows that arrived after `mark`, as a standalone tail-only
  /// DeltaSet (rows copied; cost O(new rows + #chunks)). Fails with
  /// InvalidArgument when `mark` does not describe a prefix of this set
  /// (e.g. it was taken before a maintenance commit emptied the queue).
  Result<DeltaSet> SliceSince(const DeltaWatermark& mark) const;

  /// Visits every pending insert/delete row of `relation` in queue order.
  template <typename Fn>
  void ForEachInsert(const std::string& relation, Fn fn) const {
    auto it = inserts_.find(relation);
    if (it != inserts_.end()) it->second.ForEachRow(fn);
  }
  template <typename Fn>
  void ForEachDelete(const std::string& relation, Fn fn) const {
    auto it = deletes_.find(relation);
    if (it != deletes_.end()) it->second.ForEachRow(fn);
  }

  /// The registered catalog names holding `relation`'s pending inserts /
  /// deletes, in queue order (sealed chunks, then the tail). Empty chunks
  /// are elided; an untouched side yields an empty list. Maintenance and
  /// cleaning plans scan the union of these tables; Register must have
  /// synced the catalog first.
  std::vector<std::string> InsertTableNames(const std::string& relation) const;
  std::vector<std::string> DeleteTableNames(const std::string& relation) const;

  /// Syncs every delta table into `db`'s catalog: sealed chunks are
  /// registered by shared pointer (no row copies), the tails by value.
  /// Stale names from a previous shape of the queue (e.g. the pre-seal
  /// tail after a copy) are dropped.
  Status Register(Database* db) const;

  /// Commits the deltas into the base relations of `db` (deletes first,
  /// then inserts, so updates replace in place) and drops the registered
  /// delta tables. The DeltaSet is cleared.
  Status ApplyToBase(Database* db);

 private:
  /// One relation's pending rows on one side: sealed immutable chunks
  /// (shared across DeltaSet copies — never mutated once sealed) plus the
  /// owned tail that appends go to.
  struct Side {
    std::vector<std::shared_ptr<const Table>> chunks;
    Table tail;

    size_t rows() const;
    bool empty_rows() const { return rows() == 0; }
    template <typename Fn>
    void ForEachRow(Fn fn) const {
      for (const auto& c : chunks) {
        for (const Row& r : c->rows()) fn(r);
      }
      for (const Row& r : tail.rows()) fn(r);
    }
  };

  static void SealInto(const Side& from, Side* to);
  /// Geometric compaction: when the sealed-chunk count exceeds
  /// 2 × log2(rows), adjacent chunks are merged (smallest pair first,
  /// preserving queue order) down to half that cap. Long maintenance
  /// periods with per-commit forking (a SharedEngine ingesting thousands
  /// of single-row commits between REFRESHes) would otherwise accumulate
  /// one chunk per commit — O(commits) catalog names per view plan and
  /// O(chunks) pointer copies per fork. Merging only above the log bound
  /// keeps per-row copy work amortized O(log rows) while the logical row
  /// sequence — and therefore every answer — is unchanged (results are
  /// chunking-independent by construction).
  static void CompactChunks(std::vector<std::shared_ptr<const Table>>* chunks);
  Result<Side*> SideFor(const Database& db, const std::string& relation,
                        std::map<std::string, Side>* sides);
  static std::vector<std::string> TableNamesFor(
      const std::map<std::string, Side>& sides, const std::string& relation,
      const std::string& base);

  std::map<std::string, Side> inserts_;
  std::map<std::string, Side> deletes_;
  uint64_t version_ = 0;
};

}  // namespace svc

#endif  // SVC_VIEW_DELTA_H_
