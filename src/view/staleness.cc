#include "view/staleness.h"

#include <sstream>

namespace svc {

std::string StalenessReport::ToString() const {
  std::ostringstream os;
  os << "incorrect=" << incorrect << " missing=" << missing
     << " superfluous=" << superfluous << " unchanged=" << unchanged;
  return os.str();
}

Result<StalenessReport> ClassifyStaleness(
    const Table& stale, const Table& fresh,
    const std::vector<std::string>& compare_columns) {
  if (!stale.HasPrimaryKey() || !fresh.HasPrimaryKey()) {
    return Status::InvalidArgument(
        "staleness classification requires primary keys on both tables");
  }
  std::vector<size_t> cmp;
  if (compare_columns.empty()) {
    cmp.resize(stale.schema().NumColumns());
    for (size_t i = 0; i < cmp.size(); ++i) cmp[i] = i;
  } else {
    SVC_ASSIGN_OR_RETURN(cmp, stale.schema().ResolveAll(compare_columns));
  }

  StalenessReport report;
  for (size_t i = 0; i < stale.NumRows(); ++i) {
    auto match = fresh.FindByEncodedKey(stale.EncodedKey(i));
    if (!match.ok()) {
      ++report.superfluous;
      continue;
    }
    const Row& s = stale.row(i);
    const Row& f = fresh.row(*match);
    bool equal = true;
    for (size_t c : cmp) {
      if (!(s[c] == f[c])) {
        equal = false;
        break;
      }
    }
    if (equal) {
      ++report.unchanged;
    } else {
      ++report.incorrect;
    }
  }
  for (size_t i = 0; i < fresh.NumRows(); ++i) {
    if (!stale.FindByEncodedKey(fresh.EncodedKey(i)).ok()) {
      ++report.missing;
    }
  }
  return report;
}

}  // namespace svc
